// sink.hpp — the streaming end of fleet telemetry: per-worker rings in,
// selectively-persisted per-shard trace files out.
//
// A TraceSink owns one TraceRing per fleet worker and a single background
// drain thread.  Workers push raw slot events while shards run; the drain
// pops them concurrently, buffers each node's sequence, applies the
// selective-persistence policy when the node completes, and writes one
// trace file per shard when the shard-end marker arrives.  Because every
// shard executes on exactly one worker (ParallelForWorker serializes
// iterations per worker id), each ring carries whole shards back-to-back
// and the drain never has to reorder anything.
//
// The sink is strictly observational: the runner's results do not depend
// on it (pinned by tests/test_trace_sink.cpp), and a full ring drops
// events rather than stalling the simulation — with the drops counted in
// the shard's file footer and the run stats.
//
// Threading contract (what keeps this TSan-clean):
//  * BeginRun / EnsureWorkers / EndShard / Flush are called by the run
//    driver only, never concurrently with each other;
//  * ring(worker) is touched by exactly one producer thread at a time
//    (the ParallelForWorker worker-id contract);
//  * everything else — assemblies, stats, file writes — belongs to the
//    drain thread, with the small shared state behind one mutex.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/policy.hpp"
#include "trace/record.hpp"
#include "trace/ring_buffer.hpp"
#include "trace/trace_file.hpp"

namespace shep {

/// Sink configuration, carried by FleetRunOptions.
struct TraceSinkOptions {
  /// Where per-shard trace files land; created if missing.  Empty keeps
  /// the whole pipeline running but skips the file writes — the mode
  /// bench_fleet uses to price tracing overhead without disk noise.
  std::string directory;
  /// Per-worker ring capacity in events (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 14;
  /// When true, probes spin-yield on a full ring instead of dropping the
  /// event.  Default off: production tracing never blocks the simulation
  /// (a full ring drops AND counts).  bench_fleet turns it on so the
  /// traced run it prices is complete — a drain briefly lagging sixteen
  /// hot producers shows up as measured backpressure, not missing events.
  bool block_on_full = false;
  /// How long the drain sleeps when every ring comes up empty.
  std::uint32_t drain_idle_micros = 200;
  TracePolicyConfig policy;
};

/// What one run hands the sink before its shards start: the identity and
/// shape every trace file of the run shares.
struct TraceRunContext {
  std::string scenario_name;
  std::uint64_t fingerprint = 0;
  std::uint32_t slots_per_day = 0;
  std::uint32_t days = 0;
  /// Cell metadata for the whole matrix, ascending by cell id; each shard
  /// file embeds the subset its nodes touch.
  std::vector<TraceCellInfo> cells;
};

/// Lifetime totals, readable after Flush().  `events + dropped` equals
/// exactly the number of slots the probes attempted to push.
struct TraceSinkStats {
  std::uint64_t events = 0;        ///< slot events drained from the rings.
  std::uint64_t dropped = 0;       ///< refusals reported by shard markers.
  std::uint64_t slot_records = 0;  ///< full-resolution records persisted.
  std::uint64_t day_records = 0;   ///< coarse summaries persisted.
  std::uint64_t shard_files = 0;   ///< trace files finalized.
  /// Shard-end markers EndShard could not deliver because the drain was
  /// stopping or never started (the marker's drops still land in
  /// `dropped`); those shards produce no trace file.
  std::uint64_t lost_shards = 0;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options = {});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  const TraceSinkOptions& options() const { return options_; }

  /// Installs the run's identity (creating the output directory on first
  /// need) and starts the drain thread if it is not running.  Call before
  /// the run's first shard; a sink can serve successive runs.
  void BeginRun(const TraceRunContext& context);

  /// Guarantees at least `workers` rings exist.  Not concurrent with
  /// producers — call between BeginRun and the parallel section.
  void EnsureWorkers(std::size_t workers);

  /// The ring worker `worker` pushes onto.  Stable for the whole run.
  TraceRing& ring(std::size_t worker);

  /// Marks shard `shard` complete on `worker`'s ring, carrying the probes'
  /// refusal count.  Retries until the marker lands — shard ends are rare
  /// and must never be lost, unlike slot events — EXCEPT when the sink is
  /// stopping (or the drain never started): then no one will ever make
  /// room, so the call gives up, adds `dropped` to stats().dropped and
  /// counts the shard in stats().lost_shards instead of spinning forever.
  void EndShard(std::size_t worker, std::uint64_t shard,
                std::uint64_t dropped);

  /// Blocks until every pushed event has been drained and every shard file
  /// finalized.  Producers must be quiescent (the parallel section has
  /// joined).  After Flush, stats() covers everything pushed so far.
  void Flush();

  [[nodiscard]] TraceSinkStats stats() const;

 private:
  /// Drain-side per-ring state: the shard currently streaming off that
  /// ring and the node whose slots are being buffered for the policy.
  struct RingAssembly {
    bool shard_open = false;
    bool node_open = false;
    std::uint64_t node = 0;
    std::vector<TraceEvent> node_events;
    TraceShardFile file;
  };

  void DrainLoop();
  /// One sweep over all rings; returns drained event count.
  std::size_t DrainPass();
  void Consume(RingAssembly& assembly, const TraceEvent& event);
  void CloseNode(RingAssembly& assembly);
  void FinalizeShard(RingAssembly& assembly, const TraceEvent& end_marker);

  const TraceSinkOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;   ///< wakes the drain thread.
  std::condition_variable flush_cv_;   ///< signals flush completion.
  TraceRunContext context_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<RingAssembly> assemblies_;
  TraceSinkStats stats_;
  bool flush_requested_ = false;
  bool stopping_ = false;
  bool thread_running_ = false;
  std::thread drain_;
};

}  // namespace shep
