// record.hpp — the persisted units of fleet telemetry.
//
// A fleet run can afford to KEEP only a sliver of what it OBSERVES: a
// million nodes × thousands of slots is terabytes at full resolution.  The
// trace layer therefore persists two record shapes:
//
//  * TraceRecord    — one slot of one node at full resolution (SoC
//    fraction, predicted vs. actual harvest power, duty level, violation
//    flag), emitted only inside the selective-persistence windows around
//    trigger events (trace/policy.hpp);
//  * TraceDayRecord — one node-day coarse summary (violation count,
//    SoC low-water mark, mean duty, worst prediction error) for every
//    slot the policy did NOT keep, so the timeline has no blind gaps —
//    just lower resolution away from the interesting windows.
//
// Both serialize through the shared serdes hexfloat helpers: a record that
// crossed a file boundary parses back BIT-identically, the same exactness
// contract the fleet partials carry (pinned by tests/test_trace_records.cpp
// at the representation's edges).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/serdes.hpp"

namespace shep {

/// Why a window of slots was persisted at full resolution; records carry
/// the union (bitmask) of every trigger whose window covers them.
enum TraceTrigger : std::uint32_t {
  kTraceTriggerViolationBurst = 1u << 0,  ///< violation pile-up in a window.
  kTraceTriggerSocLowWater = 1u << 1,     ///< SoC crossed the low-water mark.
  kTraceTriggerDivergence = 1u << 2,      ///< predictor error spiked.
  kTraceTriggerOutage = 1u << 3,          ///< injected outage began or ended.
};

/// Display name of a single trigger bit ("violation-burst", ...).
const char* TraceTriggerName(TraceTrigger trigger);

/// "violation-burst" → kTraceTriggerViolationBurst, etc.; 0 for an unknown
/// name (no trigger is ever the zero mask, so 0 is unambiguous).
[[nodiscard]] std::uint32_t TraceTriggerFromName(const std::string& name);

/// All trigger bits of `mask` joined with '+' ("soc-low-water+divergence"),
/// or "-" for an empty mask.
std::string TraceTriggerMaskName(std::uint32_t mask);

/// One slot of one node, full resolution.
struct TraceRecord {
  std::uint64_t node = 0;          ///< global node id (cell-major).
  std::uint64_t cell = 0;          ///< owning scenario cell.
  std::uint32_t slot = 0;          ///< global slot index of the run.
  std::uint32_t trigger_mask = 0;  ///< TraceTrigger bits that kept it.
  bool violated = false;           ///< the slot browned out.
  double soc = 0.0;                ///< storage fraction after the slot.
  double predicted_w = 0.0;        ///< committed harvest prediction.
  double actual_w = 0.0;           ///< the slot's true mean power.
  double duty = 0.0;               ///< duty level the controller committed.

  /// One line of exact text ("slot ..."); doubles as hexfloats.
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static TraceRecord Deserialize(std::istream& is);
};

/// One node-day coarse summary of the slots the policy did not persist.
struct TraceDayRecord {
  std::uint64_t node = 0;
  std::uint64_t cell = 0;
  std::uint32_t day = 0;            ///< slot / slots_per_day.
  std::uint32_t slots = 0;          ///< slots summarized into this record.
  std::uint32_t violations = 0;     ///< brown-outs among them.
  double min_soc = 1.0;             ///< lowest storage fraction seen.
  double mean_duty = 0.0;           ///< average committed duty.
  double max_abs_error_w = 0.0;     ///< worst |predicted − actual| power.

  /// One line of exact text ("day ..."); doubles as hexfloats.
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static TraceDayRecord Deserialize(std::istream& is);
};

}  // namespace shep
