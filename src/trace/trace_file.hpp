// trace_file.hpp — the on-disk unit of fleet telemetry: one file per
// shard, keyed by the plan fingerprint.
//
// A distributed run writes its traces the same way it writes its
// summaries: per shard, so any subset of workers produces files that can
// be queried alone or joined with the rest.  The fingerprint in the header
// (and the file name) is the same plan fingerprint FleetPartials carry —
// the query layer refuses to join files from different plans, exactly as
// MergeFleetPartials refuses mismatched partials.
//
// Everything is exact text: ids as decimal integers, doubles as serdes
// hexfloats.  Write→Parse round-trips bit-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace shep {

/// Cell metadata embedded in each trace file so queries can filter by
/// site / predictor without re-expanding the scenario.
struct TraceCellInfo {
  std::uint64_t cell = 0;
  std::string site_code;
  std::string predictor_label;
  double storage_j = 0.0;
};

/// One shard's persisted telemetry.
struct TraceShardFile {
  std::string scenario_name;
  std::uint64_t fingerprint = 0;   ///< ShardPlan fingerprint.
  std::uint64_t shard = 0;         ///< ShardRange::index.
  std::uint32_t slots_per_day = 0;
  std::uint32_t days = 0;
  /// Cells that own at least one node of this shard, ascending by id.
  std::vector<TraceCellInfo> cells;
  /// Full-resolution records, node-major then slot-ascending.
  std::vector<TraceRecord> records;
  /// Coarse summaries for the slots the policy did not keep.
  std::vector<TraceDayRecord> day_records;
  /// Events the worker's ring refused while this shard ran.  Persisted so
  /// a lossy trace says so forever, not just in one process's stats.
  std::uint64_t dropped_events = 0;

  /// Exact text form ("shep-trace v1 ..." through "end").
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static TraceShardFile Parse(std::istream& is);

  /// Canonical file name: trace-<fingerprint:016x>-shard<index>.shtr —
  /// fingerprint-keyed so shards of different plans never collide in one
  /// directory, and a joined query can glob one plan's files.
  static std::string FileName(std::uint64_t fingerprint, std::uint64_t shard);
};

}  // namespace shep
