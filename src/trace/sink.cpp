#include "trace/sink.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"

namespace shep {

namespace {

/// Events moved per ring per sweep; bounds drain-side latency without
/// letting one busy ring starve the others.
constexpr std::size_t kDrainBatch = 1024;

}  // namespace

TraceSink::TraceSink(TraceSinkOptions options) : options_(std::move(options)) {
  SHEP_REQUIRE(options_.ring_capacity >= 2,
               "trace sink needs ring_capacity >= 2");
}

TraceSink::~TraceSink() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  drain_cv_.notify_all();
  if (drain_.joinable()) drain_.join();
}

void TraceSink::BeginRun(const TraceRunContext& context) {
  SHEP_REQUIRE(context.slots_per_day > 0,
               "trace run context needs slots_per_day > 0");
  if (!options_.directory.empty()) {
    std::filesystem::create_directories(options_.directory);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = context;
  if (!thread_running_) {
    drain_ = std::thread([this] { DrainLoop(); });
    thread_running_ = true;
  }
}

void TraceSink::EnsureWorkers(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (rings_.size() < workers) {
    rings_.push_back(std::make_unique<TraceRing>(options_.ring_capacity));
  }
  assemblies_.resize(rings_.size());
}

TraceRing& TraceSink::ring(std::size_t worker) {
  // No lock: rings_ is only ever mutated by EnsureWorkers, which the
  // threading contract forbids concurrently with producers.
  SHEP_REQUIRE(worker < rings_.size(),
               "trace ring requested for an unknown worker");
  return *rings_[worker];
}

void TraceSink::EndShard(std::size_t worker, std::uint64_t shard,
                         std::uint64_t dropped) {
  TraceEvent marker;
  marker.kind = TraceEvent::Kind::kShardEnd;
  marker.shard = shard;
  marker.dropped = dropped;
  TraceRing& target = ring(worker);
  // Unlike slot events, the marker must land: the drain cannot finalize
  // the shard's file without it.  Spin-yield until the drain makes room;
  // shard ends are rare, so this never shows up in profiles.  But only a
  // RUNNING drain ever makes room — if the sink is stopping (or the drain
  // was never started), waiting on it would spin forever, so give up,
  // account the shard's drops, and record the shard as lost instead of
  // silently dropping its footer.  This is exactly the path a coordinated
  // worker takes when it is torn down mid-shard.
  while (!target.TryPush(marker)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || !thread_running_) {
        stats_.dropped += dropped;
        ++stats_.lost_shards;
        return;
      }
    }
    drain_cv_.notify_all();
    std::this_thread::yield();
  }
  drain_cv_.notify_all();
}

void TraceSink::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!thread_running_) return;
  flush_requested_ = true;
  drain_cv_.notify_all();
  flush_cv_.wait(lock, [this] { return !flush_requested_; });
}

TraceSinkStats TraceSink::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TraceSink::DrainLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const std::size_t drained = DrainPass();
    if (drained > 0) continue;  // stay hot while events are flowing.
    if (flush_requested_) {
      // Rings are empty and producers are quiescent (Flush's contract),
      // and every shard-end marker has been consumed, so all files are on
      // disk: the flush is complete.
      flush_requested_ = false;
      flush_cv_.notify_all();
    }
    if (stopping_) return;
    drain_cv_.wait_for(lock,
                       std::chrono::microseconds(options_.drain_idle_micros));
  }
}

std::size_t TraceSink::DrainPass() {
  std::size_t drained = 0;
  std::vector<TraceEvent> batch;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    batch.clear();
    drained += rings_[i]->PopBatch(batch, kDrainBatch);
    for (const TraceEvent& event : batch) Consume(assemblies_[i], event);
  }
  return drained;
}

void TraceSink::Consume(RingAssembly& assembly, const TraceEvent& event) {
  if (event.kind == TraceEvent::Kind::kShardEnd) {
    FinalizeShard(assembly, event);
    return;
  }
  ++stats_.events;
  if (!assembly.shard_open) {
    assembly.shard_open = true;
    assembly.file = TraceShardFile{};
    assembly.file.scenario_name = context_.scenario_name;
    assembly.file.fingerprint = context_.fingerprint;
    assembly.file.shard = event.shard;
    assembly.file.slots_per_day = context_.slots_per_day;
    assembly.file.days = context_.days;
  }
  SHEP_REQUIRE(assembly.file.shard == event.shard,
               "slot event from a different shard before the end marker");
  if (!assembly.node_open || assembly.node != event.node) {
    CloseNode(assembly);
    assembly.node_open = true;
    assembly.node = event.node;
  }
  if (assembly.file.cells.empty() ||
      assembly.file.cells.back().cell != event.cell) {
    SHEP_REQUIRE(event.cell < context_.cells.size(),
                 "slot event references a cell outside the run context");
    assembly.file.cells.push_back(context_.cells[event.cell]);
  }
  assembly.node_events.push_back(event);
}

void TraceSink::CloseNode(RingAssembly& assembly) {
  if (assembly.node_open && !assembly.node_events.empty()) {
    ApplyTracePolicy(assembly.node_events, assembly.file.slots_per_day,
                     options_.policy, assembly.file.records,
                     assembly.file.day_records);
  }
  assembly.node_events.clear();
  assembly.node_open = false;
}

void TraceSink::FinalizeShard(RingAssembly& assembly,
                              const TraceEvent& end_marker) {
  if (!assembly.shard_open) {
    // Every slot event of the shard was dropped; the file still exists so
    // the loss is on the record.
    assembly.file = TraceShardFile{};
    assembly.file.scenario_name = context_.scenario_name;
    assembly.file.fingerprint = context_.fingerprint;
    assembly.file.shard = end_marker.shard;
    assembly.file.slots_per_day = context_.slots_per_day;
    assembly.file.days = context_.days;
  }
  SHEP_REQUIRE(assembly.file.shard == end_marker.shard,
               "shard-end marker does not match the streaming shard");
  CloseNode(assembly);
  assembly.file.dropped_events = end_marker.dropped;

  stats_.dropped += end_marker.dropped;
  stats_.slot_records += assembly.file.records.size();
  stats_.day_records += assembly.file.day_records.size();
  ++stats_.shard_files;

  if (!options_.directory.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(options_.directory) /
        TraceShardFile::FileName(assembly.file.fingerprint,
                                 assembly.file.shard);
    std::ofstream out(path);
    SHEP_REQUIRE(out.good(), "cannot open trace file for writing: " +
                                 path.string());
    assembly.file.Serialize(out);
    out.flush();
    SHEP_REQUIRE(out.good(), "trace file write failed: " + path.string());
  }

  assembly.shard_open = false;
  assembly.file = TraceShardFile{};
}

}  // namespace shep
