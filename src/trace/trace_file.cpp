#include "trace/trace_file.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/serdes.hpp"

namespace shep {

void TraceShardFile::Serialize(std::ostream& os) const {
  SHEP_REQUIRE(scenario_name.find_first_of(" \t\n") == std::string::npos,
               "scenario names must be whitespace-free to serialize");
  os << "shep-trace v1\n";
  os << "scenario " << scenario_name << '\n';
  os << "fingerprint " << fingerprint << '\n';
  os << "shard " << shard << '\n';
  os << "slots_per_day " << slots_per_day << '\n';
  os << "days " << days << '\n';
  os << "cells " << cells.size() << '\n';
  for (const TraceCellInfo& cell : cells) {
    SHEP_REQUIRE(cell.site_code.find_first_of(" \t\n") == std::string::npos &&
                     cell.predictor_label.find_first_of(" \t\n") ==
                         std::string::npos,
                 "cell labels must be whitespace-free to serialize");
    os << "cell " << cell.cell << ' ' << cell.site_code << ' '
       << cell.predictor_label << ' ';
    serdes::WriteDouble(os, cell.storage_j);
    os << '\n';
  }
  os << "records " << records.size() << '\n';
  for (const TraceRecord& r : records) r.Serialize(os);
  os << "day_records " << day_records.size() << '\n';
  for (const TraceDayRecord& r : day_records) r.Serialize(os);
  os << "dropped " << dropped_events << '\n';
  os << "end\n";
}

TraceShardFile TraceShardFile::Parse(std::istream& is) {
  serdes::ExpectToken(is, "shep-trace");
  serdes::ExpectToken(is, "v1");
  TraceShardFile file;
  serdes::ExpectToken(is, "scenario");
  is >> file.scenario_name;
  SHEP_REQUIRE(!file.scenario_name.empty(),
               "trace file is missing its scenario name");
  serdes::ExpectToken(is, "fingerprint");
  file.fingerprint = serdes::ReadU64(is);
  serdes::ExpectToken(is, "shard");
  file.shard = serdes::ReadU64(is);
  serdes::ExpectToken(is, "slots_per_day");
  file.slots_per_day = static_cast<std::uint32_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "days");
  file.days = static_cast<std::uint32_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "cells");
  const std::uint64_t cell_count = serdes::ReadU64(is);
  file.cells.reserve(cell_count);
  for (std::uint64_t c = 0; c < cell_count; ++c) {
    serdes::ExpectToken(is, "cell");
    TraceCellInfo cell;
    cell.cell = serdes::ReadU64(is);
    SHEP_REQUIRE(c == 0 || file.cells.back().cell < cell.cell,
                 "trace cells must be ascending by id");
    is >> cell.site_code >> cell.predictor_label;
    SHEP_REQUIRE(static_cast<bool>(is), "truncated trace cell entry");
    cell.storage_j = serdes::ReadDouble(is);
    file.cells.push_back(std::move(cell));
  }
  serdes::ExpectToken(is, "records");
  const std::uint64_t record_count = serdes::ReadU64(is);
  file.records.reserve(record_count);
  for (std::uint64_t r = 0; r < record_count; ++r) {
    file.records.push_back(TraceRecord::Deserialize(is));
  }
  serdes::ExpectToken(is, "day_records");
  const std::uint64_t day_count = serdes::ReadU64(is);
  file.day_records.reserve(day_count);
  for (std::uint64_t r = 0; r < day_count; ++r) {
    file.day_records.push_back(TraceDayRecord::Deserialize(is));
  }
  serdes::ExpectToken(is, "dropped");
  file.dropped_events = serdes::ReadU64(is);
  serdes::ExpectToken(is, "end");
  return file;
}

std::string TraceShardFile::FileName(std::uint64_t fingerprint,
                                     std::uint64_t shard) {
  std::ostringstream os;
  os << "trace-" << std::hex << std::setw(16) << std::setfill('0')
     << fingerprint << std::dec << "-shard" << shard << ".shtr";
  return os.str();
}

}  // namespace shep
