#include "trace/query.hpp"

#include <algorithm>
#include <fstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace shep {

namespace {

/// Resolves a cell id to its metadata within one file's embedded table.
const TraceCellInfo& CellInfo(const TraceShardFile& file, std::uint64_t cell) {
  for (const TraceCellInfo& info : file.cells) {
    if (info.cell == cell) return info;
  }
  SHEP_REQUIRE(false, "trace record references a cell the file does not "
                      "declare: " +
                          std::to_string(cell));
  return file.cells.front();  // unreachable.
}

bool MatchesCell(const TraceQuery& query, const TraceCellInfo& info) {
  if (!query.site.empty() && info.site_code != query.site) return false;
  if (!query.predictor.empty() && info.predictor_label != query.predictor) {
    return false;
  }
  if (!query.cells.empty() &&
      std::find(query.cells.begin(), query.cells.end(), info.cell) ==
          query.cells.end()) {
    return false;
  }
  return true;
}

}  // namespace

TraceShardFile LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  SHEP_REQUIRE(in.good(), "cannot open trace file: " + path);
  return TraceShardFile::Parse(in);
}

std::vector<TraceShardFile> LoadTraceFiles(
    const std::vector<std::string>& paths) {
  std::vector<TraceShardFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) files.push_back(LoadTraceFile(path));
  std::sort(files.begin(), files.end(),
            [](const TraceShardFile& a, const TraceShardFile& b) {
              return a.shard < b.shard;
            });
  for (std::size_t i = 1; i < files.size(); ++i) {
    SHEP_REQUIRE(files[i].fingerprint == files[0].fingerprint &&
                     files[i].scenario_name == files[0].scenario_name,
                 "trace files from different runs cannot be joined (plan "
                 "fingerprints disagree)");
    SHEP_REQUIRE(files[i].shard != files[i - 1].shard,
                 "duplicate shard in trace file set: " +
                     std::to_string(files[i].shard));
  }
  return files;
}

TraceQueryResult RunTraceQuery(const std::vector<TraceShardFile>& files,
                               const TraceQuery& query) {
  TraceQueryResult result;
  for (const TraceShardFile& file : files) {
    for (const TraceRecord& record : file.records) {
      if (record.slot < query.slot_begin || record.slot >= query.slot_end) {
        continue;
      }
      if (query.has_node && record.node != query.node) continue;
      if (query.trigger_mask != 0 &&
          (record.trigger_mask & query.trigger_mask) == 0) {
        continue;
      }
      const TraceCellInfo& info = CellInfo(file, record.cell);
      if (!MatchesCell(query, info)) continue;
      result.slots.push_back(
          {file.shard, info.site_code, info.predictor_label, record});
    }
    if (query.trigger_mask != 0) continue;  // day rows carry no triggers.
    for (const TraceDayRecord& record : file.day_records) {
      const std::uint32_t begin_slot = record.day * file.slots_per_day;
      if (begin_slot + file.slots_per_day <= query.slot_begin ||
          begin_slot >= query.slot_end) {
        continue;
      }
      if (query.has_node && record.node != query.node) continue;
      const TraceCellInfo& info = CellInfo(file, record.cell);
      if (!MatchesCell(query, info)) continue;
      result.days.push_back(
          {file.shard, info.site_code, info.predictor_label, record});
    }
  }
  return result;
}

TableBuilder TraceSlotsTable(const TraceQueryResult& result) {
  TableBuilder table("trace slots");
  table.Columns({"shard", "node", "cell", "site", "predictor", "slot",
                 "triggers", "violated", "soc", "predicted_w", "actual_w",
                 "duty"});
  for (const TraceSlotRow& row : result.slots) {
    const TraceRecord& r = row.record;
    table.AddRow({std::to_string(row.shard), std::to_string(r.node),
                  std::to_string(r.cell), row.site_code, row.predictor_label,
                  std::to_string(r.slot),
                  TraceTriggerMaskName(r.trigger_mask),
                  r.violated ? "1" : "0", FormatFixed(r.soc, 6),
                  FormatFixed(r.predicted_w, 6), FormatFixed(r.actual_w, 6),
                  FormatFixed(r.duty, 6)});
  }
  return table;
}

TableBuilder TraceDaysTable(const TraceQueryResult& result) {
  TableBuilder table("trace day summaries");
  table.Columns({"shard", "node", "cell", "site", "predictor", "day", "slots",
                 "violations", "min_soc", "mean_duty", "max_abs_error_w"});
  for (const TraceDayRow& row : result.days) {
    const TraceDayRecord& r = row.record;
    table.AddRow({std::to_string(row.shard), std::to_string(r.node),
                  std::to_string(r.cell), row.site_code, row.predictor_label,
                  std::to_string(r.day), std::to_string(r.slots),
                  std::to_string(r.violations), FormatFixed(r.min_soc, 6),
                  FormatFixed(r.mean_duty, 6),
                  FormatFixed(r.max_abs_error_w, 6)});
  }
  return table;
}

TableBuilder TraceFilesTable(const std::vector<TraceShardFile>& files) {
  TableBuilder table("trace files");
  table.Columns({"shard", "scenario", "fingerprint", "cells", "slot_records",
                 "day_records", "dropped"});
  for (const TraceShardFile& file : files) {
    table.AddRow({std::to_string(file.shard), file.scenario_name,
                  std::to_string(file.fingerprint),
                  std::to_string(file.cells.size()),
                  std::to_string(file.records.size()),
                  std::to_string(file.day_records.size()),
                  std::to_string(file.dropped_events)});
  }
  return table;
}

}  // namespace shep
