// ring_buffer.hpp — the lock-free lane between the node-sim hot path and
// the drain thread.
//
// Each batch worker of the fleet runner owns one TraceRing: the worker is
// the only producer (ParallelForWorker serializes iterations that share a
// worker id) and the sink's drain thread is the only consumer, so a
// classic single-producer/single-consumer ring with acquire/release
// indices is race-free without a single lock or RMW on the hot path.
//
// When the drain falls behind and the ring fills, TryPush REFUSES the
// event and counts the drop instead of blocking the simulation: tracing
// is observational and must never throttle the hot path.  Drop counts are
// surfaced per shard (trace file footers) and per run (TraceSinkStats) —
// dropped telemetry is reported, never silent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace shep {

/// One observation crossing the ring: a slot event of a node, or the
/// end-of-shard marker the runner pushes after a shard's last node (the
/// drain uses it to finalize and write that shard's trace file).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSlot,      ///< one simulated slot of `node`.
    kShardEnd,  ///< shard `shard` is complete; `dropped` carries its drop
                ///< count (events TryPush refused while it ran).
  };

  Kind kind = Kind::kSlot;
  bool violated = false;
  bool outage = false;  ///< the node was dark this slot (fault injection).
  std::uint32_t slot = 0;
  std::uint64_t shard = 0;
  std::uint64_t node = 0;
  std::uint64_t cell = 0;
  std::uint64_t dropped = 0;  ///< kShardEnd only.
  double soc = 0.0;
  double predicted_w = 0.0;
  double actual_w = 0.0;
  double duty = 0.0;
};

/// Bounded SPSC ring of TraceEvents.  Capacity is rounded up to a power of
/// two so the index math is a mask, not a modulo.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) {
    SHEP_REQUIRE(capacity >= 2, "trace ring needs at least two slots");
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 *= 2;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side.  Returns false (and counts the drop) when the ring is
  /// full; never blocks, never reorders — the hot path's cost is two
  /// atomic loads and one release store.
  // shep-lint: root(hot-path-alloc) root(blocking-in-rt)
  bool TryPush(const TraceEvent& event) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = event;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves up to `max` pending events into `out`
  /// (appending) and returns how many.  Only the drain thread may call it.
  std::size_t PopBatch(std::vector<TraceEvent>& out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t n = tail - head;
    if (n > max) n = max;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(head + i) & mask_]);
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return static_cast<std::size_t>(n);
  }

  /// Events TryPush refused so far.  Monotonic; readable from any thread.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// True when every pushed event has been popped (drain-side check).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  /// Producer and consumer indices on separate cache lines so the hot
  /// path's tail stores never false-share with the drain's head stores.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor.
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace shep
