// query.hpp — loading, filtering, and rendering persisted fleet traces.
//
// This is the library behind the shep_trace CLI, kept in the trace layer
// so tests can pin its semantics directly — most importantly that a query
// over N per-shard files equals the same query over each file separately,
// concatenated in shard order (the distributed-merge property, restated
// for telemetry).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "report/table.hpp"
#include "trace/record.hpp"
#include "trace/trace_file.hpp"

namespace shep {

/// Reads and parses one trace file; throws on malformed content.
[[nodiscard]] TraceShardFile LoadTraceFile(const std::string& path);

/// Loads a set of trace files that must belong to ONE run: same scenario
/// and plan fingerprint, no duplicate shards.  Returns them ascending by
/// shard regardless of argument order, so joined queries are deterministic.
[[nodiscard]] std::vector<TraceShardFile> LoadTraceFiles(
    const std::vector<std::string>& paths);

/// Conjunctive record filter; default-constructed matches everything.
struct TraceQuery {
  std::string site;        ///< exact site code; empty = any.
  std::string predictor;   ///< exact predictor label; empty = any.
  std::vector<std::uint64_t> cells;  ///< cell ids; empty = any.
  bool has_node = false;   ///< when set, `node` must match exactly.
  std::uint64_t node = 0;
  std::uint32_t slot_begin = 0;  ///< inclusive.
  std::uint32_t slot_end =
      std::numeric_limits<std::uint32_t>::max();  ///< exclusive.
  /// When nonzero, slot records must share at least one trigger bit.  Day
  /// records carry no triggers, so a trigger filter excludes them all.
  std::uint32_t trigger_mask = 0;
};

/// One matched full-resolution record with its provenance resolved.
struct TraceSlotRow {
  std::uint64_t shard = 0;
  std::string site_code;
  std::string predictor_label;
  TraceRecord record;
};

/// One matched day summary with its provenance resolved.
struct TraceDayRow {
  std::uint64_t shard = 0;
  std::string site_code;
  std::string predictor_label;
  TraceDayRecord record;
};

struct TraceQueryResult {
  std::vector<TraceSlotRow> slots;
  std::vector<TraceDayRow> days;
};

/// Runs `query` over `files` (visit them in the order given — pass the
/// LoadTraceFiles result for the canonical shard order).  Row order is
/// file-major, then record order within the file, which makes per-shard
/// and joined queries trivially comparable.
[[nodiscard]] TraceQueryResult RunTraceQuery(
    const std::vector<TraceShardFile>& files, const TraceQuery& query);

/// Renders matched slot records (one row per record).
TableBuilder TraceSlotsTable(const TraceQueryResult& result);

/// Renders matched day summaries (one row per node-day).
TableBuilder TraceDaysTable(const TraceQueryResult& result);

/// Renders one header row per file: shard, cells, record counts, drops.
TableBuilder TraceFilesTable(const std::vector<TraceShardFile>& files);

}  // namespace shep
