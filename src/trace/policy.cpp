#include "trace/policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace shep {

namespace {

/// Paints `trigger` over the window of `masks` centred on `center`,
/// clamped to the sequence bounds.
void PaintWindow(std::vector<std::uint32_t>& masks, std::size_t center,
                 std::uint32_t window, std::uint32_t trigger) {
  const std::size_t lo = center >= window ? center - window : 0;
  const std::size_t hi = std::min(masks.size() - 1, center + window);
  for (std::size_t i = lo; i <= hi; ++i) masks[i] |= trigger;
}

}  // namespace

void ApplyTracePolicy(const std::vector<TraceEvent>& events,
                      std::uint32_t slots_per_day,
                      const TracePolicyConfig& config,
                      std::vector<TraceRecord>& records,
                      std::vector<TraceDayRecord>& day_records) {
  SHEP_REQUIRE(slots_per_day > 0, "trace policy needs slots_per_day > 0");
  if (events.empty()) return;

  // Pass 1: find trigger slots and paint their persistence windows.
  std::vector<std::uint32_t> masks(events.size(), 0);
  // Nodes start with full storage, so the first slot can itself be a
  // downward low-water crossing.
  double prev_soc = 1.0;
  bool prev_outage = false;  // nodes boot healthy.
  std::uint32_t trailing_violations = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    SHEP_REQUIRE(e.kind == TraceEvent::Kind::kSlot,
                 "trace policy fed a non-slot event");
    SHEP_REQUIRE(i == 0 || events[i - 1].slot < e.slot,
                 "trace policy events must be ascending by slot");

    if (prev_soc >= config.soc_low_water && e.soc < config.soc_low_water) {
      PaintWindow(masks, i, config.window_slots, kTraceTriggerSocLowWater);
    }
    prev_soc = e.soc;

    // Injected-outage edges (both going dark and coming back) keep their
    // surrounding window at full detail: the slots just before an outage
    // and the post-recovery re-warm-up are exactly what a degradation
    // investigation needs.
    if (e.outage != prev_outage) {
      PaintWindow(masks, i, config.window_slots, kTraceTriggerOutage);
    }
    prev_outage = e.outage;

    // A dark node predicts nothing — its zeroed prediction is an outage
    // artifact, not predictor divergence.
    if (!e.outage && e.actual_w > kNightEpsilonW &&
        std::abs(e.predicted_w - e.actual_w) >
            config.divergence_mape * e.actual_w) {
      PaintWindow(masks, i, config.window_slots, kTraceTriggerDivergence);
    }

    if (e.violated) ++trailing_violations;
    if (i >= config.burst_window_slots &&
        events[i - config.burst_window_slots].violated) {
      --trailing_violations;
    }
    if (trailing_violations >= config.burst_violations) {
      PaintWindow(masks, i, config.window_slots, kTraceTriggerViolationBurst);
    }
  }

  // Pass 2: persisted slots become full-resolution records; the rest fold
  // into per-day summaries.  One flush per day boundary keeps the output
  // ordered day-major alongside the slot records.
  TraceDayRecord day;
  bool day_open = false;
  auto flush_day = [&] {
    if (day_open && day.slots > 0) day_records.push_back(day);
    day_open = false;
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (masks[i] != 0) {
      TraceRecord r;
      r.node = e.node;
      r.cell = e.cell;
      r.slot = e.slot;
      r.trigger_mask = masks[i];
      r.violated = e.violated;
      r.soc = e.soc;
      r.predicted_w = e.predicted_w;
      r.actual_w = e.actual_w;
      r.duty = e.duty;
      records.push_back(r);
      continue;
    }
    const std::uint32_t e_day = e.slot / slots_per_day;
    if (!day_open || day.day != e_day) {
      flush_day();
      day = TraceDayRecord{};
      day.node = e.node;
      day.cell = e.cell;
      day.day = e_day;
      day_open = true;
    }
    ++day.slots;
    if (e.violated) ++day.violations;
    day.min_soc = std::min(day.min_soc, e.soc);
    // Running mean keeps the summary exact in one pass.
    day.mean_duty += (e.duty - day.mean_duty) / day.slots;
    day.max_abs_error_w =
        std::max(day.max_abs_error_w, std::abs(e.predicted_w - e.actual_w));
  }
  flush_day();
}

}  // namespace shep
