// policy.hpp — selective persistence: which observed slots are worth
// keeping at full resolution.
//
// The policy walks one node's complete slot sequence and flags trigger
// slots — violation bursts, SoC low-water crossings, predictor-divergence
// spikes — then persists a full-resolution window of slots around each
// trigger (the slots that EXPLAIN the event, before and after).  Slots
// outside every window collapse into per-day TraceDayRecords, so the
// timeline stays gap-free at coarse resolution.
//
// ApplyPolicy is a pure function of (events, config): no clocks, no
// randomness, no global state.  The same node sequence always yields the
// same records, which is what makes per-shard trace files reproducible
// across thread counts and process boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "trace/ring_buffer.hpp"

namespace shep {

/// Tuning knobs for what counts as "interesting".  The defaults suit the
/// day-scale scenarios of the demos and tests; real deployments tune them
/// via FleetRunOptions' sink options.
struct TracePolicyConfig {
  /// Full-resolution slots kept on EACH side of a trigger slot.
  std::uint32_t window_slots = 6;
  /// SoC fraction whose downward crossing triggers a window.
  double soc_low_water = 0.15;
  /// Relative prediction error |predicted − actual| / actual above which a
  /// slot counts as a divergence spike (actual must be daylight — above
  /// the night epsilon — for the ratio to mean anything).
  double divergence_mape = 0.75;
  /// A burst is this many violations...
  std::uint32_t burst_violations = 3;
  /// ...inside a trailing window of this many slots.
  std::uint32_t burst_window_slots = 8;
};

/// Distills one node's in-order slot events into full-resolution records
/// (inside trigger windows) plus per-day summaries (everywhere else),
/// appending to `records` / `day_records`.  `events` must all be kSlot
/// events of a single node, ascending by slot; `slots_per_day` buckets the
/// summaries.
void ApplyTracePolicy(const std::vector<TraceEvent>& events,
                      std::uint32_t slots_per_day,
                      const TracePolicyConfig& config,
                      std::vector<TraceRecord>& records,
                      std::vector<TraceDayRecord>& day_records);

}  // namespace shep
