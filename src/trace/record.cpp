#include "trace/record.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace shep {

namespace {

constexpr std::uint32_t kAllTriggers =
    kTraceTriggerViolationBurst | kTraceTriggerSocLowWater |
    kTraceTriggerDivergence | kTraceTriggerOutage;

/// Reads a token already extracted as u64 and narrows it with a range
/// check — a 2^40 "slot" in a trace file is corruption, not data.
std::uint32_t ReadU32(std::istream& is) {
  const std::uint64_t value = serdes::ReadU64(is);
  SHEP_REQUIRE(value <= 0xFFFFFFFFull,
               "serialized value does not fit 32 bits: " +
                   std::to_string(value));
  return static_cast<std::uint32_t>(value);
}

bool ReadFlag(std::istream& is) {
  const std::uint64_t value = serdes::ReadU64(is);
  SHEP_REQUIRE(value <= 1, "serialized flag must be 0 or 1");
  return value == 1;
}

}  // namespace

const char* TraceTriggerName(TraceTrigger trigger) {
  switch (trigger) {
    case kTraceTriggerViolationBurst:
      return "violation-burst";
    case kTraceTriggerSocLowWater:
      return "soc-low-water";
    case kTraceTriggerDivergence:
      return "divergence";
    case kTraceTriggerOutage:
      return "outage";
  }
  return "unknown";
}

std::uint32_t TraceTriggerFromName(const std::string& name) {
  for (const TraceTrigger t :
       {kTraceTriggerViolationBurst, kTraceTriggerSocLowWater,
        kTraceTriggerDivergence, kTraceTriggerOutage}) {
    if (name == TraceTriggerName(t)) return t;
  }
  return 0;
}

std::string TraceTriggerMaskName(std::uint32_t mask) {
  std::string joined;
  for (const TraceTrigger t :
       {kTraceTriggerViolationBurst, kTraceTriggerSocLowWater,
        kTraceTriggerDivergence, kTraceTriggerOutage}) {
    if ((mask & t) == 0) continue;
    if (!joined.empty()) joined += '+';
    joined += TraceTriggerName(t);
  }
  return joined.empty() ? "-" : joined;
}

void TraceRecord::Serialize(std::ostream& os) const {
  os << "slot " << node << ' ' << cell << ' ' << slot << ' ' << trigger_mask
     << ' ' << (violated ? 1 : 0) << ' ';
  serdes::WriteDouble(os, soc);
  os << ' ';
  serdes::WriteDouble(os, predicted_w);
  os << ' ';
  serdes::WriteDouble(os, actual_w);
  os << ' ';
  serdes::WriteDouble(os, duty);
  os << '\n';
}

TraceRecord TraceRecord::Deserialize(std::istream& is) {
  serdes::ExpectToken(is, "slot");
  TraceRecord r;
  r.node = serdes::ReadU64(is);
  r.cell = serdes::ReadU64(is);
  r.slot = ReadU32(is);
  r.trigger_mask = ReadU32(is);
  SHEP_REQUIRE((r.trigger_mask & ~kAllTriggers) == 0,
               "trace record carries unknown trigger bits");
  r.violated = ReadFlag(is);
  r.soc = serdes::ReadDouble(is);
  r.predicted_w = serdes::ReadDouble(is);
  r.actual_w = serdes::ReadDouble(is);
  r.duty = serdes::ReadDouble(is);
  return r;
}

void TraceDayRecord::Serialize(std::ostream& os) const {
  os << "day " << node << ' ' << cell << ' ' << day << ' ' << slots << ' '
     << violations << ' ';
  serdes::WriteDouble(os, min_soc);
  os << ' ';
  serdes::WriteDouble(os, mean_duty);
  os << ' ';
  serdes::WriteDouble(os, max_abs_error_w);
  os << '\n';
}

TraceDayRecord TraceDayRecord::Deserialize(std::istream& is) {
  serdes::ExpectToken(is, "day");
  TraceDayRecord r;
  r.node = serdes::ReadU64(is);
  r.cell = serdes::ReadU64(is);
  r.day = ReadU32(is);
  r.slots = ReadU32(is);
  r.violations = ReadU32(is);
  SHEP_REQUIRE(r.violations <= r.slots,
               "day record counts more violations than slots");
  r.min_soc = serdes::ReadDouble(is);
  r.mean_duty = serdes::ReadDouble(is);
  r.max_abs_error_w = serdes::ReadDouble(is);
  return r;
}

}  // namespace shep
