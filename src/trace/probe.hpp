// probe.hpp — the hook the node-sim kernel calls once per slot when
// tracing is on.
//
// SimulateNodeKernel takes its probe as a template parameter guarded by
// `if constexpr (Probe::kEnabled)`: with the default NoSlotProbe
// (mgmt/node_sim_kernel.hpp) the call sites vanish at compile time and the
// kernel is bit-for-bit the untraced build.  NodeTraceProbe is the enabled
// flavour the fleet runner instantiates — it packages each slot into a
// TraceEvent and TryPushes it onto the worker's ring, counting refusals —
// or, when the sink opts into block_on_full, yielding until the drain
// makes room so the event stream stays complete.
#pragma once

#include <cstdint>
#include <thread>

#include "trace/ring_buffer.hpp"

namespace shep {

/// Enabled per-slot probe bound to one node of one shard.  operator() is
/// the entire hot-path cost of tracing: build a POD, two atomic loads, one
/// release store.
struct NodeTraceProbe {
  static constexpr bool kEnabled = true;

  TraceRing* ring = nullptr;
  std::uint64_t shard = 0;
  std::uint64_t node = 0;
  std::uint64_t cell = 0;
  /// Shard-local refusal counter (owned by the runner's shard loop); the
  /// total rides the shard-end marker into the trace file footer.
  std::uint64_t* dropped = nullptr;
  /// Mirrors TraceSinkOptions::block_on_full: wait for the drain instead
  /// of dropping.  The drain's idle sleep is bounded (drain_idle_micros),
  /// so the spin always resolves.
  bool block_on_full = false;

  void operator()(std::uint32_t slot, bool violated, double soc,
                  double predicted_w, double actual_w, double duty,
                  bool outage) const {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kSlot;
    event.violated = violated;
    event.outage = outage;
    event.slot = slot;
    event.shard = shard;
    event.node = node;
    event.cell = cell;
    event.soc = soc;
    event.predicted_w = predicted_w;
    event.actual_w = actual_w;
    event.duty = duty;
    if (ring->TryPush(event)) return;
    if (!block_on_full) {
      ++*dropped;
      return;
    }
    do {
      std::this_thread::yield();
    } while (!ring->TryPush(event));
  }
};

}  // namespace shep
