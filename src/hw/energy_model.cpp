#include "hw/energy_model.hpp"

#include "common/check.hpp"
#include "core/predictor.hpp"
#include "timeseries/slotting.hpp"

namespace shep {

WakeupOps MeasureWakeupOps(const WcmaParams& params, const PowerTrace& trace,
                           int slots_per_day) {
  FixedWcma predictor(params, slots_per_day);
  const SlotSeries series(trace, slots_per_day);

  // Warm-up length: the history must be full before we start averaging so
  // the counts reflect steady-state deployment behaviour.
  const std::size_t warmup_slots =
      static_cast<std::size_t>(params.days) * series.slots_per_day();
  SHEP_REQUIRE(series.size() > warmup_slots + series.slots_per_day(),
               "trace too short to reach predictor steady state");

  auto diff = [](const OpCounts& now, const OpCounts& then) {
    OpCounts d;
    d.add = now.add - then.add;
    d.mul = now.mul - then.mul;
    d.div = now.div - then.div;
    d.load = now.load - then.load;
    d.store = now.store - then.store;
    d.branch = now.branch - then.branch;
    return d;
  };
  // Weight that makes "most expensive wake-up" mean "most divisions, then
  // most memory traffic" — divisions dominate MSP430 runtime by an order
  // of magnitude, so no CycleCosts dependency is needed here.
  auto weight = [](const OpCounts& o) {
    return o.div * 1000 + o.mul * 10 + o.load + o.store + o.add + o.branch;
  };

  WakeupOps result;
  OpCounts window_start_observe;
  OpCounts window_start_predict;
  OpCounts prev_observe;
  OpCounts prev_predict;
  std::uint64_t best_weight = 0;
  for (std::size_t g = 0; g < series.size(); ++g) {
    if (g == warmup_slots) {
      window_start_observe = predictor.observe_ops();
      window_start_predict = predictor.predict_ops();
    }
    const OpCounts before_observe = predictor.observe_ops();
    const OpCounts before_predict = predictor.predict_ops();
    predictor.Observe(series.boundary(g));
    (void)predictor.PredictNext();
    if (g < warmup_slots) continue;
    ++result.wakeups;
    OpCounts this_wakeup = diff(predictor.observe_ops(), before_observe);
    this_wakeup += diff(predictor.predict_ops(), before_predict);
    // Exclude the day-rollover observe spike from "full work": it is
    // bookkeeping, not prediction, and it has no divisions anyway.
    if (series.slot_of(g) + 1 != series.slots_per_day() &&
        weight(this_wakeup) > best_weight) {
      best_weight = weight(this_wakeup);
      result.full_work = this_wakeup;
    }
    prev_observe = predictor.observe_ops();
    prev_predict = predictor.predict_ops();
  }
  SHEP_CHECK(result.wakeups > 0, "no steady-state wakeups measured");

  OpCounts total = diff(prev_observe, window_start_observe);
  total += diff(prev_predict, window_start_predict);
  result.average.add = total.add / result.wakeups;
  result.average.mul = total.mul / result.wakeups;
  result.average.div = total.div / result.wakeups;
  result.average.load = total.load / result.wakeups;
  result.average.store = total.store / result.wakeups;
  result.average.branch = total.branch / result.wakeups;
  return result;
}

ActivityEnergy ComputeActivityEnergy(const McuPowerSpec& spec,
                                     const CycleCosts& costs,
                                     const OpCounts& per_wakeup) {
  spec.Validate();
  costs.Validate();
  ActivityEnergy e;
  e.adc_sample_j = spec.AdcSampleEnergyJ();
  const double cycles = costs.Cycles(per_wakeup) + costs.wakeup_overhead;
  e.prediction_j = cycles * spec.ActiveCycleEnergyJ();
  e.sample_and_predict_j = e.adc_sample_j + e.prediction_j;
  return e;
}

DayBudget ComputeDayBudget(const McuPowerSpec& spec, const CycleCosts& costs,
                           const ActivityEnergy& activity, int slots_per_day,
                           const OpCounts& per_wakeup) {
  SHEP_REQUIRE(slots_per_day > 0, "slots per day must be positive");
  DayBudget b;
  b.slots_per_day = slots_per_day;
  const double n = static_cast<double>(slots_per_day);
  b.sampling_j = n * activity.adc_sample_j;
  b.prediction_j = n * activity.prediction_j;

  const double cycles = costs.Cycles(per_wakeup) + costs.wakeup_overhead;
  const double awake_per_slot_s =
      spec.vref_settle_s + spec.adc_conversion_s + cycles / spec.clock_hz;
  b.active_s = n * awake_per_slot_s;
  const double sleep_s =
      static_cast<double>(kSecondsPerDay) - b.active_s;
  SHEP_CHECK(sleep_s > 0.0, "management activity exceeds the day");
  b.sleep_j = sleep_s * spec.SleepPowerW();
  return b;
}

}  // namespace shep
