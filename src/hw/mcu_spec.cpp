#include "hw/mcu_spec.hpp"

#include "common/check.hpp"

namespace shep {

void McuPowerSpec::Validate() const {
  SHEP_REQUIRE(supply_v > 0.0, "supply voltage must be positive");
  SHEP_REQUIRE(clock_hz > 0.0, "clock frequency must be positive");
  SHEP_REQUIRE(active_current_a > 0.0, "active current must be positive");
  SHEP_REQUIRE(sleep_current_a >= 0.0, "sleep current must be non-negative");
  SHEP_REQUIRE(sleep_current_a < active_current_a,
               "sleep current must be below active current");
  SHEP_REQUIRE(vref_settle_s >= 0.0, "settle time must be non-negative");
  SHEP_REQUIRE(vref_current_a >= 0.0, "vref current must be non-negative");
  SHEP_REQUIRE(adc_conversion_s >= 0.0,
               "conversion time must be non-negative");
  SHEP_REQUIRE(adc_current_a >= 0.0, "ADC current must be non-negative");
}

void CycleCosts::Validate() const {
  SHEP_REQUIRE(add >= 0 && mul >= 0 && div >= 0 && load >= 0 && store >= 0 &&
                   branch >= 0 && wakeup_overhead >= 0,
               "cycle costs must be non-negative");
}

}  // namespace shep
