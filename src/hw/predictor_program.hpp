// predictor_program.hpp — the WCMA prediction routine compiled for MicroVm.
//
// Assembles Eq. 1/3/4/5 into MicroVm instructions the way an embedded
// implementation with a compile-time K would look: the Φ loop is unrolled,
// θ(k) comes from a constant table, the night guard is a compare+branch,
// and the α = 0 / α = 1 corners drop the unused term at "compile" time
// (this is the mechanism behind Table IV's cheaper (K=7, α=0) row).
// Executing the program yields both the prediction and its exact dynamic
// cycle cost under the platform's CycleCosts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/constants.hpp"
#include "hw/vm.hpp"

namespace shep {

/// Memory map and compile-time parameters of the routine.
struct WcmaProgramLayout {
  int slots_k = 3;      ///< K: conditioning slots (unrolled; >= 1).
  double alpha = 0.7;   ///< α baked into the instruction stream.

  /// Data memory addresses (word-indexed).
  static constexpr std::size_t kAddrSample = 0;   ///< ẽ(n), input.
  static constexpr std::size_t kAddrMuNext = 1;   ///< μ_D(n+1), input.
  static constexpr std::size_t kAddrEpsilon = 2;  ///< night guard, input.
  static constexpr std::size_t kAddrOutput = 3;   ///< ê(n+1), output.
  static constexpr std::size_t kAddrRecentBase = 4;  ///< K samples.

  std::size_t recent_mu_base() const {
    return kAddrRecentBase + static_cast<std::size_t>(slots_k);
  }
  std::size_t theta_base() const {
    return kAddrRecentBase + 2 * static_cast<std::size_t>(slots_k);
  }
  std::size_t memory_words() const {
    return kAddrRecentBase + 3 * static_cast<std::size_t>(slots_k);
  }

  /// Throws std::invalid_argument on bad parameters.
  void Validate() const;
};

/// Assembles the prediction routine for the layout.
std::vector<Instr> BuildWcmaPredictProgram(const WcmaProgramLayout& layout);

/// Inputs of one prediction (oldest-first windows of exactly K entries).
struct WcmaVmInputs {
  double sample = 0.0;                 ///< ẽ(n).
  double mu_next = 0.0;                ///< μ_D(n+1).
  std::vector<double> recent_samples;  ///< ẽ(n-K+1..n), oldest first.
  std::vector<double> recent_mus;      ///< μ_D at those slots.
};

/// Prediction + execution statistics of one VM run.
struct WcmaVmRun {
  double prediction = 0.0;
  VmResult vm;
};

/// Convenience: allocate a VM, poke inputs + θ table, run, read output.
WcmaVmRun RunWcmaOnVm(const WcmaProgramLayout& layout,
                      const WcmaVmInputs& inputs,
                      const CycleCosts& costs = {});

/// The same computation in plain double arithmetic; ground truth for the
/// VM tests.  The default night guard matches core/wcma.cpp (1 mW).
double ReferenceWcmaPrediction(const WcmaProgramLayout& layout,
                               const WcmaVmInputs& inputs,
                               double night_epsilon = kNightEpsilonW);

}  // namespace shep
