#include "hw/vm.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace shep {

std::string ToString(const Instr& instr) {
  std::ostringstream os;
  switch (instr.op) {
    case Op::kLoadImm:
      os << "loadi r" << instr.a << ", " << instr.imm;
      break;
    case Op::kLoad:
      os << "load  r" << instr.a << ", [" << instr.b << "]";
      break;
    case Op::kLoadIdx:
      os << "load  r" << instr.a << ", [" << instr.b << "+r" << instr.c << "]";
      break;
    case Op::kStore:
      os << "store [" << instr.b << "], r" << instr.a;
      break;
    case Op::kStoreIdx:
      os << "store [" << instr.b << "+r" << instr.c << "], r" << instr.a;
      break;
    case Op::kMov:
      os << "mov   r" << instr.a << ", r" << instr.b;
      break;
    case Op::kAdd:
      os << "add   r" << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kSub:
      os << "sub   r" << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kMul:
      os << "mul   r" << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kDiv:
      os << "div   r" << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kJmp:
      os << "jmp   " << instr.a;
      break;
    case Op::kJz:
      os << "jz    " << instr.a << ", r" << instr.b;
      break;
    case Op::kJgt:
      os << "jgt   " << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kJge:
      os << "jge   " << instr.a << ", r" << instr.b << ", r" << instr.c;
      break;
    case Op::kHalt:
      os << "halt";
      break;
  }
  return os.str();
}

MicroVm::MicroVm(std::size_t memory_words, const CycleCosts& costs)
    : memory_(memory_words, 0.0), costs_(costs) {
  SHEP_REQUIRE(memory_words > 0, "VM memory must be non-empty");
  costs_.Validate();
}

void MicroVm::Poke(std::size_t address, double value) {
  SHEP_REQUIRE(address < memory_.size(), "Poke address out of range");
  memory_[address] = value;
}

double MicroVm::Peek(std::size_t address) const {
  SHEP_REQUIRE(address < memory_.size(), "Peek address out of range");
  return memory_[address];
}

VmResult MicroVm::Run(const std::vector<Instr>& program,
                      std::uint64_t max_steps) {
  VmResult result;
  if (program.empty()) {
    result.trap = "empty program";
    return result;
  }
  double regs[kRegisters] = {};

  auto trap = [&](const std::string& why, std::size_t pc) {
    std::ostringstream os;
    os << why << " at pc=" << pc;
    if (pc < program.size()) os << " (" << ToString(program[pc]) << ")";
    result.trap = os.str();
    return result;
  };
  auto reg_ok = [](int r) { return r >= 0 && r < kRegisters; };

  std::size_t pc = 0;
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (pc >= program.size()) return trap("pc out of range", pc);
    const Instr& in = program[pc];
    ++result.instructions;
    switch (in.op) {
      case Op::kLoadImm:
        if (!reg_ok(in.a)) return trap("bad register", pc);
        regs[in.a] = in.imm;
        result.cycles += costs_.load;
        result.ops.load += 1;
        ++pc;
        break;
      case Op::kLoad: {
        if (!reg_ok(in.a)) return trap("bad register", pc);
        if (in.b < 0 || static_cast<std::size_t>(in.b) >= memory_.size())
          return trap("load address out of range", pc);
        regs[in.a] = memory_[static_cast<std::size_t>(in.b)];
        result.cycles += costs_.load;
        result.ops.load += 1;
        ++pc;
        break;
      }
      case Op::kLoadIdx: {
        if (!reg_ok(in.a) || !reg_ok(in.c)) return trap("bad register", pc);
        const double idx = regs[in.c];
        const long long address = in.b + static_cast<long long>(idx);
        if (address < 0 ||
            static_cast<std::size_t>(address) >= memory_.size())
          return trap("indexed load out of range", pc);
        regs[in.a] = memory_[static_cast<std::size_t>(address)];
        result.cycles += costs_.load;
        result.ops.load += 1;
        ++pc;
        break;
      }
      case Op::kStore: {
        if (!reg_ok(in.a)) return trap("bad register", pc);
        if (in.b < 0 || static_cast<std::size_t>(in.b) >= memory_.size())
          return trap("store address out of range", pc);
        memory_[static_cast<std::size_t>(in.b)] = regs[in.a];
        result.cycles += costs_.store;
        result.ops.store += 1;
        ++pc;
        break;
      }
      case Op::kStoreIdx: {
        if (!reg_ok(in.a) || !reg_ok(in.c)) return trap("bad register", pc);
        const long long address =
            in.b + static_cast<long long>(regs[in.c]);
        if (address < 0 ||
            static_cast<std::size_t>(address) >= memory_.size())
          return trap("indexed store out of range", pc);
        memory_[static_cast<std::size_t>(address)] = regs[in.a];
        result.cycles += costs_.store;
        result.ops.store += 1;
        ++pc;
        break;
      }
      case Op::kMov:
        if (!reg_ok(in.a) || !reg_ok(in.b)) return trap("bad register", pc);
        regs[in.a] = regs[in.b];
        result.cycles += costs_.add;  // register move ~ one ALU slot
        result.ops.add += 1;
        ++pc;
        break;
      case Op::kAdd:
      case Op::kSub: {
        if (!reg_ok(in.a) || !reg_ok(in.b) || !reg_ok(in.c))
          return trap("bad register", pc);
        regs[in.a] = in.op == Op::kAdd ? regs[in.b] + regs[in.c]
                                       : regs[in.b] - regs[in.c];
        result.cycles += costs_.add;
        result.ops.add += 1;
        ++pc;
        break;
      }
      case Op::kMul:
        if (!reg_ok(in.a) || !reg_ok(in.b) || !reg_ok(in.c))
          return trap("bad register", pc);
        regs[in.a] = regs[in.b] * regs[in.c];
        result.cycles += costs_.mul;
        result.ops.mul += 1;
        ++pc;
        break;
      case Op::kDiv:
        if (!reg_ok(in.a) || !reg_ok(in.b) || !reg_ok(in.c))
          return trap("bad register", pc);
        if (regs[in.c] == 0.0) return trap("division by zero", pc);
        regs[in.a] = regs[in.b] / regs[in.c];
        result.cycles += costs_.div;
        result.ops.div += 1;
        ++pc;
        break;
      case Op::kJmp:
        if (in.a < 0 || static_cast<std::size_t>(in.a) > program.size())
          return trap("jump target out of range", pc);
        result.cycles += costs_.branch;
        result.ops.branch += 1;
        pc = static_cast<std::size_t>(in.a);
        break;
      case Op::kJz:
      case Op::kJgt:
      case Op::kJge: {
        if (!reg_ok(in.b) || (in.op != Op::kJz && !reg_ok(in.c)))
          return trap("bad register", pc);
        if (in.a < 0 || static_cast<std::size_t>(in.a) > program.size())
          return trap("jump target out of range", pc);
        bool taken = false;
        if (in.op == Op::kJz) taken = regs[in.b] == 0.0;
        if (in.op == Op::kJgt) taken = regs[in.b] > regs[in.c];
        if (in.op == Op::kJge) taken = regs[in.b] >= regs[in.c];
        result.cycles += costs_.branch;
        result.ops.branch += 1;
        pc = taken ? static_cast<std::size_t>(in.a) : pc + 1;
        break;
      }
      case Op::kHalt:
        result.ok = true;
        return result;
    }
  }
  result.trap = "max steps exceeded";
  return result;
}

}  // namespace shep
