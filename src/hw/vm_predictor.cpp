#include "hw/vm_predictor.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/constants.hpp"
#include "hw/predictor_program.hpp"

namespace shep {

namespace {

/// Validation that must run BEFORE the init list sizes the history matrix
/// and the VM data memory from the parameters.
std::size_t ValidatedDays(const WcmaParams& params) {
  params.Validate();
  return static_cast<std::size_t>(params.days);
}

std::size_t CheckedSlots(int slots_per_day) {
  SHEP_REQUIRE(slots_per_day >= 2, "need at least two slots per day");
  return static_cast<std::size_t>(slots_per_day);
}

WcmaProgramLayout FullLayout(const WcmaParams& params) {
  WcmaProgramLayout layout;
  layout.slots_k = params.slots_k;
  layout.alpha = params.alpha;
  return layout;
}

}  // namespace

VmWcmaPredictor::VmWcmaPredictor(const WcmaParams& params, int slots_per_day,
                                 const CycleCosts& costs)
    : params_(params),
      slots_per_day_(slots_per_day),
      costs_(costs),
      history_(ValidatedDays(params), CheckedSlots(slots_per_day)),
      vm_(FullLayout(params).memory_words(), costs) {
  costs_.Validate();
  SHEP_REQUIRE(params_.slots_k < slots_per_day_,
               "K must be smaller than the number of slots per day");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  programs_.reserve(static_cast<std::size_t>(params_.slots_k));
  for (int k = 1; k <= params_.slots_k; ++k) {
    WcmaProgramLayout layout;
    layout.slots_k = k;
    layout.alpha = params_.alpha;
    programs_.push_back(BuildWcmaPredictProgram(layout));
  }
}

void VmWcmaPredictor::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  // Identical host bookkeeping to core/wcma.cpp: record the μ the routine
  // should condition this sample against as seen now, before today enters
  // the matrix.
  double mu = boundary_sample;  // neutral when no history yet (η = 1)
  if (history_.stored_days() > 0) mu = history_.Mu(next_slot_);
  recent_.push_back(RecentSlot{boundary_sample, mu});
  while (recent_.size() > static_cast<std::size_t>(params_.slots_k)) {
    recent_.pop_front();
  }

  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;

  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }
}

double VmWcmaPredictor::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  ++predict_calls_;

  if (history_.stored_days() == 0) {
    // Boot transient: no μ_D exists, the conditioned term degenerates to
    // persistence.  Runs on the host (zero cycles charged) with the exact
    // expression of core/wcma.cpp so the two backends stay bit-comparable.
    last_cycles_ = 0.0;
    return params_.alpha * last_sample_ +
           (1.0 - params_.alpha) * last_sample_;
  }

  const std::size_t k_avail = recent_.size();
  SHEP_DCHECK(k_avail >= 1, "recent window empty despite a sample");
  WcmaProgramLayout layout;
  layout.slots_k = static_cast<int>(k_avail);
  layout.alpha = params_.alpha;

  vm_.Poke(WcmaProgramLayout::kAddrSample, last_sample_);
  vm_.Poke(WcmaProgramLayout::kAddrMuNext, history_.Mu(next_slot_));
  vm_.Poke(WcmaProgramLayout::kAddrEpsilon, kNightEpsilonW);
  for (std::size_t i = 0; i < k_avail; ++i) {
    vm_.Poke(WcmaProgramLayout::kAddrRecentBase + i, recent_[i].sample);
    vm_.Poke(layout.recent_mu_base() + i, recent_[i].mu);
    vm_.Poke(layout.theta_base() + i,
             static_cast<double>(i + 1) / static_cast<double>(k_avail));
  }

  const VmResult run = vm_.Run(programs_[k_avail - 1]);
  SHEP_CHECK(run.ok, "WCMA VM routine trapped: " + run.trap);
  ++vm_runs_;
  last_cycles_ = run.cycles;
  total_cycles_ += run.cycles;
  total_ops_ += run.ops;
  return vm_.Peek(WcmaProgramLayout::kAddrOutput);
}

bool VmWcmaPredictor::Ready() const { return history_.full(); }

void VmWcmaPredictor::Reset() {
  history_ = HistoryMatrix(static_cast<std::size_t>(params_.days),
                           static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
  recent_.clear();
  total_cycles_ = 0.0;
  last_cycles_ = 0.0;
  total_ops_ = OpCounts{};
  predict_calls_ = 0;
  vm_runs_ = 0;
}

std::string VmWcmaPredictor::Name() const {
  std::ostringstream os;
  os << "VmWCMA(a=" << params_.alpha << ",D=" << params_.days
     << ",K=" << params_.slots_k << ")";
  return os.str();
}

PredictorComputeCost VmWcmaPredictor::ComputeCost() const {
  PredictorComputeCost cost;
  cost.cycles = total_cycles_;
  cost.ops = total_ops_.total();
  cost.predictions = predict_calls_;
  return cost;
}

}  // namespace shep
