// mcu_spec.hpp — electrical and timing model of the paper's test platform.
//
// The paper measures on an MSP-TS430PM64 board with a TI MSP430F1611 at
// 3 V / 5 MHz (Sec. IV-A) and reports per-activity energies in Table IV.
// We cannot attach a source meter to silicon here, so this header captures
// the platform as datasheet-class constants from which those energies are
// derived from first principles:
//
//   * one ADC sample costs mostly the 45 ms Vref settling wait of Fig. 5
//     (the conversion itself is microseconds) — ~55 µJ;
//   * the prediction code costs cycles × energy-per-active-cycle, with
//     cycle counts coming from core/FixedWcma op counts or from executing
//     the routine on hw/MicroVm;
//   * everything else is deep-sleep leakage (1.4 µA -> ~0.36 J/day).
//
// CycleCosts maps abstract operation counts to MSP430-flavoured cycles: the
// F1611 has a peripheral hardware multiplier (a multiply is a few writes +
// reads) but NO divider — division is a software loop, and it dominates the
// predictor's runtime, which is exactly why the paper's Table IV grows with
// K (each extra conditioning slot adds one η division).
#pragma once

#include <cstdint>

#include "core/wcma_fixed.hpp"

namespace shep {

/// Power/timing constants of the MCU platform.
struct McuPowerSpec {
  double supply_v = 3.0;
  double clock_hz = 5.0e6;
  /// Active-mode supply current at 3 V / 5 MHz.
  double active_current_a = 2.2e-3;
  /// Deep-sleep (LPM3, wake-up timer running) current — paper: 1.4 µA.
  double sleep_current_a = 1.4e-6;
  /// Internal voltage-reference settling time before a conversion (Fig. 5).
  double vref_settle_s = 45.0e-3;
  /// Supply current while waiting (sleep + Vref generator on).
  double vref_current_a = 0.4074e-3;
  /// ADC12 conversion time ("a few µs", Fig. 5).
  double adc_conversion_s = 4.0e-6;
  /// Supply current during the conversion itself.
  double adc_current_a = 1.1e-3;

  /// Energy of one active CPU cycle (V·I/f).
  double ActiveCycleEnergyJ() const {
    return supply_v * active_current_a / clock_hz;
  }

  /// Energy of one power sample: Vref settle + conversion (Table IV row 1,
  /// ~55 µJ).
  double AdcSampleEnergyJ() const {
    return supply_v * (vref_current_a * vref_settle_s +
                       adc_current_a * adc_conversion_s);
  }

  /// Deep-sleep power draw in watts.
  double SleepPowerW() const { return supply_v * sleep_current_a; }

  /// Throws std::invalid_argument on non-physical values.
  void Validate() const;
};

/// MSP430-flavoured cycle costs per abstract operation.
struct CycleCosts {
  double add = 3.0;     ///< 16-bit add/sub with a memory operand.
  double mul = 12.0;    ///< hardware multiplier: operand writes + result reads.
  double div = 560.0;   ///< software 32/32 long division loop.
  double load = 3.0;    ///< indexed data-memory read.
  double store = 4.0;   ///< indexed data-memory write.
  double branch = 2.0;  ///< compare + conditional jump.
  /// Fixed per-wake-up cost: ISR entry/exit, clock stabilisation, call
  /// frames of the sampling/prediction routine (Fig. 5 sequence glue).
  double wakeup_overhead = 500.0;

  /// Cycles for a counted region, excluding wakeup_overhead.
  double Cycles(const OpCounts& ops) const {
    return add * static_cast<double>(ops.add) +
           mul * static_cast<double>(ops.mul) +
           div * static_cast<double>(ops.div) +
           load * static_cast<double>(ops.load) +
           store * static_cast<double>(ops.store) +
           branch * static_cast<double>(ops.branch);
  }

  /// Throws std::invalid_argument on negative costs.
  void Validate() const;
};

}  // namespace shep
