#include "hw/costed_fixed.hpp"

namespace shep {

CostedFixedWcma::CostedFixedWcma(const WcmaParams& params, int slots_per_day,
                                 const CycleCosts& costs)
    : inner_(params, slots_per_day), costs_(costs) {
  costs_.Validate();
}

PredictorComputeCost CostedFixedWcma::ComputeCost() const {
  PredictorComputeCost cost;
  cost.cycles = costs_.Cycles(inner_.predict_ops());
  cost.ops = inner_.predict_ops().total();
  cost.predictions = inner_.predict_calls();
  return cost;
}

}  // namespace shep
