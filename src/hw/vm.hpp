// vm.hpp — MicroVm: a cycle-counted register machine in the MSP430's image.
//
// The paper measures the predictor's computation cost by running it on the
// real MSP430F1611.  Our substitute executes the same routine on a small
// virtual machine whose instruction set mirrors what the MSP430 toolchain
// would emit for fixed-point C code: register/memory moves, add/sub, a
// hardware-multiplier multiply, a SLOW software divide, compares and
// branches.  Each executed instruction is charged its CycleCosts price, so
// a program's cycle count — and through ActiveCycleEnergyJ() its energy —
// falls out of actually running the algorithm rather than from a hand
// estimate.  tests/test_vm.cpp pins the semantics; test_predictor_program
// cross-checks the VM-computed prediction against the double-precision
// WCMA formula.
//
// Values are doubles for semantic clarity (the cost model, not the bit
// width, is what we need from the VM); the fixed-point rounding story is
// covered separately by core/wcma_fixed.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/mcu_spec.hpp"

namespace shep {

/// MicroVm opcodes.  Three-address form: fields a, b, c are register
/// indices or memory addresses depending on the opcode.
enum class Op : std::uint8_t {
  kLoadImm,   ///< r[a] = imm
  kLoad,      ///< r[a] = mem[b]
  kLoadIdx,   ///< r[a] = mem[b + r[c]]
  kStore,     ///< mem[b] = r[a]
  kStoreIdx,  ///< mem[b + r[c]] = r[a]
  kMov,       ///< r[a] = r[b]
  kAdd,       ///< r[a] = r[b] + r[c]
  kSub,       ///< r[a] = r[b] - r[c]
  kMul,       ///< r[a] = r[b] * r[c]   (hardware multiplier)
  kDiv,       ///< r[a] = r[b] / r[c]   (software divide; traps on /0)
  kJmp,       ///< pc = a
  kJz,        ///< if (r[b] == 0) pc = a
  kJgt,       ///< if (r[b] >  r[c]) pc = a
  kJge,       ///< if (r[b] >= r[c]) pc = a
  kHalt,      ///< stop
};

/// One instruction.  `imm` is used by kLoadImm only.
struct Instr {
  Op op = Op::kHalt;
  int a = 0;
  int b = 0;
  int c = 0;
  double imm = 0.0;
};

/// Human-readable rendering for debugging/test failure messages.
std::string ToString(const Instr& instr);

/// Outcome of a program run.
struct VmResult {
  bool ok = false;
  std::string trap;              ///< non-empty when the VM trapped.
  double cycles = 0.0;           ///< cycle-cost sum of executed instructions.
  std::uint64_t instructions = 0;
  OpCounts ops;                  ///< dynamic op mix (for energy accounting).
};

/// The virtual machine.  Construct with a memory size, Poke inputs, Run a
/// program, Peek outputs.
class MicroVm {
 public:
  static constexpr int kRegisters = 16;

  /// \param memory_words  data memory size.
  /// \param costs         cycle prices per instruction class.
  explicit MicroVm(std::size_t memory_words, const CycleCosts& costs = {});

  void Poke(std::size_t address, double value);
  double Peek(std::size_t address) const;
  std::size_t memory_size() const { return memory_.size(); }

  /// Executes `program` from pc=0 until kHalt, a trap, or `max_steps`.
  /// Registers are zeroed at entry.  Memory persists across runs.
  VmResult Run(const std::vector<Instr>& program,
               std::uint64_t max_steps = 1'000'000);

 private:
  std::vector<double> memory_;
  CycleCosts costs_;
};

}  // namespace shep
