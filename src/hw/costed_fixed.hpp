// costed_fixed.hpp — the Q16.16 FixedWcma priced through a cycle table.
//
// core/FixedWcma counts every operation it performs but deliberately knows
// nothing about what an operation COSTS — the MSP430-flavoured cycle prices
// live here in hw (mcu_spec).  CostedFixedWcma composes the two: it
// forwards the Predictor contract to an inner FixedWcma unchanged (the
// prediction values are bit-identical to a bare FixedWcma) and implements
// ComputeCostReporter by mapping the predict-phase op counts through
// CycleCosts.  Only the predict phase is priced: that is the quantity the
// paper's Table IV reports and the one closest to VmWcmaPredictor, whose
// VM executes exactly the prediction routine.  The two figures are not
// identical by construction — the fixed build's predict phase includes the
// μ_D(n+1) lookup division, while the VM routine receives μ_D as an input
// word (its host computes the average) — so fixed reads roughly one
// software division higher per wake-up.  Day-rollover matrix maintenance
// is outside both figures; the full wake-up split stays available via
// inner().observe_ops().
#pragma once

#include <string>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "core/wcma_fixed.hpp"
#include "hw/mcu_spec.hpp"

namespace shep {

/// FixedWcma with its dynamic op counts priced as MCU cycles.
class CostedFixedWcma final : public Predictor, public ComputeCostReporter {
 public:
  CostedFixedWcma(const WcmaParams& params, int slots_per_day,
                  const CycleCosts& costs = {});

  void Observe(double boundary_sample) override { inner_.Observe(boundary_sample); }
  double PredictNext() const override { return inner_.PredictNext(); }
  bool Ready() const override { return inner_.Ready(); }
  void Reset() override { inner_.Reset(); }
  std::string Name() const override { return inner_.Name(); }

  /// Predict-phase totals since Reset(), priced through the cycle table.
  PredictorComputeCost ComputeCost() const override;

  /// The wrapped predictor, for the full per-phase op breakdown.
  const FixedWcma& inner() const { return inner_; }

 private:
  FixedWcma inner_;
  CycleCosts costs_;
};

}  // namespace shep
