// vm_predictor.hpp — WCMA deployed as the compiled MicroVm routine.
//
// VmWcmaPredictor closes the gap between the hw layer's per-call
// cross-checks (predictor_program) and a full deployment: it implements the
// streaming Predictor contract, but every steady-state PredictNext()
// actually EXECUTES the compiled WCMA routine on the cycle-counted MicroVm
// instead of evaluating Eq. 1 in C++.  The host side plays the part of the
// firmware around the routine — it maintains the D×N history matrix and the
// K-slot recent window (exactly as core/Wcma does), pokes the routine's
// inputs into VM data memory each wake-up, and reads the prediction back —
// while the arithmetic that the paper's Table IV prices runs instruction by
// instruction on the VM, accumulating exact cycle and operation counts.
//
// Because the routine performs the same double-precision operations in the
// same order as core/Wcma::PredictNext, the VM-backed predictions track the
// float reference to within FMA-contraction noise (ulps); the fleet parity
// harness (fleet/parity, tests/test_backend_parity) pins that bound.
//
// Warm-up corners mirror core/wcma.cpp: with fewer than K elapsed slots the
// routine compiled for the available window size runs (θ ramps over
// k_avail), and before any full day exists the prediction degenerates to
// persistence on the host with zero cycles charged — the VM models the
// deployed steady-state routine, not the boot transient.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "core/wcma_fixed.hpp"
#include "hw/mcu_spec.hpp"
#include "hw/vm.hpp"
#include "timeseries/history.hpp"

namespace shep {

/// WCMA whose prediction arithmetic runs on the MicroVm, with per-call
/// cycle/op accounting.
class VmWcmaPredictor final : public Predictor, public ComputeCostReporter {
 public:
  VmWcmaPredictor(const WcmaParams& params, int slots_per_day,
                  const CycleCosts& costs = {});

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  /// Cycle/op totals of every VM-executed prediction since Reset().
  PredictorComputeCost ComputeCost() const override;

  /// Cycles of the most recent PredictNext() (0 for the warm-up fallback).
  double last_cycles() const { return last_cycles_; }

  /// Dynamic op mix summed over all VM runs since Reset().
  const OpCounts& total_ops() const { return total_ops_; }

  std::uint64_t predict_calls() const { return predict_calls_; }
  /// PredictNext() calls that actually executed the routine on the VM.
  std::uint64_t vm_runs() const { return vm_runs_; }

  const WcmaParams& params() const { return params_; }

 private:
  /// One elapsed slot of the current day: the measured sample and the μ_D
  /// that was current when it was measured (same bookkeeping as core/Wcma).
  struct RecentSlot {
    double sample;
    double mu;
  };

  WcmaParams params_;
  int slots_per_day_;
  CycleCosts costs_;

  HistoryMatrix history_;
  std::vector<double> current_day_;
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;
  std::deque<RecentSlot> recent_;

  /// Routine compiled once per available window size (index k_avail - 1);
  /// warm-up runs the shorter-window builds, steady state programs_[K-1].
  std::vector<std::vector<Instr>> programs_;
  /// Sized for the K-slot layout (the largest); shorter-window layouts use
  /// a prefix of the same data memory.  mutable: PredictNext() is logically
  /// const but must poke inputs and run the machine.
  mutable MicroVm vm_;

  mutable double total_cycles_ = 0.0;
  mutable double last_cycles_ = 0.0;
  mutable OpCounts total_ops_;
  mutable std::uint64_t predict_calls_ = 0;
  mutable std::uint64_t vm_runs_ = 0;
};

}  // namespace shep
