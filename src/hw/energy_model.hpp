// energy_model.hpp — per-activity and per-day energy accounting (Table IV,
// Fig. 6).
//
// Combines the platform constants (mcu_spec.hpp) with measured operation
// counts of the fixed-point predictor to reproduce the paper's hardware
// numbers: energy per ADC sample, per sample+prediction at a parameter
// configuration, per-day totals at a sampling rate N, and the prediction
// activity's overhead as a percentage of the daily sleep energy.
#pragma once

#include <vector>

#include "core/wcma_fixed.hpp"
#include "hw/mcu_spec.hpp"
#include "timeseries/trace.hpp"

namespace shep {

/// Steady-state operation counts of one wake-up (Observe + PredictNext).
///
/// Two views matter:
///  * `average`: mean over all steady-state wake-ups, day-rollover
///    bookkeeping amortised in.  Night predictions skip the η divisions
///    (the guard short-circuits), so this is the right number for PER-DAY
///    energy totals (Fig. 6).
///  * `full_work`: the most division-heavy wake-up observed — a mid-day
///    prediction with all K conditioning slots lit.  This corresponds to
///    what a bench measurement of "the prediction algorithm" captures and
///    is what Table IV's per-activity rows report.
struct WakeupOps {
  OpCounts average;
  OpCounts full_work;
  std::uint64_t wakeups = 0;  ///< wake-ups measured.
};

/// Runs the fixed-point predictor over `trace` at N slots/day and collects
/// the steady-state wake-up statistics (slots after the history matrix is
/// full).
WakeupOps MeasureWakeupOps(const WcmaParams& params, const PowerTrace& trace,
                           int slots_per_day);

/// Per-activity energies (the rows of Table IV).
struct ActivityEnergy {
  double adc_sample_j = 0.0;        ///< one power sample (~55 µJ).
  double prediction_j = 0.0;        ///< one prediction computation.
  double sample_and_predict_j = 0.0;///< one full wake-up.
};

/// Energy of one wake-up at the given operation counts.
ActivityEnergy ComputeActivityEnergy(const McuPowerSpec& spec,
                                     const CycleCosts& costs,
                                     const OpCounts& per_wakeup);

/// Per-day energy budget at sampling rate N (Fig. 6's input).
struct DayBudget {
  int slots_per_day = 0;
  double sampling_j = 0.0;    ///< N × ADC sample energy.
  double prediction_j = 0.0;  ///< N × prediction energy.
  double sleep_j = 0.0;       ///< deep-sleep leakage for the rest of the day.
  double active_s = 0.0;      ///< seconds/day not in deep sleep.

  double management_j() const { return sampling_j + prediction_j; }
  /// Prediction-activity overhead relative to sleep energy (Fig. 6).
  double OverheadPercent() const {
    return sleep_j > 0.0 ? 100.0 * management_j() / sleep_j : 0.0;
  }
};

/// Builds the day budget for N wake-ups of the given activity energy.
DayBudget ComputeDayBudget(const McuPowerSpec& spec, const CycleCosts& costs,
                           const ActivityEnergy& activity, int slots_per_day,
                           const OpCounts& per_wakeup);

}  // namespace shep
