#include "hw/predictor_program.hpp"

#include <cmath>

#include "common/check.hpp"

namespace shep {

void WcmaProgramLayout::Validate() const {
  SHEP_REQUIRE(slots_k >= 1, "K must be >= 1");
  SHEP_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
}

std::vector<Instr> BuildWcmaPredictProgram(const WcmaProgramLayout& layout) {
  layout.Validate();
  const int k_total = layout.slots_k;
  const bool alpha_zero = layout.alpha == 0.0;
  const bool alpha_one = layout.alpha == 1.0;

  // Register allocation:
  //   r0 num, r1 den, r2 sample, r3 mu, r4 eta/scratch, r5 theta,
  //   r6 epsilon, r7 accumulator/result, r8 constant 1.0.
  std::vector<Instr> p;
  auto emit = [&p](Op op, int a = 0, int b = 0, int c = 0, double imm = 0.0) {
    p.push_back(Instr{op, a, b, c, imm});
    return static_cast<int>(p.size()) - 1;
  };

  if (alpha_one) {
    // ê = ẽ(n): no conditioning at all.
    emit(Op::kLoad, 7, static_cast<int>(WcmaProgramLayout::kAddrSample));
    emit(Op::kStore, 7, static_cast<int>(WcmaProgramLayout::kAddrOutput));
    emit(Op::kHalt);
    return p;
  }

  emit(Op::kLoadImm, 0, 0, 0, 0.0);  // num = 0
  emit(Op::kLoadImm, 1, 0, 0, 0.0);  // den = 0
  emit(Op::kLoadImm, 8, 0, 0, 1.0);  // const 1
  emit(Op::kLoad, 6, static_cast<int>(WcmaProgramLayout::kAddrEpsilon));

  for (int k = 0; k < k_total; ++k) {
    const int addr_sample =
        static_cast<int>(WcmaProgramLayout::kAddrRecentBase) + k;
    const int addr_mu = static_cast<int>(layout.recent_mu_base()) + k;
    const int addr_theta = static_cast<int>(layout.theta_base()) + k;

    emit(Op::kLoad, 2, addr_sample);
    emit(Op::kLoad, 3, addr_mu);
    // if (mu > eps) goto ratio; eta = 1; goto accumulate;
    const int jgt_at = emit(Op::kJgt, /*target=*/0, 3, 6);
    emit(Op::kMov, 4, 8);                  // eta = 1
    const int jmp_at = emit(Op::kJmp, 0);  // goto accumulate
    p[static_cast<std::size_t>(jgt_at)].a = static_cast<int>(p.size());
    emit(Op::kDiv, 4, 2, 3);               // eta = sample / mu
    p[static_cast<std::size_t>(jmp_at)].a = static_cast<int>(p.size());
    emit(Op::kLoad, 5, addr_theta);
    emit(Op::kMul, 4, 5, 4);               // theta * eta
    emit(Op::kAdd, 0, 0, 4);               // num += ...
    emit(Op::kAdd, 1, 1, 5);               // den += theta
  }

  emit(Op::kDiv, 7, 0, 1);  // phi = num / den
  emit(Op::kLoad, 2, static_cast<int>(WcmaProgramLayout::kAddrMuNext));
  emit(Op::kMul, 7, 7, 2);  // conditioned = mu_next * phi

  if (!alpha_zero) {
    emit(Op::kLoadImm, 4, 0, 0, layout.alpha);
    emit(Op::kLoad, 5, static_cast<int>(WcmaProgramLayout::kAddrSample));
    emit(Op::kMul, 5, 4, 5);  // alpha * sample
    emit(Op::kLoadImm, 4, 0, 0, 1.0 - layout.alpha);
    emit(Op::kMul, 7, 4, 7);  // (1-alpha) * conditioned
    emit(Op::kAdd, 7, 7, 5);
  }
  emit(Op::kStore, 7, static_cast<int>(WcmaProgramLayout::kAddrOutput));
  emit(Op::kHalt);
  return p;
}

WcmaVmRun RunWcmaOnVm(const WcmaProgramLayout& layout,
                      const WcmaVmInputs& inputs, const CycleCosts& costs) {
  layout.Validate();
  const auto k = static_cast<std::size_t>(layout.slots_k);
  SHEP_REQUIRE(inputs.recent_samples.size() == k,
               "recent_samples must contain exactly K entries");
  SHEP_REQUIRE(inputs.recent_mus.size() == k,
               "recent_mus must contain exactly K entries");

  MicroVm vm(layout.memory_words(), costs);
  vm.Poke(WcmaProgramLayout::kAddrSample, inputs.sample);
  vm.Poke(WcmaProgramLayout::kAddrMuNext, inputs.mu_next);
  vm.Poke(WcmaProgramLayout::kAddrEpsilon, kNightEpsilonW);
  for (std::size_t i = 0; i < k; ++i) {
    vm.Poke(WcmaProgramLayout::kAddrRecentBase + i, inputs.recent_samples[i]);
    vm.Poke(layout.recent_mu_base() + i, inputs.recent_mus[i]);
    vm.Poke(layout.theta_base() + i,
            static_cast<double>(i + 1) / static_cast<double>(k));
  }

  WcmaVmRun run;
  run.vm = vm.Run(BuildWcmaPredictProgram(layout));
  if (run.vm.ok) run.prediction = vm.Peek(WcmaProgramLayout::kAddrOutput);
  return run;
}

double ReferenceWcmaPrediction(const WcmaProgramLayout& layout,
                               const WcmaVmInputs& inputs,
                               double night_epsilon) {
  layout.Validate();
  const auto k = static_cast<std::size_t>(layout.slots_k);
  SHEP_REQUIRE(inputs.recent_samples.size() == k &&
                   inputs.recent_mus.size() == k,
               "input windows must contain exactly K entries");
  if (layout.alpha == 1.0) return inputs.sample;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double theta =
        static_cast<double>(i + 1) / static_cast<double>(k);
    const double eta = inputs.recent_mus[i] > night_epsilon
                           ? inputs.recent_samples[i] / inputs.recent_mus[i]
                           : 1.0;
    num += theta * eta;
    den += theta;
  }
  const double conditioned = inputs.mu_next * (num / den);
  return layout.alpha * inputs.sample + (1.0 - layout.alpha) * conditioned;
}

}  // namespace shep
