// history.hpp — the E_{D×N} matrix of past days' slot samples (paper Fig. 3).
//
// The prediction algorithm keeps the boundary samples of the last D days in a
// D×N matrix and uses the per-slot column averages μ_D(j) (Eq. 2).  On the
// target microcontroller this matrix is the predictor's dominant memory cost
// (D*N 16-bit words), which is why the paper's guideline "D ≈ 10–11 suffices"
// matters.  HistoryMatrix is a day-granular ring buffer: pushing day D+1
// evicts the oldest day in O(N).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace shep {

/// Ring buffer of the last `capacity_days` days of per-slot samples.
class HistoryMatrix {
 public:
  /// \param capacity_days  D: how many past days are retained (>= 1).
  /// \param slots_per_day  N: slots per day (>= 1).
  HistoryMatrix(std::size_t capacity_days, std::size_t slots_per_day);

  std::size_t capacity_days() const { return capacity_; }
  std::size_t slots_per_day() const { return slots_; }

  /// Number of days currently stored (saturates at capacity).
  std::size_t stored_days() const { return stored_; }

  /// True once `capacity_days` days have been pushed; μ over the full window
  /// is only meaningful then (the paper starts evaluation at day 21 so that
  /// the matrix is full for D = 20).
  bool full() const { return stored_ == capacity_; }

  /// Appends a completed day's slot samples (size must equal N), evicting
  /// the oldest day when at capacity.
  void PushDay(std::span<const double> day_samples);

  /// Convenience overload for literal days (tests, small examples).
  void PushDay(std::initializer_list<double> day_samples) {
    PushDay(std::span<const double>(day_samples.begin(),
                                    day_samples.size()));
  }

  /// Sample of slot `slot` on the `age`-th most recent day (age 0 = the most
  /// recently pushed day).  Requires age < stored_days().
  double at_age(std::size_t age, std::size_t slot) const;

  /// μ_D(slot): average of the slot's samples over the most recent
  /// min(window_days, stored) days (Eq. 2).  Requires stored_days() > 0 and
  /// 1 <= window_days <= capacity.
  double Mu(std::size_t slot, std::size_t window_days) const;

  /// μ over the full capacity window (the common case in the predictor).
  double Mu(std::size_t slot) const { return Mu(slot, capacity_); }

  /// Per-slot running sums over all stored days (used by tests).
  std::vector<double> ColumnSums() const;

  /// Memory footprint of the sample storage in 16-bit words — the quantity
  /// the paper's parameter guideline targets ("conserving samples storage
  /// memory requirement").
  std::size_t FootprintWords() const { return capacity_ * slots_; }

 private:
  std::size_t capacity_;
  std::size_t slots_;
  std::size_t stored_ = 0;
  std::size_t next_row_ = 0;          // ring-buffer write position
  std::vector<double> data_;          // capacity x slots, row-major
};

}  // namespace shep
