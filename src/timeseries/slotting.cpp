#include "timeseries/slotting.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace shep {

SlotGrid SlotGrid::Make(const PowerTrace& trace, int slots_per_day) {
  SHEP_REQUIRE(slots_per_day > 0, "slots per day must be positive");
  SHEP_REQUIRE(kSecondsPerDay % slots_per_day == 0,
               "slot count must divide one day");
  SlotGrid grid;
  grid.slots_per_day = slots_per_day;
  grid.slot_seconds = kSecondsPerDay / slots_per_day;
  SHEP_REQUIRE(grid.slot_seconds % trace.resolution_s() == 0,
               "slot length must be a multiple of the trace resolution");
  grid.samples_per_slot = grid.slot_seconds / trace.resolution_s();
  return grid;
}

SlotSeries::SlotSeries(const PowerTrace& trace, int slots_per_day)
    : grid_(SlotGrid::Make(trace, slots_per_day)), days_(trace.days()) {
  const auto n = static_cast<std::size_t>(grid_.slots_per_day);
  const auto m = static_cast<std::size_t>(grid_.samples_per_slot);
  boundary_.resize(days_ * n);
  mean_.resize(days_ * n);
  const auto samples = trace.samples();
  for (std::size_t day = 0; day < days_; ++day) {
    const std::size_t day_base = day * trace.samples_per_day();
    for (std::size_t slot = 0; slot < n; ++slot) {
      const std::size_t first = day_base + slot * m;
      boundary_[day * n + slot] = samples[first];
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += samples[first + i];
      mean_[day * n + slot] = acc / static_cast<double>(m);
    }
  }
  peak_mean_ =
      mean_.empty() ? 0.0 : *std::max_element(mean_.begin(), mean_.end());
}

std::span<const double> SlotSeries::day_boundaries(std::size_t day) const {
  SHEP_REQUIRE(day < days_, "day index out of range");
  return std::span<const double>(boundary_).subspan(day * slots_per_day(),
                                                    slots_per_day());
}

std::span<const double> SlotSeries::day_means(std::size_t day) const {
  SHEP_REQUIRE(day < days_, "day index out of range");
  return std::span<const double>(mean_).subspan(day * slots_per_day(),
                                                slots_per_day());
}

std::size_t SlotSeries::global_index(std::size_t day, std::size_t slot) const {
  SHEP_REQUIRE(day < days_, "day index out of range");
  SHEP_REQUIRE(slot < slots_per_day(), "slot index out of range");
  return day * slots_per_day() + slot;
}

}  // namespace shep
