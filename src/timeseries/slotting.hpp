// slotting.hpp — day discretization into N prediction slots (paper Sec. II).
//
// For energy management the day is discretized into N equal-duration slots;
// power is sampled once per slot (at the slot start boundary) and the slot
// length T = 86400/N seconds is the prediction horizon.  Each slot contains
// M = samples_per_day/N raw trace samples (paper Fig. 4).  Two per-slot
// quantities matter:
//
//  * boundary sample e(n):  the instantaneous power at the start of slot n —
//    this is the only value the deployed predictor ever sees (one ADC read
//    per slot), and the value used by the paper's MAPE' error (Eq. 6).
//  * interval mean  e̅(n):  the mean of the M samples inside slot n — the
//    slot's actual received energy is e̅(n)*T, so the paper's proposed MAPE
//    (Eq. 7/8) compares predictions against this.
//
// SlotSeries precomputes both for every slot of a trace so that sweeps over
// predictor parameters never touch the raw samples again.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "timeseries/trace.hpp"

namespace shep {

/// Slot counts evaluated by the paper (Table III).
inline constexpr int kPaperSlotCounts[] = {288, 96, 72, 48, 24};

/// Geometry of the N-slot discretization of one day for a given trace
/// resolution.
struct SlotGrid {
  int slots_per_day = 0;     ///< N
  int samples_per_slot = 0;  ///< M
  int slot_seconds = 0;      ///< T = 86400/N

  /// Builds the grid; requires N > 0, N dividing the day, and the trace
  /// resolution dividing the slot length (M >= 1).
  static SlotGrid Make(const PowerTrace& trace, int slots_per_day);

  /// True when the discretization is representable for this trace, i.e. the
  /// slot length is a multiple of the trace resolution.  N=288 on a 5-minute
  /// trace yields M=1 and is flagged degenerate (paper Table III footnote:
  /// "N=288 is not defined" for the 5-minute data sets, because the slot
  /// mean and the boundary sample coincide).
  bool degenerate() const { return samples_per_slot == 1; }
};

/// Per-slot view of a whole trace: boundary samples and interval means,
/// flattened day-major (global slot index g = day*N + slot).
class SlotSeries {
 public:
  /// Discretizes `trace` into `slots_per_day` slots.
  SlotSeries(const PowerTrace& trace, int slots_per_day);

  const SlotGrid& grid() const { return grid_; }
  std::size_t days() const { return days_; }

  /// Total number of slots = days * N.
  std::size_t size() const { return boundary_.size(); }

  /// Boundary sample e(g) of global slot g.
  double boundary(std::size_t g) const { return boundary_[g]; }

  /// Interval mean e̅(g) of global slot g.
  double mean(std::size_t g) const { return mean_[g]; }

  /// Energy received during global slot g, in joules (= mean * T).
  double slot_energy_j(std::size_t g) const {
    return mean_[g] * static_cast<double>(grid_.slot_seconds);
  }

  /// All boundary samples, day-major.
  std::span<const double> boundaries() const { return boundary_; }

  /// All interval means, day-major.
  std::span<const double> means() const { return mean_; }

  /// Boundary samples of one day.
  std::span<const double> day_boundaries(std::size_t day) const;

  /// Interval means of one day.
  std::span<const double> day_means(std::size_t day) const;

  /// Maximum interval mean over the whole series — the "peak" against which
  /// the paper's 10 % region-of-interest threshold is applied.
  double peak_mean() const { return peak_mean_; }

  /// Global slot index for (day, slot-of-day).
  std::size_t global_index(std::size_t day, std::size_t slot) const;

  /// Day of a global slot index.
  std::size_t day_of(std::size_t g) const { return g / slots_per_day(); }

  /// Slot-of-day of a global slot index.
  std::size_t slot_of(std::size_t g) const { return g % slots_per_day(); }

  std::size_t slots_per_day() const {
    return static_cast<std::size_t>(grid_.slots_per_day);
  }

 private:
  SlotGrid grid_;
  std::size_t days_;
  std::vector<double> boundary_;
  std::vector<double> mean_;
  double peak_mean_;
};

}  // namespace shep
