#include "timeseries/quality.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace shep {

namespace {

bool IsGapValue(double v, const QualityOptions& options) {
  return !std::isfinite(v) || v <= options.sentinel_threshold || v < 0.0;
}

/// Marks gap samples and stuck-run tails; returns the gap mask.
std::vector<bool> BuildGapMask(const std::vector<double>& samples,
                               const QualityOptions& options,
                               QualityReport& report) {
  std::vector<bool> gap(samples.size(), false);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (IsGapValue(samples[i], options)) {
      gap[i] = true;
      ++report.gaps;
    }
  }
  // Stuck-sensor runs: identical positive values repeated implausibly long.
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= samples.size(); ++i) {
    const bool same = i < samples.size() && !gap[i] && !gap[run_start] &&
                      samples[i] == samples[run_start] &&
                      samples[run_start] > 0.0;
    if (!same) {
      const std::size_t run_len = i - run_start;
      if (!gap[run_start] && samples[run_start] > 0.0 &&
          run_len >= options.stuck_run_length) {
        ++report.stuck_runs;
        for (std::size_t j = run_start + 1; j < i; ++j) gap[j] = true;
      }
      run_start = i;
    }
  }
  return gap;
}

}  // namespace

QualityReport ScreenSamples(const std::vector<double>& samples,
                            int resolution_s,
                            const QualityOptions& options) {
  SHEP_REQUIRE(resolution_s > 0, "resolution must be positive");
  QualityReport report;
  report.samples = samples.size();
  const auto gap = BuildGapMask(samples, options, report);
  std::size_t longest = 0;
  std::size_t current = 0;
  for (bool g : gap) {
    current = g ? current + 1 : 0;
    longest = std::max(longest, current);
  }
  report.max_gap_minutes =
      static_cast<double>(longest) * resolution_s / 60.0;
  return report;
}

QualityReport RepairSamples(std::vector<double>& samples, int resolution_s,
                            const QualityOptions& options) {
  SHEP_REQUIRE(resolution_s > 0, "resolution must be positive");
  SHEP_REQUIRE(kSecondsPerDay % resolution_s == 0,
               "resolution must divide one day");
  QualityReport report;
  report.samples = samples.size();
  auto gap = BuildGapMask(samples, options, report);
  const std::size_t per_day =
      static_cast<std::size_t>(kSecondsPerDay / resolution_s);

  std::size_t i = 0;
  std::size_t longest = 0;
  while (i < samples.size()) {
    if (!gap[i]) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < samples.size() && gap[end]) ++end;
    const std::size_t len = end - i;
    longest = std::max(longest, len);

    const bool has_left = i > 0;
    const bool has_right = end < samples.size();
    if (len <= options.interpolate_up_to && has_left && has_right) {
      // Short gap: linear interpolation between the bracketing samples.
      const double left = samples[i - 1];
      const double right = samples[end];
      for (std::size_t j = 0; j < len; ++j) {
        const double t =
            static_cast<double>(j + 1) / static_cast<double>(len + 1);
        samples[i + j] = std::max(0.0, left + (right - left) * t);
      }
    } else {
      // Long/edge gap: borrow the same slots from the previous day, else
      // the next day, else zero.
      for (std::size_t j = i; j < end; ++j) {
        double value = 0.0;
        if (j >= per_day && !gap[j - per_day]) {
          value = samples[j - per_day];
        } else if (j + per_day < samples.size() && !gap[j + per_day]) {
          value = samples[j + per_day];
        }
        samples[j] = std::max(0.0, value);
      }
    }
    report.repaired += len;
    i = end;
  }
  report.max_gap_minutes =
      static_cast<double>(longest) * resolution_s / 60.0;

  // Final guarantee: PowerTrace-acceptable.
  for (double& v : samples) {
    if (!std::isfinite(v) || v < 0.0) {
      v = 0.0;
    }
  }
  return report;
}

PowerTrace RepairedTrace(const std::string& name,
                         std::vector<double> samples, int resolution_s,
                         QualityReport* report,
                         const QualityOptions& options) {
  auto r = RepairSamples(samples, resolution_s, options);
  if (report != nullptr) *report = r;
  return PowerTrace(name, std::move(samples), resolution_s);
}

}  // namespace shep
