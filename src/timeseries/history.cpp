#include "timeseries/history.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace shep {

HistoryMatrix::HistoryMatrix(std::size_t capacity_days,
                             std::size_t slots_per_day)
    : capacity_(capacity_days), slots_(slots_per_day) {
  SHEP_REQUIRE(capacity_ >= 1, "history capacity must be at least one day");
  SHEP_REQUIRE(slots_ >= 1, "history needs at least one slot per day");
  data_.assign(capacity_ * slots_, 0.0);
}

void HistoryMatrix::PushDay(std::span<const double> day_samples) {
  SHEP_REQUIRE(day_samples.size() == slots_,
               "day must contain exactly N slot samples");
  std::copy(day_samples.begin(), day_samples.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(next_row_ * slots_));
  next_row_ = (next_row_ + 1) % capacity_;
  stored_ = std::min(stored_ + 1, capacity_);
}

double HistoryMatrix::at_age(std::size_t age, std::size_t slot) const {
  SHEP_REQUIRE(age < stored_, "history age out of range");
  SHEP_REQUIRE(slot < slots_, "slot index out of range");
  // next_row_ points at the oldest row once full (and at the next free row
  // before that); the most recent row is one behind it.
  const std::size_t newest =
      (next_row_ + capacity_ - 1) % capacity_;
  const std::size_t row = (newest + capacity_ - age) % capacity_;
  return data_[row * slots_ + slot];
}

double HistoryMatrix::Mu(std::size_t slot, std::size_t window_days) const {
  SHEP_REQUIRE(stored_ > 0, "history is empty");
  SHEP_REQUIRE(window_days >= 1 && window_days <= capacity_,
               "window must be within capacity");
  const std::size_t w = std::min(window_days, stored_);
  double acc = 0.0;
  for (std::size_t age = 0; age < w; ++age) acc += at_age(age, slot);
  return acc / static_cast<double>(w);
}

std::vector<double> HistoryMatrix::ColumnSums() const {
  std::vector<double> sums(slots_, 0.0);
  for (std::size_t age = 0; age < stored_; ++age) {
    for (std::size_t slot = 0; slot < slots_; ++slot) {
      sums[slot] += at_age(age, slot);
    }
  }
  return sums;
}

}  // namespace shep
