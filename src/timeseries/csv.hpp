// csv.hpp — CSV import/export for power traces.
//
// The paper uses NREL MIDC exports.  This loader accepts the common MIDC
// shape — optional header line(s), one sample per row, with the power value
// in a chosen column — as well as the single-column format written by
// SaveCsv, so real measurement data can replace the synthetic substitute
// without code changes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "timeseries/trace.hpp"

namespace shep {

/// Options controlling CSV parsing.
struct CsvOptions {
  char separator = ',';
  int value_column = 0;        ///< 0-based column holding the power sample.
  bool skip_header = true;     ///< ignore the first non-empty line.
  bool clamp_negative = true;  ///< MIDC night values can be slightly
                               ///< negative (sensor offset); clamp to 0.
};

/// Result of a CSV load: either a trace or a line-accurate error message.
struct CsvLoadResult {
  std::optional<PowerTrace> trace;
  std::string error;  ///< empty on success

  bool ok() const { return trace.has_value(); }
};

/// Parses CSV text into a trace.  The sample count must form whole days at
/// `resolution_s`; otherwise an error naming the offending count is
/// returned.
[[nodiscard]] CsvLoadResult ParseCsv(const std::string& text,
                                     const std::string& name,
                                     int resolution_s,
                                     const CsvOptions& options = {});

/// Loads a trace from a CSV file on disk.
CsvLoadResult LoadCsv(const std::string& path, const std::string& name,
                      int resolution_s, const CsvOptions& options = {});

/// Writes a trace as single-column CSV with a `power_w` header.
/// Returns false (and sets `error`) on I/O failure.
bool SaveCsv(const PowerTrace& trace, const std::string& path,
             std::string* error = nullptr);

}  // namespace shep
