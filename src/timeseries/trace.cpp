#include "timeseries/trace.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace shep {

PowerTrace::PowerTrace(std::string name, std::vector<double> samples,
                       int resolution_s)
    : name_(std::move(name)),
      samples_(std::move(samples)),
      resolution_s_(resolution_s) {
  SHEP_REQUIRE(resolution_s_ > 0, "trace resolution must be positive");
  SHEP_REQUIRE(kSecondsPerDay % resolution_s_ == 0,
               "trace resolution must divide one day");
  samples_per_day_ =
      static_cast<std::size_t>(kSecondsPerDay / resolution_s_);
  SHEP_REQUIRE(!samples_.empty(), "trace must contain samples");
  SHEP_REQUIRE(samples_.size() % samples_per_day_ == 0,
               "trace must contain whole days of samples");
  for (double s : samples_) {
    SHEP_REQUIRE(std::isfinite(s) && s >= 0.0,
                 "power samples must be finite and non-negative");
  }
  peak_ = MaxValue(samples_);
}

std::span<const double> PowerTrace::day(std::size_t day_index) const {
  SHEP_REQUIRE(day_index < days(), "day index out of range");
  return std::span<const double>(samples_).subspan(
      day_index * samples_per_day_, samples_per_day_);
}

double PowerTrace::at(std::size_t day_index, std::size_t offset) const {
  SHEP_REQUIRE(day_index < days(), "day index out of range");
  SHEP_REQUIRE(offset < samples_per_day_, "offset out of range");
  return samples_[day_index * samples_per_day_ + offset];
}

double PowerTrace::day_energy_j(std::size_t day_index) const {
  const auto d = day(day_index);
  double acc = 0.0;
  for (double p : d) acc += p;
  return acc * static_cast<double>(resolution_s_);
}

double PowerTrace::total_energy_j() const {
  double acc = 0.0;
  for (double p : samples_) acc += p;
  return acc * static_cast<double>(resolution_s_);
}

PowerTrace PowerTrace::Slice(std::size_t first_day, std::size_t count) const {
  SHEP_REQUIRE(count > 0, "slice must contain at least one day");
  SHEP_REQUIRE(first_day + count <= days(), "slice exceeds trace length");
  const auto begin =
      samples_.begin() +
      static_cast<std::ptrdiff_t>(first_day * samples_per_day_);
  const auto end =
      begin + static_cast<std::ptrdiff_t>(count * samples_per_day_);
  return PowerTrace(name_, std::vector<double>(begin, end), resolution_s_);
}

}  // namespace shep
