// resample.hpp — resolution conversion between traces.
//
// The paper's data sets come at 1-minute and 5-minute resolution (Table I);
// downsampling (block mean) lets the same synthetic site be rendered at
// either resolution, and lets tests verify resolution-sensitivity claims
// (Sec. III: "e̅ will be more accurate if solar power samples data is
// available at a high resolution").
#pragma once

#include <span>
#include <vector>

#include "timeseries/trace.hpp"

namespace shep {

/// Downsamples by block-averaging: each output sample is the mean of the
/// `factor` input samples it covers.  `factor` = new_resolution / old.
/// Preserves total energy exactly.
PowerTrace DownsampleMean(const PowerTrace& trace, int factor);

/// Allocation-free core of DownsampleMean: block-averages `in` into `out`
/// (resized to in.size()/factor; `factor` must divide in.size()).  Callers
/// that already hold day-aligned samples (trace synthesis, per-worker
/// fleet scratch) reuse `out` across traces instead of building a
/// PowerTrace per resolution hop.  Bit-identical to DownsampleMean.
void DownsampleMeanInto(std::span<const double> in, int factor,
                        std::vector<double>& out);

/// Downsamples by decimation: keeps the first sample of every block, which
/// models a low-rate data logger that records instantaneous values.
PowerTrace DownsampleDecimate(const PowerTrace& trace, int factor);

/// Upsamples by sample-and-hold (each input sample repeated `factor` times).
PowerTrace UpsampleHold(const PowerTrace& trace, int factor);

}  // namespace shep
