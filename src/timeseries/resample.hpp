// resample.hpp — resolution conversion between traces.
//
// The paper's data sets come at 1-minute and 5-minute resolution (Table I);
// downsampling (block mean) lets the same synthetic site be rendered at
// either resolution, and lets tests verify resolution-sensitivity claims
// (Sec. III: "e̅ will be more accurate if solar power samples data is
// available at a high resolution").
#pragma once

#include "timeseries/trace.hpp"

namespace shep {

/// Downsamples by block-averaging: each output sample is the mean of the
/// `factor` input samples it covers.  `factor` = new_resolution / old.
/// Preserves total energy exactly.
PowerTrace DownsampleMean(const PowerTrace& trace, int factor);

/// Downsamples by decimation: keeps the first sample of every block, which
/// models a low-rate data logger that records instantaneous values.
PowerTrace DownsampleDecimate(const PowerTrace& trace, int factor);

/// Upsamples by sample-and-hold (each input sample repeated `factor` times).
PowerTrace UpsampleHold(const PowerTrace& trace, int factor);

}  // namespace shep
