// quality.hpp — data-quality checks and gap repair for measured traces.
//
// Real MIDC station exports (what the paper used) contain sensor dropouts,
// stuck values, and negative night offsets.  The synthetic substrate never
// needs repair, but a library that invites "drop in your own CSV" must
// handle measurement pathology explicitly, and the evaluation protocol is
// only meaningful on a repaired, day-aligned series.  A gap is encoded as
// a NaN-free sentinel problem in MIDC exports (-9999 style codes) or as
// zeros in daylight; both are detected here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "timeseries/trace.hpp"

namespace shep {

/// Summary of suspect samples in a raw series.
struct QualityReport {
  std::size_t samples = 0;
  std::size_t gaps = 0;           ///< sentinel/NaN/negative samples.
  std::size_t stuck_runs = 0;     ///< daylight runs of identical values.
  std::size_t repaired = 0;       ///< samples rewritten by Repair().
  double max_gap_minutes = 0.0;   ///< longest contiguous gap.

  bool clean() const { return gaps == 0 && stuck_runs == 0; }
};

/// Options for screening and repair.
struct QualityOptions {
  double sentinel_threshold = -100.0;  ///< values <= this are gap codes.
  /// Daylight runs of >= this many identical positive samples count as a
  /// stuck sensor (a real 1-minute pyranometer never repeats exactly for
  /// an hour).
  std::size_t stuck_run_length = 60;
  /// Gaps longer than this many samples are filled from the previous day
  /// (same slots) instead of linear interpolation — interpolating across
  /// hours would invent a cloudless ramp.
  std::size_t interpolate_up_to = 30;
};

/// Screens a raw sample vector (may contain sentinels/negatives/NaNs that
/// PowerTrace would reject).  Pure analysis; no mutation.
QualityReport ScreenSamples(const std::vector<double>& samples,
                            int resolution_s,
                            const QualityOptions& options = {});

/// Repairs a raw sample vector in place:
///  * sentinels/NaNs/negatives become gaps,
///  * short gaps are linearly interpolated between valid neighbours,
///  * long gaps copy the same samples from the previous day (or the next
///    day for gaps on day 0; zero if neither exists),
///  * stuck runs are treated as gaps past their first sample.
/// Returns the report with `repaired` filled in.  The result is guaranteed
/// to be accepted by PowerTrace (finite, non-negative).
QualityReport RepairSamples(std::vector<double>& samples, int resolution_s,
                            const QualityOptions& options = {});

/// Convenience: repair + construct the trace.
PowerTrace RepairedTrace(const std::string& name,
                         std::vector<double> samples, int resolution_s,
                         QualityReport* report = nullptr,
                         const QualityOptions& options = {});

}  // namespace shep
