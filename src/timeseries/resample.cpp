#include "timeseries/resample.hpp"

#include "common/check.hpp"

namespace shep {

PowerTrace DownsampleMean(const PowerTrace& trace, int factor) {
  SHEP_REQUIRE(factor >= 1, "downsample factor must be >= 1");
  SHEP_REQUIRE(trace.samples_per_day() % static_cast<std::size_t>(factor) == 0,
               "factor must divide samples per day");
  std::vector<double> out;
  DownsampleMeanInto(trace.samples(), factor, out);
  return PowerTrace(trace.name(), std::move(out),
                    trace.resolution_s() * factor);
}

void DownsampleMeanInto(std::span<const double> in, int factor,
                        std::vector<double>& out) {
  SHEP_REQUIRE(factor >= 1, "downsample factor must be >= 1");
  SHEP_REQUIRE(in.size() % static_cast<std::size_t>(factor) == 0,
               "factor must divide the sample count");
  out.resize(in.size() / static_cast<std::size_t>(factor));
  for (std::size_t i = 0; i < out.size(); ++i) {
    double acc = 0.0;
    for (int k = 0; k < factor; ++k) {
      acc += in[i * static_cast<std::size_t>(factor) +
                static_cast<std::size_t>(k)];
    }
    out[i] = acc / factor;
  }
}

PowerTrace DownsampleDecimate(const PowerTrace& trace, int factor) {
  SHEP_REQUIRE(factor >= 1, "decimation factor must be >= 1");
  SHEP_REQUIRE(trace.samples_per_day() % static_cast<std::size_t>(factor) == 0,
               "factor must divide samples per day");
  const auto in = trace.samples();
  std::vector<double> out(in.size() / static_cast<std::size_t>(factor));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = in[i * static_cast<std::size_t>(factor)];
  }
  return PowerTrace(trace.name(), std::move(out),
                    trace.resolution_s() * factor);
}

PowerTrace UpsampleHold(const PowerTrace& trace, int factor) {
  SHEP_REQUIRE(factor >= 1, "upsample factor must be >= 1");
  SHEP_REQUIRE(trace.resolution_s() % factor == 0,
               "factor must divide the trace resolution");
  const auto in = trace.samples();
  std::vector<double> out(in.size() * static_cast<std::size_t>(factor));
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (int k = 0; k < factor; ++k) {
      out[i * static_cast<std::size_t>(factor) + static_cast<std::size_t>(k)] =
          in[i];
    }
  }
  return PowerTrace(trace.name(), std::move(out),
                    trace.resolution_s() / factor);
}

}  // namespace shep
