// trace.hpp — PowerTrace: a uniformly sampled harvested-power time series.
//
// This is the fundamental data type of the library.  A trace holds
// non-negative power samples (W, or W/m^2 irradiance — the algorithm is
// scale-free because errors are reported as MAPE) at a fixed resolution,
// organised as an integral number of days.  The NREL MIDC data sets used by
// the paper (Table I) are 365-day traces at 1-minute or 5-minute resolution;
// the synthetic substitute in src/solar produces the same shape.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace shep {

/// Seconds in one day; every trace is organised as whole days of samples.
inline constexpr int kSecondsPerDay = 86'400;

/// A uniformly sampled, day-aligned power time series.
class PowerTrace {
 public:
  /// Builds a trace from raw samples.
  ///
  /// \param name          identifier used in reports (e.g. "SPMD").
  /// \param samples       power samples in watts; all must be finite and
  ///                      non-negative.
  /// \param resolution_s  sampling period in seconds; must divide 86400.
  ///
  /// The number of samples must be a positive multiple of samples-per-day.
  PowerTrace(std::string name, std::vector<double> samples, int resolution_s);

  const std::string& name() const { return name_; }
  int resolution_s() const { return resolution_s_; }

  /// Samples recorded per day (86400 / resolution).
  std::size_t samples_per_day() const { return samples_per_day_; }

  /// Number of whole days in the trace.
  std::size_t days() const { return samples_.size() / samples_per_day_; }

  /// Total number of samples ("Observations" column of the paper's Table I).
  std::size_t size() const { return samples_.size(); }

  /// All samples, flat, day-major.
  std::span<const double> samples() const { return samples_; }

  /// Samples of one day (0-based day index).
  std::span<const double> day(std::size_t day_index) const;

  /// Sample at (0-based) day / offset-within-day.
  double at(std::size_t day_index, std::size_t offset) const;

  /// Maximum sample over the whole trace (the "peak" used for the paper's
  /// >= 10 %-of-peak region-of-interest filter).
  double peak() const { return peak_; }

  /// Energy received during one day in joules: sum(P)*dt.
  double day_energy_j(std::size_t day_index) const;

  /// Total energy over the full trace in joules.
  double total_energy_j() const;

  /// Returns a copy containing only days [first_day, first_day+count).
  PowerTrace Slice(std::size_t first_day, std::size_t count) const;

 private:
  std::string name_;
  std::vector<double> samples_;
  int resolution_s_;
  std::size_t samples_per_day_;
  double peak_;
};

}  // namespace shep
