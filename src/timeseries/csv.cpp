#include "timeseries/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace shep {

namespace {

CsvLoadResult Fail(std::string message) {
  CsvLoadResult r;
  r.error = std::move(message);
  return r;
}

}  // namespace

CsvLoadResult ParseCsv(const std::string& text, const std::string& name,
                       int resolution_s, const CsvOptions& options) {
  if (resolution_s <= 0 || kSecondsPerDay % resolution_s != 0) {
    return Fail("resolution must be positive and divide one day");
  }
  std::vector<double> samples;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool header_pending = options.skip_header;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    const auto fields = Split(trimmed, options.separator);
    if (options.value_column >= static_cast<int>(fields.size())) {
      std::ostringstream os;
      os << "line " << line_no << ": missing column "
         << options.value_column;
      return Fail(os.str());
    }
    const auto value =
        ParseDouble(fields[static_cast<std::size_t>(options.value_column)]);
    if (!value) {
      std::ostringstream os;
      os << "line " << line_no << ": not a number: '"
         << fields[static_cast<std::size_t>(options.value_column)] << "'";
      return Fail(os.str());
    }
    double v = *value;
    if (v < 0.0) {
      if (!options.clamp_negative) {
        std::ostringstream os;
        os << "line " << line_no << ": negative power sample " << v;
        return Fail(os.str());
      }
      v = 0.0;
    }
    samples.push_back(v);
  }
  const std::size_t per_day =
      static_cast<std::size_t>(kSecondsPerDay / resolution_s);
  if (samples.empty() || samples.size() % per_day != 0) {
    std::ostringstream os;
    os << "sample count " << samples.size()
       << " does not form whole days of " << per_day << " samples";
    return Fail(os.str());
  }
  CsvLoadResult r;
  r.trace.emplace(name, std::move(samples), resolution_s);
  return r;
}

CsvLoadResult LoadCsv(const std::string& path, const std::string& name,
                      int resolution_s, const CsvOptions& options) {
  std::ifstream f(path);
  if (!f) return Fail("cannot open file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseCsv(buf.str(), name, resolution_s, options);
}

bool SaveCsv(const PowerTrace& trace, const std::string& path,
             std::string* error) {
  std::ofstream f(path);
  if (!f) {
    if (error) *error = "cannot open file for writing: " + path;
    return false;
  }
  f << "power_w\n";
  for (double s : trace.samples()) f << s << "\n";
  f.flush();
  if (!f) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace shep
