// serdes.hpp — token-level helpers shared by every exact text
// (de)serializer in the tree.
//
// Doubles travel as hexfloats: exact round trip for every finite double,
// no locale or precision pitfalls ("inf"/"nan" for the non-finite values,
// whose payloads no consumer merges on).  Readers throw
// std::invalid_argument on malformed input, naming the offending token.
//
// Historically these lived in fleet/aggregate; they moved down to common
// when the trace layer (src/trace) needed the same exact wire discipline
// for per-slot telemetry records without depending on the fleet layer.
// fleet/aggregate.hpp still re-exports them by including this header, so
// every existing serializer (aggregates, FleetPartial, ShardPlan) keeps
// spelling them shep::serdes::*.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace shep::serdes {

void WriteDouble(std::ostream& os, double value);
double ReadDouble(std::istream& is);
std::uint64_t ReadU64(std::istream& is);
/// Reads one token and requires it to equal `keyword` (format framing).
void ExpectToken(std::istream& is, const std::string& keyword);

}  // namespace shep::serdes
