#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace shep {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SHEP_REQUIRE(lo <= hi, "Uniform bounds must be ordered");
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double sigma) {
  SHEP_REQUIRE(sigma >= 0.0, "Gaussian sigma must be non-negative");
  return mean + sigma * NextGaussian();
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  SHEP_REQUIRE(n > 0, "NextBelow requires n > 0");
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t threshold = (0 - n) % n;  // == (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the parent's first state word with the stream index through
  // splitmix64 to decorrelate child streams.
  std::uint64_t sm = s_[0] ^ (0x9E3779B97F4A7C15ull * (stream + 1));
  return Rng(SplitMix64(sm));
}

}  // namespace shep
