#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace shep {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  SHEP_REQUIRE(n > 0, "NextBelow requires n > 0");
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t threshold = (0 - n) % n;  // == (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the parent's first state word with the stream index through
  // splitmix64 to decorrelate child streams.
  std::uint64_t sm = s_[0] ^ (0x9E3779B97F4A7C15ull * (stream + 1));
  return Rng(SplitMix64(sm));
}

}  // namespace shep
