// threadpool.hpp — minimal work-stealing-free thread pool.
//
// Shared by every batch layer: the exhaustive (α, D, K, N) sweeps of the
// paper's Sec. IV (src/sweep) and the fleet-scale scenario runner
// (src/fleet) both evaluate thousands of independent work items, so a fixed
// pool plus a shared atomic index is all the scheduling we need; no
// external dependency is warranted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shep {

/// Fixed-size thread pool executing enqueued tasks FIFO.
class ThreadPool {
 public:
  /// \param threads  worker count; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (they run under noexcept
  /// expectations — wrap fallible work yourself).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool (or inline when pool is
/// null), blocking until all iterations complete.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace shep
