// threadpool.hpp — minimal work-stealing-free thread pool.
//
// Shared by every batch layer: the exhaustive (α, D, K, N) sweeps of the
// paper's Sec. IV (src/sweep) and the fleet-scale scenario runner
// (src/fleet) both evaluate thousands of independent work items, so a fixed
// pool plus a shared atomic index is all the scheduling we need; no
// external dependency is warranted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shep {

/// Fixed-size thread pool executing enqueued tasks FIFO.
class ThreadPool {
 public:
  /// \param threads  worker count; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; raw-submitted tasks must not throw (nothing past the
  /// worker loop could rethrow them — use ParallelFor for fallible work, it
  /// captures and rethrows at its own join).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far — from any caller — has
  /// finished.  This is a pool-GLOBAL join for raw Submit() users;
  /// ParallelFor does not use it (each batch joins on its own counter, so
  /// concurrent batches on one pool never wait for each other's tasks).
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool (or inline when pool is
/// null), blocking until all iterations complete.
///
/// The join is per-batch: two ParallelFor calls racing on the same pool
/// each return as soon as their OWN iterations are done.  If any iteration
/// throws, the first exception of the batch is captured, remaining
/// not-yet-started iterations are abandoned, and the exception is rethrown
/// here on the calling thread once every in-flight iteration has retired —
/// the pool stays usable afterwards.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

/// Number of batch workers a ParallelFor over `count` iterations uses on
/// `pool`: the size of the dense worker-id range ParallelForWorker passes
/// to its callback, and therefore the number of per-worker scratch slots a
/// caller must provide.
std::size_t ParallelWorkerCount(const ThreadPool* pool, std::size_t count);

/// ParallelFor variant whose callback additionally receives the dense id
/// in [0, ParallelWorkerCount(pool, count)) of the batch worker running
/// the iteration.  No two iterations with the same worker id ever run
/// concurrently, so the id can index unsynchronized per-worker scratch
/// (reusable buffers, local accumulators).  The id must not influence
/// results — only where intermediate state lives.
void ParallelForWorker(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t worker, std::size_t i)>& fn);

}  // namespace shep
