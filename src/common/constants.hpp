// constants.hpp — numeric constants shared across predictor implementations.
#pragma once

namespace shep {

/// Below this power (1 mW) a slot's historical average is treated as
/// "night"/twilight noise: the brightness ratio η = sample/μ is
/// ill-conditioned there and is replaced by the neutral 1.  The
/// double-precision predictor (core/wcma.cpp, core/ar.cpp,
/// core/adaptive.cpp), the Q16.16 fixed-point build (core/wcma_fixed.cpp),
/// the MicroVm routine (hw/predictor_program.cpp), and the sweep evaluator
/// (sweep/evaluator.cpp) must all use this single definition so the
/// implementations cannot silently drift apart.
inline constexpr double kNightEpsilonW = 1e-3;

}  // namespace shep
