#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace shep {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string FormatPercent(double ratio, int digits) {
  return FormatFixed(ratio * 100.0, digits) + "%";
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace shep
