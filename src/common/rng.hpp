// rng.hpp — deterministic pseudo-random number generation.
//
// All stochastic components of the library (the synthetic weather process in
// particular) draw from this generator so that every experiment in the paper
// reproduction is bit-for-bit repeatable from a seed.  We implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is the
// recommended seeding procedure; std::mt19937_64 is avoided because its
// state-size and seeding pitfalls make cross-platform reproducibility
// brittle.
#pragma once

#include <cstdint>

namespace shep {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** PRNG.  Deterministic, copyable, cheap (4 x uint64 state).
class Rng {
 public:
  /// Seeds the four state words via splitmix64 so that any seed (including
  /// zero) produces a well-mixed, non-degenerate state.
  explicit Rng(std::uint64_t seed = 0xD1CEu);

  /// Next raw 64 random bits.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma);

  /// Uniform integer in [0, n).  Requires n > 0.  Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t NextBelow(std::uint64_t n);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Derives an independent child generator; stream `i` of the same parent
  /// seed is stable across runs.  Used to give each simulated day/site its
  /// own stream so that changing one site's parameters cannot shift another
  /// site's randomness.
  Rng Fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace shep
