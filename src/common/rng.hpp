// rng.hpp — deterministic pseudo-random number generation.
//
// All stochastic components of the library (the synthetic weather process in
// particular) draw from this generator so that every experiment in the paper
// reproduction is bit-for-bit repeatable from a seed.  We implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is the
// recommended seeding procedure; std::mt19937_64 is avoided because its
// state-size and seeding pitfalls make cross-platform reproducibility
// brittle.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace shep {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** PRNG.  Deterministic, copyable, cheap (4 x uint64 state).
///
/// The draw-path methods (NextU64 through Gaussian) are defined inline in
/// this header: the weather synthesizer consumes thousands of draws per
/// simulated day, and an out-of-line call per draw is measurable on the
/// fleet hot path.  The draw SEQUENCE is part of the library's
/// reproducibility contract — optimizations may move these definitions but
/// never change the values they produce.
class Rng {
 public:
  /// Seeds the four state words via splitmix64 so that any seed (including
  /// zero) produces a well-mixed, non-degenerate state.
  explicit Rng(std::uint64_t seed = 0xD1CEu);

  /// Next raw 64 random bits.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi) {
    SHEP_REQUIRE(lo <= hi, "Uniform bounds must be ordered");
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma) {
    SHEP_REQUIRE(sigma >= 0.0, "Gaussian sigma must be non-negative");
    return mean + sigma * NextGaussian();
  }

  /// Uniform integer in [0, n).  Requires n > 0.  Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t NextBelow(std::uint64_t n);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Derives an independent child generator; stream `i` of the same parent
  /// seed is stable across runs.  Used to give each simulated day/site its
  /// own stream so that changing one site's parameters cannot shift another
  /// site's randomness.
  Rng Fork(std::uint64_t stream) const;

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace shep
