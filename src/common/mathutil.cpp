#include "common/mathutil.hpp"

#include <algorithm>
#include <cmath>

namespace shep {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double MaxValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double MinValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

std::vector<double> PrefixSums(std::span<const double> xs) {
  std::vector<double> out(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    out[i] = acc;
  }
  return out;
}

bool ApproxEqual(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

long long RoundToLL(double x) { return static_cast<long long>(std::llround(x)); }

double WelfordMoments::stddev() const { return std::sqrt(variance()); }

}  // namespace shep
