// mathutil.hpp — small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace shep {

/// Arithmetic mean of a span.  Returns 0 for an empty span (callers that need
/// to distinguish emptiness check size() first).
double Mean(std::span<const double> xs);

/// Population variance (mean of squared deviations).  0 for size < 2.
double Variance(std::span<const double> xs);

/// Maximum value; 0 for an empty span.
double MaxValue(std::span<const double> xs);

/// Minimum value; 0 for an empty span.
double MinValue(std::span<const double> xs);

/// Inclusive prefix sums: out[i] = xs[0] + ... + xs[i].  Size preserved.
std::vector<double> PrefixSums(std::span<const double> xs);

/// Linear interpolation between a and b by t in [0,1] (not clamped).
constexpr double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Clamps x into [lo, hi].
constexpr double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True when |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool ApproxEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/// Streaming count/mean/variance via Welford's update.  Unlike the
/// textbook sum/sum-of-squares accumulator (variance = E[x²] − E[x]²,
/// which cancels catastrophically once the mean dwarfs the spread — after
/// a year of slots a duty-cycle stddev computed that way can lose every
/// significant digit), Welford's recurrence keeps the squared deviations
/// directly and stays accurate for arbitrarily long streams.
struct WelfordMoments {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean.

  void Add(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }

  /// Population variance; 0 when count < 2.  m2 is a sum of non-negative
  /// terms, so no clamping against negative variance is ever needed.
  double variance() const {
    return count >= 2 ? m2 / static_cast<double>(count) : 0.0;
  }
  double stddev() const;
};

/// Rounds a double to the nearest integer of type long long.
long long RoundToLL(double x);

}  // namespace shep
