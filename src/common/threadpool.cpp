#include "common/threadpool.hpp"

#include <atomic>

namespace shep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Chunk by a shared atomic cursor: cheap and balances uneven iteration
  // costs (small-N sweeps finish much faster than N=288 ones).
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers =
      std::min(pool->thread_count(), count);
  for (std::size_t w = 0; w < workers; ++w) {
    pool->Submit([cursor, count, &fn] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace shep
