#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace shep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

/// Join state of one ParallelFor call.  Owning it per batch (instead of
/// joining through the pool-global in_flight_ counter) is what lets two
/// concurrent batches on one pool finish independently, and gives the
/// batch's first exception a home until the calling thread can rethrow it.
struct BatchState {
  std::atomic<std::size_t> cursor{0};   ///< next iteration to claim.
  std::atomic<bool> failed{false};      ///< stop claiming new iterations.
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending_workers = 0;      ///< pool tasks not yet retired.
  std::exception_ptr first_error;       ///< first throw of the batch.
};

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  ParallelForWorker(pool, count,
                    [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

std::size_t ParallelWorkerCount(const ThreadPool* pool, std::size_t count) {
  if (pool == nullptr || pool->thread_count() <= 1 || count <= 1) return 1;
  return std::min(pool->thread_count(), count);
}

void ParallelForWorker(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t worker, std::size_t i)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1 || count <= 1) {
    // Inline execution throws straight through to the caller already.
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  // Chunk by a shared atomic cursor: cheap and balances uneven iteration
  // costs (small-N sweeps finish much faster than N=288 ones).  Each of the
  // `workers` submitted tasks is one batch worker; its loop runs on one
  // pool thread, so iterations sharing a worker id are fully serialized —
  // the contract that lets callers give each id private scratch.
  auto batch = std::make_shared<BatchState>();
  const std::size_t workers = ParallelWorkerCount(pool, count);
  batch->pending_workers = workers;
  for (std::size_t w = 0; w < workers; ++w) {
    // fn is captured by reference: ParallelFor blocks until the batch has
    // fully retired, so the referent outlives every worker task.
    pool->Submit([batch, count, w, &fn] {
      while (!batch->failed.load(std::memory_order_relaxed)) {
        const std::size_t i = batch->cursor.fetch_add(1);
        if (i >= count) break;
        try {
          fn(w, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(batch->mutex);
          if (batch->first_error == nullptr) {
            batch->first_error = std::current_exception();
          }
          batch->failed.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (--batch->pending_workers == 0) batch->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] { return batch->pending_workers == 0; });
  if (batch->first_error != nullptr) std::rethrow_exception(batch->first_error);
}

}  // namespace shep
