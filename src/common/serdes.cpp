#include "common/serdes.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace shep::serdes {

void WriteDouble(std::ostream& os, double value) {
  // Hexfloat is exact for every finite double; infinities and NaNs print
  // as "inf"/"nan", which strtod parses back (NaN payloads don't matter —
  // no serialized field ever merges on one).
  const auto flags = os.flags();
  os << std::hexfloat << value;
  os.flags(flags);
}

double ReadDouble(std::istream& is) {
  std::string token;
  is >> token;
  SHEP_REQUIRE(!token.empty(), "unexpected end of serialized input");
  const char* begin = token.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  // Reject overflowed decimals ("1e999" → ±HUGE_VAL + ERANGE): no
  // Serialize call emits them (hexfloat never overflows strtod), so one
  // in the wire text is corruption, not data.  Underflow (ERANGE with a
  // tiny result) stays accepted — subnormal hexfloats parse exactly.
  SHEP_REQUIRE(end == begin + token.size() &&
                   !(errno == ERANGE && std::abs(value) == HUGE_VAL),
               "malformed serialized double: " + token);
  return value;
}

std::uint64_t ReadU64(std::istream& is) {
  std::string token;
  is >> token;
  SHEP_REQUIRE(!token.empty(), "unexpected end of serialized input");
  const char* begin = token.c_str();
  char* end = nullptr;
  errno = 0;  // strtoull reports overflow only through ERANGE.
  const unsigned long long value = std::strtoull(begin, &end, 10);
  SHEP_REQUIRE(end == begin + token.size() && token[0] != '-' &&
                   errno != ERANGE,
               "malformed serialized integer: " + token);
  return static_cast<std::uint64_t>(value);
}

void ExpectToken(std::istream& is, const std::string& keyword) {
  std::string token;
  is >> token;
  SHEP_REQUIRE(token == keyword,
               "expected `" + keyword + "`, got `" + token + "`");
}

}  // namespace shep::serdes
