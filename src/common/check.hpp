// check.hpp — precondition / invariant checking macros for the shep library.
//
// Following the C++ Core Guidelines (I.6/I.8: state preconditions and use
// Expects()-style assertions), every public entry point validates its
// arguments.  Violations indicate programmer error, so they throw
// std::invalid_argument / std::logic_error with a message that names the
// violated condition; hot inner loops use SHEP_DCHECK which compiles away in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shep {

/// Builds a diagnostic message "<cond> violated at <file>:<line>: <detail>".
inline std::string CheckMessage(const char* cond, const char* file, int line,
                                const std::string& detail) {
  std::ostringstream os;
  os << "check `" << cond << "` failed at " << file << ":" << line;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

}  // namespace shep

/// Precondition on arguments of a public function.  Always on.
#define SHEP_REQUIRE(cond, detail)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw std::invalid_argument(                                         \
          ::shep::CheckMessage(#cond, __FILE__, __LINE__, (detail)));      \
    }                                                                      \
  } while (false)

/// Internal invariant (logic error if it fires).  Always on.
#define SHEP_CHECK(cond, detail)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw std::logic_error(                                              \
          ::shep::CheckMessage(#cond, __FILE__, __LINE__, (detail)));      \
    }                                                                      \
  } while (false)

/// Debug-only invariant for hot paths; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define SHEP_DCHECK(cond, detail) \
  do {                            \
  } while (false)
#else
#define SHEP_DCHECK(cond, detail) SHEP_CHECK(cond, detail)
#endif
