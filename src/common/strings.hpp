// strings.hpp — string helpers used by CSV I/O and report formatting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace shep {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a double; returns nullopt on any trailing garbage or empty input.
[[nodiscard]] std::optional<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer; nullopt on failure.
[[nodiscard]] std::optional<long long> ParseInt(std::string_view s);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatFixed(double value, int digits);

/// Formats a ratio as a percentage string, e.g. 0.1580 -> "15.80%".
std::string FormatPercent(double ratio, int digits = 2);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace shep
