#include "solar/clearsky.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "common/check.hpp"
#include "timeseries/trace.hpp"

namespace shep {

double SolarDeclinationRad(int day_of_year) {
  SHEP_REQUIRE(day_of_year >= 1 && day_of_year <= 366,
               "day of year must be in [1, 366]");
  constexpr double kTwoPi = 6.283185307179586;
  return DegToRad(23.45) *
         std::sin(kTwoPi * (284.0 + day_of_year) / 365.0);
}

double HourAngleRad(double solar_hour) {
  return DegToRad(15.0) * (solar_hour - 12.0);
}

double SinElevation(double latitude_rad, double declination_rad,
                    double hour_angle_rad) {
  return std::sin(latitude_rad) * std::sin(declination_rad) +
         std::cos(latitude_rad) * std::cos(declination_rad) *
             std::cos(hour_angle_rad);
}

double HaurwitzGhi(double sin_elevation) {
  if (sin_elevation <= 0.0) return 0.0;
  return 1098.0 * sin_elevation * std::exp(-0.057 / sin_elevation);
}

std::vector<double> ClearSkyDayGhi(double latitude_deg, int day_of_year,
                                   int resolution_s) {
  SHEP_REQUIRE(resolution_s > 0 && kSecondsPerDay % resolution_s == 0,
               "resolution must divide one day");
  const double lat = DegToRad(latitude_deg);
  const double decl = SolarDeclinationRad(day_of_year);
  const auto n = static_cast<std::size_t>(kSecondsPerDay / resolution_s);
  std::vector<double> ghi(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double hour =
        (static_cast<double>(i) + 0.5) * resolution_s / 3600.0;
    ghi[i] = HaurwitzGhi(SinElevation(lat, decl, HourAngleRad(hour)));
  }
  return ghi;
}

namespace {

/// The process-wide memo behind ClearSkyDayGhiCached.  Latitude enters the
/// key by its bit pattern: the memo must distinguish exactly the inputs the
/// computation distinguishes, nothing coarser (and NaN keys, while
/// nonsensical, must at least not corrupt the map ordering).
struct ClearSkyMemo {
  using Key = std::tuple<std::uint64_t, int, int>;

  std::mutex mutex;
  std::map<Key, std::shared_ptr<const std::vector<double>>> entries;
  std::size_t capacity = kClearSkyMemoDefaultCapacity;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

ClearSkyMemo& TheClearSkyMemo() {
  static ClearSkyMemo memo;  // never destroyed: safe at any shutdown order.
  return memo;
}

}  // namespace

std::shared_ptr<const std::vector<double>> ClearSkyDayGhiCached(
    double latitude_deg, int day_of_year, int resolution_s) {
  ClearSkyMemo& memo = TheClearSkyMemo();
  ClearSkyMemo::Key key{std::bit_cast<std::uint64_t>(latitude_deg),
                        day_of_year, resolution_s};
  {
    std::lock_guard<std::mutex> lock(memo.mutex);
    const auto it = memo.entries.find(key);
    if (it != memo.entries.end()) {
      ++memo.hits;
      return it->second;
    }
  }

  // Miss: compute without holding the lock so a long profile never blocks
  // other keys.  First insertion wins; a racing duplicate is bit-identical
  // (the profile is a pure function of the key) and is simply dropped.
  auto profile = std::make_shared<const std::vector<double>>(
      ClearSkyDayGhi(latitude_deg, day_of_year, resolution_s));

  std::lock_guard<std::mutex> lock(memo.mutex);
  ++memo.misses;
  const auto [it, inserted] = memo.entries.emplace(key, std::move(profile));
  auto result = it->second;
  if (inserted && memo.entries.size() > memo.capacity) {
    // Evict the lowest key rather than the newest: a campaign sweeps keys
    // in order, so dropping the just-inserted entry would thrash.  The
    // choice is deterministic (ordered map) and callers keep their refs.
    auto victim = memo.entries.begin();
    if (victim->first == key) ++victim;
    memo.entries.erase(victim);
    ++memo.evictions;
  }
  return result;
}

ClearSkyMemoStats GetClearSkyMemoStats() {
  ClearSkyMemo& memo = TheClearSkyMemo();
  std::lock_guard<std::mutex> lock(memo.mutex);
  return ClearSkyMemoStats{memo.hits, memo.misses, memo.evictions,
                           memo.entries.size()};
}

void SetClearSkyMemoCapacity(std::size_t max_entries) {
  ClearSkyMemo& memo = TheClearSkyMemo();
  std::lock_guard<std::mutex> lock(memo.mutex);
  memo.capacity =
      max_entries == 0 ? kClearSkyMemoDefaultCapacity : max_entries;
  while (memo.entries.size() > memo.capacity) {
    memo.entries.erase(memo.entries.begin());
    ++memo.evictions;
  }
}

void ClearClearSkyMemo() {
  ClearSkyMemo& memo = TheClearSkyMemo();
  std::lock_guard<std::mutex> lock(memo.mutex);
  memo.entries.clear();
  memo.hits = 0;
  memo.misses = 0;
  memo.evictions = 0;
}

double DaylightHours(double latitude_deg, int day_of_year) {
  const double lat = DegToRad(latitude_deg);
  const double decl = SolarDeclinationRad(day_of_year);
  const double cos_h0 = -std::tan(lat) * std::tan(decl);
  if (cos_h0 <= -1.0) return 24.0;  // polar day
  if (cos_h0 >= 1.0) return 0.0;    // polar night
  const double h0 = std::acos(cos_h0);
  return 2.0 * RadToDeg(h0) / 15.0;
}

}  // namespace shep
