#include "solar/weather.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "timeseries/trace.hpp"

namespace shep {

const char* WeatherStateName(WeatherState s) {
  switch (s) {
    case WeatherState::kClear:
      return "clear";
    case WeatherState::kPartly:
      return "partly";
    case WeatherState::kOvercast:
      return "overcast";
  }
  return "?";
}

void WeatherParams::Validate() const {
  for (const auto& row : transition) {
    double sum = 0.0;
    for (double p : row) {
      SHEP_REQUIRE(p >= 0.0 && p <= 1.0,
                   "transition probabilities must be in [0,1]");
      sum += p;
    }
    SHEP_REQUIRE(std::fabs(sum - 1.0) < 1e-9,
                 "transition matrix rows must sum to 1");
  }
  for (double b : base_transmittance) {
    SHEP_REQUIRE(b > 0.0 && b <= 1.0, "base transmittance must be in (0,1]");
  }
  for (double s : drift_sigma) {
    SHEP_REQUIRE(s >= 0.0, "drift sigma must be non-negative");
  }
  SHEP_REQUIRE(drift_phi >= 0.0 && drift_phi < 1.0,
               "AR(1) pole must be in [0,1)");
  for (double r : cloud_rate_per_hour) {
    SHEP_REQUIRE(r >= 0.0, "cloud rate must be non-negative");
  }
  SHEP_REQUIRE(cloud_depth_min >= 0.0 && cloud_depth_max <= 1.0 &&
                   cloud_depth_min <= cloud_depth_max,
               "cloud depth range must be within [0,1] and ordered");
  SHEP_REQUIRE(cloud_duration_min_s > 0.0 &&
                   cloud_duration_min_s <= cloud_duration_max_s,
               "cloud duration range must be positive and ordered");
  SHEP_REQUIRE(min_transmittance >= 0.0 && min_transmittance < 1.0,
               "minimum transmittance must be in [0,1)");
  SHEP_REQUIRE(smooth_samples >= 1, "smoothing window must be >= 1 sample");
  SHEP_REQUIRE(fast_sigma >= 0.0 && fast_sigma < 0.5,
               "fast noise sigma must be in [0, 0.5)");
}

WeatherModel::WeatherModel(const WeatherParams& params) : params_(params) {
  params_.Validate();
}

WeatherState WeatherModel::NextState(WeatherState previous, Rng& rng) const {
  const auto& row = params_.transition[static_cast<std::size_t>(previous)];
  const double u = rng.NextDouble();
  double acc = 0.0;
  for (int s = 0; s < kWeatherStateCount; ++s) {
    acc += row[static_cast<std::size_t>(s)];
    if (u < acc) return static_cast<WeatherState>(s);
  }
  return WeatherState::kOvercast;  // numeric slack: u landed past acc
}

std::array<double, 3> WeatherModel::StationaryDistribution() const {
  std::array<double, 3> pi{1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (int iter = 0; iter < 512; ++iter) {
    std::array<double, 3> next{0.0, 0.0, 0.0};
    for (int from = 0; from < 3; ++from) {
      for (int to = 0; to < 3; ++to) {
        next[static_cast<std::size_t>(to)] +=
            pi[static_cast<std::size_t>(from)] *
            params_.transition[static_cast<std::size_t>(from)]
                              [static_cast<std::size_t>(to)];
      }
    }
    pi = next;
  }
  return pi;
}

std::vector<double> WeatherModel::DayTransmittance(WeatherState state,
                                                   int resolution_s,
                                                   double& drift,
                                                   Rng& rng) const {
  std::vector<double> tau;
  DayScratch scratch;
  DayTransmittanceInto(state, resolution_s, drift, rng, tau, scratch);
  return tau;
}

// shep-lint: root(hot-path-alloc)
void WeatherModel::DayTransmittanceInto(WeatherState state, int resolution_s,
                                        double& drift, Rng& rng,
                                        std::vector<double>& tau,
                                        DayScratch& scratch) const {
  SHEP_REQUIRE(resolution_s > 0 && kSecondsPerDay % resolution_s == 0,
               "resolution must divide one day");
  const auto n = static_cast<std::size_t>(kSecondsPerDay / resolution_s);
  const auto si = static_cast<std::size_t>(state);
  const double base = params_.base_transmittance[si];
  const double sigma = params_.drift_sigma[si];

  // Innovation variance chosen so the AR(1) process has stationary
  // std-dev `sigma` regardless of the pole.
  const double innovation =
      sigma * std::sqrt(std::max(0.0, 1.0 - params_.drift_phi *
                                                params_.drift_phi));

  // Draw the day's cloud events up front (Poisson arrivals over 24 h; the
  // night-time ones simply multiply zero irradiance and are harmless).
  std::vector<DayScratch::CloudEvent>& events = scratch.events;
  events.clear();
  const double rate_per_s = params_.cloud_rate_per_hour[si] / 3600.0;
  if (rate_per_s > 0.0) {
    double t = 0.0;
    for (;;) {
      // Exponential inter-arrival.
      const double u = std::max(rng.NextDouble(), 1e-300);
      t += -std::log(u) / rate_per_s;
      if (t >= kSecondsPerDay) break;
      DayScratch::CloudEvent ev;
      ev.start_s = t;
      ev.end_s = t + rng.Uniform(params_.cloud_duration_min_s,
                                 params_.cloud_duration_max_s);
      ev.depth = rng.Uniform(params_.cloud_depth_min, params_.cloud_depth_max);
      events.push_back(ev);  // shep-lint: allow(hot-path-alloc) day-scratch event list; capacity persists across days, amortized-zero growth
    }
  }

  // The day's drift draws are batched up front: the sample loop consumes
  // exactly one Gaussian per sample and nothing else touches the generator
  // in between, so pre-drawing produces the SAME values in the SAME order.
  // Drawing through a local Rng copy lets the generator state live in
  // registers — through the reference the compiler must assume rng's
  // members could alias the output buffer and re-load them every draw.
  std::vector<double>& gauss = scratch.gauss;
  gauss.resize(n);  // shep-lint: allow(hot-path-alloc) scratch buffer sized once per day; capacity persists across days
  Rng local_rng = rng;
  for (std::size_t i = 0; i < n; ++i) {
    gauss[i] = local_rng.Gaussian(0.0, innovation);
  }
  rng = local_rng;

  // Attenuation from overlapping cloud events, weighted by the fraction of
  // the sample interval each event covers (so short events still register
  // correctly on 5-minute grids).  Poisson arrivals come out in time
  // order, so a sweep maintains the few events whose window can still
  // touch the current sample instead of scanning the whole day's list per
  // sample (a heavy-weather day is ~100 events x 1440 samples).  The live
  // list stays in generation order, so the attenuation product multiplies
  // exactly the factors the full scan would, in the same order —
  // bit-identical, just O(samples + events) instead of O(samples x events).
  std::vector<std::size_t>& active = scratch.active;
  active.clear();
  std::size_t next_event = 0;
  tau.resize(n);  // shep-lint: allow(hot-path-alloc) caller-owned output buffer sized once per day before the sample loop
  for (std::size_t i = 0; i < n; ++i) {
    drift = params_.drift_phi * drift + gauss[i];
    const double t0 = static_cast<double>(i) * resolution_s;
    const double t1 = t0 + resolution_s;
    while (next_event < events.size() && events[next_event].start_s < t1) {
      active.push_back(next_event++);  // shep-lint: allow(hot-path-alloc) live-event sweep list; capacity persists in scratch across days
    }
    std::erase_if(active, [&](std::size_t e) { return events[e].end_s <= t0; });
    double attenuation = 1.0;
    for (const std::size_t e : active) {
      const auto& ev = events[e];
      const double overlap =
          std::max(0.0, std::min(t1, ev.end_s) - std::max(t0, ev.start_s));
      if (overlap > 0.0) {
        attenuation *= 1.0 - ev.depth * (overlap / resolution_s);
      }
    }
    tau[i] = Clamp((base + drift) * attenuation, params_.min_transmittance,
                   1.0);
  }

  // Box-smooth to give cloud passages the gradual edges real loggers see
  // (window clamped at the day boundaries; midnight is dark anyway).
  const int w = params_.smooth_samples;
  if (w > 1) {
    std::vector<double>& smoothed = scratch.smooth;
    smoothed.resize(n);  // shep-lint: allow(hot-path-alloc) smoothing scratch sized once per day; capacity persists across days
    const int half = w / 2;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lo =
          i >= static_cast<std::size_t>(half) ? i - static_cast<std::size_t>(half) : 0;
      const std::size_t hi = std::min(n - 1, i + static_cast<std::size_t>(w - half - 1));
      double acc = 0.0;
      for (std::size_t j = lo; j <= hi; ++j) acc += tau[j];
      smoothed[i] = acc / static_cast<double>(hi - lo + 1);
    }
    // The smoothed day becomes the output and tau's old storage becomes
    // next call's smoothing buffer — a swap, so neither side reallocates.
    tau.swap(smoothed);
  }

  // Fast multiplicative noise (scintillation / sensor noise) survives the
  // smoothing by construction, then everything is re-clamped into the
  // physical range.  The noise draws are batched like the drift draws.
  if (params_.fast_sigma > 0.0) {
    local_rng = rng;
    for (std::size_t i = 0; i < n; ++i) {
      gauss[i] = local_rng.Gaussian(0.0, params_.fast_sigma);
    }
    rng = local_rng;
    for (std::size_t i = 0; i < n; ++i) {
      tau[i] *= 1.0 + gauss[i];
      tau[i] = Clamp(tau[i], params_.min_transmittance, 1.0);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      tau[i] = Clamp(tau[i], params_.min_transmittance, 1.0);
    }
  }
}

}  // namespace shep
