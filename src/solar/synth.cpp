#include "solar/synth.hpp"

#include "common/check.hpp"
#include "solar/clearsky.hpp"
#include "timeseries/resample.hpp"

namespace shep {

PowerTrace SynthesizeTrace(const SiteProfile& site,
                           const SynthOptions& options) {
  SynthScratch scratch;
  return SynthesizeTrace(site, options, scratch);
}

// shep-lint: root(hot-path-alloc)
PowerTrace SynthesizeTrace(const SiteProfile& site, const SynthOptions& options,
                           SynthScratch& scratch) {
  SHEP_REQUIRE(options.days > 0, "trace must contain at least one day");
  SHEP_REQUIRE(options.start_day_of_year >= 1 &&
                   options.start_day_of_year <= 366,
               "start day of year must be in [1, 366]");
  SHEP_REQUIRE(site.resolution_s % 60 == 0,
               "site resolution must be a multiple of one minute");

  constexpr int kGenResolutionS = 60;
  const WeatherModel model(site.weather);
  Rng rng = Rng(site.seed).Fork(options.seed_offset);

  // Warm the Markov chain so the first simulated day is drawn from (close
  // to) the stationary regime rather than always starting "clear".
  WeatherState state = WeatherState::kClear;
  for (int i = 0; i < 16; ++i) state = model.NextState(state, rng);

  const double scale = site.panel_area_m2 * site.panel_efficiency;
  std::vector<double>& samples = scratch.minute_samples;
  samples.clear();
  samples.reserve(options.days *  // shep-lint: allow(hot-path-alloc) one up-front reserve per trace, before the per-sample loop; capacity persists in scratch across traces
                  static_cast<std::size_t>(kSecondsPerDay / kGenResolutionS));

  double drift = 0.0;  // AR(1) state carried across days
  for (std::size_t d = 0; d < options.days; ++d) {
    // The 365-day declination cycle: day 366 is one full period past day 1
    // and wraps onto it (see SynthOptions::start_day_of_year).
    const int doy =
        1 + static_cast<int>((options.start_day_of_year - 1 + d) % 365);
    const std::shared_ptr<const std::vector<double>> ghi =
        ClearSkyDayGhiCached(site.latitude_deg, doy, kGenResolutionS);
    model.DayTransmittanceInto(state, kGenResolutionS, drift, rng,
                               scratch.day_tau, scratch.weather);
    const std::vector<double>& day_ghi = *ghi;
    for (std::size_t i = 0; i < day_ghi.size(); ++i) {
      samples.push_back(day_ghi[i] * scratch.day_tau[i] * scale);  // shep-lint: allow(hot-path-alloc) writes into the capacity reserved above; never reallocates mid-trace
    }
    state = model.NextState(state, rng);
  }

  // One allocation per trace: the sample vector the PowerTrace owns.  The
  // minute-resolution staging stays in the scratch for the next call.
  const int factor = site.resolution_s / kGenResolutionS;
  if (factor == 1) {
    return PowerTrace(site.code,
                      std::vector<double>(samples.begin(), samples.end()),
                      kGenResolutionS);
  }
  std::vector<double> out;
  DownsampleMeanInto(samples, factor, out);
  return PowerTrace(site.code, std::move(out), site.resolution_s);
}

std::vector<PowerTrace> SynthesizePaperTraces(const SynthOptions& options) {
  std::vector<PowerTrace> traces;
  traces.reserve(PaperSites().size());
  for (const auto& site : PaperSites()) {
    traces.push_back(SynthesizeTrace(site, options));
  }
  return traces;
}

}  // namespace shep
