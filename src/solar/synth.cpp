#include "solar/synth.hpp"

#include "common/check.hpp"
#include "solar/clearsky.hpp"
#include "timeseries/resample.hpp"

namespace shep {

PowerTrace SynthesizeTrace(const SiteProfile& site,
                           const SynthOptions& options) {
  SHEP_REQUIRE(options.days > 0, "trace must contain at least one day");
  SHEP_REQUIRE(options.start_day_of_year >= 1 &&
                   options.start_day_of_year <= 365,
               "start day of year must be in [1, 365]");
  SHEP_REQUIRE(site.resolution_s % 60 == 0,
               "site resolution must be a multiple of one minute");

  constexpr int kGenResolutionS = 60;
  const WeatherModel model(site.weather);
  Rng rng = Rng(site.seed).Fork(options.seed_offset);

  // Warm the Markov chain so the first simulated day is drawn from (close
  // to) the stationary regime rather than always starting "clear".
  WeatherState state = WeatherState::kClear;
  for (int i = 0; i < 16; ++i) state = model.NextState(state, rng);

  const double scale = site.panel_area_m2 * site.panel_efficiency;
  std::vector<double> samples;
  samples.reserve(options.days *
                  static_cast<std::size_t>(kSecondsPerDay / kGenResolutionS));

  double drift = 0.0;  // AR(1) state carried across days
  for (std::size_t d = 0; d < options.days; ++d) {
    const int doy =
        1 + static_cast<int>((options.start_day_of_year - 1 + d) % 365);
    const auto ghi =
        ClearSkyDayGhi(site.latitude_deg, doy, kGenResolutionS);
    const auto tau = model.DayTransmittance(state, kGenResolutionS, drift, rng);
    for (std::size_t i = 0; i < ghi.size(); ++i) {
      samples.push_back(ghi[i] * tau[i] * scale);
    }
    state = model.NextState(state, rng);
  }

  PowerTrace minute_trace(site.code, std::move(samples), kGenResolutionS);
  const int factor = site.resolution_s / kGenResolutionS;
  if (factor == 1) return minute_trace;
  return DownsampleMean(minute_trace, factor);
}

std::vector<PowerTrace> SynthesizePaperTraces(const SynthOptions& options) {
  std::vector<PowerTrace> traces;
  traces.reserve(PaperSites().size());
  for (const auto& site : PaperSites()) {
    traces.push_back(SynthesizeTrace(site, options));
  }
  return traces;
}

}  // namespace shep
