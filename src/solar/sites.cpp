#include "solar/sites.hpp"

#include "common/check.hpp"

namespace shep {

namespace {

// A small PV harvester typical of the WSN nodes targeted by the paper:
// 100 cm^2 panel at 15 % end-to-end efficiency -> 1.5 W peak.
constexpr double kPanelAreaM2 = 0.01;
constexpr double kPanelEfficiency = 0.15;

WeatherParams DesertClimate(double cloud_rate_clear,
                            double cloud_rate_partly) {
  // PFCI/NPCS style: long runs of mostly-clear days with occasional light
  // cumulus, rare cloudy spells.
  WeatherParams w;
  w.transition = {{{0.90, 0.08, 0.02},
                   {0.60, 0.30, 0.10},
                   {0.50, 0.35, 0.15}}};
  w.base_transmittance = {0.96, 0.78, 0.45};
  w.drift_sigma = {0.02, 0.06, 0.07};
  w.drift_phi = 0.98;
  w.cloud_rate_per_hour = {cloud_rate_clear, cloud_rate_partly, 0.8};
  w.cloud_depth_min = 0.15;
  w.cloud_depth_max = 0.55;
  w.fast_sigma = 0.020;
  return w;
}

WeatherParams TemperateClimate(double partly_persistence,
                               double cloud_rate_partly,
                               double depth_max) {
  // ECSU/HSU style: balanced mix of regimes, moderate intra-day volatility.
  WeatherParams w;
  const double stay = partly_persistence;
  w.transition = {{{0.70, 0.22, 0.08},
                   {0.30, stay, 1.0 - 0.30 - stay},
                   {0.25, 0.40, 0.35}}};
  w.base_transmittance = {0.93, 0.68, 0.35};
  w.drift_sigma = {0.03, 0.08, 0.08};
  w.drift_phi = 0.98;
  w.cloud_rate_per_hour = {0.3, cloud_rate_partly, 1.2};
  w.cloud_depth_min = 0.25;
  w.cloud_depth_max = depth_max;
  w.fast_sigma = 0.025;
  return w;
}

WeatherParams ConvectiveClimate(double cloud_rate_partly, double depth_max) {
  // SPMD/ORNL style: weather flips often, partly-cloudy days are violent
  // (fast deep cumulus dips) — hardest for a slot-persistence predictor.
  WeatherParams w;
  w.transition = {{{0.55, 0.33, 0.12},
                   {0.28, 0.48, 0.24},
                   {0.22, 0.42, 0.36}}};
  w.base_transmittance = {0.92, 0.62, 0.30};
  w.drift_sigma = {0.035, 0.10, 0.10};
  w.drift_phi = 0.98;
  w.cloud_rate_per_hour = {0.4, cloud_rate_partly, 1.3};
  w.cloud_depth_min = 0.30;
  w.cloud_depth_max = depth_max;
  w.cloud_duration_min_s = 120.0;
  w.cloud_duration_max_s = 2400.0;
  w.fast_sigma = 0.030;
  return w;
}

std::vector<SiteProfile> MakeSites() {
  std::vector<SiteProfile> sites;

  // SPMD — Solar Power Measurement Database, Colorado: high-plains
  // convective afternoon clouds; 5-minute logger.
  sites.push_back(SiteProfile{
      "SPMD", "CO", 39.74, 300, kPanelAreaM2, kPanelEfficiency, 0x5134D001,
      ConvectiveClimate(/*cloud_rate_partly=*/1.9, /*depth_max=*/0.70)});

  // ECSU — Elizabeth City State University, North Carolina: humid coastal
  // mix; 5-minute logger.
  sites.push_back(SiteProfile{
      "ECSU", "NC", 36.28, 300, kPanelAreaM2, kPanelEfficiency, 0xEC50002,
      TemperateClimate(/*partly_persistence=*/0.45, /*cloud_rate_partly=*/1.8,
                       /*depth_max=*/0.68)});

  // ORNL — Oak Ridge National Laboratory, Tennessee: valley convection and
  // frontal systems; the paper's hardest trace; 1-minute logger.
  sites.push_back(SiteProfile{
      "ORNL", "TN", 35.93, 60, kPanelAreaM2, kPanelEfficiency, 0x0211003,
      ConvectiveClimate(/*cloud_rate_partly=*/1.6, /*depth_max=*/0.72)});

  // HSU — Humboldt State University, California: marine-layer coastal fog;
  // 1-minute logger.
  sites.push_back(SiteProfile{
      "HSU", "CA", 40.88, 60, kPanelAreaM2, kPanelEfficiency, 0x450004,
      TemperateClimate(/*partly_persistence=*/0.50, /*cloud_rate_partly=*/1.3,
                       /*depth_max=*/0.62)});

  // NPCS — Nevada Power Clark Station, Nevada: Mojave desert, mostly clear;
  // 1-minute logger.
  sites.push_back(SiteProfile{
      "NPCS", "NV", 36.10, 60, kPanelAreaM2, kPanelEfficiency, 0x09C50005,
      DesertClimate(/*cloud_rate_clear=*/0.35, /*cloud_rate_partly=*/2.8)});

  // PFCI — Phoenix, Arizona: Sonoran desert, the paper's most predictable
  // site; 1-minute logger.
  sites.push_back(SiteProfile{
      "PFCI", "AZ", 33.45, 60, kPanelAreaM2, kPanelEfficiency, 0x0F0C1006,
      DesertClimate(/*cloud_rate_clear=*/0.18, /*cloud_rate_partly=*/1.8)});

  for (auto& s : sites) s.weather.Validate();
  return sites;
}

}  // namespace

const std::vector<SiteProfile>& PaperSites() {
  static const std::vector<SiteProfile> sites = MakeSites();
  return sites;
}

const SiteProfile& SiteByCode(const std::string& code) {
  for (const auto& s : PaperSites()) {
    if (s.code == code) return s;
  }
  SHEP_REQUIRE(false, "unknown site code: " + code);
  // Unreachable; SHEP_REQUIRE(false, ...) throws.
  throw std::logic_error("unreachable");
}

}  // namespace shep
