// weather.hpp — stochastic cloud/weather process for synthetic irradiance.
//
// A solar power profile is the clear-sky backbone multiplied by an
// atmospheric transmittance in (0, 1].  We model transmittance with three
// coupled processes, which together reproduce the phenomenology visible in
// the paper's Fig. 2 (smooth sunny days, depressed overcast days, and
// fast deep dips from passing clouds on mixed days):
//
//  1. a per-day weather STATE (Clear / Partly / Overcast) drawn from a
//     first-order Markov chain — captures multi-day persistence of weather
//     systems (sunny spells, rainy spells);
//  2. a slow AR(1) fluctuation around the state's base transmittance —
//     captures haze/thin-cirrus drift within a day;
//  3. a Poisson process of discrete CLOUD EVENTS, each an attenuation pulse
//     with random depth and duration — captures cumulus passages, the main
//     source of short-horizon prediction error.
//
// Per-site parameters tune how often each state occurs and how violent the
// intra-day processes are; src/solar/sites.hpp instantiates six parameter
// sets whose *relative* difficulty matches the six NREL sites of the paper.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace shep {

/// Day-granularity weather regimes.
enum class WeatherState : int { kClear = 0, kPartly = 1, kOvercast = 2 };

inline constexpr int kWeatherStateCount = 3;

/// Returns a short display name ("clear", "partly", "overcast").
const char* WeatherStateName(WeatherState s);

/// Parameters of the weather process (see file comment for the roles).
struct WeatherParams {
  /// Markov transition matrix: transition[from][to], rows must sum to 1.
  std::array<std::array<double, 3>, 3> transition{
      {{0.70, 0.20, 0.10}, {0.30, 0.40, 0.30}, {0.25, 0.35, 0.40}}};

  /// Mean transmittance of each state (clear, partly, overcast).
  std::array<double, 3> base_transmittance{0.95, 0.70, 0.35};

  /// Std-dev of the slow AR(1) fluctuation per state.
  std::array<double, 3> drift_sigma{0.02, 0.08, 0.10};

  /// AR(1) pole of the slow fluctuation (0 = white, ->1 = very smooth).
  double drift_phi = 0.995;

  /// Expected cloud events per daylight hour, per state.
  std::array<double, 3> cloud_rate_per_hour{0.1, 4.0, 1.5};

  /// Cloud event attenuation depth range (fraction removed, uniform draw).
  double cloud_depth_min = 0.25;
  double cloud_depth_max = 0.85;

  /// Cloud event duration range in seconds (uniform draw).
  double cloud_duration_min_s = 120.0;
  double cloud_duration_max_s = 1800.0;

  /// Lower clamp so power never quite reaches zero while the sun is up
  /// (diffuse component survives even heavy overcast).
  double min_transmittance = 0.05;

  /// Box-smoothing window (in samples at the generation resolution)
  /// applied to the transmittance series.  Models the gradual edges of
  /// real cloud passages plus the logger's averaging; 1 disables.  Real
  /// MIDC 1-minute data is itself a 1-minute average of ~1 s scans, so
  /// some smoothing is physically required for realistic point-vs-mean
  /// error behaviour.
  int smooth_samples = 7;

  /// Multiplicative per-sample noise (std-dev, Gaussian, applied after
  /// smoothing).  Models scintillation/sensor noise that does NOT average
  /// out at the sample scale; it is what keeps very short prediction
  /// horizons (N = 288) from being trivially exact on synthetic data.
  double fast_sigma = 0.03;

  /// Validates ranges and row sums; throws std::invalid_argument otherwise.
  void Validate() const;
};

/// Simulates the per-day state sequence and per-sample transmittance.
class WeatherModel {
 public:
  /// Reusable working storage for DayTransmittanceInto.  A default-built
  /// value works; reusing one across days/traces makes the generator
  /// allocation-free after the first day (the fleet hot path synthesizes
  /// thousands of days per worker).
  struct DayScratch {
    /// One attenuation pulse of the day's Poisson cloud process.
    struct CloudEvent {
      double start_s, end_s, depth;
    };
    std::vector<CloudEvent> events;
    std::vector<std::size_t> active;  ///< sweep's live-event index window.
    std::vector<double> gauss;        ///< batched Gaussian draws.
    std::vector<double> smooth;       ///< box-filter output buffer.
  };

  explicit WeatherModel(const WeatherParams& params);

  const WeatherParams& params() const { return params_; }

  /// Draws the next day's state given the previous day's state.
  WeatherState NextState(WeatherState previous, Rng& rng) const;

  /// Stationary distribution of the state chain (power iteration); used by
  /// reports/tests to characterise a site's climate.
  std::array<double, 3> StationaryDistribution() const;

  /// Generates one day of transmittance values, one per `resolution_s`
  /// seconds.  The AR(1) drift state is carried in/out through `drift` so
  /// consecutive days join smoothly.
  std::vector<double> DayTransmittance(WeatherState state, int resolution_s,
                                       double& drift, Rng& rng) const;

  /// Allocation-free form: writes the day into `tau` (resized to one
  /// sample per resolution_s) reusing `scratch`'s buffers.  Bit-identical
  /// to DayTransmittance for the same RNG stream — only where the values
  /// land changes.
  void DayTransmittanceInto(WeatherState state, int resolution_s,
                            double& drift, Rng& rng, std::vector<double>& tau,
                            DayScratch& scratch) const;

 private:
  WeatherParams params_;
};

}  // namespace shep
