// clearsky.hpp — solar geometry and clear-sky irradiance.
//
// The synthetic data substrate needs the deterministic backbone of a solar
// power profile: the diurnal bell shape whose width and height drift with
// the season.  We use the standard Cooper declination formula and the
// Haurwitz clear-sky global-horizontal-irradiance model, which depends only
// on solar elevation and reproduces the familiar ~1000 W/m^2 midsummer noon
// peak.  This is exactly the structure the prediction algorithm exploits
// (24-hour cycles, day-to-day similarity of the same slot).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace shep {

/// Degrees-to-radians.
constexpr double DegToRad(double deg) { return deg * 0.017453292519943295; }

/// Radians-to-degrees.
constexpr double RadToDeg(double rad) { return rad * 57.29577951308232; }

/// Solar declination (radians) for a 1-based day of year (Cooper, 1969):
/// delta = 23.45 deg * sin(2*pi*(284+n)/365).
double SolarDeclinationRad(int day_of_year);

/// Hour angle (radians) for local solar time in hours: 15 deg per hour from
/// solar noon, negative in the morning.
double HourAngleRad(double solar_hour);

/// Sine of solar elevation for a latitude/declination/hour-angle triple:
/// sin(el) = sin(lat)sin(decl) + cos(lat)cos(decl)cos(h).
double SinElevation(double latitude_rad, double declination_rad,
                    double hour_angle_rad);

/// Haurwitz clear-sky global horizontal irradiance (W/m^2) from the sine of
/// solar elevation; zero when the sun is below the horizon.
double HaurwitzGhi(double sin_elevation);

/// Clear-sky irradiance profile of one day: one GHI sample per
/// `resolution_s` seconds (86400/resolution_s samples), for the given
/// latitude and 1-based day of year.
std::vector<double> ClearSkyDayGhi(double latitude_deg, int day_of_year,
                                   int resolution_s);

/// Process-wide memo of ClearSkyDayGhi keyed by (latitude, day-of-year,
/// resolution).  The profile is a pure function of the key, and fleet
/// campaigns evaluate many weather replicas of the same site over the same
/// calendar window — each of which would otherwise recompute the identical
/// 86400/resolution_s sin/cos/exp samples per day.  Repeated calls with one
/// key return the same immutable shared instance.
///
/// Thread-safe; like fleet's TraceCache the profile is computed OUTSIDE the
/// lock, so concurrent first calls on one key may both compute it and the
/// first insertion wins — the loser's bit-identical copy is dropped.
std::shared_ptr<const std::vector<double>> ClearSkyDayGhiCached(
    double latitude_deg, int day_of_year, int resolution_s);

/// Counters of the process-wide clear-sky memo.  A concurrent
/// double-compute of one key counts one miss per computing caller.
struct ClearSkyMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};
ClearSkyMemoStats GetClearSkyMemoStats();

/// Default entry cap of the process-wide memo: generous for any single
/// campaign (sites x days distinct keys) yet bounds a coordinator that
/// lives through thousands of campaigns with shifting latitudes.
inline constexpr std::size_t kClearSkyMemoDefaultCapacity = 4096;

/// Caps the memo at `max_entries` profiles (0 restores the default).  When
/// an insert would exceed the cap the lowest key is evicted — deterministic
/// because the memo is an ordered map — and counted in stats.evictions.
/// Shared_ptrs already handed out stay alive; only the memo forgets.
void SetClearSkyMemoCapacity(std::size_t max_entries);

/// Drops every memoized profile (shared_ptrs held by callers stay alive)
/// and resets the counters; used by tests to start from a cold memo.
void ClearClearSkyMemo();

/// Daylight duration in hours for the given latitude/day (sunrise-to-sunset
/// from the hour-angle at zero elevation); used by tests to check seasonal
/// behaviour.
double DaylightHours(double latitude_deg, int day_of_year);

}  // namespace shep
