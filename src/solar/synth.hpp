// synth.hpp — synthetic harvested-power trace generation.
//
// Combines the clear-sky backbone (solar/clearsky.hpp) with the stochastic
// weather process (solar/weather.hpp) and the site's panel parameters to
// produce a PowerTrace with the same shape as the NREL MIDC exports used in
// the paper: 365 days at 1-minute or 5-minute resolution.  Generation always
// runs at 1-minute resolution internally and block-averages down to the
// site's recording resolution, mirroring how real loggers average over the
// reporting interval.
#pragma once

#include <cstdint>
#include <vector>

#include "solar/sites.hpp"
#include "solar/weather.hpp"
#include "timeseries/trace.hpp"

namespace shep {

/// Options for trace synthesis.
struct SynthOptions {
  std::size_t days = 365;        ///< trace length (the paper uses 365).
  /// 1-based calendar start in [1, 366].  The synthetic year is the
  /// 365-day declination cycle, so day 366 (a leap year's Dec 31) wraps to
  /// day 1 — exactly the identity SolarDeclinationRad exhibits (366 and 1
  /// are one full period apart).
  int start_day_of_year = 1;
  std::uint64_t seed_offset = 0; ///< mixed into the site seed; lets tests
                                 ///< draw independent replicas of a site.
};

/// Reusable working storage for SynthesizeTrace.  A default-built value
/// works; reusing one across traces leaves only the returned PowerTrace's
/// own sample vector allocating per call — every per-day intermediate
/// (clear-sky profile, transmittance, smoothing window, cloud events,
/// minute-resolution staging) is served from the scratch or the process
/// -wide clear-sky memo.  Fleet workers hold one scratch each.
struct SynthScratch {
  std::vector<double> minute_samples;  ///< 1-minute staging buffer.
  std::vector<double> day_tau;         ///< one day of transmittance.
  WeatherModel::DayScratch weather;    ///< cloud events + smoothing window.
};

/// Synthesizes a harvested-power trace for `site`.  Deterministic in
/// (site.seed, options): same inputs -> bit-identical trace.
PowerTrace SynthesizeTrace(const SiteProfile& site,
                           const SynthOptions& options = {});

/// Scratch-threaded form: bit-identical to the two-argument overload, but
/// all intermediate buffers come from `scratch`, so a caller looping over
/// traces (the fleet runner's phase 1, the trace cache) performs one
/// allocation per trace instead of several per day.
PowerTrace SynthesizeTrace(const SiteProfile& site, const SynthOptions& options,
                           SynthScratch& scratch);

/// Convenience: synthesizes all six paper sites at their native resolution
/// (Table I shapes: 105,120 samples for the 5-minute sites, 525,600 for the
/// 1-minute sites when days == 365).
std::vector<PowerTrace> SynthesizePaperTraces(const SynthOptions& options = {});

}  // namespace shep
