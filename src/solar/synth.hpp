// synth.hpp — synthetic harvested-power trace generation.
//
// Combines the clear-sky backbone (solar/clearsky.hpp) with the stochastic
// weather process (solar/weather.hpp) and the site's panel parameters to
// produce a PowerTrace with the same shape as the NREL MIDC exports used in
// the paper: 365 days at 1-minute or 5-minute resolution.  Generation always
// runs at 1-minute resolution internally and block-averages down to the
// site's recording resolution, mirroring how real loggers average over the
// reporting interval.
#pragma once

#include <cstdint>

#include "solar/sites.hpp"
#include "timeseries/trace.hpp"

namespace shep {

/// Options for trace synthesis.
struct SynthOptions {
  std::size_t days = 365;        ///< trace length (the paper uses 365).
  int start_day_of_year = 1;     ///< 1-based; Jan 1 by default.
  std::uint64_t seed_offset = 0; ///< mixed into the site seed; lets tests
                                 ///< draw independent replicas of a site.
};

/// Synthesizes a harvested-power trace for `site`.  Deterministic in
/// (site.seed, options): same inputs -> bit-identical trace.
PowerTrace SynthesizeTrace(const SiteProfile& site,
                           const SynthOptions& options = {});

/// Convenience: synthesizes all six paper sites at their native resolution
/// (Table I shapes: 105,120 samples for the 5-minute sites, 525,600 for the
/// 1-minute sites when days == 365).
std::vector<PowerTrace> SynthesizePaperTraces(const SynthOptions& options = {});

}  // namespace shep
