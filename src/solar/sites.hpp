// sites.hpp — the six deployment sites evaluated by the paper (Table I).
//
// The paper selects six NREL MIDC stations that "demonstrate variety in
// solar energy profile variations":
//
//   SPMD (CO, 5-min), ECSU (NC, 5-min), ORNL (TN, 1-min),
//   HSU (CA, 1-min), NPCS (NV, 1-min), PFCI (AZ, 1-min).
//
// We cannot ship the proprietary station exports, so each site is a
// parameter set for the synthetic weather process (src/solar/weather.hpp)
// at the station's real latitude and recording resolution.  The weather
// parameters are tuned so the sites' *relative* prediction difficulty
// matches the paper's Table III ordering: the desert stations PFCI and NPCS
// are the most predictable (lowest MAPE), the convective/mixed-climate
// stations ORNL and SPMD the least.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solar/weather.hpp"

namespace shep {

/// Static description of a measurement site.
struct SiteProfile {
  std::string code;        ///< data-set code used in the paper's tables.
  std::string location;    ///< US state, as in Table I.
  double latitude_deg;     ///< station latitude (drives solar geometry).
  int resolution_s;        ///< recording resolution: 60 or 300 seconds.
  double panel_area_m2;    ///< harvester panel area.
  double panel_efficiency; ///< end-to-end conversion efficiency.
  std::uint64_t seed;      ///< deterministic per-site stream seed.
  WeatherParams weather;   ///< stochastic climate of the site.

  /// Peak electrical power at 1000 W/m^2 (for scale in reports).
  double PanelPeakW() const {
    return 1000.0 * panel_area_m2 * panel_efficiency;
  }
};

/// The six paper sites, in Table I order (SPMD, ECSU, ORNL, HSU, NPCS,
/// PFCI).  Deterministic: always returns identical profiles.
const std::vector<SiteProfile>& PaperSites();

/// Looks up a paper site by code; throws std::invalid_argument for unknown
/// codes.
const SiteProfile& SiteByCode(const std::string& code);

}  // namespace shep
