#include "report/figure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace shep {

std::string SeriesCsv(const std::vector<Series>& series) {
  SHEP_REQUIRE(!series.empty(), "need at least one series");
  const auto& x = series.front().x;
  for (const auto& s : series) {
    SHEP_REQUIRE(s.x.size() == s.y.size(), "series x/y sizes must match");
    SHEP_REQUIRE(s.x == x, "all series must share the same x axis");
  }
  std::ostringstream os;
  os << "x";
  for (const auto& s : series) os << ',' << s.name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << x[i];
    for (const auto& s : series) os << ',' << s.y[i];
    os << '\n';
  }
  return os.str();
}

namespace {

struct Bounds {
  double x_min, x_max, y_min, y_max;
};

Bounds ComputeBounds(const std::vector<Series>& series) {
  Bounds b{std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
  for (const auto& s : series) {
    for (double v : s.x) {
      b.x_min = std::min(b.x_min, v);
      b.x_max = std::max(b.x_max, v);
    }
    for (double v : s.y) {
      b.y_min = std::min(b.y_min, v);
      b.y_max = std::max(b.y_max, v);
    }
  }
  if (b.x_min == b.x_max) b.x_max = b.x_min + 1.0;
  if (b.y_min == b.y_max) b.y_max = b.y_min + 1.0;
  return b;
}

constexpr char kGlyphs[] = "*o+x#@%&";

std::string RenderChart(const std::vector<Series>& series, int width,
                        int height) {
  SHEP_REQUIRE(width >= 16 && height >= 4, "chart too small");
  const Bounds b = ComputeBounds(series);
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = static_cast<int>(std::lround(
          (s.x[i] - b.x_min) / (b.x_max - b.x_min) * (width - 1)));
      const int row = static_cast<int>(std::lround(
          (s.y[i] - b.y_min) / (b.y_max - b.y_min) * (height - 1)));
      const int r = height - 1 - row;  // y grows upward
      canvas[static_cast<std::size_t>(Clamp(r, 0, height - 1))]
            [static_cast<std::size_t>(Clamp(col, 0, width - 1))] = glyph;
    }
  }
  std::ostringstream os;
  char ylabel[32];
  std::snprintf(ylabel, sizeof(ylabel), "%10.4g", b.y_max);
  os << ylabel << " +" << canvas.front() << '\n';
  for (int r = 1; r + 1 < height; ++r) {
    os << std::string(10, ' ') << " |"
       << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  std::snprintf(ylabel, sizeof(ylabel), "%10.4g", b.y_min);
  os << ylabel << " +" << canvas.back() << '\n';
  std::snprintf(ylabel, sizeof(ylabel), "%-10.4g", b.x_min);
  char xmax[32];
  std::snprintf(xmax, sizeof(xmax), "%10.4g", b.x_max);
  os << std::string(12, ' ') << ylabel
     << std::string(static_cast<std::size_t>(
                        std::max(0, width - 20)),
                    ' ')
     << xmax << '\n';
  // Legend.
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "            " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << " = "
       << series[si].name << '\n';
  }
  return os.str();
}

}  // namespace

std::string AsciiChart(const Series& series, int width, int height) {
  return RenderChart({series}, width, height);
}

std::string AsciiChartMulti(const std::vector<Series>& series, int width,
                            int height) {
  SHEP_REQUIRE(!series.empty(), "need at least one series");
  return RenderChart(series, width, height);
}

std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double v : values) {
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    const int level =
        static_cast<int>(Clamp(std::floor(t * 8.0), 0.0, 7.0));
    out += kLevels[level];
  }
  return out;
}

}  // namespace shep
