// figure.hpp — data-series output for the paper's figures.
//
// The repro binaries cannot render PDFs, so each "figure" is emitted two
// ways: as CSV (machine-readable, plot with any tool) and as a terminal
// ASCII chart that makes the qualitative shape — the thing EXPERIMENTS.md
// compares against the paper — visible directly in the bench output.
#pragma once

#include <string>
#include <vector>

namespace shep {

/// A named (x, y) series.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders series as CSV: header "x,<name1>,<name2>,..."; series must share
/// the same x vector.
std::string SeriesCsv(const std::vector<Series>& series);

/// Renders one series as a fixed-size ASCII line chart.
std::string AsciiChart(const Series& series, int width = 72, int height = 16);

/// Renders several series as an overlaid ASCII chart, one glyph per series.
std::string AsciiChartMulti(const std::vector<Series>& series, int width = 72,
                            int height = 16);

/// One-line unicode sparkline of the values (8 levels).
std::string Sparkline(const std::vector<double>& values);

}  // namespace shep
