// table.hpp — aligned ASCII tables for the reproduction harnesses.
//
// Every bench/repro_* binary prints its paper table through this builder so
// output is uniform, diffable, and easy to eyeball against the paper.
#pragma once

#include <string>
#include <vector>

namespace shep {

/// Column-aligned text table with an optional title.
class TableBuilder {
 public:
  explicit TableBuilder(std::string title = "");

  /// Sets the header row; must be called before AddRow.
  TableBuilder& Columns(std::vector<std::string> names);

  /// Appends a data row; must have exactly as many cells as columns.
  TableBuilder& AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  TableBuilder& AddSeparator();

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table.
  std::string ToString() const;

  /// Renders the same rows as CSV: one header line then one line per data
  /// row (separators are skipped).  Cells containing a comma, quote, or
  /// newline are double-quoted per RFC 4180.
  std::string ToCsv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace shep
