#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace shep {

TableBuilder::TableBuilder(std::string title) : title_(std::move(title)) {}

TableBuilder& TableBuilder::Columns(std::vector<std::string> names) {
  SHEP_REQUIRE(!names.empty(), "table needs at least one column");
  SHEP_REQUIRE(rows_.empty(), "set columns before adding rows");
  columns_ = std::move(names);
  return *this;
}

TableBuilder& TableBuilder::AddRow(std::vector<std::string> cells) {
  SHEP_REQUIRE(!columns_.empty(), "set columns before adding rows");
  SHEP_REQUIRE(cells.size() == columns_.size(),
               "row width must match column count");
  rows_.push_back(Row{std::move(cells), false});
  return *this;
}

TableBuilder& TableBuilder::AddSeparator() {
  rows_.push_back(Row{{}, true});
  return *this;
}

std::string TableBuilder::ToString() const {
  SHEP_REQUIRE(!columns_.empty(), "table has no columns");
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  print_row(columns_);
  hline();
  for (const auto& row : rows_) {
    if (row.separator) {
      hline();
    } else {
      print_row(row.cells);
    }
  }
  hline();
  return os.str();
}

std::string TableBuilder::ToCsv() const {
  SHEP_REQUIRE(!columns_.empty(), "table has no columns");
  auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) {
    if (!row.separator) print_row(row.cells);
  }
  return os.str();
}

}  // namespace shep
