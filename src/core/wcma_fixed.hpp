// wcma_fixed.hpp — the WCMA predictor as it runs on the microcontroller.
//
// A Q16.16 fixed-point re-implementation of core/wcma.hpp that additionally
// counts every arithmetic operation and memory access it performs.  Two
// consumers:
//  * tests: the fixed-point output must track the double-precision
//    reference within a small tolerance over the region of interest
//    (DESIGN.md §5, "fixed-point width" ablation), and
//  * src/hw: the operation counts, mapped through an MSP430-style cycle
//    cost table, yield the per-prediction energy of the paper's Table IV.
//
// The implementation mirrors a sensible embedded realisation:
//  * power enters pre-scaled by kInputScale (the analogue of working in
//    raw ADC counts rather than watts), which keeps dawn/dusk values far
//    above the Q16.16 quantisation floor — η ratios are scale-invariant,
//    so only the final prediction needs unscaling;
//  * μ_D is maintained as per-slot running column SUMS (one subtract + one
//    add per day rollover instead of a D-term summation per prediction);
//  * θ(k) = k/K weights come from a small ROM table (a load, not a divide);
//  * the α = 0 and α = 1 corners skip the unused term entirely — this is
//    why the paper's Table IV shows (K=7, α=0) cheaper than (K=7, α=0.7).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/fixed_point.hpp"
#include "core/wcma.hpp"

namespace shep {

/// Dynamic operation counts of an MCU code region.
struct OpCounts {
  std::uint64_t add = 0;    ///< 16/32-bit additions & subtractions
  std::uint64_t mul = 0;    ///< hardware-multiplier operations
  std::uint64_t div = 0;    ///< software long divisions
  std::uint64_t load = 0;   ///< data-memory reads
  std::uint64_t store = 0;  ///< data-memory writes
  std::uint64_t branch = 0; ///< compares/branches

  OpCounts& operator+=(const OpCounts& o) {
    add += o.add;
    mul += o.mul;
    div += o.div;
    load += o.load;
    store += o.store;
    branch += o.branch;
    return *this;
  }

  /// Sum over every operation class.
  std::uint64_t total() const {
    return add + mul + div + load + store + branch;
  }
};

/// Fixed-point WCMA with operation accounting.
class FixedWcma final : public Predictor {
 public:
  /// Input pre-scaling applied to every sample (see file comment).  256
  /// maps the 0..2 W solar range onto 0..512 in Q16.16, mimicking an ADC
  /// count representation; the paper's MSP430 firmware works on raw
  /// 12-bit conversions for the same reason.
  static constexpr double kInputScale = 256.0;

  FixedWcma(const WcmaParams& params, int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  /// Cumulative counts since construction/Reset, split by phase.
  const OpCounts& observe_ops() const { return observe_ops_; }
  const OpCounts& predict_ops() const { return predict_ops_; }

  /// Counts of the most recent PredictNext() call only (what one wake-up
  /// costs — the quantity Table IV reports).
  const OpCounts& last_predict_ops() const { return last_predict_ops_; }

  std::uint64_t observe_calls() const { return observe_calls_; }
  std::uint64_t predict_calls() const { return predict_calls_; }

 private:
  struct RecentSlot {
    Fx sample;
    Fx mu;
  };

  Fx MuOf(std::size_t slot, OpCounts& ops) const;

  WcmaParams params_;
  int slots_per_day_;
  Fx alpha_;
  Fx one_minus_alpha_;
  bool alpha_is_zero_;
  bool alpha_is_one_;

  std::vector<Fx> history_;      ///< D x N ring of past days (row-major).
  std::vector<Fx> column_sum_;   ///< per-slot running sums over stored rows.
  std::vector<Fx> current_day_;
  std::vector<Fx> theta_rom_;    ///< θ(k) = k/K table, k = 1..K.
  std::size_t stored_days_ = 0;
  std::size_t next_row_ = 0;
  std::size_t next_slot_ = 0;
  Fx last_sample_ = Fx::Zero();
  bool has_sample_ = false;
  std::deque<RecentSlot> recent_;

  mutable OpCounts observe_ops_;
  mutable OpCounts predict_ops_;
  mutable OpCounts last_predict_ops_;
  std::uint64_t observe_calls_ = 0;
  mutable std::uint64_t predict_calls_ = 0;
};

}  // namespace shep
