// ar.hpp — autoregressive predictor with online RLS fitting.
//
// The comparison literature the paper cites (Bergonzini et al. [7])
// evaluates classical time-series predictors alongside WCMA.  This module
// provides the strongest such baseline: an AR(p) model fitted online by
// recursive least squares — but applied the only way AR makes sense on
// solar data, to the DE-SEASONALISED series
//
//     r(n) = ẽ(n) / μ_D(slot(n))
//
// i.e. the same brightness ratio WCMA's Φ is built from.  The AR model
// learns the short-term dynamics of the weather process; the diurnal
// envelope is restored by multiplying the predicted ratio with μ_D(n+1).
// Fitting raw power with AR fails trivially (the diurnal ramp dominates),
// which tests/test_ar.cpp demonstrates as a negative control.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "timeseries/history.hpp"

namespace shep {

/// Tuning of the AR predictor.
struct ArParams {
  int order = 3;          ///< p: number of ratio lags.
  int days = 10;          ///< D: history depth for μ_D.
  double lambda = 0.995;  ///< RLS forgetting factor in (0, 1].
  double delta = 100.0;   ///< initial covariance scale (P = δI).

  void Validate() const;
};

/// Streaming AR(p)-on-ratios predictor, RLS-fitted.
class ArPredictor final : public Predictor {
 public:
  ArPredictor(const ArParams& params, int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  const ArParams& params() const { return params_; }

  /// Current model coefficients: [bias, lag1 (most recent), ..., lagP].
  const std::vector<double>& coefficients() const { return theta_; }

  /// Number of RLS updates performed so far.
  std::uint64_t updates() const { return updates_; }

 private:
  /// Feature vector from the lag buffer: [1, r(n), r(n-1), ...].
  std::vector<double> Features() const;
  void RlsUpdate(const std::vector<double>& x, double target);

  ArParams params_;
  int slots_per_day_;

  HistoryMatrix history_;
  std::vector<double> current_day_;
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;

  std::deque<double> ratio_lags_;  ///< newest at back.
  std::vector<double> theta_;      ///< order+1 coefficients (bias first).
  std::vector<double> cov_;        ///< P matrix, (order+1)^2 row-major.
  std::uint64_t updates_ = 0;
};

}  // namespace shep
