// predictor.hpp — streaming predictor interface and evaluation harness.
//
// All predictors share the deployment contract of the paper's Fig. 5: once
// per slot the node wakes, ADC-samples the harvested power at the slot
// boundary, feeds it to the predictor, and reads back a prediction for the
// power at the NEXT slot boundary (which the energy manager multiplies by
// the slot length T to budget the upcoming slot's energy).
//
// Timing/indexing convention used throughout the library (paper Fig. 4):
// interval g lies between boundary samples e(g) and e(g+1).  After
// Observe(e(g)), PredictNext() returns ê(g+1).  That prediction is scored
// against the point sample e(g+1) (MAPE′, Eq. 6) or against the mean power
// e̅(g) of the interval it budgets (MAPE, Eq. 7) — see metrics/error.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/error.hpp"
#include "timeseries/slotting.hpp"

namespace shep {

/// Abstract streaming one-step-ahead power predictor.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Feeds the boundary sample of the slot that just started.  Called
  /// exactly once per slot, in time order, starting at slot 0 of day 0.
  virtual void Observe(double boundary_sample) = 0;

  /// Predicted power at the next slot boundary, ê(n+1).  Valid after the
  /// first Observe(); before the predictor is Ready() implementations fall
  /// back to persistence (return the last observed sample).
  virtual double PredictNext() const = 0;

  /// True once the predictor has accumulated enough history to run its
  /// full model (e.g. a filled D-day matrix for WCMA).
  virtual bool Ready() const = 0;

  /// Resets to the just-constructed state.
  virtual void Reset() = 0;

  /// Display name for reports, e.g. "WCMA(a=0.7,D=20,K=3)".
  virtual std::string Name() const = 0;
};

/// Cumulative modelled MCU compute cost of a predictor's prediction work
/// since construction or the last Reset().
struct PredictorComputeCost {
  double cycles = 0.0;            ///< modelled MCU cycles, summed.
  std::uint64_t ops = 0;          ///< dynamic operations behind those cycles.
  std::uint64_t predictions = 0;  ///< PredictNext() calls the totals cover.

  double cycles_per_prediction() const {
    return predictions > 0 ? cycles / static_cast<double>(predictions) : 0.0;
  }
  double ops_per_prediction() const {
    return predictions > 0
               ? static_cast<double>(ops) / static_cast<double>(predictions)
               : 0.0;
  }
};

/// Optional side-interface of a Predictor: backends that model deployment
/// cost (the Q16.16 fixed-point build, the MicroVm-executed routine — see
/// src/hw) implement it alongside Predictor; the float reference
/// predictors do not.  mgmt/node_sim discovers it via dynamic_cast and
/// threads the totals into NodeSimResult, which is how fleet summaries
/// grow MCU-cost columns without mgmt depending on the hw layer.
class ComputeCostReporter {
 public:
  virtual ~ComputeCostReporter() = default;

  /// Totals since construction or the last Reset().
  virtual PredictorComputeCost ComputeCost() const = 0;
};

/// Runs `predictor` over every slot of `series` and collects one scored
/// point per predicted slot (size() - 1 points: the final boundary has no
/// successor).  The predictor is Reset() first, so the call is idempotent.
std::vector<PredictionPoint> RunPredictor(Predictor& predictor,
                                          const SlotSeries& series);

/// Convenience: run + score in one call, using the paper's protocol
/// defaults (days 21.., >= 10 % of the series' peak mean).
ErrorStats ScorePredictor(Predictor& predictor, const SlotSeries& series,
                          ErrorTarget target = ErrorTarget::kSlotMean,
                          const RoiFilter& filter = {});

}  // namespace shep
