#include "core/wcma_fixed.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace shep {

namespace {
/// μ below kNightEpsilonW is treated as night (η undefined -> neutral 1),
/// mirroring the double implementation's guard at a threshold representable
/// after input scaling (1 mW × 256 = 0.256 in Q16.16).
const Fx kNightEpsilon = Fx::FromDouble(kNightEpsilonW * FixedWcma::kInputScale);
}  // namespace

FixedWcma::FixedWcma(const WcmaParams& params, int slots_per_day)
    : params_(params), slots_per_day_(slots_per_day) {
  params_.Validate();
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  SHEP_REQUIRE(params_.slots_k < slots_per_day_,
               "K must be smaller than the number of slots per day");
  alpha_ = Fx::FromDouble(params_.alpha);
  one_minus_alpha_ = Fx::One() - alpha_;
  alpha_is_zero_ = alpha_.raw() == 0;
  alpha_is_one_ = alpha_.raw() == Fx::One().raw();
  const auto n = static_cast<std::size_t>(slots_per_day_);
  const auto d = static_cast<std::size_t>(params_.days);
  history_.assign(d * n, Fx::Zero());
  column_sum_.assign(n, Fx::Zero());
  current_day_.assign(n, Fx::Zero());
  theta_rom_.resize(static_cast<std::size_t>(params_.slots_k));
  for (int k = 1; k <= params_.slots_k; ++k) {
    theta_rom_[static_cast<std::size_t>(k - 1)] =
        Fx::FromDouble(static_cast<double>(k) / params_.slots_k);
  }
}

Fx FixedWcma::MuOf(std::size_t slot, OpCounts& ops) const {
  SHEP_DCHECK(stored_days_ > 0, "MuOf with no history");
  // Running column sum divided by the number of stored days: one load and
  // one software division on the MCU.
  ops.load += 1;
  ops.div += 1;
  return column_sum_[slot] / Fx::FromInt(static_cast<int>(stored_days_));
}

void FixedWcma::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  const Fx sample = Fx::FromDouble(boundary_sample * kInputScale);
  ++observe_calls_;
  OpCounts ops;

  // Record (sample, μ as of now) for the Φ window.
  Fx mu = sample;
  ops.branch += 1;  // "any history yet?"
  if (stored_days_ > 0) mu = MuOf(next_slot_, ops);
  recent_.push_back(RecentSlot{sample, mu});
  ops.store += 2;
  ops.branch += 1;  // window-full check
  while (recent_.size() > static_cast<std::size_t>(params_.slots_k)) {
    recent_.pop_front();
  }

  current_day_[next_slot_] = sample;
  ops.store += 1;
  last_sample_ = sample;
  has_sample_ = true;

  ++next_slot_;
  ops.add += 1;      // slot counter increment
  ops.branch += 1;   // end-of-day check
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    // Day rollover: fold the finished day into the ring and the running
    // column sums (subtract the evicted row, add the new one).
    const auto n = static_cast<std::size_t>(slots_per_day_);
    const bool evicting =
        stored_days_ == static_cast<std::size_t>(params_.days);
    for (std::size_t j = 0; j < n; ++j) {
      if (evicting) {
        column_sum_[j] = column_sum_[j] - history_[next_row_ * n + j];
        ops.load += 1;
        ops.add += 1;
      }
      column_sum_[j] = column_sum_[j] + current_day_[j];
      history_[next_row_ * n + j] = current_day_[j];
      ops.load += 2;
      ops.add += 1;
      ops.store += 2;
    }
    next_row_ = (next_row_ + 1) % static_cast<std::size_t>(params_.days);
    if (!evicting) ++stored_days_;
    next_slot_ = 0;
  }
  observe_ops_ += ops;
}

double FixedWcma::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  ++predict_calls_;
  OpCounts ops;

  Fx result;
  ops.branch += 1;  // α == 1 fast path
  if (alpha_is_one_) {
    result = last_sample_;
    ops.load += 1;
  } else {
    // Conditioned-average term: μ_D(n+1) · Φ_K.
    Fx conditioned;
    ops.branch += 1;  // history present?
    if (stored_days_ == 0) {
      conditioned = last_sample_;
      ops.load += 1;
    } else {
      const Fx mu_next = MuOf(next_slot_, ops);
      // Φ = Σ θ(k)·η(k) / Σ θ(k); Σθ comes from ROM (precomputed per K).
      Fx num = Fx::Zero();
      Fx den = Fx::Zero();
      const std::size_t k_avail = recent_.size();
      for (std::size_t i = 0; i < k_avail; ++i) {
        // θ index is scaled so the newest retained slot gets weight 1 even
        // during warm-up when fewer than K slots exist.
        const std::size_t theta_index =
            theta_rom_.size() - k_avail + i;
        const Fx theta = theta_rom_[theta_index];
        ops.load += 1;
        const auto& r = recent_[i];
        ops.load += 2;
        Fx eta;
        ops.branch += 1;  // night guard
        if (r.mu > kNightEpsilon) {
          eta = r.sample / r.mu;
          ops.div += 1;
        } else {
          eta = Fx::One();
        }
        num = num + theta * eta;
        den = den + theta;
        ops.mul += 1;
        ops.add += 2;
      }
      const Fx phi = den > Fx::Zero() ? num / den : Fx::One();
      ops.div += 1;
      conditioned = mu_next * phi;
      ops.mul += 1;
    }
    ops.branch += 1;  // α == 0 fast path
    if (alpha_is_zero_) {
      result = conditioned;
    } else {
      result = alpha_ * last_sample_ + one_minus_alpha_ * conditioned;
      ops.mul += 2;
      ops.add += 1;
      ops.load += 1;
    }
  }

  last_predict_ops_ = ops;
  predict_ops_ += ops;
  // Clamp negatives (saturating arithmetic can in principle go below zero
  // on pathological inputs; power is non-negative).
  if (result < Fx::Zero()) result = Fx::Zero();
  return result.ToDouble() / kInputScale;
}

bool FixedWcma::Ready() const {
  return stored_days_ == static_cast<std::size_t>(params_.days);
}

void FixedWcma::Reset() {
  const auto n = static_cast<std::size_t>(slots_per_day_);
  const auto d = static_cast<std::size_t>(params_.days);
  history_.assign(d * n, Fx::Zero());
  column_sum_.assign(n, Fx::Zero());
  current_day_.assign(n, Fx::Zero());
  stored_days_ = 0;
  next_row_ = 0;
  next_slot_ = 0;
  last_sample_ = Fx::Zero();
  has_sample_ = false;
  recent_.clear();
  observe_ops_ = OpCounts{};
  predict_ops_ = OpCounts{};
  last_predict_ops_ = OpCounts{};
  observe_calls_ = 0;
  predict_calls_ = 0;
}

std::string FixedWcma::Name() const {
  std::ostringstream os;
  os << "FixedWCMA(a=" << params_.alpha << ",D=" << params_.days
     << ",K=" << params_.slots_k << ")";
  return os.str();
}

}  // namespace shep
