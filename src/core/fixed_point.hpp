// fixed_point.hpp — Q16.16 fixed-point arithmetic for the MCU build.
//
// The MSP430F1611 the paper measures on has no FPU; a deployed predictor
// uses integer arithmetic.  Fx is a signed Q16.16 value (range ±32768 with
// ~1.5e-5 resolution) with saturating +,-,*,/ — saturation rather than
// wrap-around is the conventional choice for signal-processing code because
// an overflowing prediction should clamp, not alias to a negative power.
// Harvested-power values (a few watts) and brightness ratios (Φ, η — order
// 0.1..10) sit comfortably inside the format; the property tests in
// tests/test_fixed_point.cpp verify round-trip accuracy bounds.
#pragma once

#include <cstdint>
#include <limits>

namespace shep {

/// Signed Q16.16 fixed-point number with saturating arithmetic.
class Fx {
 public:
  static constexpr int kFracBits = 16;
  static constexpr std::int64_t kOne = std::int64_t{1} << kFracBits;

  constexpr Fx() = default;

  /// Converts a double, saturating at the format limits.
  static constexpr Fx FromDouble(double v) {
    // Scale then clamp in the wider double domain to avoid UB on overflow.
    const double scaled = v * static_cast<double>(kOne);
    if (scaled >= static_cast<double>(std::numeric_limits<std::int32_t>::max()))
      return FromRaw(std::numeric_limits<std::int32_t>::max());
    if (scaled <= static_cast<double>(std::numeric_limits<std::int32_t>::min()))
      return FromRaw(std::numeric_limits<std::int32_t>::min());
    return FromRaw(static_cast<std::int32_t>(scaled));
  }

  static constexpr Fx FromInt(int v) {
    return FromDouble(static_cast<double>(v));
  }

  static constexpr Fx FromRaw(std::int32_t raw) {
    Fx f;
    f.raw_ = raw;
    return f;
  }

  constexpr std::int32_t raw() const { return raw_; }

  constexpr double ToDouble() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  friend constexpr Fx operator+(Fx a, Fx b) {
    return FromClamped(std::int64_t{a.raw_} + b.raw_);
  }
  friend constexpr Fx operator-(Fx a, Fx b) {
    return FromClamped(std::int64_t{a.raw_} - b.raw_);
  }
  friend constexpr Fx operator*(Fx a, Fx b) {
    return FromClamped((std::int64_t{a.raw_} * b.raw_) >> kFracBits);
  }
  /// Division saturates on divide-by-zero (sign of the numerator).
  friend constexpr Fx operator/(Fx a, Fx b) {
    if (b.raw_ == 0) {
      return FromRaw(a.raw_ >= 0
                         ? std::numeric_limits<std::int32_t>::max()
                         : std::numeric_limits<std::int32_t>::min());
    }
    return FromClamped((std::int64_t{a.raw_} << kFracBits) / b.raw_);
  }

  friend constexpr bool operator==(Fx a, Fx b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator<(Fx a, Fx b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Fx a, Fx b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Fx a, Fx b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Fx a, Fx b) { return a.raw_ >= b.raw_; }

  static constexpr Fx Zero() { return FromRaw(0); }
  static constexpr Fx One() { return FromRaw(static_cast<std::int32_t>(kOne)); }

 private:
  static constexpr Fx FromClamped(std::int64_t wide) {
    if (wide > std::numeric_limits<std::int32_t>::max())
      return FromRaw(std::numeric_limits<std::int32_t>::max());
    if (wide < std::numeric_limits<std::int32_t>::min())
      return FromRaw(std::numeric_limits<std::int32_t>::min());
    return FromRaw(static_cast<std::int32_t>(wide));
  }

  std::int32_t raw_ = 0;
};

}  // namespace shep
