// baselines.hpp — trivial reference predictors.
//
// These bracket the design space the paper explores:
//  * Persistence      == WCMA with α = 1 (the "α → 1 at N = 288" limit the
//                        paper observes in Table III);
//  * SlotMovingAverage == WCMA with α = 0 and Φ ≡ 1 (the unconditioned
//                        historical average, i.e. what EWMA/D-day averaging
//                        schemes reduce to);
//  * PreviousDay       predicts the same slot of yesterday (the weakest
//                        "24-hour cycle" exploit).
// Tests use these identities to cross-validate the WCMA implementation.
#pragma once

#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "timeseries/history.hpp"

namespace shep {

/// ê(n+1) = ẽ(n): tomorrow-looks-like-right-now.
class Persistence final : public Predictor {
 public:
  Persistence() = default;

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override { return has_sample_; }
  void Reset() override;
  std::string Name() const override { return "Persistence"; }

 private:
  double last_sample_ = 0.0;
  bool has_sample_ = false;
};

/// ê(n+1) = μ_D(n+1): plain D-day average of the predicted slot, no
/// conditioning, no persistence blend.
class SlotMovingAverage final : public Predictor {
 public:
  SlotMovingAverage(int days, int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override { return history_.full(); }
  void Reset() override;
  std::string Name() const override;

 private:
  int days_;
  int slots_per_day_;
  HistoryMatrix history_;
  std::vector<double> current_day_;
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;
};

/// ê(n+1) = e(yesterday, n+1).
class PreviousDay final : public Predictor {
 public:
  explicit PreviousDay(int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override { return history_.stored_days() >= 1; }
  void Reset() override;
  std::string Name() const override { return "PreviousDay"; }

 private:
  int slots_per_day_;
  HistoryMatrix history_;
  std::vector<double> current_day_;
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;
};

}  // namespace shep
