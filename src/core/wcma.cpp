#include "core/wcma.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace shep {

void WcmaParams::Validate() const {
  SHEP_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  SHEP_REQUIRE(days >= 1, "D must be >= 1");
  SHEP_REQUIRE(slots_k >= 1, "K must be >= 1");
}

Wcma::Wcma(const WcmaParams& params, int slots_per_day,
           WcmaWeighting weighting)
    : params_(params),
      slots_per_day_(slots_per_day),
      weighting_(weighting),
      history_(static_cast<std::size_t>(params.days),
               static_cast<std::size_t>(slots_per_day)) {
  params_.Validate();
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  SHEP_REQUIRE(params_.slots_k < slots_per_day_,
               "K must be smaller than the number of slots per day");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
}

void Wcma::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  // Record the historical average the conditioning factor should compare
  // this sample against *as seen now* (before today is pushed into the
  // matrix); this also makes day-boundary wrap-around of the K window
  // automatic.
  double mu = boundary_sample;  // neutral when no history yet (η = 1)
  if (history_.stored_days() > 0) mu = history_.Mu(next_slot_);
  recent_.push_back(RecentSlot{boundary_sample, mu});
  while (recent_.size() > static_cast<std::size_t>(params_.slots_k)) {
    recent_.pop_front();
  }

  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;

  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }
}

double Wcma::CurrentPhi() const {
  if (recent_.empty()) return 1.0;
  const auto k_avail = recent_.size();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < k_avail; ++i) {
    // i = 0 is the oldest retained slot; the paper's index k runs 1..K with
    // k = K at the most recent slot, θ(k) = k/K.
    const double theta =
        weighting_ == WcmaWeighting::kRamp
            ? static_cast<double>(i + 1) / static_cast<double>(k_avail)
            : 1.0;
    const auto& r = recent_[i];
    const double eta =
        r.mu > kNightEpsilonW ? r.sample / r.mu : 1.0;
    num += theta * eta;
    den += theta;
  }
  SHEP_DCHECK(den > 0.0, "phi weights must be positive");
  return num / den;
}

double Wcma::CurrentMu(std::size_t slot) const {
  SHEP_REQUIRE(slot < static_cast<std::size_t>(slots_per_day_),
               "slot index out of range");
  SHEP_REQUIRE(history_.stored_days() > 0, "no history stored yet");
  return history_.Mu(slot);
}

double Wcma::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  // The slot to predict is the one the next Observe() will fill.
  const std::size_t predicted_slot = next_slot_;

  double conditioned;
  if (history_.stored_days() == 0) {
    // No past days at all: the conditioned-average term degenerates to
    // persistence.
    conditioned = last_sample_;
  } else {
    conditioned = history_.Mu(predicted_slot) * CurrentPhi();
  }
  return params_.alpha * last_sample_ + (1.0 - params_.alpha) * conditioned;
}

bool Wcma::Ready() const { return history_.full(); }

void Wcma::Reset() {
  history_ = HistoryMatrix(static_cast<std::size_t>(params_.days),
                           static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
  recent_.clear();
}

std::string Wcma::Name() const {
  std::ostringstream os;
  os << "WCMA(a=" << params_.alpha << ",D=" << params_.days
     << ",K=" << params_.slots_k
     << (weighting_ == WcmaWeighting::kUniform ? ",uniform" : "") << ")";
  return os.str();
}

}  // namespace shep
