#include "core/ewma.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace shep {

Ewma::Ewma(double weight, int slots_per_day)
    : weight_(weight), slots_per_day_(slots_per_day) {
  SHEP_REQUIRE(weight_ >= 0.0 && weight_ <= 1.0,
               "EWMA weight must be in [0,1]");
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  slot_ewma_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  seeded_.assign(static_cast<std::size_t>(slots_per_day_), false);
}

void Ewma::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  if (!seeded_[next_slot_]) {
    slot_ewma_[next_slot_] = boundary_sample;
    seeded_[next_slot_] = true;
  } else {
    slot_ewma_[next_slot_] = weight_ * boundary_sample +
                             (1.0 - weight_) * slot_ewma_[next_slot_];
  }
  last_sample_ = boundary_sample;
  has_sample_ = true;
  next_slot_ = (next_slot_ + 1) % static_cast<std::size_t>(slots_per_day_);
}

double Ewma::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  if (!seeded_[next_slot_]) return last_sample_;  // first day: persistence
  return slot_ewma_[next_slot_];
}

bool Ewma::Ready() const {
  return std::all_of(seeded_.begin(), seeded_.end(),
                     [](bool b) { return b; });
}

void Ewma::Reset() {
  std::fill(slot_ewma_.begin(), slot_ewma_.end(), 0.0);
  std::fill(seeded_.begin(), seeded_.end(), false);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
}

std::string Ewma::Name() const {
  std::ostringstream os;
  os << "EWMA(w=" << weight_ << ")";
  return os.str();
}

}  // namespace shep
