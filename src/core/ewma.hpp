// ewma.hpp — the EWMA predictor of Kansal et al. (paper ref. [2]).
//
// The first published solar predictor for harvesting nodes: keep one
// exponentially-weighted moving average per slot-of-day, updated once per
// day, and predict the next slot with its EWMA.  It exploits the 24-hour
// cycle but — unlike WCMA's Φ_K — has no notion of "today is cloudier than
// usual", so it lags weather changes by days.  Included as the baseline the
// paper's reference list positions WCMA against.
#pragma once

#include <string>
#include <vector>

#include "core/predictor.hpp"

namespace shep {

/// Per-slot exponentially weighted moving average predictor.
class Ewma final : public Predictor {
 public:
  /// \param weight         λ ∈ [0,1]: contribution of the newest
  ///                       observation (Kansal et al. use 0.5).
  /// \param slots_per_day  N of the deployment.
  Ewma(double weight, int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  double weight() const { return weight_; }

 private:
  double weight_;
  int slots_per_day_;
  std::vector<double> slot_ewma_;
  std::vector<bool> seeded_;   ///< first observation seeds the average.
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;
};

}  // namespace shep
