// adaptive.hpp — a realizable dynamic (α, K) selector.
//
// The paper's Sec. IV-C bounds the gains of per-prediction parameter
// adaptation with a clairvoyant oracle and concludes that "it is promising
// to develop dynamic parameters selection algorithms".  This class is such
// an algorithm — the extension the paper motivates but does not build:
//
//   * maintain ONE shared WCMA state (history matrix, recent-slot window),
//   * at every slot evaluate Eq. 1 for a small candidate bank of (α, K)
//     pairs (cheap: the Φ_K values for all K come from one pass over the
//     shared window, and α only blends two precomputed terms),
//   * score each candidate with an exponentially discounted absolute
//     percentage error against the TRAPEZOIDAL slot-mean proxy
//     (e(n)+e(n+1))/2 — not against the raw boundary sample.  This matters:
//     the deployment objective is the paper's MAPE (slot mean), and
//     Sec. III/Table II show that optimizing against boundary samples
//     drags α toward 0; the trapezoid is the best causal slot-mean
//     estimate two boundary samples can give,
//   * predict with the currently best-scoring candidate.
//
// This is "follow the discounted leader" over the paper's own parameter
// grid.  It is fully causal — it uses nothing the deployed node does not
// have — so its accuracy must land between the best static configuration
// and the clairvoyant bound of sweep/dynamic.hpp; tests and
// bench/ext_dynamic assert exactly that sandwich.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "timeseries/history.hpp"

namespace shep {

/// Configuration of the adaptive selector.
struct AdaptiveWcmaParams {
  /// Candidate α values (each in [0,1]).  Defaults to the paper's 0.1 grid
  /// interior.
  std::vector<double> alphas{0.1, 0.3, 0.5, 0.7, 0.9};
  /// Candidate K values (each >= 1, < N).
  std::vector<int> ks{1, 2, 4, 6};
  /// History depth D shared by all candidates.
  int days = 10;
  /// Per-slot discount of past candidate losses; 0.97 gives a ~33-slot
  /// (two-thirds-of-a-day at N=48) memory — long enough to rank candidates
  /// stably, short enough to follow multi-day weather regime changes.
  double discount = 0.97;

  void Validate() const;

  std::size_t candidates() const { return alphas.size() * ks.size(); }
};

/// Streaming WCMA with online (α, K) selection.
class AdaptiveWcma final : public Predictor {
 public:
  AdaptiveWcma(const AdaptiveWcmaParams& params, int slots_per_day);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  const AdaptiveWcmaParams& params() const { return params_; }

  /// Index of the currently selected candidate (row-major α × K).
  std::size_t selected_candidate() const { return selected_; }

  /// The (α, K) of the currently selected candidate.
  double selected_alpha() const;
  int selected_k() const;

  /// How many slots each candidate has been selected for; diagnostic for
  /// tests and the extension bench ("is the selector actually adapting?").
  const std::vector<std::uint64_t>& selection_counts() const {
    return selection_counts_;
  }

 private:
  struct RecentSlot {
    double sample;
    double mu;
  };

  /// Candidate predictions for the upcoming slot, refreshed on Observe.
  void RefreshCandidatePredictions();

  AdaptiveWcmaParams params_;
  int slots_per_day_;

  HistoryMatrix history_;
  std::vector<double> current_day_;
  std::size_t next_slot_ = 0;
  double last_sample_ = 0.0;
  bool has_sample_ = false;
  std::deque<RecentSlot> recent_;
  int max_k_ = 1;

  std::vector<double> candidate_pred_;   ///< ê_c for the upcoming slot.
  std::vector<double> candidate_loss_;   ///< discounted APE per candidate.
  std::vector<std::uint64_t> selection_counts_;
  std::size_t selected_ = 0;
  bool has_candidate_preds_ = false;
};

}  // namespace shep
