#include "core/baselines.hpp"

#include <sstream>

#include "common/check.hpp"

namespace shep {

// ---------------------------------------------------------------- Persistence

void Persistence::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  last_sample_ = boundary_sample;
  has_sample_ = true;
}

double Persistence::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  return last_sample_;
}

void Persistence::Reset() {
  last_sample_ = 0.0;
  has_sample_ = false;
}

// --------------------------------------------------------- SlotMovingAverage

SlotMovingAverage::SlotMovingAverage(int days, int slots_per_day)
    : days_(days),
      slots_per_day_(slots_per_day),
      history_(static_cast<std::size_t>(days),
               static_cast<std::size_t>(slots_per_day)) {
  SHEP_REQUIRE(days_ >= 1, "D must be >= 1");
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
}

void SlotMovingAverage::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;
  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }
}

double SlotMovingAverage::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  if (history_.stored_days() == 0) return last_sample_;
  return history_.Mu(next_slot_);
}

void SlotMovingAverage::Reset() {
  history_ = HistoryMatrix(static_cast<std::size_t>(days_),
                           static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
}

std::string SlotMovingAverage::Name() const {
  std::ostringstream os;
  os << "SlotMovingAverage(D=" << days_ << ")";
  return os.str();
}

// --------------------------------------------------------------- PreviousDay

PreviousDay::PreviousDay(int slots_per_day)
    : slots_per_day_(slots_per_day),
      history_(1, static_cast<std::size_t>(slots_per_day)) {
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
}

void PreviousDay::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");
  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;
  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }
}

double PreviousDay::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  if (history_.stored_days() == 0) return last_sample_;
  return history_.at_age(0, next_slot_);
}

void PreviousDay::Reset() {
  history_ = HistoryMatrix(1, static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
}

}  // namespace shep
