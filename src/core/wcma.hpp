// wcma.hpp — the solar energy predictor evaluated by the paper (Eqs. 1–5).
//
// The algorithm of Recas et al. [5] — a Weather-Conditioned Moving Average —
// predicts the power at the next slot boundary as a blend of
//
//     ê(n+1) = α·ẽ(n)  +  (1−α)·μ_D(n+1)·Φ_K
//              ^persistence   ^conditioned-average
//
// where μ_D(n+1) is the average of the same slot over the last D days
// (Eq. 2) and Φ_K conditions that average on how bright/cloudy TODAY is
// relative to those days: a weighted average (weights θ(k)=k/K rising to 1
// at the most recent slot, Eq. 5) of the ratios η(k) between today's
// measured slots and their historical averages (Eqs. 3–4).
//
// Parameters (paper Sec. II):
//   α ∈ [0,1]  — weighting between the two terms,
//   D ≥ 1      — past days kept in the history matrix (memory cost D·N),
//   K ≥ 1      — today's slots entering the conditioning factor,
//   N          — slots per day (the prediction horizon is T = 86400/N s).
//
// Numerical edge cases are defined explicitly here (the paper leaves them
// implicit; all are outside the region of interest of the evaluation):
//   * η(k) with μ_D ≈ 0 (night): the ratio is taken as 1 (neutral).
//   * Before the history matrix holds any day, the conditioned-average term
//     falls back to the current sample (pure persistence).
//   * Fewer than K slots observed so far: Φ uses the available ones.
#pragma once

#include <deque>
#include <string>

#include "core/predictor.hpp"
#include "timeseries/history.hpp"

namespace shep {

/// Tuning parameters of the WCMA predictor.
struct WcmaParams {
  double alpha = 0.7;  ///< persistence weight α ∈ [0,1].
  int days = 20;       ///< D: history depth in days (>= 1).
  int slots_k = 3;     ///< K: conditioning window in slots (>= 1).

  /// Throws std::invalid_argument when out of range.
  void Validate() const;
};

/// Conditioning-weight profiles.  The paper uses the ramp θ(k)=k/K (Eq. 5);
/// the uniform variant exists for the ablation called out in DESIGN.md §5.
enum class WcmaWeighting {
  kRamp,     ///< θ(k) = k/K (paper).
  kUniform,  ///< θ(k) = 1.
};

/// Streaming implementation of the predictor.
class Wcma final : public Predictor {
 public:
  /// \param slots_per_day  N of the deployment (must match the series the
  ///                       predictor is run against).
  Wcma(const WcmaParams& params, int slots_per_day,
       WcmaWeighting weighting = WcmaWeighting::kRamp);

  void Observe(double boundary_sample) override;
  double PredictNext() const override;
  bool Ready() const override;
  void Reset() override;
  std::string Name() const override;

  const WcmaParams& params() const { return params_; }

  /// The conditioning factor Φ_K that the next PredictNext() will use;
  /// exposed for tests and for the dynamic-parameter study.
  double CurrentPhi() const;

  /// μ_D(j) currently stored for slot-of-day j (requires some history).
  double CurrentMu(std::size_t slot) const;

 private:
  /// One elapsed slot of the current day, as used by Φ: the measured sample
  /// and the historical average that was current when it was measured.
  struct RecentSlot {
    double sample;
    double mu;
  };

  WcmaParams params_;
  int slots_per_day_;
  WcmaWeighting weighting_;

  HistoryMatrix history_;
  std::vector<double> current_day_;  ///< boundary samples observed today.
  std::size_t next_slot_ = 0;        ///< slot-of-day the next Observe fills.
  double last_sample_ = 0.0;
  bool has_sample_ = false;
  std::deque<RecentSlot> recent_;    ///< last <= K elapsed slots.
};

}  // namespace shep
