#include "core/predictor.hpp"

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace shep {

std::vector<PredictionPoint> RunPredictor(Predictor& predictor,
                                          const SlotSeries& series) {
  SHEP_REQUIRE(series.size() >= 2, "need at least two slots to predict");
  predictor.Reset();
  std::vector<PredictionPoint> points;
  points.reserve(series.size() - 1);
  for (std::size_t g = 0; g + 1 < series.size(); ++g) {
    predictor.Observe(series.boundary(g));
    PredictionPoint p;
    p.day = series.day_of(g);
    p.slot = series.slot_of(g);
    p.predicted = predictor.PredictNext();
    p.boundary = series.boundary(g + 1);
    p.mean = series.mean(g);
    points.push_back(p);
  }
  return points;
}

ErrorStats ScorePredictor(Predictor& predictor, const SlotSeries& series,
                          ErrorTarget target, const RoiFilter& filter) {
  const auto points = RunPredictor(predictor, series);
  const double peak = target == ErrorTarget::kSlotMean
                          ? series.peak_mean()
                          : MaxValue(series.boundaries());
  return EvaluateErrors(points, target, peak, filter);
}

}  // namespace shep
