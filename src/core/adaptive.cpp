#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace shep {

void AdaptiveWcmaParams::Validate() const {
  SHEP_REQUIRE(!alphas.empty() && !ks.empty(),
               "candidate bank must be non-empty");
  for (double a : alphas) {
    SHEP_REQUIRE(a >= 0.0 && a <= 1.0, "candidate alpha must be in [0,1]");
  }
  for (int k : ks) SHEP_REQUIRE(k >= 1, "candidate K must be >= 1");
  SHEP_REQUIRE(days >= 1, "D must be >= 1");
  SHEP_REQUIRE(discount >= 0.0 && discount < 1.0,
               "discount must be in [0,1)");
}

AdaptiveWcma::AdaptiveWcma(const AdaptiveWcmaParams& params,
                           int slots_per_day)
    : params_(params),
      slots_per_day_(slots_per_day),
      history_(static_cast<std::size_t>(std::max(params.days, 1)),
               static_cast<std::size_t>(std::max(slots_per_day, 1))) {
  params_.Validate();
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  max_k_ = *std::max_element(params_.ks.begin(), params_.ks.end());
  SHEP_REQUIRE(max_k_ < slots_per_day_, "candidate K must be < N");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  candidate_pred_.assign(params_.candidates(), 0.0);
  candidate_loss_.assign(params_.candidates(), 0.0);
  selection_counts_.assign(params_.candidates(), 0);
}

void AdaptiveWcma::RefreshCandidatePredictions() {
  const std::size_t predicted_slot = next_slot_;
  double mu_next = -1.0;
  if (history_.stored_days() > 0) mu_next = history_.Mu(predicted_slot);

  // Φ for every candidate K in one pass per K over the shared window.
  std::vector<double> phi_by_k(params_.ks.size(), 1.0);
  for (std::size_t ki = 0; ki < params_.ks.size(); ++ki) {
    const auto want = static_cast<std::size_t>(params_.ks[ki]);
    const std::size_t k_avail = std::min(want, recent_.size());
    if (k_avail == 0) continue;
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < k_avail; ++i) {
      const double theta =
          static_cast<double>(i + 1) / static_cast<double>(k_avail);
      const auto& r = recent_[recent_.size() - k_avail + i];
      const double eta =
          r.mu > kNightEpsilonW ? r.sample / r.mu : 1.0;
      num += theta * eta;
      den += theta;
    }
    phi_by_k[ki] = num / den;
  }

  for (std::size_t ai = 0; ai < params_.alphas.size(); ++ai) {
    const double alpha = params_.alphas[ai];
    for (std::size_t ki = 0; ki < params_.ks.size(); ++ki) {
      const double conditioned =
          mu_next >= 0.0 ? mu_next * phi_by_k[ki] : last_sample_;
      candidate_pred_[ai * params_.ks.size() + ki] =
          alpha * last_sample_ + (1.0 - alpha) * conditioned;
    }
  }
  has_candidate_preds_ = true;
}

void AdaptiveWcma::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");

  // 1. Settle yesterday's bets: score every candidate's standing
  //    prediction against the slot that just completed.  The reference is
  //    the trapezoidal mean of its two boundary samples — the causal proxy
  //    for the slot-mean target the deployment is actually scored on
  //    (see file comment in adaptive.hpp).
  const double slot_mean_proxy = 0.5 * (last_sample_ + boundary_sample);
  if (has_candidate_preds_ && slot_mean_proxy > kNightEpsilonW) {
    for (std::size_t c = 0; c < candidate_loss_.size(); ++c) {
      const double ape =
          std::fabs(slot_mean_proxy - candidate_pred_[c]) / slot_mean_proxy;
      candidate_loss_[c] = params_.discount * candidate_loss_[c] +
                           (1.0 - params_.discount) * ape;
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidate_loss_.size(); ++c) {
      if (candidate_loss_[c] < candidate_loss_[best]) best = c;
    }
    selected_ = best;
  }
  ++selection_counts_[selected_];

  // 2. Standard WCMA state update (mirrors core/wcma.cpp).
  double mu = boundary_sample;
  if (history_.stored_days() > 0) mu = history_.Mu(next_slot_);
  recent_.push_back(RecentSlot{boundary_sample, mu});
  while (recent_.size() > static_cast<std::size_t>(max_k_)) {
    recent_.pop_front();
  }
  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;
  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }

  // 3. Place the new bets for the upcoming slot.
  RefreshCandidatePredictions();
}

double AdaptiveWcma::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  SHEP_DCHECK(has_candidate_preds_, "candidate predictions missing");
  return std::max(0.0, candidate_pred_[selected_]);
}

bool AdaptiveWcma::Ready() const { return history_.full(); }

void AdaptiveWcma::Reset() {
  history_ = HistoryMatrix(static_cast<std::size_t>(params_.days),
                           static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
  recent_.clear();
  std::fill(candidate_pred_.begin(), candidate_pred_.end(), 0.0);
  std::fill(candidate_loss_.begin(), candidate_loss_.end(), 0.0);
  std::fill(selection_counts_.begin(), selection_counts_.end(), 0);
  selected_ = 0;
  has_candidate_preds_ = false;
}

double AdaptiveWcma::selected_alpha() const {
  return params_.alphas[selected_ / params_.ks.size()];
}

int AdaptiveWcma::selected_k() const {
  return params_.ks[selected_ % params_.ks.size()];
}

std::string AdaptiveWcma::Name() const {
  std::ostringstream os;
  os << "AdaptiveWCMA(" << params_.alphas.size() << "x" << params_.ks.size()
     << " bank,D=" << params_.days << ",discount=" << params_.discount
     << ")";
  return os.str();
}

}  // namespace shep
