#include "core/ar.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/constants.hpp"
#include "common/mathutil.hpp"

namespace shep {

namespace {
/// Ratios are clamped into a sane band before entering the regression so
/// a single dawn outlier cannot destabilise the covariance.
constexpr double kMaxRatio = 5.0;
}  // namespace

void ArParams::Validate() const {
  SHEP_REQUIRE(order >= 1 && order <= 16, "AR order must be in [1,16]");
  SHEP_REQUIRE(days >= 1, "D must be >= 1");
  SHEP_REQUIRE(lambda > 0.0 && lambda <= 1.0,
               "forgetting factor must be in (0,1]");
  SHEP_REQUIRE(delta > 0.0, "initial covariance must be positive");
}

ArPredictor::ArPredictor(const ArParams& params, int slots_per_day)
    : params_(params),
      slots_per_day_(slots_per_day),
      history_(static_cast<std::size_t>(std::max(params.days, 1)),
               static_cast<std::size_t>(std::max(slots_per_day, 1))) {
  params_.Validate();
  SHEP_REQUIRE(slots_per_day_ >= 2, "need at least two slots per day");
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  const auto dim = static_cast<std::size_t>(params_.order + 1);
  theta_.assign(dim, 0.0);
  theta_[0] = 0.0;
  theta_[1] = 1.0;  // start as "ratio persists" — a sensible prior
  cov_.assign(dim * dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) cov_[i * dim + i] = params_.delta;
}

std::vector<double> ArPredictor::Features() const {
  const auto dim = static_cast<std::size_t>(params_.order + 1);
  std::vector<double> x(dim, 0.0);
  x[0] = 1.0;  // bias
  for (std::size_t lag = 0; lag < static_cast<std::size_t>(params_.order);
       ++lag) {
    if (lag < ratio_lags_.size()) {
      x[lag + 1] = ratio_lags_[ratio_lags_.size() - 1 - lag];
    } else {
      x[lag + 1] = 1.0;  // neutral ratio for missing history
    }
  }
  return x;
}

void ArPredictor::RlsUpdate(const std::vector<double>& x, double target) {
  const auto dim = x.size();
  // k = P x / (λ + xᵀ P x)
  std::vector<double> px(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      px[i] += cov_[i * dim + j] * x[j];
    }
  }
  double denom = params_.lambda;
  for (std::size_t i = 0; i < dim; ++i) denom += x[i] * px[i];
  SHEP_DCHECK(denom > 0.0, "RLS denominator must be positive");
  std::vector<double> k(dim);
  for (std::size_t i = 0; i < dim; ++i) k[i] = px[i] / denom;

  // θ += k (target − θᵀx)
  double innovation = target;
  for (std::size_t i = 0; i < dim; ++i) innovation -= theta_[i] * x[i];
  for (std::size_t i = 0; i < dim; ++i) theta_[i] += k[i] * innovation;

  // P = (P − k (P x)ᵀ) / λ
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      cov_[i * dim + j] =
          (cov_[i * dim + j] - k[i] * px[j]) / params_.lambda;
    }
  }
  ++updates_;
}

void ArPredictor::Observe(double boundary_sample) {
  SHEP_REQUIRE(boundary_sample >= 0.0, "power sample must be non-negative");

  // De-seasonalise: ratio against the slot's historical average, when both
  // are daylight values.
  double mu = -1.0;
  if (history_.stored_days() > 0) mu = history_.Mu(next_slot_);
  const bool lit = mu > kNightEpsilonW && boundary_sample > kNightEpsilonW;
  if (lit) {
    const double ratio = Clamp(boundary_sample / mu, 0.0, kMaxRatio);
    // Learn: the features BEFORE pushing this ratio predict it.
    if (ratio_lags_.size() >= static_cast<std::size_t>(params_.order)) {
      RlsUpdate(Features(), ratio);
    }
    ratio_lags_.push_back(ratio);
    while (ratio_lags_.size() > static_cast<std::size_t>(params_.order)) {
      ratio_lags_.pop_front();
    }
  } else {
    // Crossing night resets the dynamics; stale evening ratios do not
    // describe the next morning.
    ratio_lags_.clear();
  }

  current_day_[next_slot_] = boundary_sample;
  last_sample_ = boundary_sample;
  has_sample_ = true;
  ++next_slot_;
  if (next_slot_ == static_cast<std::size_t>(slots_per_day_)) {
    history_.PushDay(current_day_);
    next_slot_ = 0;
  }
}

double ArPredictor::PredictNext() const {
  SHEP_REQUIRE(has_sample_, "PredictNext before any Observe");
  if (history_.stored_days() == 0 || ratio_lags_.empty()) {
    return last_sample_;  // persistence fallback
  }
  const double mu_next = history_.Mu(next_slot_);
  if (mu_next <= kNightEpsilonW) return last_sample_;
  const auto x = Features();
  double ratio_hat = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) ratio_hat += theta_[i] * x[i];
  ratio_hat = Clamp(ratio_hat, 0.0, kMaxRatio);
  return mu_next * ratio_hat;
}

bool ArPredictor::Ready() const {
  return history_.full() &&
         updates_ >= static_cast<std::uint64_t>(10 * params_.order);
}

void ArPredictor::Reset() {
  history_ = HistoryMatrix(static_cast<std::size_t>(params_.days),
                           static_cast<std::size_t>(slots_per_day_));
  current_day_.assign(static_cast<std::size_t>(slots_per_day_), 0.0);
  next_slot_ = 0;
  last_sample_ = 0.0;
  has_sample_ = false;
  ratio_lags_.clear();
  const auto dim = static_cast<std::size_t>(params_.order + 1);
  theta_.assign(dim, 0.0);
  theta_[1] = 1.0;
  cov_.assign(dim * dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) cov_[i * dim + i] = params_.delta;
  updates_ = 0;
}

std::string ArPredictor::Name() const {
  std::ostringstream os;
  os << "AR(" << params_.order << ",D=" << params_.days
     << ",lambda=" << params_.lambda << ")";
  return os.str();
}

}  // namespace shep
