// error.hpp — prediction-error evaluation (paper Section III).
//
// The paper's methodological contribution: a prediction ê(n+1) is used by
// the energy manager to estimate the *energy* of the upcoming slot
// (ê·T), so it should be scored against the slot's MEAN power e̅ (Eq. 7,
// "MAPE") rather than against the instantaneous sample at the next slot
// boundary (Eq. 6, "MAPE′") as earlier work did.  Averaging uses Mean
// Absolute Percentage Error (Eq. 8) because it is scale-free (traces from
// different sites are comparable) and robust to the outliers that make
// RMSE misleading on bursty solar data.  RMSE / MAE / MBE are also provided
// so the library can reproduce that comparison.
//
// Two protocol details from Sec. IV-A are first-class here:
//  * evaluation covers days 21..365 (so the D=20 history matrix is full and
//    every D value scores the same sample set), and
//  * only slots whose reference value is at least 10 % of the trace peak
//    enter the average (night and dawn/dusk slots are predictable but
//    meaningless for energy management).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace shep {

/// One scored prediction: what the algorithm said for a slot, and the two
/// candidate ground-truth values for that same slot.
struct PredictionPoint {
  std::size_t day = 0;      ///< 0-based day index of the predicted slot.
  std::size_t slot = 0;     ///< slot-of-day of the predicted slot.
  double predicted = 0.0;   ///< ê for the slot.
  double boundary = 0.0;    ///< measured sample at the slot start (Eq. 6 ref).
  double mean = 0.0;        ///< measured mean power of the slot (Eq. 7 ref).
};

/// Which ground truth a metric compares against.
enum class ErrorTarget {
  kSlotMean,        ///< e̅: the paper's proposed reference (MAPE).
  kBoundarySample,  ///< e(n+1): the reference used by prior work (MAPE′).
};

/// Region-of-interest filter (paper Sec. III / IV-A).
struct RoiFilter {
  /// Only score slots whose reference value >= threshold_fraction * peak.
  double threshold_fraction = 0.10;
  /// First 0-based day included (paper: day index 20, i.e. "day 21").
  std::size_t first_day = 20;
  /// One-past-last day included; ~0 means "to the end of the trace".
  std::size_t end_day = static_cast<std::size_t>(-1);

  bool Includes(std::size_t day, double reference, double peak) const {
    return day >= first_day && day < end_day &&
           reference >= threshold_fraction * peak;
  }
};

/// Aggregate error statistics over the in-ROI points.
struct ErrorStats {
  double mape = 0.0;   ///< mean(|err| / reference)      — Eq. 8.
  double mae = 0.0;    ///< mean(|err|)                  (scale-dependent).
  double rmse = 0.0;   ///< sqrt(mean(err^2))            (outlier-sensitive).
  double mbe = 0.0;    ///< mean(err), signed bias (reference - predicted).
  std::size_t count = 0;  ///< number of points scored.

  bool valid() const { return count > 0; }
};

/// Scores `points` against the chosen reference.  `peak` is the maximum
/// reference value over the whole evaluation series (the paper's "peak");
/// must be positive when any point passes the filter.
ErrorStats EvaluateErrors(std::span<const PredictionPoint> points,
                          ErrorTarget target, double peak,
                          const RoiFilter& filter = {});

/// Absolute percentage error of a single point against the chosen
/// reference; helper for the clairvoyant dynamic-parameter study
/// (Sec. IV-C), which minimizes per-point error before averaging.
double AbsolutePercentageError(const PredictionPoint& point,
                               ErrorTarget target);

/// Reference value of a point for the chosen target.
double Reference(const PredictionPoint& point, ErrorTarget target);

/// Additional accuracy measures from Hyndman & Koehler, "Another look at
/// measures of forecast accuracy" (the paper's ref. [8], which motivates
/// its MAPE-vs-RMSE discussion).  All operate on the same in-ROI point set
/// as EvaluateErrors.
struct ExtendedStats {
  double smape = 0.0;    ///< symmetric MAPE: mean(2|err| / (ref + pred)).
  double mase = 0.0;     ///< MAE scaled by the persistence MAE (in-sample
                         ///< naive benchmark); < 1 beats persistence.
  double theils_u = 0.0; ///< sqrt(Σerr² / Σ naive-err²); < 1 beats naive.
  std::size_t count = 0;

  bool valid() const { return count > 0; }
};

/// Computes the scaled measures.  The naive benchmark for both MASE and
/// Theil's U is persistence over the SAME point sequence (previous in-ROI
/// reference predicts the next), matching Hyndman & Koehler's in-sample
/// scaling.  Needs at least two in-ROI points.
ExtendedStats EvaluateExtended(std::span<const PredictionPoint> points,
                               ErrorTarget target, double peak,
                               const RoiFilter& filter = {});

}  // namespace shep
