#include "metrics/error.hpp"

#include <cmath>

#include "common/check.hpp"

namespace shep {

double Reference(const PredictionPoint& point, ErrorTarget target) {
  return target == ErrorTarget::kSlotMean ? point.mean : point.boundary;
}

double AbsolutePercentageError(const PredictionPoint& point,
                               ErrorTarget target) {
  const double ref = Reference(point, target);
  SHEP_REQUIRE(ref > 0.0,
               "percentage error undefined for non-positive reference");
  return std::fabs(ref - point.predicted) / ref;
}

ExtendedStats EvaluateExtended(std::span<const PredictionPoint> points,
                               ErrorTarget target, double peak,
                               const RoiFilter& filter) {
  SHEP_REQUIRE(filter.threshold_fraction >= 0.0 &&
                   filter.threshold_fraction <= 1.0,
               "ROI threshold must be a fraction in [0,1]");
  ExtendedStats stats;
  double sum_smape = 0.0;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double naive_abs = 0.0;
  double naive_sq = 0.0;
  bool have_prev = false;
  double prev_ref = 0.0;
  std::size_t naive_count = 0;
  for (const auto& p : points) {
    const double ref = Reference(p, target);
    if (!filter.Includes(p.day, ref, peak) || ref <= 0.0) continue;
    const double err = ref - p.predicted;
    const double denom = ref + std::fabs(p.predicted);
    sum_smape += denom > 0.0 ? 2.0 * std::fabs(err) / denom : 0.0;
    sum_abs += std::fabs(err);
    sum_sq += err * err;
    if (have_prev) {
      const double naive_err = ref - prev_ref;
      naive_abs += std::fabs(naive_err);
      naive_sq += naive_err * naive_err;
      ++naive_count;
    }
    prev_ref = ref;
    have_prev = true;
    ++stats.count;
  }
  if (stats.count == 0) return stats;
  const double n = static_cast<double>(stats.count);
  stats.smape = sum_smape / n;
  if (naive_count > 0 && naive_abs > 0.0) {
    stats.mase = (sum_abs / n) /
                 (naive_abs / static_cast<double>(naive_count));
  }
  if (naive_count > 0 && naive_sq > 0.0) {
    stats.theils_u =
        std::sqrt((sum_sq / n) /
                  (naive_sq / static_cast<double>(naive_count)));
  }
  return stats;
}

ErrorStats EvaluateErrors(std::span<const PredictionPoint> points,
                          ErrorTarget target, double peak,
                          const RoiFilter& filter) {
  SHEP_REQUIRE(filter.threshold_fraction >= 0.0 &&
                   filter.threshold_fraction <= 1.0,
               "ROI threshold must be a fraction in [0,1]");
  ErrorStats stats;
  double sum_ape = 0.0;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double sum_err = 0.0;
  for (const auto& p : points) {
    const double ref = Reference(p, target);
    if (!filter.Includes(p.day, ref, peak)) continue;
    // ref >= threshold*peak > 0 whenever threshold > 0; guard anyway for
    // threshold == 0 configurations.
    if (ref <= 0.0) continue;
    const double err = ref - p.predicted;
    sum_ape += std::fabs(err) / ref;
    sum_abs += std::fabs(err);
    sum_sq += err * err;
    sum_err += err;
    ++stats.count;
  }
  if (stats.count == 0) return stats;
  const double n = static_cast<double>(stats.count);
  stats.mape = sum_ape / n;
  stats.mae = sum_abs / n;
  stats.rmse = std::sqrt(sum_sq / n);
  stats.mbe = sum_err / n;
  return stats;
}

}  // namespace shep
