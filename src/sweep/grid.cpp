#include "sweep/grid.hpp"

#include "common/check.hpp"

namespace shep {

ParamGrid ParamGrid::Paper() {
  ParamGrid g;
  for (int i = 0; i <= 10; ++i) g.alphas.push_back(i / 10.0);
  for (int d = 2; d <= 20; ++d) g.days.push_back(d);
  for (int k = 1; k <= 6; ++k) g.ks.push_back(k);
  return g;
}

ParamGrid ParamGrid::Coarse() {
  ParamGrid g;
  g.alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
  g.days = {2, 5, 10, 20};
  g.ks = {1, 2, 4};
  return g;
}

void ParamGrid::Validate() const {
  SHEP_REQUIRE(!alphas.empty() && !days.empty() && !ks.empty(),
               "parameter grid must be non-empty in every dimension");
  for (double a : alphas) {
    SHEP_REQUIRE(a >= 0.0 && a <= 1.0, "alpha values must lie in [0,1]");
  }
  for (int d : days) SHEP_REQUIRE(d >= 1, "D values must be >= 1");
  for (int k : ks) SHEP_REQUIRE(k >= 1, "K values must be >= 1");
}

}  // namespace shep
