#include "sweep/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/constants.hpp"
#include "common/mathutil.hpp"

namespace shep {

SweepContext::SweepContext(const PowerTrace& trace, int slots_per_day)
    : dataset_(trace.name()), series_(trace, slots_per_day) {
  SHEP_REQUIRE(series_.days() >= 2, "sweep needs at least two days");
  const std::size_t n = series_.slots_per_day();
  const std::size_t days = series_.days();
  cum_.assign((days + 1) * n, 0.0);
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t j = 0; j < n; ++j) {
      cum_[(d + 1) * n + j] = cum_[d * n + j] + series_.boundary(d * n + j);
    }
  }
  peak_mean_ = series_.peak_mean();
  peak_boundary_ = MaxValue(series_.boundaries());
}

double SweepContext::MuBefore(std::size_t day, std::size_t slot,
                              std::size_t window) const {
  SHEP_DCHECK(window >= 1 && window <= day, "mu window out of range");
  const std::size_t n = series_.slots_per_day();
  const double sum = cum_[day * n + slot] - cum_[(day - window) * n + slot];
  return sum / static_cast<double>(window);
}

SweepContext::DSeries SweepContext::BuildD(int days_d) const {
  SHEP_REQUIRE(days_d >= 1, "D must be >= 1");
  const auto dcap = static_cast<std::size_t>(days_d);
  const std::size_t n = series_.slots_per_day();
  const std::size_t total = points();
  DSeries out;
  out.days_d = days_d;
  out.mu_pred.resize(total);
  out.eta.resize(total);
  for (std::size_t g = 0; g < total; ++g) {
    const std::size_t day = g / n;
    const std::size_t slot = g % n;
    const double sample = series_.boundary(g);

    // η(g): today's sample vs the historical average current at observe
    // time (days strictly before `day`, capped at D).
    if (day == 0) {
      out.eta[g] = 1.0;
    } else {
      const double mu = MuBefore(day, slot, std::min(day, dcap));
      out.eta[g] = mu > kNightEpsilonW ? sample / mu : 1.0;
    }

    // μ_D of the predicted slot g+1 (after the Observe(g) rollover, so a
    // completed day d is already part of the history when predicting day
    // d+1's first slot).
    const std::size_t pday = (g + 1) / n;
    const std::size_t pslot = (g + 1) % n;
    if (pday == 0) {
      out.mu_pred[g] = -1.0;  // persistence-fallback sentinel
    } else {
      out.mu_pred[g] = MuBefore(pday, pslot, std::min(pday, dcap));
    }
  }
  return out;
}

std::vector<double> SweepContext::BuildQ(const DSeries& d, int slots_k,
                                         WcmaWeighting weighting) const {
  SHEP_REQUIRE(slots_k >= 1, "K must be >= 1");
  SHEP_REQUIRE(slots_k < slots_per_day(), "K must be < N");
  const std::size_t total = points();
  SHEP_CHECK(d.eta.size() == total, "DSeries does not match context");
  std::vector<double> q(total);
  for (std::size_t g = 0; g < total; ++g) {
    if (d.mu_pred[g] < 0.0) {
      q[g] = series_.boundary(g);  // persistence fallback on day 0
      continue;
    }
    // Φ over the last K (or as many as exist) η values ending at g.
    const std::size_t k_avail =
        std::min<std::size_t>(static_cast<std::size_t>(slots_k), g + 1);
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < k_avail; ++i) {
      const double theta =
          weighting == WcmaWeighting::kRamp
              ? static_cast<double>(i + 1) / static_cast<double>(k_avail)
              : 1.0;
      num += theta * d.eta[g - k_avail + 1 + i];
      den += theta;
    }
    q[g] = d.mu_pred[g] * (num / den);
  }
  return q;
}

SweepContext::ConfigScore SweepContext::Score(const std::vector<double>& q,
                                              double alpha,
                                              const RoiFilter& filter) const {
  SHEP_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  const std::size_t total = points();
  SHEP_CHECK(q.size() == total, "Q series does not match context");
  const std::size_t n = series_.slots_per_day();

  double m_ape = 0.0, m_abs = 0.0, m_sq = 0.0, m_err = 0.0;
  std::size_t m_count = 0;
  double b_ape = 0.0, b_abs = 0.0, b_sq = 0.0, b_err = 0.0;
  std::size_t b_count = 0;

  for (std::size_t g = 0; g < total; ++g) {
    const std::size_t day = g / n;
    const double pred = alpha * series_.boundary(g) + (1.0 - alpha) * q[g];

    const double ref_mean = series_.mean(g);
    if (filter.Includes(day, ref_mean, peak_mean_) && ref_mean > 0.0) {
      const double err = ref_mean - pred;
      m_ape += std::fabs(err) / ref_mean;
      m_abs += std::fabs(err);
      m_sq += err * err;
      m_err += err;
      ++m_count;
    }
    const double ref_bnd = series_.boundary(g + 1);
    if (filter.Includes(day, ref_bnd, peak_boundary_) && ref_bnd > 0.0) {
      const double err = ref_bnd - pred;
      b_ape += std::fabs(err) / ref_bnd;
      b_abs += std::fabs(err);
      b_sq += err * err;
      b_err += err;
      ++b_count;
    }
  }

  ConfigScore score;
  if (m_count > 0) {
    const double c = static_cast<double>(m_count);
    score.mean.mape = m_ape / c;
    score.mean.mae = m_abs / c;
    score.mean.rmse = std::sqrt(m_sq / c);
    score.mean.mbe = m_err / c;
    score.mean.count = m_count;
  }
  if (b_count > 0) {
    const double c = static_cast<double>(b_count);
    score.boundary.mape = b_ape / c;
    score.boundary.mae = b_abs / c;
    score.boundary.rmse = std::sqrt(b_sq / c);
    score.boundary.mbe = b_err / c;
    score.boundary.count = b_count;
  }
  return score;
}

SweepContext::ConfigScore SweepContext::EvaluateConfig(
    const WcmaParams& params, const RoiFilter& filter,
    WcmaWeighting weighting) const {
  params.Validate();
  const DSeries d = BuildD(params.days);
  const auto q = BuildQ(d, params.slots_k, weighting);
  return Score(q, params.alpha, filter);
}

}  // namespace shep
