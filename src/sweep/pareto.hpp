// pareto.hpp — multi-objective view of the design exploration.
//
// The paper's Tables III/IV and Figs. 6/7 are one-dimensional slices of a
// single underlying trade-off: prediction accuracy vs the cost of getting
// it (per-day management energy, history-matrix RAM).  This utility makes
// the combined space explicit: each candidate configuration becomes a
// point (MAPE, energy/day, memory words), and the Pareto front — the
// configurations not dominated in all three objectives at once — is the
// menu a deployment engineer actually chooses from.  bench/ext_pareto
// prints it per site; the paper's guideline configuration (α≈0.7, D≈10,
// K=2, N=48) should sit on or near the front.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace shep {

/// One candidate configuration with its three costs (all minimized).
struct TradeoffPoint {
  // Objectives.
  double mape = 0.0;            ///< prediction error (fraction).
  double energy_j_per_day = 0.0;///< sampling + prediction energy.
  double memory_words = 0.0;    ///< history matrix footprint D*N.
  // Identity (payload, not used for dominance).
  int slots_per_day = 0;
  double alpha = 0.0;
  int days_d = 0;
  int slots_k = 0;
};

/// True when `a` dominates `b`: no worse in every objective and strictly
/// better in at least one.
bool Dominates(const TradeoffPoint& a, const TradeoffPoint& b);

/// Indices of the non-dominated points, in input order.  O(n^2), fine for
/// the few-thousand-point fronts the exploration produces.
std::vector<std::size_t> ParetoFrontIndices(
    std::span<const TradeoffPoint> points);

/// Convenience: the non-dominated points themselves, sorted by MAPE
/// ascending.
std::vector<TradeoffPoint> ParetoFront(
    std::span<const TradeoffPoint> points);

}  // namespace shep
