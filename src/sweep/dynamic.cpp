#include "sweep/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace shep {

DynamicOutcome EvaluateDynamic(const SweepContext& context, int days_d,
                               const ParamGrid& grid,
                               const RoiFilter& filter) {
  grid.Validate();
  SHEP_REQUIRE(days_d >= 1, "D must be >= 1");

  const std::size_t n_a = grid.alphas.size();
  const std::size_t n_k = grid.ks.size();
  const std::size_t n = static_cast<std::size_t>(context.slots_per_day());

  // Q series per K (all at the same D).
  const auto d_series = context.BuildD(days_d);
  std::vector<std::vector<double>> q_by_k;
  q_by_k.reserve(n_k);
  for (int k : grid.ks) q_by_k.push_back(context.BuildQ(d_series, k));

  // Accumulators for every oracle and every candidate fixed parameter.
  double sum_both = 0.0;
  std::vector<double> sum_k_only(n_a, 0.0);      // min over K at α fixed
  std::vector<double> sum_alpha_only(n_k, 0.0);  // min over α at K fixed
  std::vector<double> sum_static(n_a * n_k, 0.0);
  std::size_t count = 0;

  const double peak = context.peak_mean();
  const auto& series = context.series();
  // Per-point scratch: for each fixed α, the smallest error over K.
  std::vector<double> k_only_scratch(n_a);
  for (std::size_t g = 0; g < context.points(); ++g) {
    const std::size_t day = g / n;
    const double ref = series.mean(g);
    if (!filter.Includes(day, ref, peak) || ref <= 0.0) continue;
    const double p_term = series.boundary(g);

    std::fill(k_only_scratch.begin(), k_only_scratch.end(),
              std::numeric_limits<double>::infinity());
    double best_both = std::numeric_limits<double>::infinity();
    for (std::size_t i_k = 0; i_k < n_k; ++i_k) {
      const double q = q_by_k[i_k][g];
      double best_alpha_here = std::numeric_limits<double>::infinity();
      for (std::size_t i_a = 0; i_a < n_a; ++i_a) {
        const double a = grid.alphas[i_a];
        const double ape =
            std::fabs(ref - (a * p_term + (1.0 - a) * q)) / ref;
        sum_static[i_a * n_k + i_k] += ape;
        if (ape < best_alpha_here) best_alpha_here = ape;
        if (ape < k_only_scratch[i_a]) k_only_scratch[i_a] = ape;
      }
      sum_alpha_only[i_k] += best_alpha_here;
      if (best_alpha_here < best_both) best_both = best_alpha_here;
    }
    for (std::size_t i_a = 0; i_a < n_a; ++i_a) {
      sum_k_only[i_a] += k_only_scratch[i_a];
    }
    sum_both += best_both;
    ++count;
  }

  DynamicOutcome out;
  out.days_d = days_d;
  out.count = count;
  if (count == 0) return out;
  const double c = static_cast<double>(count);

  out.both_mape = sum_both / c;

  // Best fixed α for the K-oracle.
  std::size_t best_a = 0;
  for (std::size_t i_a = 1; i_a < n_a; ++i_a) {
    if (sum_k_only[i_a] < sum_k_only[best_a]) best_a = i_a;
  }
  out.k_only_mape = sum_k_only[best_a] / c;
  out.k_only_alpha = grid.alphas[best_a];

  // Best fixed K for the α-oracle.
  std::size_t best_k = 0;
  for (std::size_t i_k = 1; i_k < n_k; ++i_k) {
    if (sum_alpha_only[i_k] < sum_alpha_only[best_k]) best_k = i_k;
  }
  out.alpha_only_mape = sum_alpha_only[best_k] / c;
  out.alpha_only_k = grid.ks[best_k];

  // Best fully static (α, K) at this D for reference.
  std::size_t best_static = 0;
  for (std::size_t i = 1; i < sum_static.size(); ++i) {
    if (sum_static[i] < sum_static[best_static]) best_static = i;
  }
  out.static_mape = sum_static[best_static] / c;
  out.static_alpha = grid.alphas[best_static / n_k];
  out.static_k = grid.ks[best_static % n_k];
  return out;
}

}  // namespace shep
