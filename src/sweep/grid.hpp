// grid.hpp — the parameter grid of the paper's design exploration.
//
// Sec. IV-A: "the range of values used for the algorithm parameters are
// N = {288, 96, 72, 48, 24}, 0 <= α <= 1, 2 <= D <= 20 and 1 <= K <= 6".
// α is swept on a 0.1 grid (the granularity of every α the paper reports).
#pragma once

#include <cstddef>
#include <vector>

namespace shep {

/// Cartesian parameter grid for the WCMA sweep.
struct ParamGrid {
  std::vector<double> alphas;
  std::vector<int> days;     ///< D values
  std::vector<int> ks;       ///< K values

  /// The paper's exhaustive grid: α ∈ {0.0, 0.1, …, 1.0}, D ∈ {2..20},
  /// K ∈ {1..6}.
  static ParamGrid Paper();

  /// A coarser grid for unit tests and quick examples:
  /// α ∈ {0, 0.25, 0.5, 0.75, 1}, D ∈ {2, 5, 10, 20}, K ∈ {1, 2, 4}.
  static ParamGrid Coarse();

  /// Number of (α, D, K) combinations.
  std::size_t size() const {
    return alphas.size() * days.size() * ks.size();
  }

  /// Throws std::invalid_argument when empty or out of range.
  void Validate() const;
};

}  // namespace shep
