// dynamic.hpp — clairvoyant dynamic-parameter study (paper Sec. IV-C).
//
// The paper's final experiment asks: how much accuracy is left on the table
// by fixing α and K for a whole deployment?  It bounds the answer with a
// CLAIRVOYANT (oracle) selector: at every prediction, evaluate Eq. 1 for
// all values of α and/or K on the grid and keep the one with the smallest
// error for that point, then average those per-point minima into a MAPE.
// Three oracles are reported (Table V):
//   * "K+α"    — both parameters chosen per prediction;
//   * "K only" — K per prediction at the best fixed α (reported with it);
//   * "α only" — α per prediction at the best fixed K (reported with it).
// These are lower bounds on achievable error — a realisable dynamic
// algorithm can approach but not beat them — and the paper's motivation for
// future dynamic selectors ("<10 % average error without higher sampling
// rates").
#pragma once

#include "metrics/error.hpp"
#include "sweep/evaluator.hpp"
#include "sweep/grid.hpp"

namespace shep {

/// Oracle accuracies at one (data set, N); all MAPEs use the slot-mean
/// reference.
struct DynamicOutcome {
  int days_d = 0;           ///< D used throughout (paper: 20).
  double static_mape = 0.0; ///< best fixed (α, K) at this D.
  double static_alpha = 0.0;
  int static_k = 0;

  double both_mape = 0.0;   ///< per-point min over (α, K) — "K+α".

  double k_only_mape = 0.0; ///< per-point min over K at fixed α.
  double k_only_alpha = 0.0;///< the fixed α that minimizes k_only_mape.

  double alpha_only_mape = 0.0; ///< per-point min over α at fixed K.
  int alpha_only_k = 0;         ///< the fixed K that minimizes it.

  std::size_t count = 0;    ///< scored points.
};

/// Runs the oracle study on one context at history depth `days_d`, using
/// the α and K axes of `grid` (the D axis is ignored).
DynamicOutcome EvaluateDynamic(const SweepContext& context, int days_d,
                               const ParamGrid& grid,
                               const RoiFilter& filter = {});

}  // namespace shep
