// evaluator.hpp — fast batch evaluation of WCMA configurations.
//
// A naive sweep would re-run the streaming predictor for every (α, D, K)
// triple — O(grid × trace) with a full history-matrix update per slot.  The
// paper's grid has 11×19×6 = 1254 triples per (data set, N), so we exploit
// the algebra of Eq. 1 instead:
//
//   ê(g+1) = α·P(g) + (1−α)·Q_{D,K}(g)
//
// with P(g) = ẽ(g) independent of all parameters and Q = μ_D·Φ_K
// independent of α.  SweepContext precomputes, once per (trace, N):
//   * the slot series (boundary samples + interval means),
//   * per-slot prefix sums across days, making any μ_D an O(1) lookup.
// BuildD then materialises the η ratio series for one D, BuildQ folds a K
// window over it, and Score sweeps α as pure arithmetic.  The result is
// numerically identical (modulo FP association) to running core/wcma.hpp
// slot by slot — tests/test_evaluator.cpp asserts exactly that equivalence.
#pragma once

#include <string>
#include <vector>

#include "core/wcma.hpp"
#include "metrics/error.hpp"
#include "timeseries/slotting.hpp"
#include "timeseries/trace.hpp"

namespace shep {

/// Shared precomputation for all sweeps over one (trace, N) pair.
class SweepContext {
 public:
  SweepContext(const PowerTrace& trace, int slots_per_day);

  const std::string& dataset() const { return dataset_; }
  const SlotSeries& series() const { return series_; }
  int slots_per_day() const { return static_cast<int>(series_.slots_per_day()); }

  /// Number of scored predictions (slots minus the final one).
  std::size_t points() const { return series_.size() - 1; }

  /// Peak of the interval means (ROI reference for MAPE).
  double peak_mean() const { return peak_mean_; }

  /// Peak of the boundary samples (ROI reference for MAPE′).
  double peak_boundary() const { return peak_boundary_; }

  /// μ_D(slot) over the `window` days strictly before `day`.
  /// Requires 1 <= window <= day.
  double MuBefore(std::size_t day, std::size_t slot,
                  std::size_t window) const;

  /// Per-D intermediate series, indexed by global slot g (prediction made
  /// after observing boundary(g)).
  struct DSeries {
    int days_d = 0;
    /// μ_D of the predicted slot g+1; negative sentinel when no past day
    /// exists yet (predictor falls back to persistence).
    std::vector<double> mu_pred;
    /// Brightness ratio η(g) = ẽ(g)/μ_D(slot of g); 1 during day 0 and for
    /// night slots (μ below the guard threshold).
    std::vector<double> eta;
  };
  DSeries BuildD(int days_d) const;

  /// Conditioned-average series Q(g) = μ_D(g+1)·Φ_K(g) for one (D, K);
  /// where μ is the persistence-fallback sentinel, Q(g) = ẽ(g).
  std::vector<double> BuildQ(const DSeries& d, int slots_k,
                             WcmaWeighting weighting = WcmaWeighting::kRamp) const;

  /// Error statistics of ê = α·P + (1−α)·Q against both references.
  struct ConfigScore {
    ErrorStats mean;      ///< vs slot mean (MAPE, Eq. 7/8)
    ErrorStats boundary;  ///< vs next boundary sample (MAPE′, Eq. 6)
  };
  ConfigScore Score(const std::vector<double>& q, double alpha,
                    const RoiFilter& filter = {}) const;

  /// Full streaming-equivalent evaluation of a single configuration;
  /// convenience for tests and the Fig. 7 D-sweep.
  ConfigScore EvaluateConfig(const WcmaParams& params,
                             const RoiFilter& filter = {},
                             WcmaWeighting weighting = WcmaWeighting::kRamp) const;

 private:
  std::string dataset_;
  SlotSeries series_;
  /// cum_[(day)*N + slot] = Σ of boundary(d, slot) for d < day;
  /// (days+1) × N entries.
  std::vector<double> cum_;
  double peak_mean_ = 0.0;
  double peak_boundary_ = 0.0;
};

}  // namespace shep
