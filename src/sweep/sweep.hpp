// sweep.hpp — exhaustive (α, D, K) exploration and result queries.
//
// Drives SweepContext over a full ParamGrid, optionally in parallel, and
// stores one SweepPoint per configuration.  SweepResult then answers the
// questions the paper's tables ask:
//   * Table II : argmin under MAPE′ vs argmin under MAPE at N = 48;
//   * Table III: argmin under MAPE per N, plus the best achievable MAPE
//                when K is pinned to 2 (the "MAPE@K=2" column);
//   * Fig. 7   : MAPE as a function of D with (α, K) pinned.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/error.hpp"
#include "sweep/evaluator.hpp"
#include "sweep/grid.hpp"
#include "common/threadpool.hpp"

namespace shep {

/// Result of one (α, D, K) configuration at a fixed (data set, N).
struct SweepPoint {
  double alpha = 0.0;
  int days_d = 0;
  int slots_k = 0;
  ErrorStats mean_stats;      ///< scored against slot means (MAPE).
  ErrorStats boundary_stats;  ///< scored against boundary samples (MAPE′).
};

/// All configurations of a grid evaluated on one (data set, N).
struct SweepResult {
  std::string dataset;
  int slots_per_day = 0;
  bool degenerate = false;  ///< N=288 on a 5-minute trace (Table III "†").
  ParamGrid grid;
  /// Indexed [iD][iK][iA] flattened D-major: ((iD*ks+iK)*alphas+iA).
  std::vector<SweepPoint> points;

  const SweepPoint& At(std::size_t i_d, std::size_t i_k,
                       std::size_t i_a) const;

  /// Configuration minimizing MAPE (slot-mean reference).
  const SweepPoint& BestByMape() const;

  /// Configuration minimizing MAPE′ (boundary reference) — what prior work
  /// would have tuned for (Table II left half).
  const SweepPoint& BestByMapePrime() const;

  /// Best MAPE subject to K = k; null when k is not in the grid.
  const SweepPoint* BestByMapeWithK(int k) const;

  /// Best MAPE subject to D = d.
  const SweepPoint* BestByMapeWithD(int d) const;

  /// Exact lookup; null when the triple is not on the grid.
  const SweepPoint* Find(double alpha, int days_d, int slots_k) const;
};

/// Runs the full grid on a prepared context.  `pool` may be null (serial).
SweepResult SweepWcma(const SweepContext& context, const ParamGrid& grid,
                      const RoiFilter& filter = {}, ThreadPool* pool = nullptr,
                      WcmaWeighting weighting = WcmaWeighting::kRamp);

}  // namespace shep
