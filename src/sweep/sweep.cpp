#include "sweep/sweep.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace shep {

const SweepPoint& SweepResult::At(std::size_t i_d, std::size_t i_k,
                                  std::size_t i_a) const {
  SHEP_REQUIRE(i_d < grid.days.size() && i_k < grid.ks.size() &&
                   i_a < grid.alphas.size(),
               "grid index out of range");
  return points[(i_d * grid.ks.size() + i_k) * grid.alphas.size() + i_a];
}

namespace {

template <typename Metric>
const SweepPoint* BestWhere(const SweepResult& r, Metric metric,
                            int require_k, int require_d) {
  const SweepPoint* best = nullptr;
  double best_value = std::numeric_limits<double>::infinity();
  for (const auto& p : r.points) {
    if (require_k >= 0 && p.slots_k != require_k) continue;
    if (require_d >= 0 && p.days_d != require_d) continue;
    const double v = metric(p);
    if (v < best_value) {
      best_value = v;
      best = &p;
    }
  }
  return best;
}

double MapeOf(const SweepPoint& p) { return p.mean_stats.mape; }
double MapePrimeOf(const SweepPoint& p) { return p.boundary_stats.mape; }

}  // namespace

const SweepPoint& SweepResult::BestByMape() const {
  const auto* best = BestWhere(*this, MapeOf, -1, -1);
  SHEP_CHECK(best != nullptr, "sweep produced no points");
  return *best;
}

const SweepPoint& SweepResult::BestByMapePrime() const {
  const auto* best = BestWhere(*this, MapePrimeOf, -1, -1);
  SHEP_CHECK(best != nullptr, "sweep produced no points");
  return *best;
}

const SweepPoint* SweepResult::BestByMapeWithK(int k) const {
  return BestWhere(*this, MapeOf, k, -1);
}

const SweepPoint* SweepResult::BestByMapeWithD(int d) const {
  return BestWhere(*this, MapeOf, -1, d);
}

const SweepPoint* SweepResult::Find(double alpha, int days_d,
                                    int slots_k) const {
  for (const auto& p : points) {
    if (p.days_d == days_d && p.slots_k == slots_k &&
        std::fabs(p.alpha - alpha) < 1e-12) {
      return &p;
    }
  }
  return nullptr;
}

SweepResult SweepWcma(const SweepContext& context, const ParamGrid& grid,
                      const RoiFilter& filter, ThreadPool* pool,
                      WcmaWeighting weighting) {
  grid.Validate();
  SweepResult result;
  result.dataset = context.dataset();
  result.slots_per_day = context.slots_per_day();
  result.degenerate = context.series().grid().degenerate();
  result.grid = grid;
  result.points.resize(grid.size());

  const std::size_t n_k = grid.ks.size();
  const std::size_t n_a = grid.alphas.size();

  // Parallelism across D: each D owns a disjoint slice of `points`, and the
  // expensive BuildD/BuildQ work is D-local, so no synchronisation is
  // needed beyond the ParallelFor join.
  ParallelFor(pool, grid.days.size(), [&](std::size_t i_d) {
    const int days_d = grid.days[i_d];
    const auto d_series = context.BuildD(days_d);
    for (std::size_t i_k = 0; i_k < n_k; ++i_k) {
      const int slots_k = grid.ks[i_k];
      const auto q = context.BuildQ(d_series, slots_k, weighting);
      for (std::size_t i_a = 0; i_a < n_a; ++i_a) {
        const double alpha = grid.alphas[i_a];
        const auto score = context.Score(q, alpha, filter);
        SweepPoint& p = result.points[(i_d * n_k + i_k) * n_a + i_a];
        p.alpha = alpha;
        p.days_d = days_d;
        p.slots_k = slots_k;
        p.mean_stats = score.mean;
        p.boundary_stats = score.boundary;
      }
    }
  });
  return result;
}

}  // namespace shep
