#include "sweep/pareto.hpp"

#include <algorithm>

namespace shep {

bool Dominates(const TradeoffPoint& a, const TradeoffPoint& b) {
  const bool no_worse = a.mape <= b.mape &&
                        a.energy_j_per_day <= b.energy_j_per_day &&
                        a.memory_words <= b.memory_words;
  const bool better = a.mape < b.mape ||
                      a.energy_j_per_day < b.energy_j_per_day ||
                      a.memory_words < b.memory_words;
  return no_worse && better;
}

std::vector<std::size_t> ParetoFrontIndices(
    std::span<const TradeoffPoint> points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<TradeoffPoint> ParetoFront(
    std::span<const TradeoffPoint> points) {
  std::vector<TradeoffPoint> out;
  for (std::size_t i : ParetoFrontIndices(points)) {
    out.push_back(points[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              return a.mape < b.mape;
            });
  return out;
}

}  // namespace shep
