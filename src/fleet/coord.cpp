#include "fleet/coord.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/serdes.hpp"
#include "fleet/partial.hpp"
#include "fleet/runner.hpp"
#include "fleet/shard_plan.hpp"
#include "trace/trace_file.hpp"

namespace shep {

// ---- Wire protocol -------------------------------------------------------

std::string EncodeFleetJob(const FleetWorkerJob& job) {
  SHEP_REQUIRE(job.trace_dir.find('\n') == std::string::npos,
               "trace directory must not contain a newline");
  const std::string spec_text = job.spec.Describe();
  std::ostringstream os;
  os << "shep-fleet-job v1\n";
  os << "fingerprint " << job.fingerprint << '\n';
  os << "shard-size " << job.shard_size << '\n';
  os << "threads " << job.threads << '\n';
  os << "heartbeat-ms " << job.heartbeat_ms << '\n';
  // The directory is the rest of the line ("-" = telemetry off), so paths
  // with spaces survive.
  os << "trace-dir " << (job.trace_dir.empty() ? "-" : job.trace_dir) << '\n';
  os << "spec " << spec_text.size() << '\n' << spec_text;
  os << "end-job\n";
  return os.str();
}

FleetWorkerJob ParseFleetJob(std::istream& in) {
  serdes::ExpectToken(in, "shep-fleet-job");
  serdes::ExpectToken(in, "v1");
  FleetWorkerJob job;
  serdes::ExpectToken(in, "fingerprint");
  job.fingerprint = serdes::ReadU64(in);
  serdes::ExpectToken(in, "shard-size");
  job.shard_size = static_cast<std::size_t>(serdes::ReadU64(in));
  serdes::ExpectToken(in, "threads");
  job.threads = static_cast<std::size_t>(serdes::ReadU64(in));
  serdes::ExpectToken(in, "heartbeat-ms");
  job.heartbeat_ms = static_cast<std::uint32_t>(serdes::ReadU64(in));
  serdes::ExpectToken(in, "trace-dir");
  in >> std::ws;
  std::string dir;
  std::getline(in, dir);
  SHEP_REQUIRE(!dir.empty(), "fleet job is missing the trace directory");
  job.trace_dir = dir == "-" ? std::string() : dir;
  serdes::ExpectToken(in, "spec");
  const std::uint64_t spec_bytes = serdes::ReadU64(in);
  SHEP_REQUIRE(in.get() == '\n', "fleet job spec must start on a new line");
  std::string spec_text(spec_bytes, '\0');
  in.read(spec_text.data(), static_cast<std::streamsize>(spec_bytes));
  SHEP_REQUIRE(in.gcount() == static_cast<std::streamsize>(spec_bytes),
               "fleet job ended inside the spec text");
  job.spec = ParseScenarioSpec(spec_text);
  serdes::ExpectToken(in, "end-job");
  return job;
}

std::uint64_t FleetFrameChecksum(std::string_view payload) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis.
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64 prime.
  }
  return h;
}

std::string EncodeFleetFrame(std::size_t shard, const std::string& payload) {
  std::ostringstream os;
  os << "frame " << shard << ' ' << payload.size() << ' '
     << FleetFrameChecksum(payload) << '\n';
  os << payload;
  os << "end-frame\n";
  return os.str();
}

// ---- Coordinator ---------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

/// Buffered reader over a pipe fd: the frame protocol needs both
/// line-at-a-time and exact-byte reads from one stream.
class FdReader {
 public:
  explicit FdReader(int fd) : fd_(fd) {}

  /// Next '\n'-terminated line without the terminator; nullopt on EOF (a
  /// final unterminated line is discarded — a dying worker's half-written
  /// line is never actionable).
  std::optional<std::string> ReadLine() {
    std::string line;
    while (true) {
      for (; pos_ < len_; ++pos_) {
        if (buf_[pos_] == '\n') {
          ++pos_;
          return line;
        }
        line.push_back(buf_[pos_]);
      }
      if (!Fill()) return std::nullopt;
    }
  }

  /// Exactly `n` bytes into `out`; false on EOF before they all arrive.
  bool ReadExact(std::string& out, std::size_t n) {
    out.clear();
    out.reserve(n);
    while (out.size() < n) {
      if (pos_ == len_ && !Fill()) return false;
      const std::size_t take = std::min(n - out.size(), len_ - pos_);
      out.append(buf_ + pos_, take);
      pos_ += take;
    }
    return true;
  }

 private:
  bool Fill() {
    pos_ = len_ = 0;
    while (true) {
      const ssize_t got = ::read(fd_, buf_, sizeof buf_);
      if (got > 0) {
        len_ = static_cast<std::size_t>(got);
        return true;
      }
      if (got == 0) return false;
      if (errno != EINTR) return false;
    }
  }

  int fd_;
  char buf_[1 << 16];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// Writes the whole buffer; false on any error (EPIPE = worker death).
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t wrote = ::write(fd, data.data(), data.size());
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(wrote));
  }
  return true;
}

enum class ShardState { kPending, kInflight, kDone };

struct WorkerProc {
  std::size_t spawn = 0;  ///< monotone spawn id (stable across respawns).
  pid_t pid = -1;
  int stdin_fd = -1;
  int stdout_fd = -1;
  std::thread reader;

  // Guarded by the coordinator mutex:
  bool alive = true;    ///< reader thread still streaming.
  bool faulty = false;  ///< sent a corrupt frame; must be killed.
  bool reaped = false;
  Clock::time_point last_activity;
  std::set<std::size_t> inflight;                 ///< dispatched shards.
  std::map<std::size_t, Clock::time_point> sent;  ///< dispatch times.
};

struct CoordState {
  std::mutex mutex;
  std::condition_variable cv;

  const ShardPlan* plan = nullptr;
  std::vector<ShardState> shard_state;
  std::deque<std::size_t> pending;
  std::vector<std::optional<FleetPartial>> partials;  ///< per shard.
  std::vector<std::size_t> winning_spawn;             ///< per shard.
  std::size_t done = 0;

  std::vector<std::unique_ptr<WorkerProc>> workers;
  std::string last_worker_error;
  FleetCoordStats stats;
};

/// Per-worker reader thread: the data plane.  Every byte refreshes the
/// liveness timestamp; frames are checked (checksum, parse, fingerprint,
/// exactly the announced shard) and the first valid frame per shard wins.
void ReaderMain(CoordState& state, WorkerProc& worker) {
  FdReader reader(worker.stdout_fd);
  while (true) {
    std::optional<std::string> line = reader.ReadLine();
    if (!line) break;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      worker.last_activity = Clock::now();
    }
    if (*line == "hb") continue;
    if (*line == "bye") break;
    if (line->rfind("error ", 0) == 0) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.last_worker_error = line->substr(6);
      break;  // the worker is about to exit; EOF follows.
    }
    if (line->rfind("frame ", 0) != 0) continue;  // forward compatibility.

    // Header + payload + trailer, off-lock (pipe reads may block).
    std::istringstream header(line->substr(6));
    std::uint64_t shard = 0, bytes = 0, checksum = 0;
    header >> shard >> bytes >> checksum;
    std::string payload;
    bool ok = !header.fail() && reader.ReadExact(payload, bytes);
    if (ok) {
      std::optional<std::string> trailer = reader.ReadLine();
      ok = trailer && *trailer == "end-frame";
    }
    if (!ok) break;  // stream died mid-frame: plain worker death.

    // Validate the frame itself; any lie makes the worker faulty (its
    // framing can no longer be trusted, so stop reading it entirely).
    std::optional<FleetPartial> partial;
    if (FleetFrameChecksum(payload) == checksum) {
      try {
        FleetPartial parsed = FleetPartial::Parse(payload);
        if (parsed.plan_fingerprint == state.plan->fingerprint &&
            parsed.shards.size() == 1 && parsed.shards[0].shard == shard &&
            shard < state.plan->shards.size()) {
          partial = std::move(parsed);
        }
      } catch (const std::exception&) {
        // fall through: corrupt.
      }
    }

    std::unique_lock<std::mutex> lock(state.mutex);
    worker.last_activity = Clock::now();
    if (!partial) {
      ++state.stats.corrupt_frames;
      worker.faulty = true;
      state.cv.notify_all();
      break;
    }
    worker.inflight.erase(shard);
    worker.sent.erase(shard);
    if (state.shard_state[shard] == ShardState::kDone) {
      ++state.stats.duplicate_frames;  // a reassigned shard finished twice.
      continue;
    }
    state.shard_state[shard] = ShardState::kDone;
    state.partials[shard] = std::move(partial);
    state.winning_spawn[shard] = worker.spawn;
    ++state.done;
    ++state.stats.frames_accepted;
    state.cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(state.mutex);
  worker.alive = false;
  state.cv.notify_all();
}

// shep-lint: root(signal-safety)
void SpawnWorker(CoordState& state, const FleetCoordOptions& options,
                 const std::string& job_text, std::size_t spawn) {
  int to_child[2];
  int from_child[2];
  SHEP_CHECK(::pipe2(to_child, O_CLOEXEC) == 0 &&
                 ::pipe2(from_child, O_CLOEXEC) == 0,
             "coordinator cannot create worker pipes");
  // argv is fully built BEFORE the fork: the child of a multi-threaded
  // parent may not allocate (another thread can hold the heap lock at the
  // fork instant, and it never unlocks in the child), so the region
  // between fork() and execv touches only pre-built storage.
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(options.worker_path.c_str()));
  for (const std::string& arg : options.worker_args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.  dup2
    // clears O_CLOEXEC on the copies; every other coordinator fd closes at
    // exec, so sibling pipes never leak into workers (which would mask
    // EOF-based death detection).
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::execv(options.worker_path.c_str(), argv.data());
    ::_exit(127);
  }
  // A failed fork returns -1 (never 0), so checking after the child block
  // keeps the check out of the async-signal-safe region.
  SHEP_CHECK(pid >= 0, "coordinator cannot fork a worker");
  ::close(to_child[0]);
  ::close(from_child[1]);

  auto worker = std::make_unique<WorkerProc>();
  worker->spawn = spawn;
  worker->pid = pid;
  worker->stdin_fd = to_child[1];
  worker->stdout_fd = from_child[0];
  worker->last_activity = Clock::now();
  // The job header is far smaller than the pipe buffer, so this never
  // blocks even against a worker that dies before reading it.
  if (!WriteAll(worker->stdin_fd, job_text)) worker->faulty = true;
  WorkerProc& ref = *worker;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.stats.workers_spawned;
    state.workers.push_back(std::move(worker));
  }
  ref.reader = std::thread([&state, &ref] { ReaderMain(state, ref); });
  if (options.on_spawn) options.on_spawn(spawn, static_cast<long>(pid));
}

/// Kills (if needed), joins, reaps, and requeues one worker's uncovered
/// shards.  Called with the lock HELD; drops it around the blocking join
/// and waitpid (the reader thread itself takes the lock).
void ReapWorker(CoordState& state, std::unique_lock<std::mutex>& lock,
                WorkerProc& worker, bool was_killed) {
  worker.reaped = true;
  lock.unlock();
  ::close(worker.stdin_fd);
  ::kill(worker.pid, SIGKILL);  // no-op on an already-dead pid (ESRCH).
  if (worker.reader.joinable()) worker.reader.join();
  ::close(worker.stdout_fd);
  int status = 0;
  ::waitpid(worker.pid, &status, 0);
  lock.lock();
  if (was_killed) {
    ++state.stats.workers_killed;
  } else {
    ++state.stats.workers_died;
  }
  for (std::size_t shard : worker.inflight) {
    if (state.shard_state[shard] == ShardState::kInflight) {
      state.shard_state[shard] = ShardState::kPending;
      state.pending.push_front(shard);
      ++state.stats.shards_reassigned;
    }
  }
  worker.inflight.clear();
  worker.sent.clear();
}

/// Moves each accepted shard's trace file from its winning spawn's private
/// directory up into the root, then drops the per-spawn directories, so a
/// coordinated traced run leaves exactly the file set a single-process
/// traced run would.
void CollectTraceFiles(const CoordState& state,
                       const FleetCoordOptions& options) {
  namespace fs = std::filesystem;
  const fs::path root(options.trace_dir);
  for (std::size_t shard = 0; shard < state.winning_spawn.size(); ++shard) {
    const std::string name =
        TraceShardFile::FileName(state.plan->fingerprint, shard);
    const fs::path from =
        root / ("worker-" + std::to_string(state.winning_spawn[shard])) /
        name;
    std::error_code ec;
    fs::rename(from, root / name, ec);
    SHEP_CHECK(!ec, "coordinator cannot collect trace file " + from.string() +
                        ": " + ec.message());
  }
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("worker-", 0) == 0) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

/// RAII SIGPIPE guard: a write to a SIGKILLed worker's stdin must surface
/// as EPIPE (handled as a death), not kill the coordinator.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~ScopedIgnoreSigpipe() { ::sigaction(SIGPIPE, &previous_, nullptr); }

 private:
  struct sigaction previous_ = {};
};

}  // namespace

FleetSummary RunFleetCoordinated(const ScenarioSpec& spec,
                                 const FleetCoordOptions& options,
                                 FleetCoordStats* stats) {
  SHEP_REQUIRE(!options.worker_path.empty(),
               "coordinator needs a worker binary path");
  SHEP_REQUIRE(options.workers > 0, "coordinator needs at least one worker");
  SHEP_REQUIRE(options.max_inflight_per_worker > 0,
               "max_inflight_per_worker must be positive");
  const std::size_t respawn_budget =
      options.max_respawns != 0 ? options.max_respawns : 2 * options.workers;

  const ShardPlan plan = BuildShardPlan(spec, options.shard_size);

  FleetWorkerJob job;
  job.spec = plan.matrix.spec;  // slot_seconds already forced by expansion.
  job.shard_size = options.shard_size;
  job.threads = options.worker_threads;
  job.heartbeat_ms = options.heartbeat_ms;
  job.fingerprint = plan.fingerprint;

  CoordState state;
  state.plan = &plan;
  state.shard_state.assign(plan.shards.size(), ShardState::kPending);
  state.partials.resize(plan.shards.size());
  state.winning_spawn.assign(plan.shards.size(), 0);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    state.pending.push_back(i);
  }

  ScopedIgnoreSigpipe sigpipe_guard;
  std::size_t next_spawn = 0;
  auto spawn_one = [&] {
    FleetWorkerJob worker_job = job;
    if (!options.trace_dir.empty()) {
      worker_job.trace_dir =
          (std::filesystem::path(options.trace_dir) /
           ("worker-" + std::to_string(next_spawn)))
              .string();
    }
    SpawnWorker(state, options, EncodeFleetJob(worker_job), next_spawn);
    ++next_spawn;
  };

  // Everything below must tear the fleet down on ANY exit path — a leaked
  // child would outlive the run and keep writing into freed state.
  auto shutdown = [&] {
    std::unique_lock<std::mutex> lock(state.mutex);
    for (auto& worker : state.workers) {
      if (worker->reaped) continue;
      worker->reaped = true;
      lock.unlock();
      WriteAll(worker->stdin_fd, "quit\n");
      ::close(worker->stdin_fd);
      // A worker mid-shard ignores quit until done; SIGKILL keeps
      // shutdown prompt (every needed frame has already been accepted).
      ::kill(worker->pid, SIGKILL);
      if (worker->reader.joinable()) worker->reader.join();
      ::close(worker->stdout_fd);
      int status = 0;
      ::waitpid(worker->pid, &status, 0);
      lock.lock();
    }
  };

  try {
    for (std::size_t i = 0; i < options.workers; ++i) spawn_one();

    std::unique_lock<std::mutex> lock(state.mutex);
    const auto liveness =
        std::chrono::milliseconds(options.liveness_timeout_ms);
    const auto shard_deadline =
        std::chrono::milliseconds(options.shard_timeout_ms);
    while (state.done < plan.shards.size()) {
      const Clock::time_point now = Clock::now();

      // Deadlines: silence => dead, an unanswered shard => straggler.
      // Both become "faulty" so one reap path below handles everything.
      for (auto& worker : state.workers) {
        if (worker->reaped || !worker->alive || worker->faulty) continue;
        if (now - worker->last_activity > liveness) {
          worker->faulty = true;
          continue;
        }
        for (const auto& [shard, sent_at] : worker->sent) {
          if (now - sent_at > shard_deadline) {
            worker->faulty = true;
            break;
          }
        }
      }

      // Reap every dead or condemned worker and requeue its shards.
      for (auto& worker : state.workers) {
        if (worker->reaped) continue;
        if (!worker->alive || worker->faulty) {
          ReapWorker(state, lock, *worker, worker->faulty);
        }
      }

      // Keep the fleet at strength while work remains.
      std::size_t live = 0;
      for (const auto& worker : state.workers) {
        if (!worker->reaped) ++live;
      }
      while (live < options.workers && state.done < plan.shards.size() &&
             state.stats.respawns < respawn_budget) {
        ++state.stats.respawns;
        lock.unlock();
        spawn_one();
        lock.lock();
        ++live;
      }
      if (live == 0) {
        throw std::runtime_error(
            "fleet coordinator lost every worker with shards uncovered"
            " (respawn budget exhausted)" +
            (state.last_worker_error.empty()
                 ? std::string()
                 : "; last worker error: " + state.last_worker_error));
      }

      // Dispatch: refill every live worker up to its inflight window.
      for (auto& worker : state.workers) {
        if (worker->reaped || !worker->alive || worker->faulty) continue;
        while (!state.pending.empty() &&
               worker->inflight.size() < options.max_inflight_per_worker) {
          const std::size_t shard = state.pending.front();
          state.pending.pop_front();
          state.shard_state[shard] = ShardState::kInflight;
          worker->inflight.insert(shard);
          worker->sent.emplace(shard, Clock::now());
          const std::string command = "run " + std::to_string(shard) + "\n";
          const int fd = worker->stdin_fd;
          lock.unlock();
          const bool sent_ok = WriteAll(fd, command);
          lock.lock();
          if (!sent_ok) {
            worker->faulty = true;  // EPIPE: reaped next iteration.
            break;
          }
        }
      }

      state.cv.wait_for(lock, std::chrono::milliseconds(10));
    }
    lock.unlock();
    shutdown();
  } catch (...) {
    shutdown();
    throw;
  }

  if (!options.trace_dir.empty()) CollectTraceFiles(state, options);
  if (stats != nullptr) *stats = state.stats;

  std::vector<FleetPartial> partials;
  partials.reserve(plan.shards.size());
  for (auto& partial : state.partials) {
    SHEP_CHECK(partial.has_value(), "coordinator finished with a hole");
    partials.push_back(std::move(*partial));
  }
  return MergeFleetPartials(plan, partials);
}

}  // namespace shep
