#include "fleet/trace_cache.hpp"

#include <utility>

#include "solar/sites.hpp"
#include "solar/synth.hpp"

namespace shep {

std::shared_ptr<const SlotSeries> TraceCache::Get(const std::string& site_code,
                                                  std::uint64_t trace_seed,
                                                  std::size_t days,
                                                  int slots_per_day,
                                                  bool* was_hit,
                                                  SynthScratch* scratch) {
  Key key{site_code, trace_seed, days, slots_per_day};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      if (was_hit != nullptr) *was_hit = true;
      return it->second;
    }
  }
  if (was_hit != nullptr) *was_hit = false;

  // Miss: synthesize without holding the lock (seconds of work on long
  // horizons; blocking every other lane lookup would serialize phase 1).
  // The caller's scratch (if any) supplies the per-day buffers; results
  // are bit-identical either way.
  const SiteProfile& site = SiteByCode(site_code);
  SynthOptions synth;
  synth.days = days;
  synth.seed_offset = trace_seed;
  SynthScratch local_scratch;
  auto series = std::make_shared<const SlotSeries>(
      SynthesizeTrace(site, synth,
                      scratch != nullptr ? *scratch : local_scratch),
      slots_per_day);

  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  // First insertion wins so every caller shares one instance; a racing
  // duplicate is bit-identical (synthesis is deterministic in the key)
  // and is discarded here.
  const auto [it, inserted] = entries_.emplace(key, series);
  auto result = it->second;
  if (inserted && max_entries_ != 0 && entries_.size() > max_entries_) {
    // Evict the lowest key, skipping the one just inserted so a run
    // sweeping keys in order never evicts what it is about to use.
    auto victim = entries_.begin();
    if (victim->first == key) ++victim;
    entries_.erase(victim);
    ++evictions_;
  }
  return result;
}

TraceCache::Stats TraceCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, evictions_, entries_.size()};
}

void TraceCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace shep
