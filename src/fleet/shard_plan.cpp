#include "fleet/shard_plan.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.hpp"
#include "fleet/aggregate.hpp"  // serdes helpers.

namespace shep {

namespace {

/// FNV-1a 64-bit over the plan-identity fields.  Not cryptographic — it
/// only has to make accidental cross-plan merges (different spec, seed, or
/// shard size) fail loudly instead of silently producing garbage.
class Fnv1a {
 public:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void Mix(const std::string& s) {
    Mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s) Byte(static_cast<unsigned char>(c));
  }
  void Mix(double v) { Mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return hash_; }

 private:
  void Byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001B3ull;
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

}  // namespace

ShardPlan BuildShardPlan(const ScenarioSpec& spec, std::size_t shard_size) {
  SHEP_REQUIRE(shard_size >= 1, "shard_size must be >= 1");
  ShardPlan plan;
  plan.matrix = ExpandScenario(spec);  // validates the spec.
  plan.shard_size = shard_size;
  const ScenarioSpec& s = plan.matrix.spec;

  const std::size_t node_count = plan.matrix.nodes.size();
  const std::size_t shard_count = (node_count + shard_size - 1) / shard_size;
  plan.shards.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    ShardRange range;
    range.index = i;
    range.begin_node = i * shard_size;
    range.end_node = std::min(range.begin_node + shard_size, node_count);
    plan.shards.push_back(range);
  }

  // Lanes are keyed (site, replica), laid out site-major; every node of a
  // lane carries the same trace_seed (pinned by test_fleet), so reading it
  // off any one of them is exact.
  plan.lanes.resize(plan.matrix.trace_lane_count());
  for (std::size_t l = 0; l < plan.lanes.size(); ++l) {
    plan.lanes[l].lane = l;
    plan.lanes[l].site_code = s.sites[l / s.nodes_per_cell];
  }
  for (const FleetNodeConfig& node : plan.matrix.nodes) {
    plan.lanes[plan.matrix.trace_lane(node)].trace_seed = node.trace_seed;
  }

  // The fingerprint must cover EVERY spec field that changes simulation
  // results, not just the matrix shape — two specs that differ only in a
  // predictor parameter or a storage tier expand to identically-shaped
  // matrices, and merging their partials must still fail loudly.
  Fnv1a hash;
  hash.Mix(s.name);
  hash.Mix(s.seed);
  hash.Mix(static_cast<std::uint64_t>(node_count));
  hash.Mix(static_cast<std::uint64_t>(plan.matrix.cells.size()));
  hash.Mix(static_cast<std::uint64_t>(shard_size));
  hash.Mix(static_cast<std::uint64_t>(s.days));
  hash.Mix(static_cast<std::uint64_t>(s.slots_per_day));
  for (const PredictorSpec& p : s.predictors) {
    hash.Mix(static_cast<std::uint64_t>(p.kind));
    hash.Mix(p.wcma.alpha);
    hash.Mix(static_cast<std::uint64_t>(p.wcma.days));
    hash.Mix(static_cast<std::uint64_t>(p.wcma.slots_k));
    hash.Mix(p.ewma_weight);
    hash.Mix(static_cast<std::uint64_t>(p.ar.order));
    hash.Mix(static_cast<std::uint64_t>(p.ar.days));
    hash.Mix(p.ar.lambda);
    hash.Mix(p.ar.delta);
    hash.Mix(static_cast<std::uint64_t>(p.adaptive.alphas.size()));
    for (double a : p.adaptive.alphas) hash.Mix(a);
    hash.Mix(static_cast<std::uint64_t>(p.adaptive.ks.size()));
    for (int k : p.adaptive.ks) hash.Mix(static_cast<std::uint64_t>(k));
    hash.Mix(static_cast<std::uint64_t>(p.adaptive.days));
    hash.Mix(p.adaptive.discount);
  }
  hash.Mix(static_cast<std::uint64_t>(s.storage_tiers_j.size()));
  for (double tier : s.storage_tiers_j) hash.Mix(tier);
  hash.Mix(s.node.duty.slot_seconds);
  hash.Mix(s.node.duty.active_power_w);
  hash.Mix(s.node.duty.sleep_power_w);
  hash.Mix(s.node.duty.min_duty);
  hash.Mix(s.node.duty.max_duty);
  hash.Mix(s.node.duty.target_level_fraction);
  hash.Mix(s.node.duty.level_gain);
  hash.Mix(s.node.storage.capacity_j);
  hash.Mix(s.node.storage.charge_efficiency);
  hash.Mix(s.node.storage.leakage_w);
  hash.Mix(s.node.initial_level_fraction);
  hash.Mix(static_cast<std::uint64_t>(s.node.warmup_days));
  hash.Mix(s.initial_level_jitter);
  // Fault knobs change every result, so two campaigns differing only in a
  // fault rate must refuse to merge.
  hash.Mix(s.faults.outage_rate_per_day);
  hash.Mix(s.faults.outage_mean_slots);
  hash.Mix(s.faults.dropout_rate_per_day);
  hash.Mix(s.faults.dropout_mean_slots);
  hash.Mix(s.faults.panel_decay_per_day);
  hash.Mix(s.faults.battery_aging_per_day);
  hash.Mix(static_cast<std::uint64_t>(s.faults.recovery_window_slots));
  for (const TraceLanePlan& lane : plan.lanes) {
    hash.Mix(lane.site_code);
    hash.Mix(lane.trace_seed);
  }
  plan.fingerprint = hash.value();
  return plan;
}

std::string ShardPlan::Describe() const {
  const ScenarioSpec& s = matrix.spec;
  SHEP_REQUIRE(s.name.find_first_of(" \t\n") == std::string::npos,
               "scenario names must be whitespace-free to serialize");
  std::ostringstream os;
  os << "shep-shard-plan v1\n";
  os << "scenario " << s.name << '\n';
  os << "fingerprint " << fingerprint << '\n';
  os << "nodes " << matrix.nodes.size() << " shard_size " << shard_size
     << " days " << s.days << " slots_per_day " << s.slots_per_day << '\n';
  os << "shards " << shards.size() << '\n';
  for (const ShardRange& range : shards) {
    os << "shard " << range.index << ' ' << range.begin_node << ' '
       << range.end_node << '\n';
  }
  os << "lanes " << lanes.size() << '\n';
  for (const TraceLanePlan& lane : lanes) {
    os << "lane " << lane.lane << ' ' << lane.site_code << ' '
       << lane.trace_seed << '\n';
  }
  return os.str();
}

ShardPlanLayout ParseShardPlanLayout(const std::string& text) {
  std::istringstream is(text);
  serdes::ExpectToken(is, "shep-shard-plan");
  serdes::ExpectToken(is, "v1");
  ShardPlanLayout layout;
  serdes::ExpectToken(is, "scenario");
  is >> layout.scenario_name;
  SHEP_REQUIRE(!layout.scenario_name.empty(), "plan is missing its name");
  serdes::ExpectToken(is, "fingerprint");
  layout.fingerprint = serdes::ReadU64(is);
  serdes::ExpectToken(is, "nodes");
  layout.node_count = static_cast<std::size_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "shard_size");
  layout.shard_size = static_cast<std::size_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "days");
  layout.days = static_cast<std::size_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "slots_per_day");
  layout.slots_per_day = static_cast<int>(serdes::ReadU64(is));

  serdes::ExpectToken(is, "shards");
  const std::uint64_t shard_count = serdes::ReadU64(is);
  layout.shards.reserve(shard_count);
  std::size_t covered = 0;  // ranges must tile [0, node_count) exactly.
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    serdes::ExpectToken(is, "shard");
    ShardRange range;
    range.index = static_cast<std::size_t>(serdes::ReadU64(is));
    range.begin_node = static_cast<std::size_t>(serdes::ReadU64(is));
    range.end_node = static_cast<std::size_t>(serdes::ReadU64(is));
    SHEP_REQUIRE(range.index == i && range.begin_node == covered &&
                     range.begin_node < range.end_node &&
                     range.end_node <= layout.node_count,
                 "malformed shard range in plan: ranges must tile the node "
                 "list without gaps or overlap");
    covered = range.end_node;
    layout.shards.push_back(range);
  }
  SHEP_REQUIRE(covered == layout.node_count,
               "plan shard ranges do not cover every node");

  serdes::ExpectToken(is, "lanes");
  const std::uint64_t lane_count = serdes::ReadU64(is);
  layout.lanes.reserve(lane_count);
  for (std::uint64_t i = 0; i < lane_count; ++i) {
    serdes::ExpectToken(is, "lane");
    TraceLanePlan lane;
    lane.lane = static_cast<std::size_t>(serdes::ReadU64(is));
    is >> lane.site_code;
    lane.trace_seed = serdes::ReadU64(is);
    SHEP_REQUIRE(lane.lane == i && !lane.site_code.empty(),
                 "malformed trace lane in plan");
    layout.lanes.push_back(lane);
  }
  return layout;
}

}  // namespace shep
