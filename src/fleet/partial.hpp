// partial.hpp — the mergeable unit of a distributed fleet run.
//
// Stage 2 of the pipeline (RunFleetShards) executes a subset of a
// ShardPlan's shards and reduces each shard into per-cell
// CellAccumulators.  A FleetPartial packages those shard results with
// enough identity (plan fingerprint) and run metadata (nodes, wall times)
// that stage 3 (MergeFleetPartials) can fold ANY grouping of partials —
// one per shard, one per machine, or one for the whole plan — into the
// same FleetSummary, bit-identical to the single-process run.
//
// Two properties carry that guarantee:
//  * granularity — a partial keeps its accumulators PER SHARD, never
//    pre-merged across shards, so the merge can always fold in plan
//    (shard-index) order no matter how shards were grouped into partials;
//  * exact serialization — Serialize/Parse round-trip every double as a
//    hexfloat and every count as an integer, so a partial that crossed a
//    process boundary as text merges bit-identically to one that stayed
//    in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fleet/aggregate.hpp"

namespace shep {

/// The reduction of one shard: accumulators for the short run of
/// consecutive cells its nodes belong to, in first-touch (node) order.
struct ShardCells {
  std::size_t shard = 0;  ///< plan shard index.
  std::vector<std::pair<std::size_t, CellAccumulator>> cells;
};

/// Result of one RunFleetShards call over a shard subset.
struct FleetPartial {
  std::string scenario_name;
  /// Identity of the plan this partial belongs to; MergeFleetPartials
  /// rejects partials whose fingerprint disagrees with the plan's.
  std::uint64_t plan_fingerprint = 0;
  std::size_t nodes_simulated = 0;
  double synth_seconds = 0.0;  ///< phase-1 wall time of this run.
  double sim_seconds = 0.0;    ///< phase-2 wall time of this run.
  /// Per-shard reductions, ascending by shard index.
  std::vector<ShardCells> shards;

  /// Text form; exact (see file comment).
  std::string Serialize() const;

  /// Inverse of Serialize.  Throws std::invalid_argument on malformed
  /// input.
  [[nodiscard]] static FleetPartial Parse(const std::string& text);
};

}  // namespace shep
