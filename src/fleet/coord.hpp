// coord.hpp — the multi-process fleet coordinator and its wire protocol.
//
// RunFleetCoordinated turns the serializable pipeline (shard plan →
// per-shard FleetPartial text → plan-order merge) into a real
// multi-process runtime: it fork/execs N copies of the shep_fleet_worker
// binary (tools/fleet/), hands each the full campaign once over stdin —
// the ScenarioSpec's exact text plus the shard size, so every worker
// rebuilds the IDENTICAL ShardPlan and proves it by echoing the plan
// fingerprint — then dispatches shards one at a time ("run <shard>") and
// streams each shard's FleetPartial::Serialize() text back over a pipe,
// framed and checksummed per shard so completed shards survive a worker
// death.
//
// Control plane vs data plane (the caldera heartbeat/transport split):
// workers emit a heartbeat line between frames from a dedicated thread,
// and the coordinator's per-worker reader threads timestamp every byte.
// A deadline loop turns silence into death (SIGKILL + reap), a per-shard
// deadline turns a hung-but-heartbeating worker into a straggler (same
// treatment), and either way the victim's uncovered shards go back to the
// pending queue for the survivors — safe by construction, because shards
// are dispatched one per frame and MergeFleetPartials rejects duplicate
// coverage, so the merge is over exactly one accepted frame per shard.
// First valid frame wins; late duplicates from a killed straggler are
// counted and discarded.
//
// The merged summary is bit-identical to single-process RunFleet at any
// worker count and any kill/reassignment schedule (pinned by
// tests/test_fleet_coord.cpp): partials travel as exact hexfloat text and
// the merge folds in plan order regardless of which process computed what.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/aggregate.hpp"
#include "fleet/scenario.hpp"

namespace shep {

// ---- Wire protocol (shared by coordinator and worker binary) -------------

/// Everything a worker needs before its first shard: the campaign itself
/// plus the knobs that must agree with the coordinator's plan.
struct FleetWorkerJob {
  ScenarioSpec spec;
  std::size_t shard_size = 8;
  /// Worker-local simulation threads (1 = serial).  Never changes results.
  std::size_t threads = 1;
  /// Worker heartbeat period; the coordinator's liveness deadline should
  /// be a comfortable multiple of this.
  std::uint32_t heartbeat_ms = 100;
  /// Expected plan fingerprint.  The worker rebuilds the plan from (spec,
  /// shard_size) and refuses the job when its fingerprint disagrees —
  /// catching coordinator/worker version skew before any work runs.
  std::uint64_t fingerprint = 0;
  /// Per-worker trace directory (empty = telemetry off).
  std::string trace_dir;
};

/// Text form of a job, written to the worker's stdin before any command.
/// The spec travels as its exact Describe() text, byte-counted so the
/// reader never guesses where it ends.
std::string EncodeFleetJob(const FleetWorkerJob& job);

/// Inverse of EncodeFleetJob.  Throws std::invalid_argument on malformed
/// input.  Does NOT verify the fingerprint — the worker does that after
/// rebuilding the plan.
[[nodiscard]] FleetWorkerJob ParseFleetJob(std::istream& in);

/// FNV-1a 64 over the payload bytes; the frame checksum.
std::uint64_t FleetFrameChecksum(std::string_view payload);

/// One data-plane frame: "frame <shard> <bytes> <checksum>\n" + payload +
/// "end-frame\n".  The payload is the FleetPartial::Serialize() text of
/// exactly that one shard.
std::string EncodeFleetFrame(std::size_t shard, const std::string& payload);

// ---- Coordinator ---------------------------------------------------------

struct FleetCoordOptions {
  /// Path to the shep_fleet_worker binary (required).  Tests and tools get
  /// it from the SHEP_FLEET_WORKER_PATH compile definition.
  std::string worker_path;
  std::size_t workers = 4;
  std::size_t shard_size = 8;
  /// Simulation threads per worker; 1 keeps the scaling curve honest.
  std::size_t worker_threads = 1;
  /// Shards dispatched to a worker ahead of completion; >1 hides the
  /// dispatch round-trip, and every frame still carries exactly one shard.
  std::size_t max_inflight_per_worker = 2;
  std::uint32_t heartbeat_ms = 100;
  /// No bytes at all from a worker for this long => dead.
  std::uint32_t liveness_timeout_ms = 5000;
  /// A dispatched shard unanswered for this long => the worker is a
  /// straggler (possibly hung but still heartbeating) and is killed.
  std::uint32_t shard_timeout_ms = 120000;
  /// Replacement workers the run may spawn after deaths; when the budget
  /// is exhausted and no live worker remains, the run throws.  0 picks
  /// 2 * workers.
  std::size_t max_respawns = 0;
  /// Telemetry root (empty = off).  Each spawn writes its shard trace
  /// files into <trace_dir>/worker-<spawn>/; after the run the
  /// coordinator moves each ACCEPTED shard's file up into <trace_dir> and
  /// removes the per-spawn directories, so the surviving set is identical
  /// to a single-process traced run.
  std::string trace_dir;
  /// Extra argv entries for every spawned worker; how tests inject
  /// deterministic faults (--die-after-frames, --corrupt-frame, ...).
  std::vector<std::string> worker_args;
  /// Test hook: observes every spawn (spawn id, pid) so a test can
  /// SIGKILL a real worker mid-campaign.
  std::function<void(std::size_t spawn, long pid)> on_spawn;
};

/// What the control loop saw; for logs, tests, and the demo.
struct FleetCoordStats {
  std::size_t workers_spawned = 0;   ///< including replacements.
  std::size_t workers_died = 0;      ///< exited/EOF with work outstanding.
  std::size_t workers_killed = 0;    ///< coordinator SIGKILLs.
  std::size_t respawns = 0;
  std::size_t shards_reassigned = 0;
  std::size_t frames_accepted = 0;
  std::size_t duplicate_frames = 0;  ///< valid frames for covered shards.
  std::size_t corrupt_frames = 0;    ///< checksum/parse failures.
};

/// Runs the campaign across `options.workers` worker processes and merges
/// the streamed partials; bit-identical to RunFleet(spec) with the same
/// shard_size.  Throws std::runtime_error when the fleet cannot finish
/// (respawn budget exhausted with shards uncovered) and
/// std::invalid_argument on a bad configuration.
FleetSummary RunFleetCoordinated(const ScenarioSpec& spec,
                                 const FleetCoordOptions& options,
                                 FleetCoordStats* stats = nullptr);

}  // namespace shep
