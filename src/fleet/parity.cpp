#include "fleet/parity.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.hpp"

namespace shep {

BackendDivergence MeasurePredictionDivergence(Predictor& a, Predictor& b,
                                              const SlotSeries& series,
                                              std::size_t skip_slots) {
  a.Reset();
  b.Reset();
  BackendDivergence divergence;
  double abs_sum = 0.0;
  // Same loop shape as SimulateNode: the final boundary has no successor
  // slot, so it is observed by neither comparison.
  for (std::size_t g = 0; g + 1 < series.size(); ++g) {
    a.Observe(series.boundary(g));
    b.Observe(series.boundary(g));
    if (g < skip_slots) continue;
    const double diff = std::fabs(a.PredictNext() - b.PredictNext());
    ++divergence.slots;
    abs_sum += diff;
    divergence.max_abs_w = std::max(divergence.max_abs_w, diff);
  }
  if (divergence.slots > 0) {
    divergence.mean_abs_w = abs_sum / static_cast<double>(divergence.slots);
  }
  if (series.peak_mean() > 0.0) {
    divergence.max_rel_peak = divergence.max_abs_w / series.peak_mean();
  }
  return divergence;
}

namespace {

/// (site, storage) -> cell index for one predictor label.
std::map<std::pair<std::size_t, std::size_t>, std::size_t> CellsOf(
    const FleetSummary& summary, const std::string& label) {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> cells;
  for (const ScenarioCell& cell : summary.cells) {
    if (cell.predictor_label == label) {
      cells.emplace(std::make_pair(cell.site_index, cell.storage_index),
                    cell.index);
    }
  }
  SHEP_REQUIRE(!cells.empty(), "no cells carry predictor label " + label);
  return cells;
}

}  // namespace

std::vector<CellMapeDelta> MapeDeltas(const FleetSummary& summary,
                                      const std::string& label_a,
                                      const std::string& label_b) {
  const auto cells_a = CellsOf(summary, label_a);
  const auto cells_b = CellsOf(summary, label_b);
  std::vector<CellMapeDelta> deltas;
  deltas.reserve(cells_a.size());
  for (const auto& [key, index_a] : cells_a) {
    const auto it = cells_b.find(key);
    SHEP_REQUIRE(it != cells_b.end(),
                 "label " + label_b + " has no cell matching a " + label_a +
                     " (site, storage) combination");
    const std::size_t index_b = it->second;
    const CellAccumulator& stats_a = summary.stats[index_a];
    const CellAccumulator& stats_b = summary.stats[index_b];
    SHEP_REQUIRE(stats_a.mape.valid() && stats_b.mape.valid(),
                 "matched cells must both have measured MAPE");
    CellMapeDelta delta;
    delta.cell_a = index_a;
    delta.cell_b = index_b;
    delta.site_code = summary.cells[index_a].site_code;
    delta.storage_j = summary.cells[index_a].storage_j;
    delta.mape_a = stats_a.mape.mean;
    delta.mape_b = stats_b.mape.mean;
    deltas.push_back(delta);
  }
  return deltas;
}

double MaxAbsMapeDelta(const std::vector<CellMapeDelta>& deltas) {
  double max_delta = 0.0;
  for (const CellMapeDelta& delta : deltas) {
    max_delta = std::max(max_delta, delta.abs_delta());
  }
  return max_delta;
}

}  // namespace shep
