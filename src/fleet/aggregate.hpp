// aggregate.hpp — streaming, mergeable summary statistics for fleet runs.
//
// A fleet run produces one NodeSimResult per node; keeping them all would
// bound the fleet size by memory, so each scenario cell is reduced on the
// fly into a CellAccumulator built from two single-pass primitives:
//
//  * StreamingMoments — count/mean/M2/min/max via Welford's update, merged
//    across shards with Chan et al.'s parallel combination;
//  * FixedHistogram   — fixed-range bin counts (violation rate lives in
//    [0, 1]) from which p50/p95 are interpolated.
//
// Both are MERGEABLE: shards accumulate privately with no locking and the
// runner folds the shard accumulators afterwards in shard order, which is
// what makes the summary bit-identical at any thread count (the fold order
// never depends on scheduling).  Merge is exactly associative on every
// integer field; on the floating-point fields it is associative up to
// rounding, which tests/test_fleet.cpp pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

// The serdes hexfloat helpers moved to common/serdes.hpp (the trace layer
// shares them); this include keeps every fleet serializer spelling them
// shep::serdes::* unchanged.
#include "common/serdes.hpp"

#include "common/mathutil.hpp"
#include "fleet/scenario.hpp"
#include "mgmt/node_sim.hpp"

namespace shep {

/// Single-pass count/mean/variance/extrema accumulator: the shared
/// Welford core (common/mathutil.hpp — one implementation of the
/// numerically delicate recurrence in the tree) extended with extrema
/// tracking, cross-shard merging, and bit-exact serialization.
struct StreamingMoments : WelfordMoments {
  double min = 0.0;
  double max = 0.0;

  void Add(double x);
  void Merge(const StreamingMoments& other);

  bool valid() const { return count > 0; }

  /// Single-line text form; doubles rendered as hexfloats so the
  /// deserialized value is BIT-identical (the distributed merge path
  /// depends on it).
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static StreamingMoments Deserialize(std::istream& is);
};

/// Fixed-range histogram with uniform bins; out-of-range values clamp to
/// the edge bins.  NaN samples — unordered under clamp, so binning one
/// would be undefined behaviour — are tallied into a dedicated NaN count
/// that merges and serializes like the bins but never distorts quantiles.
/// Mergeable by bin-wise addition.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  void Merge(const FixedHistogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// In-bin sample mass (excludes NaN samples).
  std::uint64_t total() const { return total_; }
  /// Samples rejected as NaN; kept out of total() so Quantile's mass
  /// bookkeeping stays consistent.
  std::uint64_t nan_count() const { return nan_count_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }

  /// Quantile q in [0, 1], linearly interpolated inside the holding bin.
  /// Requires total() > 0.
  double Quantile(double q) const;

  /// Single-line text form (geometry + sparse non-zero bins); bit-exact
  /// round trip via Deserialize.
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static FixedHistogram Deserialize(std::istream& is);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;
};

/// Everything a scenario cell reports, reduced over its nodes.
struct CellAccumulator {
  /// Upper edge of the per-wake-up cycle histogram.  Division dominates
  /// the routine (~560 cycles each, K+2 divisions per wake-up), so the
  /// range covers K beyond 30 at 40-cycle resolution; costlier outliers
  /// clamp into the top bin (the p95 is additionally clamped to the true
  /// extrema tracked by the moments when rendered).
  static constexpr double kMaxCyclesPerWakeup = 20000.0;

  CellAccumulator();

  StreamingMoments violation_rate;   ///< per-node brown-out rate.
  StreamingMoments mean_duty;        ///< per-node achieved duty cycle.
  StreamingMoments wasted_fraction;  ///< per-node overflow_j / harvested_j.
  StreamingMoments min_soc;          ///< per-node storage low-water mark.
  StreamingMoments mape;             ///< per-node prediction MAPE.
  FixedHistogram violation_hist;     ///< violation-rate distribution.
  std::uint64_t violations = 0;      ///< summed brown-out slots.
  std::uint64_t scored_slots = 0;    ///< summed post-warm-up slots.
  /// MCU-cost channel: per-node mean predict cycles / ops per wake-up,
  /// fed only by nodes whose predictor reports compute cost (fixed-point
  /// and VM backends).  The moments keep their own count, so cells of
  /// float predictors stay empty ("n/a") rather than faking zero cost.
  StreamingMoments cycles_per_wakeup;
  StreamingMoments ops_per_wakeup;
  FixedHistogram cycles_hist;        ///< cycles-per-wake-up distribution.
  /// Graceful-degradation channel, fed only by fault-injected nodes
  /// (NodeSimResult.faulted) — the same own-count discipline as the MCU
  /// cost channel, which is what keeps healthy runs' tables and CSV
  /// byte-identical to pre-fault output (no fault columns at all).
  StreamingMoments availability;     ///< per-node up / (up + downtime).
  StreamingMoments post_recovery_violation_rate;  ///< re-warm-up cost.
  std::uint64_t downtime_slots = 0;  ///< summed post-warm-up outage slots.
  std::uint64_t recoveries = 0;      ///< summed outage→up transitions.

  void Add(const NodeSimResult& result);
  void Merge(const CellAccumulator& other);

  std::size_t nodes() const { return violation_rate.count; }
  /// True when at least one node of the cell reported compute cost.
  bool has_compute_cost() const { return cycles_per_wakeup.valid(); }
  /// True when at least one node of the cell ran under fault injection.
  bool has_fault_stats() const { return availability.valid(); }

  /// Multi-line text form of every field (moments, histograms incl. NaN
  /// counts, integer totals), bit-exact through Deserialize; this is what
  /// lets a FleetPartial cross a process boundary and still merge
  /// bit-identically to the single-process run.
  void Serialize(std::ostream& os) const;
  [[nodiscard]] static CellAccumulator Deserialize(std::istream& is);
};

/// The deterministic output of a fleet run: the expanded cells plus one
/// accumulator per cell (parallel vectors).  Runtime metadata (threads,
/// wall time) deliberately lives elsewhere (FleetRunStats) so this value is
/// comparable across runs.
struct FleetSummary {
  std::string scenario_name;
  std::size_t node_count = 0;
  std::size_t days = 0;
  int slots_per_day = 0;
  std::vector<ScenarioCell> cells;
  std::vector<CellAccumulator> stats;

  /// Aligned text table (report/table layer), one row per cell.
  std::string ToTable() const;

  /// CSV with the same rows in machine-readable form.
  std::string ToCsv() const;
};

}  // namespace shep
