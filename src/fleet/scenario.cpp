#include "fleet/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/serdes.hpp"
#include "common/rng.hpp"
#include "core/baselines.hpp"
#include "core/ewma.hpp"
#include "hw/costed_fixed.hpp"
#include "hw/vm_predictor.hpp"
#include "solar/sites.hpp"
#include "timeseries/trace.hpp"

namespace shep {

const char* PredictorKindName(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kWcma:         return "WCMA";
    case PredictorKind::kWcmaFixed:    return "FixedWCMA";
    case PredictorKind::kWcmaVm:       return "VmWCMA";
    case PredictorKind::kEwma:         return "EWMA";
    case PredictorKind::kAr:           return "AR";
    case PredictorKind::kAdaptiveWcma: return "AdaptiveWCMA";
    case PredictorKind::kPersistence:  return "Persistence";
    case PredictorKind::kPreviousDay:  return "PreviousDay";
  }
  SHEP_REQUIRE(false, "unknown predictor kind");
  throw std::logic_error("unreachable");
}

PredictorKind PredictorKindFromName(const std::string& name) {
  // The serde spells kinds by display name, not enum value, so the wire
  // format survives reordering the enum.
  for (PredictorKind kind :
       {PredictorKind::kWcma, PredictorKind::kWcmaFixed,
        PredictorKind::kWcmaVm, PredictorKind::kEwma, PredictorKind::kAr,
        PredictorKind::kAdaptiveWcma, PredictorKind::kPersistence,
        PredictorKind::kPreviousDay}) {
    if (name == PredictorKindName(kind)) return kind;
  }
  SHEP_REQUIRE(false, "unknown predictor kind name: " + name);
  throw std::logic_error("unreachable");
}

std::unique_ptr<Predictor> PredictorSpec::Make(int slots_per_day) const {
  switch (kind) {
    case PredictorKind::kWcma:
      return std::make_unique<Wcma>(wcma, slots_per_day);
    case PredictorKind::kWcmaFixed:
      return std::make_unique<CostedFixedWcma>(wcma, slots_per_day);
    case PredictorKind::kWcmaVm:
      return std::make_unique<VmWcmaPredictor>(wcma, slots_per_day);
    case PredictorKind::kEwma:
      return std::make_unique<Ewma>(ewma_weight, slots_per_day);
    case PredictorKind::kAr:
      return std::make_unique<ArPredictor>(ar, slots_per_day);
    case PredictorKind::kAdaptiveWcma:
      return std::make_unique<AdaptiveWcma>(adaptive, slots_per_day);
    case PredictorKind::kPersistence:
      return std::make_unique<Persistence>();
    case PredictorKind::kPreviousDay:
      return std::make_unique<PreviousDay>(slots_per_day);
  }
  SHEP_REQUIRE(false, "unknown predictor kind");
  throw std::logic_error("unreachable");
}

void PredictorSpec::Validate(int slots_per_day) const {
  // Mirrors every constructor precondition Make() can hit, per kind.
  switch (kind) {
    case PredictorKind::kWcma:
    case PredictorKind::kWcmaFixed:
    case PredictorKind::kWcmaVm:
      wcma.Validate();
      SHEP_REQUIRE(wcma.slots_k < slots_per_day,
                   "WCMA K must be smaller than slots_per_day");
      break;
    case PredictorKind::kEwma:
      SHEP_REQUIRE(ewma_weight >= 0.0 && ewma_weight <= 1.0,
                   "EWMA weight must be in [0,1]");
      break;
    case PredictorKind::kAr:
      ar.Validate();
      break;
    case PredictorKind::kAdaptiveWcma:
      adaptive.Validate();
      for (int k : adaptive.ks) {
        SHEP_REQUIRE(k < slots_per_day,
                     "adaptive candidate K must be < slots_per_day");
      }
      break;
    case PredictorKind::kPersistence:
    case PredictorKind::kPreviousDay:
      break;
  }
}

void ScenarioSpec::Validate() const {
  // Validation must be exhaustive: the runner executes node simulations on
  // pool workers, where a late throw cannot be caught (std::terminate), so
  // every way a spec could fail downstream is rejected here, up front.
  SHEP_REQUIRE(!sites.empty(), "scenario needs at least one site");
  SHEP_REQUIRE(slots_per_day > 0 && kSecondsPerDay % slots_per_day == 0,
               "slots_per_day must divide the day");
  const int slot_seconds = kSecondsPerDay / slots_per_day;
  for (const auto& code : sites) {
    const SiteProfile& site = SiteByCode(code);  // throws on unknown code.
    SHEP_REQUIRE(slot_seconds % site.resolution_s == 0,
                 "slot length must be a multiple of the site's recording "
                 "resolution: " + code);
  }
  SHEP_REQUIRE(!predictors.empty(), "scenario needs at least one predictor");
  SHEP_REQUIRE(slots_per_day >= 2, "need at least two slots per day");
  for (const PredictorSpec& p : predictors) p.Validate(slots_per_day);
  SHEP_REQUIRE(!storage_tiers_j.empty(),
               "scenario needs at least one storage tier");
  for (double s : storage_tiers_j) {
    SHEP_REQUIRE(s > 0.0, "storage tiers must be positive");
  }
  SHEP_REQUIRE(nodes_per_cell >= 1, "nodes_per_cell must be >= 1");
  // The sim loop drops the final boundary slot, so one post-warm-up slot is
  // not enough: (days - warmup) * N - 1 scored slots must be >= 1.
  SHEP_REQUIRE(days > node.warmup_days &&
                   (days - node.warmup_days) *
                           static_cast<std::size_t>(slots_per_day) >= 2,
               "horizon must leave at least one scored slot past the warm-up");
  SHEP_REQUIRE(initial_level_jitter >= 0.0 && initial_level_jitter <= 0.5,
               "initial_level_jitter must be in [0, 0.5]");
  faults.Validate(days, slots_per_day);
  node.duty.Validate();
  node.storage.Validate();
  SHEP_REQUIRE(node.initial_level_fraction >= 0.0 &&
                   node.initial_level_fraction <= 1.0,
               "initial level must be a fraction");
}

std::string ScenarioSpec::Describe() const {
  Validate();  // only an expandable spec may cross a process boundary.
  SHEP_REQUIRE(name.find_first_of(" \t\n") == std::string::npos,
               "scenario names must be whitespace-free to serialize");
  std::ostringstream os;
  // v2: the spec gained the faults block (deterministic fault injection);
  // v1 bytes would mis-align on parse, so the version token rejects them.
  os << "shep-scenario v2\n";
  os << "name " << name << '\n';
  os << "seed " << seed << '\n';
  os << "shape " << days << ' ' << slots_per_day << ' ' << nodes_per_cell
     << '\n';
  os << "sites " << sites.size();
  for (const std::string& code : sites) os << ' ' << code;
  os << '\n';
  os << "tiers " << storage_tiers_j.size();
  for (double tier : storage_tiers_j) {
    os << ' ';
    serdes::WriteDouble(os, tier);
  }
  os << '\n';
  os << "predictors " << predictors.size() << '\n';
  for (const PredictorSpec& p : predictors) {
    // Every kind serializes every parameter block: the few unused doubles
    // cost a handful of bytes and keep the reader branch-free.
    os << "predictor " << PredictorKindName(p.kind) << " wcma ";
    serdes::WriteDouble(os, p.wcma.alpha);
    os << ' ' << p.wcma.days << ' ' << p.wcma.slots_k << " ewma ";
    serdes::WriteDouble(os, p.ewma_weight);
    os << " ar " << p.ar.order << ' ' << p.ar.days << ' ';
    serdes::WriteDouble(os, p.ar.lambda);
    os << ' ';
    serdes::WriteDouble(os, p.ar.delta);
    os << " adaptive " << p.adaptive.alphas.size();
    for (double a : p.adaptive.alphas) {
      os << ' ';
      serdes::WriteDouble(os, a);
    }
    os << ' ' << p.adaptive.ks.size();
    for (int k : p.adaptive.ks) os << ' ' << k;
    os << ' ' << p.adaptive.days << ' ';
    serdes::WriteDouble(os, p.adaptive.discount);
    os << '\n';
  }
  os << "duty ";
  serdes::WriteDouble(os, node.duty.slot_seconds);
  os << ' ';
  serdes::WriteDouble(os, node.duty.active_power_w);
  os << ' ';
  serdes::WriteDouble(os, node.duty.sleep_power_w);
  os << ' ';
  serdes::WriteDouble(os, node.duty.min_duty);
  os << ' ';
  serdes::WriteDouble(os, node.duty.max_duty);
  os << ' ';
  serdes::WriteDouble(os, node.duty.target_level_fraction);
  os << ' ';
  serdes::WriteDouble(os, node.duty.level_gain);
  os << '\n';
  os << "store ";
  serdes::WriteDouble(os, node.storage.capacity_j);
  os << ' ';
  serdes::WriteDouble(os, node.storage.charge_efficiency);
  os << ' ';
  serdes::WriteDouble(os, node.storage.leakage_w);
  os << '\n';
  os << "node ";
  serdes::WriteDouble(os, node.initial_level_fraction);
  os << ' ' << node.warmup_days << ' ';
  serdes::WriteDouble(os, initial_level_jitter);
  os << '\n';
  os << "faults outage ";
  serdes::WriteDouble(os, faults.outage_rate_per_day);
  os << ' ';
  serdes::WriteDouble(os, faults.outage_mean_slots);
  os << " dropout ";
  serdes::WriteDouble(os, faults.dropout_rate_per_day);
  os << ' ';
  serdes::WriteDouble(os, faults.dropout_mean_slots);
  os << " panel ";
  serdes::WriteDouble(os, faults.panel_decay_per_day);
  os << " aging ";
  serdes::WriteDouble(os, faults.battery_aging_per_day);
  os << " recovery " << faults.recovery_window_slots << '\n';
  os << "end-scenario\n";
  return os.str();
}

ScenarioSpec ParseScenarioSpec(const std::string& text) {
  std::istringstream is(text);
  serdes::ExpectToken(is, "shep-scenario");
  serdes::ExpectToken(is, "v2");
  ScenarioSpec spec;
  serdes::ExpectToken(is, "name");
  is >> spec.name;
  SHEP_REQUIRE(!spec.name.empty(), "scenario is missing its name");
  serdes::ExpectToken(is, "seed");
  spec.seed = serdes::ReadU64(is);
  serdes::ExpectToken(is, "shape");
  spec.days = static_cast<std::size_t>(serdes::ReadU64(is));
  spec.slots_per_day = static_cast<int>(serdes::ReadU64(is));
  spec.nodes_per_cell = static_cast<std::size_t>(serdes::ReadU64(is));

  serdes::ExpectToken(is, "sites");
  const std::uint64_t site_count = serdes::ReadU64(is);
  spec.sites.clear();
  for (std::uint64_t i = 0; i < site_count; ++i) {
    std::string code;
    is >> code;
    SHEP_REQUIRE(!code.empty(), "scenario lists an empty site code");
    spec.sites.push_back(code);
  }

  serdes::ExpectToken(is, "tiers");
  const std::uint64_t tier_count = serdes::ReadU64(is);
  spec.storage_tiers_j.clear();
  for (std::uint64_t i = 0; i < tier_count; ++i) {
    spec.storage_tiers_j.push_back(serdes::ReadDouble(is));
  }

  serdes::ExpectToken(is, "predictors");
  const std::uint64_t predictor_count = serdes::ReadU64(is);
  spec.predictors.clear();
  for (std::uint64_t i = 0; i < predictor_count; ++i) {
    serdes::ExpectToken(is, "predictor");
    PredictorSpec p;
    std::string kind;
    is >> kind;
    p.kind = PredictorKindFromName(kind);
    serdes::ExpectToken(is, "wcma");
    p.wcma.alpha = serdes::ReadDouble(is);
    p.wcma.days = static_cast<int>(serdes::ReadU64(is));
    p.wcma.slots_k = static_cast<int>(serdes::ReadU64(is));
    serdes::ExpectToken(is, "ewma");
    p.ewma_weight = serdes::ReadDouble(is);
    serdes::ExpectToken(is, "ar");
    p.ar.order = static_cast<int>(serdes::ReadU64(is));
    p.ar.days = static_cast<int>(serdes::ReadU64(is));
    p.ar.lambda = serdes::ReadDouble(is);
    p.ar.delta = serdes::ReadDouble(is);
    serdes::ExpectToken(is, "adaptive");
    const std::uint64_t alpha_count = serdes::ReadU64(is);
    p.adaptive.alphas.clear();
    for (std::uint64_t a = 0; a < alpha_count; ++a) {
      p.adaptive.alphas.push_back(serdes::ReadDouble(is));
    }
    const std::uint64_t k_count = serdes::ReadU64(is);
    p.adaptive.ks.clear();
    for (std::uint64_t k = 0; k < k_count; ++k) {
      p.adaptive.ks.push_back(static_cast<int>(serdes::ReadU64(is)));
    }
    p.adaptive.days = static_cast<int>(serdes::ReadU64(is));
    p.adaptive.discount = serdes::ReadDouble(is);
    spec.predictors.push_back(p);
  }

  serdes::ExpectToken(is, "duty");
  spec.node.duty.slot_seconds = serdes::ReadDouble(is);
  spec.node.duty.active_power_w = serdes::ReadDouble(is);
  spec.node.duty.sleep_power_w = serdes::ReadDouble(is);
  spec.node.duty.min_duty = serdes::ReadDouble(is);
  spec.node.duty.max_duty = serdes::ReadDouble(is);
  spec.node.duty.target_level_fraction = serdes::ReadDouble(is);
  spec.node.duty.level_gain = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "store");
  spec.node.storage.capacity_j = serdes::ReadDouble(is);
  spec.node.storage.charge_efficiency = serdes::ReadDouble(is);
  spec.node.storage.leakage_w = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "node");
  spec.node.initial_level_fraction = serdes::ReadDouble(is);
  spec.node.warmup_days = static_cast<std::size_t>(serdes::ReadU64(is));
  spec.initial_level_jitter = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "faults");
  serdes::ExpectToken(is, "outage");
  spec.faults.outage_rate_per_day = serdes::ReadDouble(is);
  spec.faults.outage_mean_slots = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "dropout");
  spec.faults.dropout_rate_per_day = serdes::ReadDouble(is);
  spec.faults.dropout_mean_slots = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "panel");
  spec.faults.panel_decay_per_day = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "aging");
  spec.faults.battery_aging_per_day = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "recovery");
  spec.faults.recovery_window_slots =
      static_cast<std::size_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "end-scenario");
  // Trailing junk means these are not Describe() bytes — reject rather
  // than silently ignoring what might be a second (dropped) spec.
  std::string trailing;
  SHEP_REQUIRE(!(is >> trailing),
               "trailing content after end-scenario: " + trailing);
  spec.Validate();  // reject bytes no Describe() could have produced.
  return spec;
}

std::uint64_t DeriveSeed(std::uint64_t root, std::uint64_t a,
                         std::uint64_t b) {
  // Fold the lane indices into a splitmix64 stream: each fold xors a lane
  // into the MIXED output of the previous round (not the raw counter), so
  // every lane is fully diffused before the next enters.  The +1 offsets
  // keep lane 0 from degenerating into the raw root.
  std::uint64_t state = root;
  state = SplitMix64(state) ^ ((a + 1) * 0x9E3779B97F4A7C15ull);
  state = SplitMix64(state) ^ ((b + 1) * 0x94D049BB133111EBull);
  return SplitMix64(state);
}

ScenarioMatrix ExpandScenario(const ScenarioSpec& spec) {
  spec.Validate();

  ScenarioMatrix matrix;
  matrix.spec = spec;
  matrix.spec.node.duty.slot_seconds =
      static_cast<double>(kSecondsPerDay / spec.slots_per_day);
  matrix.cells.reserve(spec.cell_count());
  matrix.nodes.reserve(spec.node_count());

  // Disambiguate duplicate designs of the same kind so no two cells of a
  // (site, storage) pair share a label.  EVERY member of a duplicated kind
  // gets the "#<index>" suffix — leaving the first one bare would make the
  // bare name ambiguous between "the first duplicate" and "a singleton".
  std::vector<std::string> labels(spec.predictors.size());
  for (std::size_t i = 0; i < spec.predictors.size(); ++i) {
    std::size_t kind_uses = 0;
    for (const PredictorSpec& p : spec.predictors) {
      kind_uses += p.kind == spec.predictors[i].kind ? 1 : 0;
    }
    labels[i] = spec.predictors[i].Label();
    if (kind_uses > 1) {
      labels[i] += '#';
      labels[i] += std::to_string(i);
    }
  }

  for (std::size_t i_s = 0; i_s < spec.sites.size(); ++i_s) {
    for (std::size_t i_p = 0; i_p < spec.predictors.size(); ++i_p) {
      for (std::size_t i_t = 0; i_t < spec.storage_tiers_j.size(); ++i_t) {
        ScenarioCell cell;
        cell.index = matrix.cells.size();
        cell.site_index = i_s;
        cell.predictor_index = i_p;
        cell.storage_index = i_t;
        cell.site_code = spec.sites[i_s];
        cell.predictor_label = labels[i_p];
        cell.storage_j = spec.storage_tiers_j[i_t];

        for (std::size_t r = 0; r < spec.nodes_per_cell; ++r) {
          FleetNodeConfig node;
          node.index = matrix.nodes.size();
          node.cell = cell.index;
          node.replica = r;
          // Weather lane keyed by (site, replica) only: all predictor and
          // storage cells of a site see identical weather (paired design).
          node.trace_seed = DeriveSeed(spec.seed, i_s, r);
          node.node_seed = DeriveSeed(spec.seed, cell.index + 0x10000, r);
          // Own lane offset (0x20000 vs the node stream's 0x10000): fault
          // schedules draw from a stream no other consumer touches, so a
          // faulted campaign shares its weather and jitter draws with the
          // healthy one bit for bit.
          node.fault_seed = DeriveSeed(spec.seed, cell.index + 0x20000, r);
          node.initial_level_fraction = spec.node.initial_level_fraction;
          if (spec.initial_level_jitter > 0.0) {
            Rng rng(node.node_seed);
            node.initial_level_fraction = std::clamp(
                node.initial_level_fraction +
                    rng.Uniform(-spec.initial_level_jitter,
                                spec.initial_level_jitter),
                0.0, 1.0);
          }
          matrix.nodes.push_back(node);
        }
        matrix.cells.push_back(cell);
      }
    }
  }
  return matrix;
}

}  // namespace shep
