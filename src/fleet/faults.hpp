// faults.hpp — deterministic fault injection for fleet campaigns.
//
// Real deployments lose nodes the paper's evaluation never models: radios
// brown out for hours (outages), panels soil and age (harvest decay),
// batteries fade (capacity aging), and sensors drop readings (dropout
// windows).  This module injects all four as a *precomputed schedule*
// derived from the scenario seed, so chaos runs keep the fleet invariant:
// bit-identical summaries at any thread count, shard grouping, or process
// count.
//
// The split mirrors the tracing design (trace/probe.hpp):
//
//  * FaultSpec      — the declarative knobs on ScenarioSpec, serialized in
//    Describe()/ParseScenarioSpec so coordinated multi-process campaigns
//    carry fault configs verbatim;
//  * FaultSchedule  — the per-node expansion (sorted outage/dropout slot
//    windows + per-day degradation factors), built OFF the hot path by the
//    runner from the node's own fault seed — its own splitmix lane, so the
//    weather and jitter draw sequences (part of the bit-identity contract)
//    are untouched;
//  * FaultModel     — the zero-allocation kernel-side view: monotone
//    cursors over the schedule, threaded through SimulateNodeKernel as a
//    template parameter exactly like the slot probe.  The disabled flavour
//    (NoFaultModel, mgmt/node_sim_kernel.hpp) removes every fault branch
//    via `if constexpr`, so an unfaulted run compiles to the pre-fault
//    kernel bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shep {

/// Declarative fault knobs of a campaign; all defaults are "healthy fleet"
/// (any() == false), and a healthy spec reproduces the pre-fault golden
/// fixtures byte for byte.
struct FaultSpec {
  /// Mean outage arrivals per node-day (1/MTBF in days).  Expanded as a
  /// per-slot Bernoulli draw at p = rate / slots_per_day while the node is
  /// up, so rate must not exceed slots_per_day.
  double outage_rate_per_day = 0.0;
  /// Mean outage duration in slots (MTTR); exponential, rounded, floored
  /// at one slot.  Required >= 1 when the rate is positive.
  double outage_mean_slots = 0.0;
  /// Mean sensor-dropout arrivals per node-day; same arrival model.
  double dropout_rate_per_day = 0.0;
  /// Mean dropout duration in slots.  A dropout window must fit within one
  /// day (> slots_per_day is rejected): a sensor dark for days is an
  /// outage, not a dropout.
  double dropout_mean_slots = 0.0;
  /// Harvest-panel efficiency decay per day (soiling/aging): day d scales
  /// every harvest by (1 - decay)^d.  Must be in [0, 1).
  double panel_decay_per_day = 0.0;
  /// Battery capacity fade per day: day d shrinks usable capacity to
  /// capacity_j * (1 - aging)^d.  Must be in [0, 1).
  double battery_aging_per_day = 0.0;
  /// Post-recovery accounting window in slots (the span after an outage
  /// over which violations are attributed to the recovery); 0 means one
  /// day.
  std::size_t recovery_window_slots = 0;

  /// True when any fault channel is active; the runner only builds
  /// schedules (and the kernel only takes the faulted instantiation) for
  /// specs where this holds.
  bool any() const {
    return outage_rate_per_day > 0.0 || dropout_rate_per_day > 0.0 ||
           panel_decay_per_day > 0.0 || battery_aging_per_day > 0.0;
  }

  /// Throws std::invalid_argument on knobs the schedule builder cannot
  /// honour; called from ScenarioSpec::Validate with the campaign shape.
  void Validate(std::size_t days, int slots_per_day) const;
};

/// One injected window of slots, [begin, end).
struct FaultWindow {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// The per-node expansion of a FaultSpec: everything the kernel's fault
/// probe reads, precomputed so the hot path never draws randomness or
/// allocates.  Reusable across nodes (Clear keeps capacity) the way
/// SynthScratch is reused across lanes.
struct FaultSchedule {
  std::vector<FaultWindow> outages;   ///< sorted, disjoint outage windows.
  std::vector<FaultWindow> dropouts;  ///< sorted, disjoint dropout windows.
  std::vector<double> panel_factor;     ///< per-day harvest multiplier.
  std::vector<double> capacity_factor;  ///< per-day usable-capacity factor.
  std::uint32_t recovery_window_slots = 0;  ///< resolved (0 -> one day).

  void Clear() {
    outages.clear();
    dropouts.clear();
    panel_factor.clear();
    capacity_factor.clear();
    recovery_window_slots = 0;
  }
};

/// Expands `spec` into `out` for one node.  Deterministic: the same
/// (spec, fault_seed, shape) always produces the identical schedule, and
/// the draws come from sub-lanes of `fault_seed` alone — no other stream
/// in the run is consumed or perturbed.  `out` is overwritten (capacity
/// reused).
void BuildFaultSchedule(const FaultSpec& spec, std::uint64_t fault_seed,
                        std::size_t days, int slots_per_day,
                        FaultSchedule& out);

/// Enabled kernel-side fault view (the NoFaultModel counterpart lives next
/// to NoSlotProbe in mgmt/node_sim_kernel.hpp).  Passed into the kernel BY
/// VALUE: the cursors advance monotonically with the slot index, so every
/// query is O(1) amortized over the run — index math only, nothing
/// reachable from the `root(hot-path-alloc)` kernel allocates.
class FaultModel {
 public:
  static constexpr bool kEnabled = true;

  explicit FaultModel(const FaultSchedule& schedule) : schedule_(&schedule) {}

  /// True when `slot` falls inside an outage window.  Slots must be
  /// queried in ascending order (the kernel's loop order).
  bool Down(std::uint32_t slot) {
    return Advance(schedule_->outages, outage_cursor_, slot);
  }

  /// True when `slot` falls inside a sensor-dropout window.
  bool Dropout(std::uint32_t slot) {
    return Advance(schedule_->dropouts, dropout_cursor_, slot);
  }

  double PanelFactor(std::size_t day) const {
    return schedule_->panel_factor[day];
  }
  double CapacityFactor(std::size_t day) const {
    return schedule_->capacity_factor[day];
  }
  std::uint32_t recovery_window_slots() const {
    return schedule_->recovery_window_slots;
  }

 private:
  static bool Advance(const std::vector<FaultWindow>& windows,
                      std::size_t& cursor, std::uint32_t slot) {
    while (cursor < windows.size() && slot >= windows[cursor].end) ++cursor;
    return cursor < windows.size() && slot >= windows[cursor].begin;
  }

  const FaultSchedule* schedule_;
  std::size_t outage_cursor_ = 0;
  std::size_t dropout_cursor_ = 0;
};

}  // namespace shep
