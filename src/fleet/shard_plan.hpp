// shard_plan.hpp — stage 1 of the distributed fleet pipeline.
//
// BuildShardPlan turns a ScenarioSpec into a ShardPlan: the expanded
// matrix plus a deterministic description of (a) the fixed-size shard
// ranges over the cell-major node list and (b) the weather-trace lanes the
// shards read.  The plan is a pure function of (spec, shard_size) — no
// clocks, no thread counts — so every process of a distributed run can
// rebuild the identical plan from the spec, and a coordinator that never
// expands the scenario can work from the serialized layout alone
// (Describe / ParseShardPlanLayout).
//
// The plan's fingerprint is folded into every FleetPartial produced by
// RunFleetShards; MergeFleetPartials refuses partials whose fingerprint
// disagrees, so results of a different spec, seed, or shard size can never
// be silently merged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/scenario.hpp"

namespace shep {

/// One contiguous run of nodes, executed as a unit.  Boundaries are a pure
/// function of (node count, shard_size), never of scheduling.
struct ShardRange {
  std::size_t index = 0;       ///< position in ShardPlan::shards.
  std::size_t begin_node = 0;  ///< first node id (inclusive).
  std::size_t end_node = 0;    ///< past-the-end node id.

  std::size_t node_count() const { return end_node - begin_node; }
};

/// One weather-trace lane: lanes are keyed (site, replica) — all
/// predictor/storage cells of a site share them (paired design) — and this
/// record is everything a worker (or the TraceCache) needs to synthesize
/// the lane's SlotSeries.
struct TraceLanePlan {
  std::size_t lane = 0;       ///< position in ShardPlan::lanes.
  std::string site_code;      ///< solar/sites code.
  std::uint64_t trace_seed = 0;
};

/// The serializable scheduling skeleton of a plan: what Describe() emits
/// and ParseShardPlanLayout() recovers.  Enough for a coordinator to
/// assign shard subsets to workers without expanding the scenario itself.
struct ShardPlanLayout {
  std::string scenario_name;
  std::uint64_t fingerprint = 0;
  std::size_t node_count = 0;
  std::size_t shard_size = 0;
  std::size_t days = 0;
  int slots_per_day = 0;
  std::vector<ShardRange> shards;
  std::vector<TraceLanePlan> lanes;
};

/// Stage-1 output: the expanded matrix plus its shard/lane decomposition.
struct ShardPlan {
  ScenarioMatrix matrix;
  std::size_t shard_size = 0;
  std::uint64_t fingerprint = 0;  ///< identity of (spec, shard_size).
  std::vector<ShardRange> shards;
  std::vector<TraceLanePlan> lanes;  ///< index == lane id.

  /// Text form of the scheduling skeleton (ranges, lanes, fingerprint).
  std::string Describe() const;
};

/// Expands `spec` and decomposes it into shards of `shard_size` nodes.
/// Deterministic in (spec, shard_size); throws via ScenarioSpec::Validate
/// on a malformed spec and on shard_size == 0.
ShardPlan BuildShardPlan(const ScenarioSpec& spec, std::size_t shard_size = 8);

/// Parses the output of ShardPlan::Describe.  Throws std::invalid_argument
/// on malformed input.
[[nodiscard]] ShardPlanLayout ParseShardPlanLayout(const std::string& text);

}  // namespace shep
