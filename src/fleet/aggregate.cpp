#include "fleet/aggregate.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

namespace shep {

void StreamingMoments::Add(double x) {
  if (count == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

void StreamingMoments::Merge(const StreamingMoments& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan et al.: combine two partial (count, mean, M2) triples exactly as
  // if the points had been seen in one pass.
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  const double n = na + nb;
  mean += delta * nb / n;
  m2 += other.m2 + delta * delta * na * nb / n;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double StreamingMoments::variance() const {
  if (count < 2) return 0.0;
  return std::max(0.0, m2 / static_cast<double>(count));
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  SHEP_REQUIRE(hi > lo, "histogram range must be non-empty");
  SHEP_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void FixedHistogram::Add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  const auto last = static_cast<double>(bins_.size() - 1);
  const double raw = std::clamp(t * static_cast<double>(bins_.size()), 0.0,
                                last);
  ++bins_[static_cast<std::size_t>(raw)];
  ++total_;
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  SHEP_REQUIRE(bins_.size() == other.bins_.size() && lo_ == other.lo_ &&
                   hi_ == other.hi_,
               "histograms must share geometry to merge");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
}

double FixedHistogram::Quantile(double q) const {
  SHEP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  SHEP_CHECK(total_ > 0, "quantile of an empty histogram");
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const auto next = static_cast<double>(seen + bins_[i]);
    if (next >= target) {
      // Interpolate inside the bin by the fraction of its mass consumed.
      const double inside =
          (target - static_cast<double>(seen)) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + std::clamp(inside, 0.0, 1.0)) *
                       width;
    }
    seen += bins_[i];
  }
  return hi_;
}

CellAccumulator::CellAccumulator()
    : violation_hist(0.0, 1.0, 256),
      cycles_hist(0.0, kMaxCyclesPerWakeup, 500) {}

void CellAccumulator::Add(const NodeSimResult& result) {
  violation_rate.Add(result.violation_rate);
  mean_duty.Add(result.mean_duty);
  wasted_fraction.Add(
      result.harvested_j > 0.0 ? result.overflow_j / result.harvested_j : 0.0);
  // A node with no in-ROI slots has no measured accuracy; averaging its 0.0
  // placeholder would fake a perfect MAPE, so such nodes are left out (the
  // mape moments keep their own count).
  if (result.mape_points > 0) mape.Add(result.mape);
  violation_hist.Add(result.violation_rate);
  violations += result.violations;
  scored_slots += result.slots;
  // Same own-count discipline for the MCU-cost channel: only nodes whose
  // predictor modelled its cost contribute.
  if (result.has_compute_cost && result.compute.predictions > 0) {
    const double cyc = result.compute.cycles_per_prediction();
    cycles_per_wakeup.Add(cyc);
    ops_per_wakeup.Add(result.compute.ops_per_prediction());
    cycles_hist.Add(cyc);
  }
}

void CellAccumulator::Merge(const CellAccumulator& other) {
  violation_rate.Merge(other.violation_rate);
  mean_duty.Merge(other.mean_duty);
  wasted_fraction.Merge(other.wasted_fraction);
  mape.Merge(other.mape);
  violation_hist.Merge(other.violation_hist);
  violations += other.violations;
  scored_slots += other.scored_slots;
  cycles_per_wakeup.Merge(other.cycles_per_wakeup);
  ops_per_wakeup.Merge(other.ops_per_wakeup);
  cycles_hist.Merge(other.cycles_hist);
}

namespace {

/// Builds the per-cell table once; ToTable/ToCsv differ only in rendering
/// and number formatting (percentages for eyeballs, raw ratios for CSV).
TableBuilder BuildSummaryTable(const FleetSummary& summary, bool csv) {
  auto fmt = [&](double v) {
    return csv ? FormatFixed(v, 6) : FormatPercent(v);
  };
  // Histogram quantiles interpolate inside a bin, so a cell whose nodes all
  // share one value could report p50 slightly past the observed extrema;
  // clamp to the true range tracked by the moments.
  auto quantile = [](const CellAccumulator& s, double q) {
    return std::clamp(s.violation_hist.Quantile(q), s.violation_rate.min,
                      s.violation_rate.max);
  };
  TableBuilder table(csv ? ""
                         : summary.scenario_name + ": " +
                               std::to_string(summary.node_count) +
                               " nodes, " + std::to_string(summary.days) +
                               " days, N=" +
                               std::to_string(summary.slots_per_day));
  // Cycle quantiles share the extrema-clamp rationale with the violation
  // quantiles above.
  auto cycles_p95 = [](const CellAccumulator& s) {
    return std::clamp(s.cycles_hist.Quantile(0.95), s.cycles_per_wakeup.min,
                      s.cycles_per_wakeup.max);
  };
  // MCU cost columns are cycle/op counts, not ratios: plain fixed-point
  // numbers in both renderings, "n/a" for cells of uncosted (float)
  // predictors.
  auto cost = [&](const CellAccumulator& s, double v) {
    return s.has_compute_cost() ? FormatFixed(v, 1) : std::string("n/a");
  };
  table.Columns({"site", "predictor", "storage_j", "nodes", "viol_mean",
                 "viol_p50", "viol_p95", "viol_max", "mean_duty",
                 "wasted_harvest", "mape", "cyc_mean", "cyc_p95",
                 "ops_mean"});
  std::size_t last_site = 0;
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const ScenarioCell& cell = summary.cells[i];
    const CellAccumulator& s = summary.stats[i];
    if (!csv && i > 0 && cell.site_index != last_site) table.AddSeparator();
    last_site = cell.site_index;
    table.AddRow({cell.site_code, cell.predictor_label,
                  FormatFixed(cell.storage_j, 0), std::to_string(s.nodes()),
                  fmt(s.violation_rate.mean), fmt(quantile(s, 0.50)),
                  fmt(quantile(s, 0.95)),
                  fmt(s.violation_rate.max), fmt(s.mean_duty.mean),
                  fmt(s.wasted_fraction.mean),
                  // No node of the cell had an in-ROI slot: accuracy was
                  // not measured, which is not the same as perfect.
                  s.mape.valid() ? fmt(s.mape.mean) : std::string("n/a"),
                  cost(s, s.cycles_per_wakeup.mean),
                  cost(s, s.has_compute_cost() ? cycles_p95(s) : 0.0),
                  cost(s, s.ops_per_wakeup.mean)});
  }
  return table;
}

}  // namespace

std::string FleetSummary::ToTable() const {
  return BuildSummaryTable(*this, /*csv=*/false).ToString();
}

std::string FleetSummary::ToCsv() const {
  return BuildSummaryTable(*this, /*csv=*/true).ToCsv();
}

}  // namespace shep
