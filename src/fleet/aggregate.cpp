#include "fleet/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

namespace shep {

void StreamingMoments::Add(double x) {
  if (count == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  WelfordMoments::Add(x);
}

void StreamingMoments::Merge(const StreamingMoments& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan et al.: combine two partial (count, mean, M2) triples exactly as
  // if the points had been seen in one pass.
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  const double n = na + nb;
  mean += delta * nb / n;
  m2 += other.m2 + delta * delta * na * nb / n;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void StreamingMoments::Serialize(std::ostream& os) const {
  os << "moments " << count << ' ';
  serdes::WriteDouble(os, mean);
  os << ' ';
  serdes::WriteDouble(os, m2);
  os << ' ';
  serdes::WriteDouble(os, min);
  os << ' ';
  serdes::WriteDouble(os, max);
  os << '\n';
}

StreamingMoments StreamingMoments::Deserialize(std::istream& is) {
  serdes::ExpectToken(is, "moments");
  StreamingMoments m;
  m.count = static_cast<std::size_t>(serdes::ReadU64(is));
  m.mean = serdes::ReadDouble(is);
  m.m2 = serdes::ReadDouble(is);
  // Add/Merge can only produce m2 >= 0 (WelfordMoments relies on that to
  // skip clamping in variance()); a negative value here is a corrupted or
  // mis-produced partial and would surface as NaN stddevs downstream, so
  // reject it at the process boundary like any other malformed token.
  SHEP_REQUIRE(m.m2 >= 0.0,
               "moments m2 must be non-negative in a serialized partial");
  m.min = serdes::ReadDouble(is);
  m.max = serdes::ReadDouble(is);
  return m;
}

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  SHEP_REQUIRE(hi > lo, "histogram range must be non-empty");
  SHEP_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void FixedHistogram::Add(double x) {
  // NaN is unordered: it would pass std::clamp unchanged and the cast to
  // std::size_t would be undefined behaviour.  Tally it separately instead
  // of corrupting a bin.
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  const auto last = static_cast<double>(bins_.size() - 1);
  const double raw = std::clamp(t * static_cast<double>(bins_.size()), 0.0,
                                last);
  ++bins_[static_cast<std::size_t>(raw)];
  ++total_;
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  SHEP_REQUIRE(bins_.size() == other.bins_.size() && lo_ == other.lo_ &&
                   hi_ == other.hi_,
               "histograms must share geometry to merge");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
  nan_count_ += other.nan_count_;
}

void FixedHistogram::Serialize(std::ostream& os) const {
  os << "hist ";
  serdes::WriteDouble(os, lo_);
  os << ' ';
  serdes::WriteDouble(os, hi_);
  os << ' ' << bins_.size() << ' ' << nan_count_;
  // Sparse non-zero bins ("index:count"): cells concentrate their mass in
  // a handful of bins, so this keeps partials small; total_ is recomputed
  // on parse rather than trusted.
  std::size_t nonzero = 0;
  for (std::uint64_t b : bins_) nonzero += b != 0 ? 1 : 0;
  os << ' ' << nonzero;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] != 0) os << ' ' << i << ':' << bins_[i];
  }
  os << '\n';
}

FixedHistogram FixedHistogram::Deserialize(std::istream& is) {
  serdes::ExpectToken(is, "hist");
  const double lo = serdes::ReadDouble(is);
  const double hi = serdes::ReadDouble(is);
  const auto bin_count = static_cast<std::size_t>(serdes::ReadU64(is));
  FixedHistogram hist(lo, hi, bin_count);
  hist.nan_count_ = serdes::ReadU64(is);
  const std::uint64_t nonzero = serdes::ReadU64(is);
  bool any = false;
  std::size_t last = 0;
  for (std::uint64_t n = 0; n < nonzero; ++n) {
    std::string token;
    is >> token;
    const auto colon = token.find(':');
    SHEP_REQUIRE(colon != std::string::npos && colon > 0 &&
                     colon + 1 < token.size(),
                 "malformed histogram bin entry: " + token);
    const auto index = ParseInt(token.substr(0, colon));
    const auto count = ParseInt(token.substr(colon + 1));
    // ParseInt accepts a sign, so reject non-positive counts explicitly —
    // a negative count cast to uint64 would fabricate a huge bin mass.
    SHEP_REQUIRE(index.has_value() && count.has_value() && *index >= 0 &&
                     *count > 0,
                 "malformed histogram bin entry: " + token);
    const auto i = static_cast<std::size_t>(*index);
    SHEP_REQUIRE(i < hist.bins_.size(),
                 "histogram bin index out of range: " + token);
    // Strictly ascending indices: a duplicate would overwrite the bin yet
    // double-add into total_, leaving the two inconsistent.
    SHEP_REQUIRE(!any || i > last,
                 "histogram bin entries must be strictly ascending: " +
                     token);
    any = true;
    last = i;
    hist.bins_[i] = static_cast<std::uint64_t>(*count);
    hist.total_ += static_cast<std::uint64_t>(*count);
  }
  return hist;
}

double FixedHistogram::Quantile(double q) const {
  SHEP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  SHEP_CHECK(total_ > 0, "quantile of an empty histogram");
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const auto next = static_cast<double>(seen + bins_[i]);
    if (next >= target) {
      // Interpolate inside the bin by the fraction of its mass consumed.
      const double inside =
          (target - static_cast<double>(seen)) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + std::clamp(inside, 0.0, 1.0)) *
                       width;
    }
    seen += bins_[i];
  }
  return hi_;
}

CellAccumulator::CellAccumulator()
    : violation_hist(0.0, 1.0, 256),
      cycles_hist(0.0, kMaxCyclesPerWakeup, 500) {}

void CellAccumulator::Add(const NodeSimResult& result) {
  violation_rate.Add(result.violation_rate);
  mean_duty.Add(result.mean_duty);
  wasted_fraction.Add(
      result.harvested_j > 0.0 ? result.overflow_j / result.harvested_j : 0.0);
  min_soc.Add(result.min_level_fraction);
  // A node with no in-ROI slots has no measured accuracy; averaging its 0.0
  // placeholder would fake a perfect MAPE, so such nodes are left out (the
  // mape moments keep their own count).
  if (result.mape_points > 0) mape.Add(result.mape);
  violation_hist.Add(result.violation_rate);
  violations += result.violations;
  scored_slots += result.slots;
  // Same own-count discipline for the MCU-cost channel: only nodes whose
  // predictor modelled its cost contribute.
  if (result.has_compute_cost && result.compute.predictions > 0) {
    const double cyc = result.compute.cycles_per_prediction();
    cycles_per_wakeup.Add(cyc);
    ops_per_wakeup.Add(result.compute.ops_per_prediction());
    cycles_hist.Add(cyc);
  }
  // Graceful-degradation channel: only fault-injected nodes contribute, so
  // healthy cells keep availability.count == 0 and render no fault columns.
  if (result.faulted) {
    const double up = static_cast<double>(result.slots);
    const double down = static_cast<double>(result.downtime_slots);
    // The kernel guarantees up + down > 0 even for an always-dark node.
    availability.Add(up / (up + down));
    downtime_slots += result.downtime_slots;
    recoveries += result.recoveries;
    // A node that never recovered inside the scored horizon has no
    // measured re-warm-up cost; averaging a 0.0 placeholder would fake a
    // perfect recovery, so such nodes stay out (own count again).
    if (result.post_recovery_slots > 0) {
      post_recovery_violation_rate.Add(
          static_cast<double>(result.post_recovery_violations) /
          static_cast<double>(result.post_recovery_slots));
    }
  }
}

void CellAccumulator::Merge(const CellAccumulator& other) {
  violation_rate.Merge(other.violation_rate);
  mean_duty.Merge(other.mean_duty);
  wasted_fraction.Merge(other.wasted_fraction);
  min_soc.Merge(other.min_soc);
  mape.Merge(other.mape);
  violation_hist.Merge(other.violation_hist);
  violations += other.violations;
  scored_slots += other.scored_slots;
  cycles_per_wakeup.Merge(other.cycles_per_wakeup);
  ops_per_wakeup.Merge(other.ops_per_wakeup);
  cycles_hist.Merge(other.cycles_hist);
  availability.Merge(other.availability);
  post_recovery_violation_rate.Merge(other.post_recovery_violation_rate);
  downtime_slots += other.downtime_slots;
  recoveries += other.recoveries;
}

void CellAccumulator::Serialize(std::ostream& os) const {
  violation_rate.Serialize(os);
  mean_duty.Serialize(os);
  wasted_fraction.Serialize(os);
  min_soc.Serialize(os);
  mape.Serialize(os);
  cycles_per_wakeup.Serialize(os);
  ops_per_wakeup.Serialize(os);
  availability.Serialize(os);
  post_recovery_violation_rate.Serialize(os);
  violation_hist.Serialize(os);
  cycles_hist.Serialize(os);
  os << "totals " << violations << ' ' << scored_slots << ' '
     << downtime_slots << ' ' << recoveries << '\n';
}

CellAccumulator CellAccumulator::Deserialize(std::istream& is) {
  CellAccumulator acc;
  acc.violation_rate = StreamingMoments::Deserialize(is);
  acc.mean_duty = StreamingMoments::Deserialize(is);
  acc.wasted_fraction = StreamingMoments::Deserialize(is);
  acc.min_soc = StreamingMoments::Deserialize(is);
  acc.mape = StreamingMoments::Deserialize(is);
  acc.cycles_per_wakeup = StreamingMoments::Deserialize(is);
  acc.ops_per_wakeup = StreamingMoments::Deserialize(is);
  acc.availability = StreamingMoments::Deserialize(is);
  acc.post_recovery_violation_rate = StreamingMoments::Deserialize(is);
  acc.violation_hist = FixedHistogram::Deserialize(is);
  acc.cycles_hist = FixedHistogram::Deserialize(is);
  serdes::ExpectToken(is, "totals");
  acc.violations = serdes::ReadU64(is);
  acc.scored_slots = serdes::ReadU64(is);
  acc.downtime_slots = serdes::ReadU64(is);
  acc.recoveries = serdes::ReadU64(is);
  return acc;
}

namespace {

/// Builds the per-cell table once; ToTable/ToCsv differ only in rendering
/// and number formatting (percentages for eyeballs, raw ratios for CSV).
TableBuilder BuildSummaryTable(const FleetSummary& summary, bool csv) {
  auto fmt = [&](double v) {
    return csv ? FormatFixed(v, 6) : FormatPercent(v);
  };
  // Histogram quantiles interpolate inside a bin, so a cell whose nodes all
  // share one value could report p50 slightly past the observed extrema;
  // clamp to the true range tracked by the moments.
  auto quantile = [](const CellAccumulator& s, double q) {
    return std::clamp(s.violation_hist.Quantile(q), s.violation_rate.min,
                      s.violation_rate.max);
  };
  TableBuilder table(csv ? ""
                         : summary.scenario_name + ": " +
                               std::to_string(summary.node_count) +
                               " nodes, " + std::to_string(summary.days) +
                               " days, N=" +
                               std::to_string(summary.slots_per_day));
  // Cycle quantiles share the extrema-clamp rationale with the violation
  // quantiles above.
  auto cycles_p95 = [](const CellAccumulator& s) {
    return std::clamp(s.cycles_hist.Quantile(0.95), s.cycles_per_wakeup.min,
                      s.cycles_per_wakeup.max);
  };
  // MCU cost columns are cycle/op counts, not ratios: plain fixed-point
  // numbers in both renderings, "n/a" for cells of uncosted (float)
  // predictors.
  auto cost = [&](const CellAccumulator& s, double v) {
    return s.has_compute_cost() ? FormatFixed(v, 1) : std::string("n/a");
  };
  // Fault columns appear only when some cell actually ran under fault
  // injection; a healthy run's table and CSV stay byte-identical to
  // pre-fault output (pinned by the zero-fault golden fixture).
  bool any_faulted = false;
  for (const CellAccumulator& s : summary.stats) {
    any_faulted = any_faulted || s.has_fault_stats();
  }
  std::vector<std::string> columns = {
      "site", "predictor", "storage_j", "nodes", "viol_mean", "viol_p50",
      "viol_p95", "viol_max", "mean_duty", "wasted_harvest", "min_soc",
      "mape", "cyc_mean", "cyc_p95", "ops_mean"};
  if (any_faulted) {
    columns.insert(columns.end(), {"availability", "downtime_slots",
                                   "recoveries", "postrec_viol"});
  }
  table.Columns(columns);
  std::size_t last_site = 0;
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const ScenarioCell& cell = summary.cells[i];
    const CellAccumulator& s = summary.stats[i];
    if (!csv && i > 0 && cell.site_index != last_site) table.AddSeparator();
    last_site = cell.site_index;
    std::vector<std::string> row = {
        cell.site_code, cell.predictor_label,
        FormatFixed(cell.storage_j, 0), std::to_string(s.nodes()),
        fmt(s.violation_rate.mean), fmt(quantile(s, 0.50)),
        fmt(quantile(s, 0.95)),
        fmt(s.violation_rate.max), fmt(s.mean_duty.mean),
        fmt(s.wasted_fraction.mean),
        // The fleet-wide storage low-water mark: the mean across
        // nodes of each node's minimum SoC fraction, recorded per
        // node since the first runner but surfaced here.
        fmt(s.min_soc.mean),
        // No node of the cell had an in-ROI slot: accuracy was
        // not measured, which is not the same as perfect.
        s.mape.valid() ? fmt(s.mape.mean) : std::string("n/a"),
        cost(s, s.cycles_per_wakeup.mean),
        cost(s, s.has_compute_cost() ? cycles_p95(s) : 0.0),
        cost(s, s.ops_per_wakeup.mean)};
    if (any_faulted) {
      row.push_back(s.has_fault_stats() ? fmt(s.availability.mean)
                                        : std::string("n/a"));
      row.push_back(std::to_string(s.downtime_slots));
      row.push_back(std::to_string(s.recoveries));
      // A cell whose nodes never recovered in-horizon has no measured
      // re-warm-up cost.
      row.push_back(s.post_recovery_violation_rate.valid()
                        ? fmt(s.post_recovery_violation_rate.mean)
                        : std::string("n/a"));
    }
    table.AddRow(row);
  }
  return table;
}

}  // namespace

std::string FleetSummary::ToTable() const {
  return BuildSummaryTable(*this, /*csv=*/false).ToString();
}

std::string FleetSummary::ToCsv() const {
  return BuildSummaryTable(*this, /*csv=*/true).ToCsv();
}

}  // namespace shep
