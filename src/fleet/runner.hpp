// runner.hpp — the fleet execution pipeline: plan → partial(s) → merge.
//
// A fleet run is three stages, each usable on its own so the work can be
// split across processes or machines:
//
//  1. BuildShardPlan (fleet/shard_plan) — deterministically decomposes the
//     expanded scenario into fixed-size node shards and weather-trace
//     lanes;
//  2. RunFleetShards — executes ANY subset of the plan's shards: the
//     subset's lanes are synthesized (or fetched from an optional
//     TraceCache) and each shard reduces its nodes into private per-cell
//     accumulators with no locking or sharing on the hot path.  The result
//     is a FleetPartial whose text serialization can cross a process
//     boundary exactly;
//  3. MergeFleetPartials — folds partials covering the whole plan back
//     into a FleetSummary, always in plan (shard-index) order.
//
// Because shard boundaries depend only on (node count, shard_size), the
// fold order never depends on scheduling, thread counts, or how shards
// were grouped into partials — so a summary assembled from N serialized
// partial runs is bit-identical to the single-process RunFleet, which is
// itself just the three stages glued together.  That invariant is what
// tests/test_fleet.cpp and tests/test_fleet_distributed.cpp pin and what
// lets distributed runs (shards on different machines) reproduce
// single-machine results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/threadpool.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/partial.hpp"
#include "fleet/scenario.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/trace_cache.hpp"
#include "trace/sink.hpp"

namespace shep {

/// Execution knobs; none of them may change the summary, only its speed.
struct FleetRunOptions {
  /// Pool to run on; null executes serially on the calling thread.
  ThreadPool* pool = nullptr;
  /// Nodes per shard.  Small shards balance better, large shards amortize
  /// accumulator setup; the summary is identical either way as long as the
  /// value itself is held fixed.  (Read by RunFleet when it builds the
  /// plan; RunFleetShards takes the plan's value.)
  std::size_t shard_size = 8;
  /// Optional shared weather-lane memo: campaigns that re-run overlapping
  /// scenarios synthesize each lane once.  Results are bit-identical with
  /// and without it; only phase-1 wall time changes.
  TraceCache* trace_cache = nullptr;
  /// Opt-in streaming telemetry: when set, every simulated slot is offered
  /// to the sink's per-worker rings and each shard produces one trace file
  /// (trace/sink.hpp).  Strictly observational — the summary is
  /// byte-identical with and without it (pinned by
  /// tests/test_trace_sink.cpp); only wall time changes.
  TraceSink* trace_sink = nullptr;
};

/// Runtime metadata of one run; kept out of FleetSummary so summaries stay
/// comparable across machines and thread counts.
struct FleetRunStats {
  std::size_t threads = 1;
  std::size_t shards = 0;         ///< shards executed by this run.
  std::size_t unique_traces = 0;  ///< lanes this run's shards read.
  double synth_seconds = 0.0;     ///< phase 1 wall time.
  double sim_seconds = 0.0;       ///< phase 2 wall time (merge excluded —
                                  ///< stage 3 may run in another process).
  double merge_seconds = 0.0;     ///< stage 3 wall time (RunFleet only;
                                  ///< stays 0 for bare RunFleetShards).
  /// TraceCache counter deltas of this run (0 when no cache was given).
  /// Evictions only occur on capacity-capped caches (see TraceCache ctor).
  std::uint64_t trace_cache_hits = 0;
  std::uint64_t trace_cache_misses = 0;
  std::uint64_t trace_cache_evictions = 0;
  /// Process-wide clear-sky memo deltas over this run (solar/clearsky.hpp).
  /// Approximate under concurrent runs in one process — the memo is shared
  /// — but exact for the common one-run-at-a-time case.
  std::uint64_t clearsky_hits = 0;
  std::uint64_t clearsky_misses = 0;
  std::uint64_t clearsky_evictions = 0;
  /// Telemetry deltas of this run (all 0 when no trace sink was given).
  /// events + dropped is exactly the slot count the probes observed.
  std::uint64_t trace_events = 0;        ///< slot events drained.
  std::uint64_t trace_dropped = 0;       ///< slot events refused (ring full).
  std::uint64_t trace_slot_records = 0;  ///< full-resolution records kept.
  std::uint64_t trace_day_records = 0;   ///< coarse day summaries kept.
  std::uint64_t trace_shard_files = 0;   ///< trace files finalized.
};

/// Stage 2: executes the plan's shards listed in `shard_subset` (any
/// order; duplicates rejected) and returns their reductions.  The partial
/// is deterministic in (plan, shard_subset) — pool and cache only change
/// wall time.
FleetPartial RunFleetShards(const ShardPlan& plan,
                            const std::vector<std::size_t>& shard_subset,
                            const FleetRunOptions& options = {},
                            FleetRunStats* stats = nullptr);

/// Simulates one node of a cell: instantiates `spec` and runs it over
/// `series` through the static-dispatch kernel (mgmt/node_sim_kernel.hpp)
/// when the kind is one of the hot fleet predictors (WCMA, FixedWCMA,
/// EWMA, AR) — no per-slot virtual calls, no per-run dynamic_cast, no heap
/// allocation for the predictor — and falls back to PredictorSpec::Make +
/// the virtual SimulateNode for every other kind.  Bit-identical to the
/// virtual path for all kinds (pinned by tests/test_node_kernel.cpp).
NodeSimResult SimulateSpecNode(const PredictorSpec& spec, int slots_per_day,
                               const SlotSeries& series,
                               const NodeSimConfig& config);

/// Stage 3: folds partials that together cover the plan exactly once into
/// the final summary, in plan order.  Throws std::invalid_argument when a
/// partial's fingerprint disagrees with the plan or the partials miss or
/// duplicate a shard.
[[nodiscard]] FleetSummary MergeFleetPartials(
    const ShardPlan& plan, const std::vector<FleetPartial>& partials);

/// Single-process convenience: the three stages glued together.
/// Deterministic in (spec, shard_size).
FleetSummary RunFleet(const ScenarioSpec& spec,
                      const FleetRunOptions& options = {},
                      FleetRunStats* stats = nullptr);

}  // namespace shep
