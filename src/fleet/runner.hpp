// runner.hpp — sharded batch execution of a fleet scenario.
//
// RunFleet expands a ScenarioSpec and simulates every node of the matrix in
// two parallel phases:
//
//  1. trace synthesis — the distinct weather replicas (one per
//     site × replica lane, shared by all predictor/storage cells of the
//     site) are synthesized and slotted once each;
//  2. node simulation — nodes are partitioned into fixed-size shards; each
//     shard runs its nodes' full SimulateNode loops and reduces them into
//     private per-cell accumulators with no locking or sharing on the hot
//     path.  The only synchronization is the ParallelFor join.
//
// After the join the shard accumulators are merged in shard order.  Shard
// boundaries depend only on (node count, shard_size) — never on which
// thread ran a shard — so the resulting FleetSummary is bit-identical for
// any thread count, including fully serial execution.  That invariant is
// what tests/test_fleet.cpp pins and what lets future distributed runs
// (shards on different machines) reproduce single-machine results.
#pragma once

#include <cstddef>

#include "common/threadpool.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/scenario.hpp"

namespace shep {

/// Execution knobs; none of them may change the summary, only its speed.
struct FleetRunOptions {
  /// Pool to run on; null executes serially on the calling thread.
  ThreadPool* pool = nullptr;
  /// Nodes per shard.  Small shards balance better, large shards amortize
  /// accumulator setup; the summary is identical either way as long as the
  /// value itself is held fixed.
  std::size_t shard_size = 8;
};

/// Runtime metadata of one run; kept out of FleetSummary so summaries stay
/// comparable across machines and thread counts.
struct FleetRunInfo {
  std::size_t threads = 1;
  std::size_t shards = 0;
  std::size_t unique_traces = 0;
  double synth_seconds = 0.0;  ///< phase 1 wall time.
  double sim_seconds = 0.0;    ///< phase 2 wall time (including merge).
};

/// Expands and executes `spec`.  Deterministic in (spec, shard_size).
FleetSummary RunFleet(const ScenarioSpec& spec,
                      const FleetRunOptions& options = {},
                      FleetRunInfo* info = nullptr);

}  // namespace shep
