#include "fleet/partial.hpp"

#include <sstream>

#include "common/check.hpp"

namespace shep {

std::string FleetPartial::Serialize() const {
  SHEP_REQUIRE(scenario_name.find_first_of(" \t\n") == std::string::npos,
               "scenario names must be whitespace-free to serialize");
  std::ostringstream os;
  // v2: CellAccumulator gained the min_soc moments (PR 7).  v3: the
  // graceful-degradation channel (availability and post-recovery moments,
  // downtime/recovery totals).  Older partials would mis-align on parse,
  // so the version token rejects them up front.
  os << "shep-fleet-partial v3\n";
  os << "scenario " << scenario_name << '\n';
  os << "fingerprint " << plan_fingerprint << '\n';
  os << "nodes " << nodes_simulated << '\n';
  os << "synth_seconds ";
  serdes::WriteDouble(os, synth_seconds);
  os << "\nsim_seconds ";
  serdes::WriteDouble(os, sim_seconds);
  os << "\nshards " << shards.size() << '\n';
  for (const ShardCells& shard : shards) {
    os << "shard " << shard.shard << " cells " << shard.cells.size() << '\n';
    for (const auto& [cell, acc] : shard.cells) {
      os << "cell " << cell << '\n';
      acc.Serialize(os);
    }
  }
  os << "end\n";
  return os.str();
}

FleetPartial FleetPartial::Parse(const std::string& text) {
  std::istringstream is(text);
  serdes::ExpectToken(is, "shep-fleet-partial");
  serdes::ExpectToken(is, "v3");
  FleetPartial partial;
  serdes::ExpectToken(is, "scenario");
  is >> partial.scenario_name;
  SHEP_REQUIRE(!partial.scenario_name.empty(),
               "partial is missing its scenario name");
  serdes::ExpectToken(is, "fingerprint");
  partial.plan_fingerprint = serdes::ReadU64(is);
  serdes::ExpectToken(is, "nodes");
  partial.nodes_simulated = static_cast<std::size_t>(serdes::ReadU64(is));
  serdes::ExpectToken(is, "synth_seconds");
  partial.synth_seconds = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "sim_seconds");
  partial.sim_seconds = serdes::ReadDouble(is);
  serdes::ExpectToken(is, "shards");
  const std::uint64_t shard_count = serdes::ReadU64(is);
  partial.shards.reserve(shard_count);
  std::size_t last_shard = 0;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    serdes::ExpectToken(is, "shard");
    ShardCells shard;
    shard.shard = static_cast<std::size_t>(serdes::ReadU64(is));
    SHEP_REQUIRE(s == 0 || shard.shard > last_shard,
                 "partial shards must be ascending by index");
    last_shard = shard.shard;
    serdes::ExpectToken(is, "cells");
    const std::uint64_t cell_count = serdes::ReadU64(is);
    shard.cells.reserve(cell_count);
    for (std::uint64_t c = 0; c < cell_count; ++c) {
      serdes::ExpectToken(is, "cell");
      const auto cell = static_cast<std::size_t>(serdes::ReadU64(is));
      shard.cells.emplace_back(cell, CellAccumulator::Deserialize(is));
    }
    partial.shards.push_back(std::move(shard));
  }
  serdes::ExpectToken(is, "end");
  return partial;
}

}  // namespace shep
