// trace_cache.hpp — memoized weather-lane synthesis for fleet campaigns.
//
// Synthesizing and slotting a weather lane is the fleet runner's phase-1
// cost, and campaigns routinely re-run overlapping scenarios — the parity
// harness, the golden test, and a demo all expand the same sites with the
// same seeds.  A TraceCache keyed by (site code, trace seed, days,
// slots_per_day) — exactly the fields a TraceLanePlan carries — lets every
// run that shares a lane synthesize it once and share the immutable
// SlotSeries afterwards.
//
// The cache is shared state and therefore thread-safe, but synthesis runs
// OUTSIDE the lock: concurrent misses on the same key may both synthesize,
// and the first insertion wins.  Because synthesis is deterministic in the
// key, the loser's copy is bit-identical and is simply dropped — callers
// always receive the cached instance, so two runs that hit the same key
// observe literally the same SlotSeries object.
//
// Caching is opt-in (FleetRunOptions::trace_cache): the runner's results
// are bit-identical with and without a cache, only phase-1 wall time
// changes — pinned by tests/test_fleet_distributed.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "timeseries/slotting.hpp"

namespace shep {

struct SynthScratch;

/// Thread-safe memo of synthesized + slotted weather lanes.
class TraceCache {
 public:
  /// `max_entries` caps the cache (0 = unbounded, the historical default
  /// for single-campaign runs).  A long-lived coordinator sharing one
  /// cache across many campaigns should cap it: when an insert exceeds
  /// the cap the lowest key is evicted — deterministic because the map is
  /// ordered — and counted in stats().evictions.  Series already handed
  /// out stay alive through their shared_ptrs.
  explicit TraceCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Returns the SlotSeries for (site_code, trace_seed, days,
  /// slots_per_day), synthesizing it on first use.  Repeated calls with
  /// the same key return the identical (shared) instance.  When `was_hit`
  /// is non-null it reports whether THIS call was served from the cache —
  /// callers sharing the cache across concurrent runs must use it instead
  /// of diffing the global stats(), which would misattribute other runs'
  /// traffic.  A non-null `scratch` lends the miss path reusable synthesis
  /// buffers (solar/synth.hpp); it must not be shared with a concurrent
  /// caller and never changes the result.  Throws via SiteByCode /
  /// SlotSeries on invalid keys.
  std::shared_ptr<const SlotSeries> Get(const std::string& site_code,
                                        std::uint64_t trace_seed,
                                        std::size_t days, int slots_per_day,
                                        bool* was_hit = nullptr,
                                        SynthScratch* scratch = nullptr);

  /// Cumulative hit/miss counters and current entry count.  A concurrent
  /// double-synthesis of one key counts as one miss per synthesizing
  /// caller (the work genuinely happened twice).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  /// Drops every entry (shared_ptrs held by callers stay alive) and
  /// resets the counters.
  void Clear();

 private:
  using Key = std::tuple<std::string, std::uint64_t, std::size_t, int>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const SlotSeries>> entries_;
  std::size_t max_entries_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace shep
