#include "fleet/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/ar.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "fleet/faults.hpp"
#include "hw/costed_fixed.hpp"
#include "mgmt/node_sim.hpp"
#include "mgmt/node_sim_kernel.hpp"
#include "solar/clearsky.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"
#include "trace/probe.hpp"

namespace shep {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The per-kind dispatch behind SimulateSpecNode, parameterized on the
/// kernel's slot probe and fault model so the traced/untraced and
/// faulted/healthy paths share one definition.  With NoSlotProbe the probe
/// call sites vanish and this IS the untraced hot path; with NodeTraceProbe
/// each slot is offered to the worker's ring.  Likewise NoFaultModel
/// compiles the fault branches away entirely, while FaultModel (built from
/// a precomputed per-node schedule) injects outages, dropouts, and
/// degradation.  Neither hook feeds back into the healthy simulation, so
/// the healthy instantiations all produce bit-identical results.
template <class Probe, class Faults>
NodeSimResult SimulateSpecNodeImpl(const PredictorSpec& spec,
                                   int slots_per_day,
                                   const SlotSeries& series,
                                   const NodeSimConfig& config,
                                   const Probe& probe, Faults faults) {
  // The hot fleet kinds get a stack-constructed concrete predictor and the
  // statically dispatched kernel; anything else takes the generic path.
  // Every branch reproduces PredictorSpec::Make's construction exactly, so
  // both paths are bit-identical.
  switch (spec.kind) {
    case PredictorKind::kWcma: {
      Wcma predictor(spec.wcma, slots_per_day);
      return SimulateNodeKernel(predictor, series, config, probe, faults);
    }
    case PredictorKind::kWcmaFixed: {
      CostedFixedWcma predictor(spec.wcma, slots_per_day);
      return SimulateNodeKernel(predictor, series, config, probe, faults);
    }
    case PredictorKind::kEwma: {
      Ewma predictor(spec.ewma_weight, slots_per_day);
      return SimulateNodeKernel(predictor, series, config, probe, faults);
    }
    case PredictorKind::kAr: {
      ArPredictor predictor(spec.ar, slots_per_day);
      return SimulateNodeKernel(predictor, series, config, probe, faults);
    }
    default: {
      const auto predictor = spec.Make(slots_per_day);
      // The kernel at P = Predictor is exactly the virtual SimulateNode
      // entry point, here with the probe threaded through.
      Predictor& base = *predictor;
      return SimulateNodeKernel(base, series, config, probe, faults);
    }
  }
}

}  // namespace

NodeSimResult SimulateSpecNode(const PredictorSpec& spec, int slots_per_day,
                               const SlotSeries& series,
                               const NodeSimConfig& config) {
  return SimulateSpecNodeImpl(spec, slots_per_day, series, config,
                              NoSlotProbe{}, NoFaultModel{});
}

FleetPartial RunFleetShards(const ShardPlan& plan,
                            const std::vector<std::size_t>& shard_subset,
                            const FleetRunOptions& options,
                            FleetRunStats* stats) {
  SHEP_REQUIRE(!shard_subset.empty(), "shard subset must not be empty");
  std::vector<std::size_t> subset = shard_subset;
  std::sort(subset.begin(), subset.end());
  SHEP_REQUIRE(subset.back() < plan.shards.size(),
               "shard index out of range for the plan");
  SHEP_REQUIRE(std::adjacent_find(subset.begin(), subset.end()) ==
                   subset.end(),
               "shard subset must not repeat a shard");

  const ScenarioMatrix& matrix = plan.matrix;
  const ScenarioSpec& s = matrix.spec;  // slot_seconds already forced.

  // ---- Phase 1: synthesize the weather lanes this subset reads. -----------
  // Lanes are keyed (site, replica) — see ShardPlan::lanes — so all
  // predictor/storage cells of a site share traces (paired comparison) and
  // the synthesis cost is at most sites × replicas, not cells × replicas.
  // A subset run only pays for the lanes its own nodes touch.
  std::vector<std::shared_ptr<const SlotSeries>> series(plan.lanes.size());
  std::vector<std::size_t> needed;
  {
    std::vector<bool> lane_needed(plan.lanes.size(), false);
    for (std::size_t shard : subset) {
      const ShardRange& range = plan.shards[shard];
      for (std::size_t i = range.begin_node; i < range.end_node; ++i) {
        lane_needed[matrix.trace_lane(matrix.nodes[i])] = true;
      }
    }
    for (std::size_t l = 0; l < lane_needed.size(); ++l) {
      if (lane_needed[l]) needed.push_back(l);
    }
  }

  // Hit/miss tallies are counted per lookup, NOT diffed from the cache's
  // global stats(): the cache is shared state, and concurrent runs would
  // show up in each other's deltas.
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  // Evictions (and the clear-sky memo below) cannot be counted per lookup
  // — they happen inside the caches — so those ARE stats() diffs, exact
  // for the usual one-run-at-a-time process and documented approximate
  // otherwise (runner.hpp).
  const std::uint64_t cache_evictions_before =
      options.trace_cache != nullptr ? options.trace_cache->stats().evictions
                                     : 0;
  const ClearSkyMemoStats clearsky_before = GetClearSkyMemoStats();
  // One synthesis scratch per batch worker: lanes sharing a worker id run
  // serialized, so each slot's buffers are reused race-free across every
  // lane (and day) that worker synthesizes.  Scratch placement never
  // affects values, only allocation traffic.
  std::vector<SynthScratch> scratch(
      ParallelWorkerCount(options.pool, needed.size()));
  auto t0 = std::chrono::steady_clock::now();
  ParallelForWorker(options.pool, needed.size(),
                    [&](std::size_t worker, std::size_t n) {
    const TraceLanePlan& lane = plan.lanes[needed[n]];
    if (options.trace_cache != nullptr) {
      bool hit = false;
      series[lane.lane] = options.trace_cache->Get(
          lane.site_code, lane.trace_seed, s.days, s.slots_per_day, &hit,
          &scratch[worker]);
      (hit ? cache_hits : cache_misses).fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    SynthOptions synth;
    synth.days = s.days;
    synth.seed_offset = lane.trace_seed;
    series[lane.lane] = std::make_shared<const SlotSeries>(
        SynthesizeTrace(SiteByCode(lane.site_code), synth, scratch[worker]),
        s.slots_per_day);
  });
  const double synth_seconds = SecondsSince(t0);

  // ---- Phase 2: sharded node simulation. ----------------------------------
  // Shard boundaries come from the plan — a pure function of (node count,
  // shard_size) — so the pool only decides which thread runs which shard.
  // Nodes are cell-major: a shard's accumulators form a short run of
  // consecutive cells, kept per shard (never pre-merged across shards) so
  // the final fold can always happen in plan order.
  FleetPartial partial;
  partial.scenario_name = s.name;
  partial.plan_fingerprint = plan.fingerprint;
  partial.shards.resize(subset.size());

  // Opt-in telemetry: announce the run to the sink and make sure every
  // batch worker has a ring before the first probe fires.  Stats are
  // snapshotted so a shared sink reports per-run deltas.
  TraceSink* const sink = options.trace_sink;
  TraceSinkStats sink_before;
  if (sink != nullptr) {
    TraceRunContext context;
    context.scenario_name = s.name;
    context.fingerprint = plan.fingerprint;
    context.slots_per_day = static_cast<std::uint32_t>(s.slots_per_day);
    context.days = static_cast<std::uint32_t>(s.days);
    context.cells.reserve(matrix.cells.size());
    for (const ScenarioCell& cell : matrix.cells) {
      context.cells.push_back({static_cast<std::uint64_t>(cell.index),
                               cell.site_code, cell.predictor_label,
                               cell.storage_j});
    }
    sink->BeginRun(context);
    sink->EnsureWorkers(ParallelWorkerCount(options.pool, subset.size()));
    sink_before = sink->stats();
  }

  // Fault injection is a spec-level opt-in: a zero FaultSpec takes the
  // healthy NoFaultModel instantiation, reproducing fault-free results bit
  // for bit.  Schedules are built OUTSIDE the kernel (BuildFaultSchedule
  // allocates; the kernel is a hot-path-alloc root) into one reusable
  // scratch per batch worker — shards sharing a worker run serialized, so
  // the buffers are race-free, and schedule placement never affects values
  // (every window is pure (spec, node.fault_seed) index math).
  const bool faulted = s.faults.any();
  std::vector<FaultSchedule> fault_scratch(
      faulted ? ParallelWorkerCount(options.pool, subset.size()) : 0);

  t0 = std::chrono::steady_clock::now();
  // Worker-indexed so a traced run can push onto a per-worker ring: each
  // shard runs whole on one worker (the ParallelForWorker contract), which
  // keeps every ring single-producer and every shard's event stream
  // contiguous.  Untraced runs take the identical schedule (ParallelFor is
  // ParallelForWorker minus the id), so the summary cannot depend on it.
  ParallelForWorker(options.pool, subset.size(),
                    [&](std::size_t worker, std::size_t n) {
    const ShardRange& range = plan.shards[subset[n]];
    ShardCells& local = partial.shards[n];
    local.shard = range.index;
    std::uint64_t trace_dropped = 0;
    for (std::size_t i = range.begin_node; i < range.end_node; ++i) {
      const FleetNodeConfig& node = matrix.nodes[i];
      const ScenarioCell& cell = matrix.cells[node.cell];
      const std::size_t lane = matrix.trace_lane(node);

      NodeSimConfig config = s.node;
      config.storage.capacity_j = cell.storage_j;
      config.initial_level_fraction = node.initial_level_fraction;

      if (faulted) {
        BuildFaultSchedule(s.faults, node.fault_seed, s.days,
                           s.slots_per_day, fault_scratch[worker]);
      }
      auto simulate = [&](const auto& probe, auto fault_model) {
        return SimulateSpecNodeImpl(s.predictors[cell.predictor_index],
                                    s.slots_per_day, *series[lane], config,
                                    probe, fault_model);
      };
      NodeSimResult result;
      if (sink != nullptr) {
        NodeTraceProbe probe;
        probe.ring = &sink->ring(worker);
        probe.shard = range.index;
        probe.node = node.index;
        probe.cell = node.cell;
        probe.dropped = &trace_dropped;
        probe.block_on_full = sink->options().block_on_full;
        result = faulted
                     ? simulate(probe, FaultModel(fault_scratch[worker]))
                     : simulate(probe, NoFaultModel{});
      } else {
        result = faulted
                     ? simulate(NoSlotProbe{},
                                FaultModel(fault_scratch[worker]))
                     : simulate(NoSlotProbe{}, NoFaultModel{});
      }

      if (local.cells.empty() || local.cells.back().first != node.cell) {
        local.cells.emplace_back(node.cell, CellAccumulator{});
      }
      local.cells.back().second.Add(result);
    }
    if (sink != nullptr) sink->EndShard(worker, range.index, trace_dropped);
  });
  const double sim_seconds = SecondsSince(t0);
  // Drain everything before reporting so trace files and counters cover
  // the whole run; deliberately outside the sim_seconds window (the
  // in-loop cost of tracing is what bench_fleet prices).
  if (sink != nullptr) sink->Flush();

  partial.nodes_simulated = 0;
  for (std::size_t shard : subset) {
    partial.nodes_simulated += plan.shards[shard].node_count();
  }
  partial.synth_seconds = synth_seconds;
  partial.sim_seconds = sim_seconds;

  if (stats != nullptr) {
    stats->threads =
        options.pool != nullptr ? options.pool->thread_count() : 1;
    stats->shards = subset.size();
    stats->unique_traces = needed.size();
    stats->synth_seconds = synth_seconds;
    stats->sim_seconds = sim_seconds;
    stats->trace_cache_hits = cache_hits.load();
    stats->trace_cache_misses = cache_misses.load();
    stats->trace_cache_evictions =
        options.trace_cache != nullptr
            ? options.trace_cache->stats().evictions - cache_evictions_before
            : 0;
    const ClearSkyMemoStats clearsky_after = GetClearSkyMemoStats();
    stats->clearsky_hits = clearsky_after.hits - clearsky_before.hits;
    stats->clearsky_misses = clearsky_after.misses - clearsky_before.misses;
    stats->clearsky_evictions =
        clearsky_after.evictions - clearsky_before.evictions;
    if (sink != nullptr) {
      const TraceSinkStats after = sink->stats();
      stats->trace_events = after.events - sink_before.events;
      stats->trace_dropped = after.dropped - sink_before.dropped;
      stats->trace_slot_records =
          after.slot_records - sink_before.slot_records;
      stats->trace_day_records = after.day_records - sink_before.day_records;
      stats->trace_shard_files = after.shard_files - sink_before.shard_files;
    }
  }
  return partial;
}

FleetSummary MergeFleetPartials(const ShardPlan& plan,
                                const std::vector<FleetPartial>& partials) {
  // Index every shard reduction by plan shard, rejecting foreign partials
  // and duplicate coverage up front.
  std::vector<const ShardCells*> by_shard(plan.shards.size(), nullptr);
  for (const FleetPartial& partial : partials) {
    SHEP_REQUIRE(partial.plan_fingerprint == plan.fingerprint,
                 "partial belongs to a different plan (fingerprint "
                 "mismatch): " + partial.scenario_name);
    for (const ShardCells& shard : partial.shards) {
      SHEP_REQUIRE(shard.shard < plan.shards.size(),
                   "partial carries a shard index outside the plan");
      SHEP_REQUIRE(by_shard[shard.shard] == nullptr,
                   "shard covered by more than one partial: " +
                       std::to_string(shard.shard));
      by_shard[shard.shard] = &shard;
    }
  }
  for (std::size_t i = 0; i < by_shard.size(); ++i) {
    SHEP_REQUIRE(by_shard[i] != nullptr,
                 "partials do not cover plan shard " + std::to_string(i));
  }

  // Fold in plan (shard-index) order: the sequence is independent of how
  // shards were grouped into partials, which is what makes the merged
  // summary bit-identical to the single-process run.
  const ScenarioSpec& s = plan.matrix.spec;
  FleetSummary summary;
  summary.scenario_name = s.name;
  summary.node_count = plan.matrix.nodes.size();
  summary.days = s.days;
  summary.slots_per_day = s.slots_per_day;
  summary.cells = plan.matrix.cells;
  summary.stats.assign(plan.matrix.cells.size(), CellAccumulator{});
  for (const ShardCells* shard : by_shard) {
    for (const auto& [cell, acc] : shard->cells) {
      SHEP_REQUIRE(cell < summary.stats.size(),
                   "partial carries a cell index outside the plan");
      summary.stats[cell].Merge(acc);
    }
  }
  return summary;
}

FleetSummary RunFleet(const ScenarioSpec& spec, const FleetRunOptions& options,
                      FleetRunStats* stats) {
  const ShardPlan plan = BuildShardPlan(spec, options.shard_size);
  std::vector<std::size_t> all(plan.shards.size());
  std::iota(all.begin(), all.end(), 0);
  // Not brace-init: initializer_list elements are const, so {std::move(p)}
  // would silently deep-copy every accumulator of the run.
  std::vector<FleetPartial> partials;
  partials.push_back(RunFleetShards(plan, all, options, stats));
  const auto t0 = std::chrono::steady_clock::now();
  FleetSummary summary = MergeFleetPartials(plan, partials);
  if (stats != nullptr) stats->merge_seconds = SecondsSince(t0);
  return summary;
}

}  // namespace shep
