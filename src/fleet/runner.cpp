#include "fleet/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "mgmt/node_sim.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"

namespace shep {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

FleetSummary RunFleet(const ScenarioSpec& spec, const FleetRunOptions& options,
                      FleetRunInfo* info) {
  SHEP_REQUIRE(options.shard_size >= 1, "shard_size must be >= 1");
  const ScenarioMatrix matrix = ExpandScenario(spec);
  const ScenarioSpec& s = matrix.spec;  // slot_seconds already forced.

  // ---- Phase 1: synthesize the distinct weather replicas. -----------------
  // Lanes are keyed (site, replica) — see ScenarioMatrix::trace_lane — so
  // all predictor/storage cells of a site share traces (paired comparison)
  // and the synthesis cost is sites × replicas, not cells × replicas.
  const std::size_t trace_count = matrix.trace_lane_count();
  std::vector<std::uint64_t> trace_seed(trace_count, 0);
  for (const FleetNodeConfig& node : matrix.nodes) {
    trace_seed[matrix.trace_lane(node)] = node.trace_seed;
  }

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<const SlotSeries>> series(trace_count);
  ParallelFor(options.pool, trace_count, [&](std::size_t t) {
    const SiteProfile& site = SiteByCode(s.sites[t / s.nodes_per_cell]);
    SynthOptions synth;
    synth.days = s.days;
    synth.seed_offset = trace_seed[t];
    series[t] = std::make_unique<const SlotSeries>(
        SynthesizeTrace(site, synth), s.slots_per_day);
  });
  const double synth_seconds = SecondsSince(t0);

  // ---- Phase 2: sharded node simulation. ----------------------------------
  // Shard boundaries are a pure function of (node count, shard_size); the
  // pool only decides which thread runs which shard.  Nodes are cell-major,
  // so a shard's accumulators form a short run of consecutive cells.
  const std::size_t node_count = matrix.nodes.size();
  const std::size_t shard_count =
      (node_count + options.shard_size - 1) / options.shard_size;
  std::vector<std::vector<std::pair<std::size_t, CellAccumulator>>>
      shard_stats(shard_count);

  t0 = std::chrono::steady_clock::now();
  ParallelFor(options.pool, shard_count, [&](std::size_t shard) {
    auto& local = shard_stats[shard];
    const std::size_t begin = shard * options.shard_size;
    const std::size_t end = std::min(begin + options.shard_size, node_count);
    for (std::size_t i = begin; i < end; ++i) {
      const FleetNodeConfig& node = matrix.nodes[i];
      const ScenarioCell& cell = matrix.cells[node.cell];
      const std::size_t lane = matrix.trace_lane(node);

      NodeSimConfig config = s.node;
      config.storage.capacity_j = cell.storage_j;
      config.initial_level_fraction = node.initial_level_fraction;

      const auto predictor =
          s.predictors[cell.predictor_index].Make(s.slots_per_day);
      const NodeSimResult result =
          SimulateNode(*predictor, *series[lane], config);

      if (local.empty() || local.back().first != node.cell) {
        local.emplace_back(node.cell, CellAccumulator{});
      }
      local.back().second.Add(result);
    }
  });

  // Merge in shard order: the fold sequence is scheduling-independent, so
  // the summary is bit-identical at any thread count.
  FleetSummary summary;
  summary.scenario_name = s.name;
  summary.node_count = node_count;
  summary.days = s.days;
  summary.slots_per_day = s.slots_per_day;
  summary.cells = matrix.cells;
  summary.stats.assign(matrix.cells.size(), CellAccumulator{});
  for (const auto& shard : shard_stats) {
    for (const auto& [cell, acc] : shard) {
      summary.stats[cell].Merge(acc);
    }
  }
  const double sim_seconds = SecondsSince(t0);

  if (info != nullptr) {
    info->threads = options.pool != nullptr ? options.pool->thread_count() : 1;
    info->shards = shard_count;
    info->unique_traces = trace_count;
    info->synth_seconds = synth_seconds;
    info->sim_seconds = sim_seconds;
  }
  return summary;
}

}  // namespace shep
