#include "fleet/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fleet/scenario.hpp"  // DeriveSeed.

namespace shep {

void FaultSpec::Validate(std::size_t days, int slots_per_day) const {
  const double horizon_slots =
      static_cast<double>(days) * static_cast<double>(slots_per_day);
  for (double rate : {outage_rate_per_day, dropout_rate_per_day}) {
    SHEP_REQUIRE(std::isfinite(rate) && rate >= 0.0,
                 "fault rates must be finite and non-negative");
    // The arrival model is one Bernoulli draw per slot at rate/slots_per_day,
    // which stops being a probability past one arrival per slot.
    SHEP_REQUIRE(rate <= static_cast<double>(slots_per_day),
                 "fault rates must not exceed slots_per_day arrivals/day");
  }
  if (outage_rate_per_day > 0.0) {
    SHEP_REQUIRE(std::isfinite(outage_mean_slots) &&
                     outage_mean_slots >= 1.0 &&
                     outage_mean_slots <= horizon_slots,
                 "outage_mean_slots must be in [1, days * slots_per_day]");
  }
  if (dropout_rate_per_day > 0.0) {
    // A sensor dark for more than a day is an outage, not a dropout.
    SHEP_REQUIRE(std::isfinite(dropout_mean_slots) &&
                     dropout_mean_slots >= 1.0 &&
                     dropout_mean_slots <=
                         static_cast<double>(slots_per_day),
                 "dropout windows must fit within one day");
  }
  SHEP_REQUIRE(std::isfinite(panel_decay_per_day) &&
                   panel_decay_per_day >= 0.0 && panel_decay_per_day < 1.0,
               "panel_decay_per_day must be in [0, 1)");
  SHEP_REQUIRE(std::isfinite(battery_aging_per_day) &&
                   battery_aging_per_day >= 0.0 &&
                   battery_aging_per_day < 1.0,
               "battery_aging_per_day must be in [0, 1)");
  SHEP_REQUIRE(recovery_window_slots <=
                   days * static_cast<std::size_t>(slots_per_day),
               "recovery_window_slots must fit within the horizon");
}

namespace {

/// Exponential duration with the given mean, rounded to whole slots and
/// floored at one: the MTTR-style repair model.
std::uint32_t DrawDurationSlots(Rng& rng, double mean_slots) {
  const double drawn =
      std::round(-mean_slots * std::log1p(-rng.NextDouble()));
  return static_cast<std::uint32_t>(std::max(1.0, drawn));
}

/// Draws sorted disjoint windows over [0, total_slots): while outside a
/// window, each slot is a Bernoulli arrival at rate/slots_per_day; an
/// arrival opens a window of exponential mean duration.  One dedicated Rng
/// per channel, so the outage and dropout draw sequences are independent.
void DrawWindows(std::vector<FaultWindow>& out, Rng rng, double rate_per_day,
                 double mean_slots, int slots_per_day,
                 std::uint32_t total_slots) {
  if (rate_per_day <= 0.0) return;
  const double p = rate_per_day / static_cast<double>(slots_per_day);
  std::uint32_t slot = 0;
  while (slot < total_slots) {
    if (!rng.NextBool(p)) {
      ++slot;
      continue;
    }
    FaultWindow window;
    window.begin = slot;
    window.end = std::min(total_slots,
                          slot + DrawDurationSlots(rng, mean_slots));
    out.push_back(window);
    slot = window.end;
  }
}

}  // namespace

void BuildFaultSchedule(const FaultSpec& spec, std::uint64_t fault_seed,
                        std::size_t days, int slots_per_day,
                        FaultSchedule& out) {
  SHEP_REQUIRE(days > 0 && slots_per_day > 0,
               "fault schedule needs a non-empty horizon");
  out.Clear();
  const auto total_slots = static_cast<std::uint32_t>(
      days * static_cast<std::size_t>(slots_per_day));

  // Sub-lanes of the node's fault seed: one independent stream per fault
  // channel, so tuning the dropout rate can never shift an outage draw.
  DrawWindows(out.outages, Rng(DeriveSeed(fault_seed, 0, 0)),
              spec.outage_rate_per_day, spec.outage_mean_slots,
              slots_per_day, total_slots);
  DrawWindows(out.dropouts, Rng(DeriveSeed(fault_seed, 1, 0)),
              spec.dropout_rate_per_day, spec.dropout_mean_slots,
              slots_per_day, total_slots);

  // Degradation is deterministic decay, not a draw: day d multiplies the
  // day-0 value by (1 - rate)^d, computed by running product so every node
  // of a cell ages through the identical sequence.
  out.panel_factor.resize(days);
  out.capacity_factor.resize(days);
  double panel = 1.0;
  double capacity = 1.0;
  for (std::size_t d = 0; d < days; ++d) {
    out.panel_factor[d] = panel;
    out.capacity_factor[d] = capacity;
    panel *= 1.0 - spec.panel_decay_per_day;
    capacity *= 1.0 - spec.battery_aging_per_day;
  }

  out.recovery_window_slots =
      spec.recovery_window_slots > 0
          ? static_cast<std::uint32_t>(spec.recovery_window_slots)
          : static_cast<std::uint32_t>(slots_per_day);
}

}  // namespace shep
