// parity.hpp — differential backend-parity measurement.
//
// The three WCMA backends (double-precision core/Wcma, Q16.16
// core/FixedWcma, MicroVm-executed hw/VmWcmaPredictor) claim to be the same
// algorithm.  "They all run" does not test that claim; backend-wiring bugs
// hide precisely in the values.  This module measures the divergence
// directly, at two altitudes:
//
//  * slot level — MeasurePredictionDivergence drives two predictors over
//    the SAME series, prediction by prediction, and reports the absolute
//    and peak-relative divergence envelope.  Float↔VM must agree to
//    FMA-contraction noise (ulps); float↔fixed to the Q16.16 quantisation
//    budget (~1 % of peak over the region of interest).
//
//  * fleet level — MapeDeltas matches the cells of two predictor labels in
//    a FleetSummary pairwise over (site, storage).  Because fleet weather
//    is paired per site, matched cells faced identical draws, so the
//    per-cell MAPE delta isolates the backend, not sampling noise.
//
// tests/test_backend_parity.cpp pins the bounds.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "fleet/aggregate.hpp"
#include "timeseries/slotting.hpp"

namespace shep {

/// Envelope of |prediction_a − prediction_b| over a shared series.
struct BackendDivergence {
  std::size_t slots = 0;      ///< predictions compared (after skip).
  double max_abs_w = 0.0;     ///< worst slot divergence, watts.
  double mean_abs_w = 0.0;    ///< average slot divergence, watts.
  double max_rel_peak = 0.0;  ///< max_abs_w normalised by the series peak.
};

/// Runs both predictors over every slot of `series` (each is Reset()
/// first) and measures the per-slot prediction divergence.  `skip_slots`
/// excludes the leading warm-up slots where backends intentionally differ
/// (e.g. FixedWcma's warm-up θ indexing — see wcma_fixed.hpp).
BackendDivergence MeasurePredictionDivergence(Predictor& a, Predictor& b,
                                              const SlotSeries& series,
                                              std::size_t skip_slots = 0);

/// One matched (site, storage) cell pair of two predictor labels.
struct CellMapeDelta {
  std::size_t cell_a = 0;  ///< index into FleetSummary::cells.
  std::size_t cell_b = 0;
  std::string site_code;
  double storage_j = 0.0;
  double mape_a = 0.0;
  double mape_b = 0.0;

  double abs_delta() const { return std::fabs(mape_a - mape_b); }
};

/// Pairs every (site, storage) cell of `label_a` with its `label_b`
/// counterpart.  Throws std::invalid_argument when a label is missing, a
/// counterpart cell does not exist, or a matched cell has no measured MAPE
/// (parity over unmeasured accuracy would be vacuous).
std::vector<CellMapeDelta> MapeDeltas(const FleetSummary& summary,
                                      const std::string& label_a,
                                      const std::string& label_b);

/// Convenience: the worst |Δ MAPE| over all matched pairs.
double MaxAbsMapeDelta(const std::vector<CellMapeDelta>& deltas);

}  // namespace shep
