// scenario.hpp — declarative fleet scenarios and their combinatorial
// expansion.
//
// A ScenarioSpec describes a whole deployment campaign in one value: which
// sites (weather regimes), which predictor designs, which storage tiers,
// how many replica nodes per combination, and the horizon.  ExpandScenario
// turns that description into the concrete matrix the runner executes —
// one ScenarioCell per (site × predictor × storage) combination and one
// FleetNodeConfig per simulated node, each with seeds derived
// deterministically from the scenario seed so that the entire fleet is
// reproducible from a single number.
//
// Seeding follows a paired design: the weather replica seed depends only on
// (site, replica), so every predictor and storage tier inside a site faces
// the *same* weather draws and cell-to-cell differences measure the design,
// not sampling noise.  The per-node seed additionally depends on the cell
// and drives node-local variation (initial storage level jitter), modelling
// a heterogeneous fleet deployed at different times.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/ar.hpp"
#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "fleet/faults.hpp"
#include "mgmt/node_sim.hpp"

namespace shep {

/// Predictor designs a fleet can deploy.  The three WCMA entries are the
/// same algorithm on three arithmetic backends: double-precision reference
/// (kWcma), the Q16.16 fixed-point MCU build (kWcmaFixed), and the routine
/// executed instruction-by-instruction on the cycle-counted MicroVm
/// (kWcmaVm).  The two MCU backends implement ComputeCostReporter, so their
/// cells additionally report per-wake-up cycle/op cost in fleet summaries.
enum class PredictorKind {
  kWcma,
  kWcmaFixed,
  kWcmaVm,
  kEwma,
  kAr,
  kAdaptiveWcma,
  kPersistence,
  kPreviousDay,
};

/// Short display name ("WCMA", "FixedWCMA", "VmWCMA", "EWMA", ...).
const char* PredictorKindName(PredictorKind kind);

/// One predictor design: a kind plus the parameters that kind reads.
struct PredictorSpec {
  PredictorKind kind = PredictorKind::kWcma;
  WcmaParams wcma;                ///< kWcma / kWcmaFixed / kWcmaVm.
  double ewma_weight = 0.5;       ///< kEwma (Kansal et al. default).
  ArParams ar;                    ///< kAr.
  AdaptiveWcmaParams adaptive;    ///< kAdaptiveWcma.

  /// Instantiates a fresh predictor for a deployment with N slots per day.
  std::unique_ptr<Predictor> Make(int slots_per_day) const;

  /// Rejects parameters Make() would throw on, so a malformed design is
  /// caught by ScenarioSpec::Validate up front instead of on a pool worker
  /// (where the throw would std::terminate).
  void Validate(int slots_per_day) const;

  /// Cell label for reports: the kind name.  When a scenario lists the same
  /// kind more than once (e.g. two WCMA tunings), ExpandScenario suffixes
  /// "#<index>" so cells stay distinguishable in tables and CSV.
  std::string Label() const { return PredictorKindName(kind); }
};

/// Declarative description of a fleet campaign.
struct ScenarioSpec {
  std::string name = "fleet";
  std::vector<std::string> sites;          ///< paper site codes (solar/sites).
  std::vector<PredictorSpec> predictors;   ///< designs under comparison.
  std::vector<double> storage_tiers_j;     ///< storage capacities to cross in.
  std::size_t nodes_per_cell = 1;          ///< replicas per combination.
  std::size_t days = 120;                  ///< simulated horizon.
  int slots_per_day = 48;                  ///< N of the deployment.
  std::uint64_t seed = 0x5EEDu;            ///< root of every derived stream.
  /// Base node configuration; storage.capacity_j is overridden per tier and
  /// duty.slot_seconds is forced to 86400/slots_per_day by ExpandScenario.
  NodeSimConfig node;
  /// Half-width of the uniform per-node jitter applied to
  /// node.initial_level_fraction (clamped to [0, 1]); 0 disables.
  double initial_level_jitter = 0.0;
  /// Deterministic fault injection (fleet/faults.hpp); the default is a
  /// healthy fleet, which reproduces fault-free results bit for bit.
  FaultSpec faults;

  /// Throws std::invalid_argument when the spec cannot be expanded.
  void Validate() const;

  /// Exact text form of the whole spec — every double travels as a
  /// hexfloat — so a coordinator can hand the campaign to worker processes
  /// that rebuild the identical ShardPlan (same fingerprint) from the
  /// bytes alone.  Validates first: only an expandable spec serializes.
  std::string Describe() const;

  std::size_t cell_count() const {
    return sites.size() * predictors.size() * storage_tiers_j.size();
  }
  std::size_t node_count() const { return cell_count() * nodes_per_cell; }
};

/// Inverse of ScenarioSpec::Describe.  Throws std::invalid_argument on
/// malformed input; round-trips every field bit-exactly.
[[nodiscard]] ScenarioSpec ParseScenarioSpec(const std::string& text);

/// Inverse of PredictorKindName ("WCMA" -> kWcma, ...).  Throws
/// std::invalid_argument on an unknown name.
PredictorKind PredictorKindFromName(const std::string& name);

/// One (site × predictor × storage) combination of the expanded matrix.
struct ScenarioCell {
  std::size_t index = 0;            ///< position in ScenarioMatrix::cells.
  std::size_t site_index = 0;       ///< into ScenarioSpec::sites.
  std::size_t predictor_index = 0;  ///< into ScenarioSpec::predictors.
  std::size_t storage_index = 0;    ///< into ScenarioSpec::storage_tiers_j.
  std::string site_code;
  std::string predictor_label;
  double storage_j = 0.0;
};

/// One concrete node of the fleet.
struct FleetNodeConfig {
  std::size_t index = 0;     ///< global node id (cell-major).
  std::size_t cell = 0;      ///< owning cell index.
  std::size_t replica = 0;   ///< replica within the cell.
  /// Weather stream seed; shared by all cells of the same site so predictor
  /// and storage comparisons are paired on identical weather.
  std::uint64_t trace_seed = 0;
  /// Node-local stream seed; unique per node.
  std::uint64_t node_seed = 0;
  /// Fault-schedule stream seed; its own lane (distinct from node_seed),
  /// so enabling faults never shifts the jitter or weather draws.
  std::uint64_t fault_seed = 0;
  /// Initial storage level after the per-node jitter draw.
  double initial_level_fraction = 0.5;
};

/// The fully expanded scenario: cells in (site, predictor, storage) order
/// and nodes cell-major (all replicas of cell 0, then cell 1, ...).
struct ScenarioMatrix {
  ScenarioSpec spec;
  std::vector<ScenarioCell> cells;
  std::vector<FleetNodeConfig> nodes;

  /// Weather-trace lanes are keyed by (site, replica) only — every
  /// predictor/storage cell of a site shares its site's lanes, which is the
  /// paired design — laid out site-major.  The runner synthesizes one trace
  /// per lane and routes each node onto its lane through these two helpers.
  std::size_t trace_lane_count() const {
    return spec.sites.size() * spec.nodes_per_cell;
  }
  std::size_t trace_lane(const FleetNodeConfig& node) const {
    return cells[node.cell].site_index * spec.nodes_per_cell + node.replica;
  }
};

/// Derives an independent 64-bit stream seed from a root seed and two
/// lane indices; splitmix64-based, stable across platforms and runs.
std::uint64_t DeriveSeed(std::uint64_t root, std::uint64_t a, std::uint64_t b);

/// Expands the combinatorial matrix.  Deterministic: same spec (including
/// seed) -> identical matrix.  Throws via Validate() on a malformed spec.
ScenarioMatrix ExpandScenario(const ScenarioSpec& spec);

}  // namespace shep
