#include "mgmt/duty_cycle.hpp"

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace shep {

void DutyCycleConfig::Validate() const {
  SHEP_REQUIRE(slot_seconds > 0.0, "slot length must be positive");
  SHEP_REQUIRE(active_power_w > 0.0, "active power must be positive");
  SHEP_REQUIRE(sleep_power_w >= 0.0 && sleep_power_w < active_power_w,
               "sleep power must be below active power");
  SHEP_REQUIRE(min_duty >= 0.0 && min_duty <= max_duty && max_duty <= 1.0,
               "duty bounds must satisfy 0 <= min <= max <= 1");
  SHEP_REQUIRE(target_level_fraction >= 0.0 && target_level_fraction <= 1.0,
               "storage setpoint must be a fraction");
  SHEP_REQUIRE(level_gain >= 0.0 && level_gain <= 1.0,
               "level gain must be in [0,1]");
}

DutyCycleController::DutyCycleController(const DutyCycleConfig& config)
    : config_(config) {
  config_.Validate();
}

double DutyCycleController::DutyForSlot(double predicted_harvest_j,
                                        double level_j,
                                        double capacity_j) const {
  SHEP_REQUIRE(predicted_harvest_j >= 0.0,
               "predicted harvest must be non-negative");
  SHEP_REQUIRE(capacity_j > 0.0, "capacity must be positive");
  SHEP_REQUIRE(level_j >= 0.0 && level_j <= capacity_j,
               "level must be within capacity");
  // Energy-neutral budget: spend what we expect to harvest, plus a
  // proportional share of the storage-level error (above setpoint -> spend
  // more, below -> conserve).
  const double setpoint_j = config_.target_level_fraction * capacity_j;
  const double budget_j = predicted_harvest_j +
                          config_.level_gain * (level_j - setpoint_j);
  const double sleep_j = config_.sleep_power_w * config_.slot_seconds;
  const double swing_j =
      (config_.active_power_w - config_.sleep_power_w) * config_.slot_seconds;
  const double duty = (budget_j - sleep_j) / swing_j;
  return Clamp(duty, config_.min_duty, config_.max_duty);
}

double DutyCycleController::ConsumptionJ(double duty) const {
  SHEP_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty must be in [0,1]");
  return (config_.sleep_power_w +
          duty * (config_.active_power_w - config_.sleep_power_w)) *
         config_.slot_seconds;
}

}  // namespace shep
