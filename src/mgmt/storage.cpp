#include "mgmt/storage.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace shep {

void StorageParams::Validate() const {
  SHEP_REQUIRE(capacity_j > 0.0, "storage capacity must be positive");
  SHEP_REQUIRE(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
               "charge efficiency must be in (0,1]");
  SHEP_REQUIRE(leakage_w >= 0.0, "leakage must be non-negative");
}

EnergyStorage::EnergyStorage(const StorageParams& params,
                             double initial_level_j)
    : params_(params), level_j_(initial_level_j) {
  params_.Validate();
  SHEP_REQUIRE(initial_level_j >= 0.0 && initial_level_j <= params.capacity_j,
               "initial level must be within capacity");
}

double EnergyStorage::Charge(double energy_j) {
  SHEP_REQUIRE(energy_j >= 0.0, "charge energy must be non-negative");
  const double stored_candidate = energy_j * params_.charge_efficiency;
  const double space = params_.capacity_j - level_j_;
  const double stored = std::min(stored_candidate, space);
  level_j_ += stored;
  total_charged_j_ += stored;
  // Overflow is reported in harvested joules (what was lost at the panel),
  // so convert the unstorable fraction back through the efficiency.
  const double overflow =
      (stored_candidate - stored) / params_.charge_efficiency;
  total_overflow_j_ += overflow;
  return overflow;
}

double EnergyStorage::Discharge(double energy_j) {
  SHEP_REQUIRE(energy_j >= 0.0, "discharge energy must be non-negative");
  const double delivered = std::min(energy_j, level_j_);
  level_j_ -= delivered;
  total_delivered_j_ += delivered;
  return delivered;
}

void EnergyStorage::Leak(double seconds) {
  SHEP_REQUIRE(seconds >= 0.0, "leak duration must be non-negative");
  level_j_ = std::max(0.0, level_j_ - params_.leakage_w * seconds);
}

}  // namespace shep
