#include "mgmt/node_sim.hpp"

#include "mgmt/node_sim_kernel.hpp"

namespace shep {

NodeSimResult SimulateNode(Predictor& predictor, const SlotSeries& series,
                           const NodeSimConfig& config) {
  // The virtual-dispatch instantiation of the shared kernel: per-slot
  // Observe/PredictNext go through the vtable and the cost probe is a
  // dynamic_cast.  Hot callers (the fleet runner) instantiate the kernel
  // on concrete predictor types instead — same semantics, no dispatch.
  return SimulateNodeKernel<Predictor>(predictor, series, config);
}

}  // namespace shep
