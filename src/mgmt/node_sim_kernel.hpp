// node_sim_kernel.hpp — the SimulateNode slot loop as a static-dispatch
// template.
//
// The fleet hot path runs this loop once per node, thousands of nodes per
// shard, with two per-slot virtual calls (Observe, PredictNext) and one
// per-run dynamic_cast (the ComputeCostReporter probe).  Instantiating the
// kernel on the CONCRETE predictor type — every hot predictor class is
// `final` — lets the compiler devirtualize and inline the predictor into
// the loop and resolve the cost probe at compile time.  The classic
// virtual entry point, SimulateNode(Predictor&, ...), is this same kernel
// instantiated at P = Predictor: one definition of the simulation
// semantics, two dispatch strategies, bit-identical results (pinned by
// tests/test_node_kernel.cpp and the fleet golden suite).
//
// fleet/runner.cpp selects the concrete instantiation per PredictorKind;
// sweep/ and the examples keep calling the virtual entry point.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "core/predictor.hpp"
#include "metrics/error.hpp"
#include "mgmt/duty_cycle.hpp"
#include "mgmt/node_sim.hpp"
#include "mgmt/storage.hpp"

namespace shep {

/// Disabled per-slot probe: the default Probe argument of the kernel.
/// kEnabled = false removes the probe call sites via `if constexpr`, so a
/// tracing-off instantiation compiles to exactly the pre-probe kernel —
/// telemetry costs nothing unless a run opts in (trace/probe.hpp supplies
/// the enabled flavour).
struct NoSlotProbe {
  static constexpr bool kEnabled = false;
};

/// Disabled fault model: the default Faults argument of the kernel.  Like
/// NoSlotProbe, kEnabled = false removes every fault branch via
/// `if constexpr`, so a healthy instantiation compiles to exactly the
/// pre-fault kernel (fleet/faults.hpp supplies the enabled FaultModel).
struct NoFaultModel {
  static constexpr bool kEnabled = false;
};

/// Runs `predictor` over `series` through the controller and store.  P is
/// either a concrete final predictor class (static dispatch, the fleet hot
/// path) or the abstract Predictor (virtual dispatch, the flexible entry).
/// The predictor is Reset() first.
///
/// Probe is a per-slot observation hook with a `static constexpr bool
/// kEnabled`; when enabled it is invoked once per simulated slot — warm-up
/// slots included, AFTER the slot's physics but BEFORE any scoring — as
/// probe(slot, violated, soc, predicted_w, actual_w, duty, outage).  The
/// probe only reads; simulation state and results never depend on it.
///
/// Faults is the injection hook (same kEnabled pattern), taken BY VALUE —
/// its schedule cursors advance with the loop.  Semantics when enabled:
/// outage slots suspend sampling, prediction, and load (the store only
/// leaks) and are counted as downtime, never scored; the first up-slot
/// after an outage Reset()s the predictor (a real node re-warms from
/// scratch) and opens the post-recovery accounting window; dropout slots
/// feed the predictor the last real observation (hold-last); panel decay
/// scales each slot's harvest by its day factor; battery aging re-rates
/// the usable capacity at each day boundary.  All schedule queries are
/// index math — nothing here may allocate (this is a hot-path-alloc root).
template <class P, class Probe = NoSlotProbe, class Faults = NoFaultModel>
NodeSimResult SimulateNodeKernel(  // shep-lint: root(hot-path-alloc)
    P& predictor, const SlotSeries& series, const NodeSimConfig& config,
    const Probe& probe = Probe{}, Faults faults = Faults{}) {
  config.duty.Validate();
  config.storage.Validate();
  SHEP_REQUIRE(config.initial_level_fraction >= 0.0 &&
                   config.initial_level_fraction <= 1.0,
               "initial level must be a fraction");
  SHEP_REQUIRE(
      std::fabs(config.duty.slot_seconds -
                static_cast<double>(series.grid().slot_seconds)) < 1e-9,
      "controller slot length must match the series slot length");

  predictor.Reset();
  EnergyStorage store(config.storage,
                      config.initial_level_fraction *
                          config.storage.capacity_j);
  DutyCycleController controller(config.duty);

  NodeSimResult result;
  result.predictor_name = predictor.Name();
  const double slot_s = config.duty.slot_seconds;
  const std::size_t warmup_slots =
      config.warmup_days * series.slots_per_day();

  // The reported mean stays the plain sum/n (its rounding is pinned by the
  // fleet golden fixtures); the VARIANCE comes from a Welford accumulator,
  // whose running-deviation form does not cancel catastrophically on long
  // runs the way duty_sq_sum/n - mean^2 does.
  double duty_sum = 0.0;
  WelfordMoments duty_moments;
  double overflow_before = 0.0;
  double delivered_before = 0.0;
  double ape_sum = 0.0;
  // Same region-of-interest rule as the accuracy evaluation (metrics/error):
  // only slots whose mean clears 10 % of the series peak are scored, and a
  // zero reference never enters the percentage (degenerate all-dark trace).
  const double roi_threshold = RoiFilter{}.threshold_fraction *
                               series.peak_mean();

  // Fault-path state; unused (and elided) in healthy instantiations.
  const std::size_t slots_per_day = series.slots_per_day();
  [[maybe_unused]] double last_obs = 0.0;          ///< hold-last sensor value.
  [[maybe_unused]] bool was_down = false;
  [[maybe_unused]] std::size_t recovery_deadline = 0;

  for (std::size_t g = 0; g + 1 < series.size(); ++g) {
    if constexpr (Faults::kEnabled) {
      // Day boundary: battery aging re-rates the usable capacity from here
      // on (day 0's factor is 1.0, so a zero-aging spec never moves it).
      if (g % slots_per_day == 0) {
        store.SetCapacity(config.storage.capacity_j *
                          faults.CapacityFactor(g / slots_per_day));
      }
      if (faults.Down(static_cast<std::uint32_t>(g))) {
        // The node is dark: no sampling, no prediction, no load — only
        // physics (self-discharge) continues.  The slot is downtime, not a
        // scored slot; the warm-up snapshot below still has to happen here
        // if the boundary lands inside the outage.
        if (g == warmup_slots) {
          overflow_before = store.total_overflow_j();
          delivered_before = store.total_delivered_j();
        }
        store.Leak(slot_s);
        if constexpr (Probe::kEnabled) {
          probe(static_cast<std::uint32_t>(g), false, store.fraction(), 0.0,
                series.mean(g), 0.0, true);
        }
        was_down = true;
        if (g >= warmup_slots) ++result.downtime_slots;
        continue;
      }
      if (was_down) {
        // Recovery: a rebooted node has lost its learned state, so the
        // predictor re-warms from scratch, and the slots until the
        // recovery window closes are attributed to this recovery.
        was_down = false;
        predictor.Reset();
        if (g >= warmup_slots) ++result.recoveries;
        recovery_deadline = g + faults.recovery_window_slots();
      }
    }

    // Wake-up at the start of interval g: sample, predict, commit.
    if constexpr (Faults::kEnabled) {
      double observed = series.boundary(g);
      if (faults.Dropout(static_cast<std::uint32_t>(g))) {
        observed = last_obs;  // sensor dropout: hold the last real reading.
      } else {
        last_obs = observed;
      }
      predictor.Observe(observed);
    } else {
      predictor.Observe(series.boundary(g));
    }
    const double predicted_w = std::max(0.0, predictor.PredictNext());
    const double predicted_j = predicted_w * slot_s;
    double usable_capacity_j = config.storage.capacity_j;
    if constexpr (Faults::kEnabled) {
      usable_capacity_j = store.params().capacity_j;  // aged capacity.
    }
    const double duty = controller.DutyForSlot(
        predicted_j, store.level_j(), usable_capacity_j);

    // Snapshot the lifetime counters before the first scored slot happens,
    // so overflow_j/delivered_j cover exactly the same slots as the other
    // scored totals (harvest, violations, duty).
    if (g == warmup_slots) {
      overflow_before = store.total_overflow_j();
      delivered_before = store.total_delivered_j();
    }

    // The slot then actually happens.
    double harvest_j = series.mean(g) * slot_s;
    if constexpr (Faults::kEnabled) {
      harvest_j *= faults.PanelFactor(g / slots_per_day);  // panel decay.
    }
    const double demand_j = controller.ConsumptionJ(duty);
    store.Charge(harvest_j);
    const double delivered = store.Discharge(demand_j);
    store.Leak(slot_s);
    const bool violated = delivered + 1e-12 < demand_j;

    if constexpr (Probe::kEnabled) {
      probe(static_cast<std::uint32_t>(g), violated, store.fraction(),
            predicted_w, series.mean(g), duty, false);
    }

    if (g < warmup_slots) continue;

    ++result.slots;
    if (violated) ++result.violations;
    if constexpr (Faults::kEnabled) {
      if (g < recovery_deadline) {
        ++result.post_recovery_slots;
        if (violated) ++result.post_recovery_violations;
      }
    }
    duty_sum += duty;
    duty_moments.Add(duty);
    result.harvested_j += harvest_j;
    result.min_level_fraction =
        std::min(result.min_level_fraction, store.fraction());
    if (series.mean(g) > 0.0 && series.mean(g) >= roi_threshold) {
      ape_sum += std::fabs(series.mean(g) - predicted_w) / series.mean(g);
      ++result.mape_points;
    }
  }

  if constexpr (Faults::kEnabled) {
    result.faulted = true;
    // An extreme schedule can keep a node dark for every post-warm-up
    // slot; that is downtime (availability 0), not a broken run.
    SHEP_CHECK(result.slots + result.downtime_slots > 0,
               "simulation produced no scored or downtime slots");
  } else {
    SHEP_CHECK(result.slots > 0, "simulation produced no scored slots");
  }
  if (result.slots > 0) {
    const double n = static_cast<double>(result.slots);
    result.violation_rate = static_cast<double>(result.violations) / n;
    result.mean_duty = duty_sum / n;
    result.duty_stddev = duty_moments.stddev();
    result.overflow_j = store.total_overflow_j() - overflow_before;
    result.delivered_j = store.total_delivered_j() - delivered_before;
    if (result.mape_points > 0) {
      result.mape = ape_sum / static_cast<double>(result.mape_points);
    }
  }
  // MCU-cost channel: the backends that model deployment cost expose their
  // cumulative counters through the optional ComputeCostReporter interface;
  // the Reset() at entry zeroed them, so the totals cover exactly this run.
  // A concrete P answers the probe at compile time; only the virtual entry
  // point (P = Predictor) still pays the dynamic_cast, once per run.
  if constexpr (std::is_base_of_v<ComputeCostReporter, P>) {
    result.has_compute_cost = true;
    result.compute =
        static_cast<const ComputeCostReporter&>(predictor).ComputeCost();
  } else if constexpr (std::is_same_v<P, Predictor>) {
    if (const auto* costed =
            dynamic_cast<const ComputeCostReporter*>(&predictor)) {
      result.has_compute_cost = true;
      result.compute = costed->ComputeCost();
    }
  }
  return result;
}

}  // namespace shep
