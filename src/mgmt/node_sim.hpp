// node_sim.hpp — full sensor-node simulation: predictor in the loop.
//
// Closes the loop of the paper's Fig. 1: trace -> predictor -> duty-cycle
// controller -> energy storage -> node.  Each slot the node predicts the
// upcoming harvest, commits to a duty cycle, then experiences the ACTUAL
// harvest (the slot's true mean power x T).  Prediction error therefore
// surfaces as real operational cost: brown-outs when the node over-commits
// (energy violations) and wasted harvest when it under-commits with a full
// store.  This module exists to demonstrate the paper's premise that
// "effectiveness of harvested-energy management is sensitive to accuracy
// of prediction algorithm" — see examples/node_simulation.cpp.
#pragma once

#include <cstddef>
#include <string>

#include "core/predictor.hpp"
#include "mgmt/duty_cycle.hpp"
#include "mgmt/storage.hpp"
#include "timeseries/slotting.hpp"

namespace shep {

/// Configuration of a node simulation run.
struct NodeSimConfig {
  DutyCycleConfig duty;         ///< controller parameters.
  StorageParams storage;        ///< store parameters.
  double initial_level_fraction = 0.5;
  std::size_t warmup_days = 20; ///< days before metrics accumulate
                                ///< (mirrors the evaluation protocol).
};

/// Aggregate outcome of a run.
struct NodeSimResult {
  std::string predictor_name;
  std::size_t slots = 0;            ///< scored slots (after warm-up).
  std::size_t violations = 0;       ///< slots where the store ran empty.
  double violation_rate = 0.0;
  double mean_duty = 0.0;           ///< achieved average duty cycle.
  double duty_stddev = 0.0;         ///< stability (lower = smoother app).
  double overflow_j = 0.0;          ///< harvest lost to a full store.
  double delivered_j = 0.0;         ///< energy actually delivered to loads.
  double harvested_j = 0.0;         ///< total harvest offered in ROI.
  double min_level_fraction = 1.0;  ///< storage low-water mark.
  /// Prediction accuracy alongside the operational outcome: MAPE (Eq. 8) of
  /// the committed prediction against the slot mean it budgeted (Eq. 7),
  /// over post-warm-up slots whose mean clears the paper's 10 %-of-peak
  /// region-of-interest threshold.
  double mape = 0.0;
  std::size_t mape_points = 0;      ///< slots entering the MAPE average.
  /// Modelled MCU compute cost of the predictor over the WHOLE run
  /// (warm-up included; the predictor is Reset() at entry, so its
  /// cumulative counters cover exactly this simulation).  Populated only
  /// when the predictor implements ComputeCostReporter (the fixed-point and
  /// VM backends of src/hw); float predictors leave has_compute_cost false
  /// and downstream aggregation reports their cost as "n/a", not zero.
  bool has_compute_cost = false;
  PredictorComputeCost compute;     ///< cycle/op/prediction totals.
  /// Graceful-degradation channel, populated only by fault-injected runs
  /// (fleet/faults.hpp); healthy runs leave `faulted` false and downstream
  /// aggregation renders no fault columns at all.  Outage slots are
  /// excluded from `slots` and every scored total above — a dark node is
  /// not violating, it is unavailable — and counted here instead.
  bool faulted = false;
  std::size_t downtime_slots = 0;   ///< post-warm-up slots spent in outage.
  std::size_t recoveries = 0;       ///< post-warm-up outage→up transitions.
  /// Scored slots inside the post-recovery window after each recovery, and
  /// the violations among them: the re-warm-up cost of an outage.
  std::size_t post_recovery_slots = 0;
  std::size_t post_recovery_violations = 0;
};

/// Runs `predictor` over `series` through the controller and store.
/// The predictor is Reset() first.
///
/// This is the virtual-dispatch entry point, kept for sweeps/examples and
/// any predictor known only as a Predictor&.  The slot loop itself lives
/// in mgmt/node_sim_kernel.hpp as a template the fleet runner instantiates
/// on concrete predictor types (static dispatch, bit-identical results).
NodeSimResult SimulateNode(Predictor& predictor, const SlotSeries& series,
                           const NodeSimConfig& config);

}  // namespace shep
