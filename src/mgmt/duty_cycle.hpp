// duty_cycle.hpp — prediction-driven adaptive duty-cycle control.
//
// The "intelligent controller" of the paper's Fig. 1, in the style of
// Kansal et al. [2]: each slot, budget the application's active time so
// that expected consumption tracks the PREDICTED incoming energy, with a
// proportional correction that steers the store back toward a setpoint.
// This is the consumer that makes prediction accuracy matter: the node
// simulator (node_sim.hpp) quantifies how much performance a worse
// predictor costs.
#pragma once

namespace shep {

/// Static configuration of the controlled node.
struct DutyCycleConfig {
  double slot_seconds = 1800.0;   ///< control period (= prediction horizon).
  double active_power_w = 0.060;  ///< node power when duty-cycled on.
  double sleep_power_w = 4.2e-6;  ///< node power when idle (LPM3-class).
  double min_duty = 0.02;         ///< availability floor demanded by the app.
  double max_duty = 1.0;
  double target_level_fraction = 0.5;  ///< storage setpoint.
  double level_gain = 0.05;  ///< fraction of the level error corrected/slot.

  void Validate() const;
};

/// Stateless controller: maps (predicted energy, storage state) to a duty
/// cycle for the upcoming slot.
class DutyCycleController {
 public:
  explicit DutyCycleController(const DutyCycleConfig& config);

  const DutyCycleConfig& config() const { return config_; }

  /// \param predicted_harvest_j  predictor's energy estimate for the slot
  ///                             (ê × T).
  /// \param level_j              current storage level.
  /// \param capacity_j           storage capacity.
  /// \returns duty cycle in [min_duty, max_duty].
  double DutyForSlot(double predicted_harvest_j, double level_j,
                     double capacity_j) const;

  /// Energy the node consumes in one slot at duty `d`.
  double ConsumptionJ(double duty) const;

 private:
  DutyCycleConfig config_;
};

}  // namespace shep
