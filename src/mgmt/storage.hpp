// storage.hpp — energy storage (battery / supercapacitor) model.
//
// The predictor exists to serve harvested-energy management (paper Fig. 1):
// a controller that matches the application's consumption to the incoming
// energy through a finite store.  This model captures the non-idealities
// the paper's introduction lists as constraints: finite capacity (overflow
// wastes harvest), charge inefficiency, and leakage.
#pragma once

#include <algorithm>

#include "common/check.hpp"

namespace shep {

/// Parameters of the store.
struct StorageParams {
  double capacity_j = 500.0;        ///< usable capacity.
  double charge_efficiency = 0.85;  ///< fraction of inflow actually stored.
  double leakage_w = 10.0e-6;       ///< self-discharge power.

  void Validate() const;
};

/// Stateful energy store with conservation accounting.
class EnergyStorage {
 public:
  EnergyStorage(const StorageParams& params, double initial_level_j);

  const StorageParams& params() const { return params_; }
  double level_j() const { return level_j_; }
  double fraction() const { return level_j_ / params_.capacity_j; }

  /// Adds harvested energy through the charger; returns the amount that
  /// could not be stored (overflow when full).
  double Charge(double energy_j);

  /// Draws energy; returns the amount actually delivered (may be less than
  /// requested when the store runs empty).
  double Discharge(double energy_j);

  /// Applies self-discharge over `seconds`.
  void Leak(double seconds);

  /// Re-rates the usable capacity (battery aging in the fleet fault
  /// model).  Charge above an aged capacity becomes unusable and is
  /// dropped from the level — capacity fade is not overflow, so the
  /// lifetime counters are untouched.  Inline and allocation-free: the
  /// node-sim kernel (a hot-path-alloc lint root) calls it per day.
  void SetCapacity(double capacity_j) {
    SHEP_REQUIRE(capacity_j > 0.0, "storage capacity must be positive");
    params_.capacity_j = capacity_j;
    level_j_ = std::min(level_j_, capacity_j);
  }

  /// Lifetime accounting (joules).
  double total_overflow_j() const { return total_overflow_j_; }
  double total_delivered_j() const { return total_delivered_j_; }
  double total_charged_j() const { return total_charged_j_; }

 private:
  StorageParams params_;
  double level_j_;
  double total_overflow_j_ = 0.0;
  double total_delivered_j_ = 0.0;
  double total_charged_j_ = 0.0;
};

}  // namespace shep
