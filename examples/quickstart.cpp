// quickstart — the 60-second tour of the library.
//
// 1. Get a harvested-power trace (synthetic here; LoadCsv for real data).
// 2. Discretize the day into N prediction slots.
// 3. Run the WCMA predictor over the trace.
// 4. Score it with the paper's MAPE protocol.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"

int main() {
  using namespace shep;

  // 1. A 90-day trace of a volatile continental site, 5-minute resolution.
  //    (Swap in LoadCsv("my_midc_export.csv", "MYSITE", 300) for real data.)
  SynthOptions options;
  options.days = 90;
  const PowerTrace trace = SynthesizeTrace(SiteByCode("SPMD"), options);
  std::cout << "Trace: " << trace.name() << ", " << trace.days()
            << " days at " << trace.resolution_s() << " s resolution, peak "
            << trace.peak() << " W\n";

  // 2. N = 48 slots/day -> 30-minute prediction horizon (the paper's
  //    running example).
  const SlotSeries series(trace, 48);

  // 3. The predictor with the paper's guideline parameters: α = 0.7,
  //    D = 10 (memory-friendly), K = 2.
  WcmaParams params;
  params.alpha = 0.7;
  params.days = 10;
  params.slots_k = 2;
  Wcma predictor(params, 48);

  // 4. Score: evaluation days 21.., samples >= 10 % of peak, error vs the
  //    predicted slot's mean power (MAPE, paper Eq. 8).
  RoiFilter protocol;
  protocol.first_day = 20;
  protocol.threshold_fraction = 0.10;
  const ErrorStats stats =
      ScorePredictor(predictor, series, ErrorTarget::kSlotMean, protocol);

  std::cout << "Predictor: " << predictor.Name() << "\n"
            << "Scored slots: " << stats.count << "\n"
            << "MAPE: " << stats.mape * 100.0 << " %\n"
            << "RMSE: " << stats.rmse << " W, MAE: " << stats.mae
            << " W, bias: " << stats.mbe << " W\n";

  // Bonus: one live prediction, the way a deployed node would use it.
  predictor.Reset();
  for (std::size_t g = 0; g < series.slots_per_day() * 30; ++g) {
    predictor.Observe(series.boundary(g));
  }
  std::cout << "After 30 days, prediction for the next slot: "
            << predictor.PredictNext() << " W (conditioning factor "
            << predictor.CurrentPhi() << ")\n";
  return 0;
}
