// node_simulation — why prediction accuracy matters downstream.
//
// Closes the paper's Fig. 1 loop: a solar-harvesting sensor node adapts
// its duty cycle each slot based on the predicted incoming energy.  We run
// the same node with four predictors of increasing quality on a volatile
// site and compare operational outcomes: brown-outs, wasted harvest, and
// achieved duty cycle.
#include <iostream>

#include "common/strings.hpp"
#include "core/baselines.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "mgmt/node_sim.hpp"
#include "report/table.hpp"
#include "solar/synth.hpp"

int main() {
  using namespace shep;

  SynthOptions options;
  options.days = 180;
  const PowerTrace trace = SynthesizeTrace(SiteByCode("ORNL"), options);
  const int n = 48;
  const SlotSeries series(trace, n);

  NodeSimConfig config;
  config.duty.slot_seconds = 1800.0;
  config.duty.active_power_w = 0.40;   // sensing + radio at full duty;
                                       // sized so ~0.2 W mean harvest
                                       // sustains ~50 % duty
  config.duty.sleep_power_w = 5.0e-6;
  config.duty.min_duty = 0.05;         // availability floor
  config.duty.level_gain = 0.10;
  config.storage.capacity_j = 4000.0;  // a few hours of buffer
  config.storage.charge_efficiency = 0.85;
  config.storage.leakage_w = 20.0e-6;
  config.warmup_days = 20;

  WcmaParams guideline;
  guideline.alpha = 0.7;
  guideline.days = 10;
  guideline.slots_k = 2;
  Wcma wcma(guideline, n);
  Ewma ewma(0.5, n);
  Persistence persistence;
  PreviousDay previous_day(n);

  TableBuilder table("Node outcomes on " + trace.name() + " (" +
                     std::to_string(options.days) + " days, N=48)");
  table.Columns({"Predictor", "brown-out rate", "wasted harvest",
                 "mean duty", "duty stddev", "min store level"});
  for (Predictor* p : {static_cast<Predictor*>(&wcma),
                       static_cast<Predictor*>(&ewma),
                       static_cast<Predictor*>(&persistence),
                       static_cast<Predictor*>(&previous_day)}) {
    const auto r = SimulateNode(*p, series, config);
    table.AddRow({r.predictor_name, FormatPercent(r.violation_rate),
                  FormatPercent(r.overflow_j / r.harvested_j),
                  FormatPercent(r.mean_duty), FormatFixed(r.duty_stddev, 3),
                  FormatPercent(r.min_level_fraction)});
  }
  std::cout << table.ToString();
  std::cout << "\nReading: brown-outs (store empty while committed) and\n"
               "wasted harvest (store full, panel energy discarded) are the\n"
               "two failure modes prediction error causes; the better the\n"
               "predictor, the less of both — the premise of the paper's\n"
               "harvested-energy management motivation.\n";
  return 0;
}
