// fleet_distributed_demo — the plan → partial → merge pipeline end to end.
//
// Builds a shard plan for a fleet scenario, executes it as N independent
// RunFleetShards partial runs (round-robin shard assignment, the way a
// coordinator would hand shards to worker machines), pushes every partial
// through its text serialization — the exact bytes that would cross a
// process boundary — parses them back, merges, and PROVES the assembled
// summary equals the monolithic single-process RunFleet bit for bit
// (table, CSV, and integer totals).
//
// With --procs N the simulation is real: RunFleetCoordinated fork/execs N
// shep_fleet_worker processes, streams the checksummed frames back over
// pipes, and merges — the same bit-identity proof over actual process
// boundaries.  --chaos additionally SIGKILLs the first worker mid-campaign
// to show the reassignment path recovering without changing a byte.
//
// A shared TraceCache stands in for a per-machine trace store: workers
// whose shards read the same weather lanes synthesize each lane once.
//
// With a trace directory the run also streams node telemetry: one
// selectively-persisted trace file per shard lands there, ready for
// `shep_trace list|slots|days` — the pipeline the CI telemetry smoke step
// exercises.
//
// Usage: fleet_distributed_demo [workers] [nodes_per_cell] [trace_dir]
//                               [--procs N] [--chaos] [--faults]
//                               [--csv FILE]
//        (defaults: 3 in-process workers, 4 nodes per cell, tracing off)
//
// --faults switches on a canned fault-injection spec (node outages, sensor
// dropout, panel decay, battery aging) so the bit-identity proof also
// covers the graceful-degradation channel; --csv FILE archives the merged
// summary CSV (the CI faulted-campaign smoke step uploads it).
#include <csignal>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "fleet/coord.hpp"
#include "fleet/partial.hpp"
#include "fleet/runner.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/trace_cache.hpp"
#include "trace/sink.hpp"

namespace {

/// The demo's proof: table, CSV, and the integer totals all agree.
bool BitIdentical(const shep::FleetSummary& a, const shep::FleetSummary& b) {
  bool identical = a.ToTable() == b.ToTable() && a.ToCsv() == b.ToCsv();
  for (std::size_t i = 0; identical && i < a.stats.size(); ++i) {
    identical = a.stats[i].violations == b.stats[i].violations &&
                a.stats[i].scored_slots == b.stats[i].scored_slots;
  }
  return identical;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace shep;

  std::size_t procs = 0;  // 0 = simulated workers in this process.
  bool chaos = false;
  bool faults = false;
  std::string csv_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--procs") {
      const std::optional<long long> n =
          i + 1 < argc ? ParseInt(argv[++i]) : std::nullopt;
      if (!n || *n <= 0) {
        throw std::invalid_argument("--procs needs a positive integer");
      }
      procs = static_cast<std::size_t>(*n);
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--csv") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--csv needs a file path");
      }
      csv_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  const auto positional_int = [&](std::size_t index,
                                  std::size_t fallback) -> std::size_t {
    if (positional.size() <= index) return fallback;
    const std::optional<long long> n = ParseInt(positional[index]);
    if (!n || *n <= 0) {
      throw std::invalid_argument("'" + positional[index] +
                                  "' is not a positive integer");
    }
    return static_cast<std::size_t>(*n);
  };
  const std::size_t workers = positional_int(0, 3);
  const std::string trace_dir = positional.size() > 2 ? positional[2] : "";

  ScenarioSpec spec;
  spec.name = "fleet_distributed_demo";
  spec.sites = {"HSU", "ORNL", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 2;
  PredictorSpec wcma_fixed = wcma;
  wcma_fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, wcma_fixed, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = positional_int(1, 4);
  spec.days = 30;
  spec.slots_per_day = 48;
  spec.seed = 0xD157;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  if (faults) {
    // A canned degraded deployment: roughly one multi-hour outage per node
    // per five days, a dropout burst every other day, and slow panel/
    // battery wear.  The fault spec rides the scenario (and its Describe()
    // text through the coordinator), so the bit-identity proofs below
    // cover the graceful-degradation channel end to end.
    spec.name += "_faulted";
    spec.faults.outage_rate_per_day = 0.2;
    spec.faults.outage_mean_slots = 6.0;
    spec.faults.dropout_rate_per_day = 0.5;
    spec.faults.dropout_mean_slots = 4.0;
    spec.faults.panel_decay_per_day = 0.001;
    spec.faults.battery_aging_per_day = 0.002;
  }

  // ---- Stage 1: one deterministic plan every process can rebuild. --------
  const ShardPlan plan = BuildShardPlan(spec, /*shard_size=*/5);
  std::cout << "plan: " << plan.shards.size() << " shards over "
            << plan.matrix.nodes.size() << " nodes, " << plan.lanes.size()
            << " weather lanes, fingerprint " << plan.fingerprint << "\n\n";
  std::cout << plan.Describe() << '\n';

  // ---- Multi-process mode: the coordinator does stages 2+3 for real. -----
  if (procs > 0) {
#ifndef SHEP_FLEET_WORKER_PATH
    std::cerr << "--procs needs the shep_fleet_worker path compiled in\n";
    return 1;
#else
    FleetCoordOptions coord;
    coord.worker_path = SHEP_FLEET_WORKER_PATH;
    coord.workers = procs;
    coord.shard_size = 5;
    coord.trace_dir = trace_dir;
    if (chaos) {
      // Kill the first worker as soon as it exists: its shards come back
      // to the survivors and the merge must not notice.
      coord.on_spawn = [](std::size_t spawn, long pid) {
        if (spawn == 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
      };
    }
    FleetCoordStats stats;
    const FleetSummary merged = RunFleetCoordinated(spec, coord, &stats);
    std::cout << "coordinator: " << stats.workers_spawned << " spawned, "
              << stats.workers_died << " died, " << stats.workers_killed
              << " killed, " << stats.respawns << " respawns, "
              << stats.shards_reassigned << " shards reassigned\n"
              << "frames: " << stats.frames_accepted << " accepted, "
              << stats.duplicate_frames << " duplicate, "
              << stats.corrupt_frames << " corrupt\n\n";

    const FleetSummary monolithic = RunFleet(spec);
    const bool identical = BitIdentical(merged, monolithic);
    std::cout << merged.ToTable() << '\n';
    std::cout << "coordinated (" << procs << " worker processes"
              << (chaos ? ", chaos" : "") << ") vs monolithic RunFleet: "
              << (identical ? "bit-identical" : "DIVERGED") << '\n';
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) throw std::runtime_error("cannot write " + csv_path);
      out << merged.ToCsv();
      std::cout << "csv: " << csv_path << '\n';
    }
    return identical ? 0 : 1;
#endif
  }

  // ---- Stage 2: N independent partial runs (round-robin assignment). -----
  ThreadPool pool;
  TraceCache cache;
  FleetRunOptions options;
  options.pool = &pool;
  options.trace_cache = &cache;

  // Optional telemetry: every worker's shards stream through one sink, so
  // the directory ends up with plan.shards.size() files that shep_trace
  // can query per shard or joined.
  std::unique_ptr<TraceSink> sink;
  if (!trace_dir.empty()) {
    TraceSinkOptions sink_options;
    sink_options.directory = trace_dir;
    sink = std::make_unique<TraceSink>(sink_options);
    options.trace_sink = sink.get();
  }

  std::vector<std::vector<std::size_t>> assignment(workers);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    assignment[i % workers].push_back(i);
  }

  std::vector<std::string> wire;  // the serialized partials "in flight".
  for (std::size_t w = 0; w < assignment.size(); ++w) {
    if (assignment[w].empty()) continue;  // more workers than shards.
    FleetRunStats info;
    const FleetPartial partial =
        RunFleetShards(plan, assignment[w], options, &info);
    wire.push_back(partial.Serialize());
    std::cout << "worker " << w << ": " << info.shards << " shards, "
              << partial.nodes_simulated << " nodes, " << info.unique_traces
              << " lanes (" << info.trace_cache_hits << " cache hits, "
              << info.trace_cache_misses << " misses), "
              << wire.back().size() << " bytes serialized\n";
    if (sink) {
      std::cout << "  telemetry: " << info.trace_events << " events, "
                << info.trace_dropped << " dropped, "
                << info.trace_slot_records << " slot records, "
                << info.trace_day_records << " day summaries, "
                << info.trace_shard_files << " files\n";
    }
  }
  const TraceCache::Stats cache_stats = cache.stats();
  std::cout << "trace cache: " << cache_stats.entries << " entries, "
            << cache_stats.hits << " hits, " << cache_stats.misses
            << " misses\n";
  if (sink) {
    const TraceSinkStats ts = sink->stats();
    std::cout << "trace sink: " << ts.shard_files << " files in "
              << sink->options().directory << " (" << ts.events
              << " events, " << ts.dropped << " dropped)\n";
  }
  std::cout << '\n';

  // ---- Stage 3: parse the wire bytes back and merge in plan order. -------
  std::vector<FleetPartial> partials;
  for (const std::string& text : wire) {
    partials.push_back(FleetPartial::Parse(text));
  }
  const FleetSummary merged = MergeFleetPartials(plan, partials);

  // ---- Proof: the monolithic run produces the same bits. -----------------
  // Untraced on purpose: it covers every shard, so a shared sink would
  // rewrite the distributed run's files (same fingerprint, same names) —
  // and the equality below proving tracing changed nothing is the point.
  FleetRunOptions monolithic_options = options;
  monolithic_options.trace_sink = nullptr;
  const FleetSummary monolithic = RunFleet(spec, monolithic_options);
  const bool identical = BitIdentical(merged, monolithic);

  std::cout << merged.ToTable() << '\n';
  std::cout << "distributed (" << partials.size()
            << " serialized partial runs) vs monolithic RunFleet: "
            << (identical ? "bit-identical" : "DIVERGED") << '\n';
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) throw std::runtime_error("cannot write " + csv_path);
    out << merged.ToCsv();
    std::cout << "csv: " << csv_path << '\n';
  }
  return identical ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "fleet_distributed_demo: " << e.what()
            << "\nUsage: fleet_distributed_demo [workers] [nodes_per_cell]"
               " [trace_dir] [--procs N] [--chaos] [--faults] [--csv FILE]\n";
  return 1;
}
