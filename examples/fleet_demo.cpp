// fleet_demo — a 1000+-node heterogeneous fleet in one deterministic run.
//
// Expands a declarative scenario — 3 sites of contrasting climate × 6
// predictor designs × 3 storage tiers × 28 replica nodes = 1512 nodes —
// and executes it through the sharded fleet runner, then prints the
// per-cell summary as an aligned table and as CSV.  The per-site blocks
// reproduce the paper's premise at fleet scale: the worse the predictor's
// MAPE, the more brown-outs and wasted harvest the fleet suffers, and the
// smaller the storage tier, the steeper that penalty.
//
// The WCMA design is deployed on all three arithmetic backends — float
// reference, Q16.16 fixed point, and the MicroVm-executed routine — so the
// table shows the paper's whole trade-off in one place: near-identical
// accuracy columns across the backends, with the MCU-cost columns
// (cyc_mean/cyc_p95/ops_mean) filled only for the two deployable builds.
//
// Usage: fleet_demo [nodes_per_cell] [days]   (defaults 28, 120)
#include <cstdlib>
#include <exception>
#include <iostream>

#include "common/threadpool.hpp"
#include "fleet/runner.hpp"
#include "fleet/trace_cache.hpp"

int main(int argc, char** argv) try {
  using namespace shep;

  ScenarioSpec spec;
  spec.name = "fleet_demo";
  // Hard (convective), medium (coastal, 5-min logger), easy (desert).
  spec.sites = {"ORNL", "ECSU", "PFCI"};

  PredictorSpec wcma;  // the paper's guideline configuration.
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 2;
  PredictorSpec wcma_fixed = wcma;  // same design, MCU arithmetic backends.
  wcma_fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec wcma_vm = wcma;
  wcma_vm.kind = PredictorKind::kWcmaVm;
  PredictorSpec ewma;
  ewma.kind = PredictorKind::kEwma;
  PredictorSpec ar;
  ar.kind = PredictorKind::kAr;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, wcma_fixed, wcma_vm, ewma, ar, persistence};

  // Under one night's reserve / a few hours / half a day of buffer.
  spec.storage_tiers_j = {1200.0, 4000.0, 12000.0};

  spec.nodes_per_cell = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 28;
  spec.days = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 120;
  spec.slots_per_day = 48;
  spec.seed = 0xF1EE7u;

  // Same node sizing as examples/node_simulation.cpp: the load is scaled so
  // the controller genuinely has to ration energy.
  spec.node.duty.active_power_w = 0.40;
  spec.node.duty.sleep_power_w = 5.0e-6;
  spec.node.duty.min_duty = 0.05;
  spec.node.duty.level_gain = 0.10;
  spec.node.storage.charge_efficiency = 0.85;
  spec.node.storage.leakage_w = 20.0e-6;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.25;  // nodes deployed at different charge.

  ThreadPool pool;
  TraceCache cache;
  FleetRunOptions options;
  options.pool = &pool;
  options.trace_cache = &cache;
  FleetRunStats info;
  const FleetSummary summary = RunFleet(spec, options, &info);

  std::cout << summary.ToTable() << '\n';
  std::cout << "nodes=" << summary.node_count << " cells="
            << summary.cells.size() << " unique_traces="
            << info.unique_traces << " shards=" << info.shards
            << " threads=" << info.threads << '\n';
  std::cout << "phases: synth_s=" << info.synth_seconds << " sim_s="
            << info.sim_seconds << " merge_s=" << info.merge_seconds
            << "  trace_cache: hits=" << info.trace_cache_hits << " misses="
            << info.trace_cache_misses << '\n';
  std::cout << "telemetry: events=" << info.trace_events << " dropped="
            << info.trace_dropped << " slot_records="
            << info.trace_slot_records << " day_records="
            << info.trace_day_records << " files=" << info.trace_shard_files
            << " (no sink attached — see fleet_distributed_demo)\n\n";
  std::cout << summary.ToCsv();
  return 0;
} catch (const std::exception& e) {
  // Bad CLI values (e.g. 0 replicas, days inside the warm-up) surface here
  // through ScenarioSpec::Validate.
  std::cerr << "fleet_demo: " << e.what()
            << "\nUsage: fleet_demo [nodes_per_cell] [days]\n";
  return 1;
}
