// mcu_cost — estimating deployment energy cost before flashing hardware.
//
// Given a candidate configuration (N, α, D, K), how much battery does the
// prediction machinery itself consume per day on an MSP430-class node, and
// how does it split between sampling, computing, and sleeping?  This is
// the library's answer to the paper's Table IV / Fig. 6 workflow, exposed
// as a what-if tool.
#include <iostream>

#include "common/strings.hpp"
#include "hw/energy_model.hpp"
#include "hw/predictor_program.hpp"
#include "report/table.hpp"
#include "solar/synth.hpp"

int main() {
  using namespace shep;

  const McuPowerSpec spec;  // MSP430F1611 @ 3 V / 5 MHz
  const CycleCosts costs;

  std::cout << "Platform: " << spec.supply_v << " V, "
            << spec.clock_hz / 1e6 << " MHz, "
            << FormatFixed(spec.ActiveCycleEnergyJ() * 1e9, 2)
            << " nJ/cycle, ADC sample "
            << FormatFixed(spec.AdcSampleEnergyJ() * 1e6, 1) << " uJ\n\n";

  // Measure the op mix of the candidate configurations on plausible data.
  SynthOptions options;
  options.days = 40;
  const auto trace = SynthesizeTrace(SiteByCode("NPCS"), options);

  TableBuilder table("Daily energy of the management activity");
  table.Columns({"N", "K", "prediction/wakeup", "mgmt/day", "sleep/day",
                 "overhead"});
  for (int n : {24, 48, 96}) {
    for (int k : {1, 2, 4}) {
      WcmaParams p;
      p.alpha = 0.7;
      p.days = 10;
      p.slots_k = k;
      const auto ops = MeasureWakeupOps(p, trace, n).full_work;
      const auto act = ComputeActivityEnergy(spec, costs, ops);
      const auto budget = ComputeDayBudget(spec, costs, act, n, ops);
      table.AddRow({std::to_string(n), std::to_string(k),
                    FormatFixed(act.prediction_j * 1e6, 1) + " uJ",
                    FormatFixed(budget.management_j() * 1e3, 2) + " mJ",
                    FormatFixed(budget.sleep_j * 1e3, 0) + " mJ",
                    FormatFixed(budget.OverheadPercent(), 2) + "%"});
    }
  }
  std::cout << table.ToString();

  // Cross-check one configuration by actually executing the routine on
  // the cycle-counted MicroVm.
  WcmaProgramLayout layout;
  layout.slots_k = 2;
  layout.alpha = 0.7;
  WcmaVmInputs in;
  in.sample = 0.9;
  in.mu_next = 1.0;
  in.recent_samples = {0.85, 0.9};
  in.recent_mus = {0.95, 0.97};
  const auto run = RunWcmaOnVm(layout, in, costs);
  std::cout << "\nMicroVm cross-check (K=2, a=0.7): "
            << run.vm.instructions << " instructions, "
            << FormatFixed(run.vm.cycles, 0) << " modelled cycles = "
            << FormatFixed((run.vm.cycles + costs.wakeup_overhead) *
                               spec.ActiveCycleEnergyJ() * 1e6,
                           2)
            << " uJ per prediction (prediction value "
            << FormatFixed(run.prediction, 3) << " W)\n";
  std::cout << "\nRule of thumb from the paper (validated above): sampling\n"
               "dominates prediction; even at high rates the whole\n"
               "management activity is a few percent of sleep energy.\n";
  return 0;
}
