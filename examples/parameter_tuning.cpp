// parameter_tuning — how to tune (α, D, K) for YOUR deployment site.
//
// Walks the workflow of the paper's Sec. IV-B on one site: sweep the grid,
// inspect the optimum, then apply the paper's simplification guidelines
// (D ≈ 10-11, K = 2, α by horizon) and quantify what the shortcuts cost.
#include <iostream>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "solar/synth.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;

  // Your site's data: a year of HSU-like coastal measurements.
  SynthOptions options;
  options.days = 180;
  const PowerTrace trace = SynthesizeTrace(SiteByCode("HSU"), options);
  const int n = 48;  // 30-minute horizon
  std::cout << "Tuning WCMA for " << trace.name() << " at N=" << n << "\n\n";

  const SweepContext context(trace, n);
  RoiFilter protocol;  // paper defaults

  // Step 1: exhaustive sweep (parallel across the D axis).
  ThreadPool pool;
  const auto sweep = SweepWcma(context, ParamGrid::Paper(), protocol, &pool);
  const auto& best = sweep.BestByMape();
  std::cout << "Exhaustive optimum: alpha=" << FormatFixed(best.alpha, 1)
            << " D=" << best.days_d << " K=" << best.slots_k << " -> MAPE "
            << FormatPercent(best.mean_stats.mape) << "\n\n";

  // Step 2: the guideline configuration and what each shortcut costs.
  TableBuilder table("Guideline shortcuts vs the exhaustive optimum");
  table.Columns({"Configuration", "alpha", "D", "K", "MAPE", "penalty"});
  auto add = [&](const std::string& label, double a, int d, int k) {
    const auto* p = sweep.Find(a, d, k);
    if (p == nullptr) return;
    table.AddRow({label, FormatFixed(a, 1), std::to_string(d),
                  std::to_string(k), FormatPercent(p->mean_stats.mape),
                  FormatFixed((p->mean_stats.mape - best.mean_stats.mape) *
                                  100.0,
                              2) +
                      " pts"});
  };
  add("exhaustive optimum", best.alpha, best.days_d, best.slots_k);
  add("guideline: K=2", best.alpha, best.days_d, 2);
  add("guideline: D=10 (half the RAM)", best.alpha, 10, best.slots_k);
  add("guideline: alpha=0.7 band", 0.7, best.days_d, best.slots_k);
  add("all guidelines (a=0.7, D=10, K=2)", 0.7, 10, 2);
  std::cout << table.ToString();

  // Step 3: memory framing — why the D guideline matters on an MCU.
  const std::size_t words_20 = 20u * static_cast<std::size_t>(n);
  const std::size_t words_10 = 10u * static_cast<std::size_t>(n);
  std::cout << "\nHistory matrix RAM at D=20: " << words_20
            << " words; at D=10: " << words_10
            << " words (16-bit samples) — the guideline halves the "
               "predictor's dominant memory cost for a fraction of a MAPE "
               "point.\n";
  return 0;
}
