// call_graph.hpp — lexical function-definition and call-site extraction for
// the reachability rule families (hot-path-alloc, signal-safety,
// blocking-in-rt).
//
// shep_lint's per-line rules can say "this line allocates"; they cannot say
// "this line is reachable from the kernel slot loop".  This module adds the
// missing half: a per-translation-unit call graph built from the same
// blanked SourceFile text the line rules trust (comments and string
// literals can never fabricate an edge), resolved transitively through
// quoted includes exactly like the serialize-float rule resolves its
// float-identifier sets.
//
// Deliberate scope (documented, tested, and honest about its limits):
//
//  * Definitions are found lexically: `name(params) [qualifiers] {`, with
//    constructor init lists, template headers, trailing return types, and
//    method qualification (`TraceSink::EndShard`) handled; lambdas and
//    operator overloads have no extractable name and contribute their call
//    sites to the enclosing definition instead.
//  * A call site `foo(` resolves to EVERY definition named `foo` in the
//    TU's include closure — overloads and same-name methods are matched
//    conservatively (a reachability rule would rather walk one callee too
//    many than miss the one that allocates).
//  * Bodies defined in a different .cpp file are invisible, exactly as
//    they are to the compiler at this point of a TU: reachability stops at
//    declarations.  The rules treat unresolvable callees per their own
//    contract (ignored for pattern rules, allowlist-checked for
//    signal-safety).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "source_scan.hpp"

namespace shep::lint {

/// Blanked code lines joined into one string, with byte offsets of each
/// line so regex match positions convert back to 1-based line numbers.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;

  static JoinedCode From(const SourceFile& file);

  std::size_t LineOf(std::size_t pos) const;
};

/// One `callee(` occurrence inside a definition's body.
struct CallSite {
  std::size_t line = 0;  ///< 1-based line in the defining file.
  std::size_t pos = 0;   ///< byte offset in the file's JoinedCode (orders
                         ///< sites within a body, e.g. fork before execv).
  std::string name;      ///< last name component ("TryPush", not "Ring::TryPush").
};

/// One function (or method) definition found in a file.
struct FunctionDef {
  std::string file;     ///< repo-relative path of the defining file.
  std::string display;  ///< name as written, qualifiers kept ("TraceSink::EndShard").
  std::string name;     ///< last component, the resolution key.
  std::size_t line = 0;            ///< 1-based line the name sits on.
  std::size_t body_open_line = 0;  ///< line of the body's '{'.
  std::size_t body_last_line = 0;  ///< line of the matching '}'.
  std::vector<CallSite> calls;     ///< call sites inside the body, in order.
  std::vector<std::string> roots;  ///< rules from `// shep-lint: root(...)`
                                   ///< markers on the signature lines.
};

/// Extracts every named definition in `file` with its call sites, and
/// attaches the file's root markers to the definition whose signature
/// carries them (the line above the name through the body-open line, so
/// both marker-on-its-own-line and trailing-comment styles work).
/// Preprocessor directives (including `\` continuations) are skipped, so
/// macro bodies never masquerade as definitions.
std::vector<FunctionDef> ExtractFunctions(const SourceFile& file);

/// Resolves a quoted include of `from` to the repo-relative path of a
/// scanned file: layer-style ("fleet/aggregate.hpp" -> "src/fleet/..."),
/// local ("repro_common.hpp" -> sibling of `from`), or — for consumer
/// trees like tools/<tool>/test/ that add parent include dirs — a file in
/// an ancestor directory of `from` (never the repo root itself, so layer
/// headers cannot be reached by spelling out "src/...").  Empty when the
/// target is not part of the scanned tree.
std::string ResolveInclude(const std::map<std::string, SourceFile>& files,
                           const std::string& from,
                           const std::string& include);

/// The call graph of one translation unit: the root file plus everything
/// it transitively includes (quoted includes resolved within the scanned
/// tree).  Include cycles are tolerated (each file contributes once).
class CallGraph {
 public:
  static CallGraph Build(const std::map<std::string, SourceFile>& files,
                         const std::string& root_file);

  /// Every definition in the closure, grouped by file in closure order.
  const std::vector<FunctionDef>& functions() const { return defs_; }

  /// All definitions matching a call-site name: overloads, and same-name
  /// methods of unrelated classes, are all returned (conservative).
  std::vector<const FunctionDef*> Resolve(const std::string& name) const;

  /// Files that contributed definitions, in BFS include order (the root
  /// file first).
  const std::vector<std::string>& closure() const { return closure_; }

 private:
  std::vector<FunctionDef> defs_;
  std::multimap<std::string, std::size_t> by_name_;
  std::vector<std::string> closure_;
};

}  // namespace shep::lint
