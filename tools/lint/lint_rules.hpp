// lint_rules.hpp — the shep_lint rule catalogue.
//
// Three rule families guard the invariants the fleet subsystem's tests can
// only sample:
//
//  * layer-dag            — every `#include "<layer>/..."` edge must be in
//                           the (reflexive-transitive closure of the) layer
//                           DAG; tests/bench/examples are consumers and may
//                           include any layer, but unknown layers and
//                           unresolvable local includes still fail.
//  * determinism-*        — bit-identity at any thread count / shard
//                           grouping / process boundary is the fleet
//                           contract, so nondeterminism sources are banned
//                           in src/: C PRNGs and std::random_device
//                           (determinism-rand), wall-clock reads via
//                           system_clock (determinism-time; steady_clock is
//                           fine — it only feeds runtime metadata),
//                           environment reads (determinism-env), and
//                           unordered associative containers, whose
//                           iteration order is a hash-seed accident that
//                           must never feed an accumulator or a serialized
//                           stream (determinism-unordered).
//  * serialize-float      — Serialize()/Describe() bodies in src/ must
//                           write floating-point values through the shared
//                           serdes hexfloat helpers, never bare
//                           `operator<<`: default ostream formatting
//                           truncates to 6 significant digits, which
//                           silently breaks the bit-exact round trip the
//                           distributed merge depends on.
//
// plus two hygiene rules:
//
//  * nodiscard            — value-returning Parse*/Merge*/Deserialize*/
//                           Validate entry points declared in src/ headers
//                           must be [[nodiscard]]: discarding a parse or
//                           merge result is always a bug.
//  * suppression          — `// shep-lint: allow(<rule>)` waivers must name
//                           a real rule and carry a justification; this
//                           rule is itself unsuppressable.
//
// Any rule except `suppression` is waived on a line carrying
// `// shep-lint: allow(<rule>) <justification>`.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "include_graph.hpp"
#include "source_scan.hpp"

namespace shep::lint {

/// Where a file sits, which decides the rule set applied to it:
/// layer sources get every family; consumers (tests/bench/examples) only
/// the include checks — a test may legitimately use clocks or rand to
/// exercise error paths.
enum class FileCategory { kLayerSource, kConsumer };

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// All rule ids, for validating allow(...) names.
const std::vector<std::string>& RuleIds();

/// Result of linting a tree.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressions_honoured = 0;
};

/// Lints every *.hpp/*.cpp under root/{src,tests,bench,examples}.
/// `root` must exist; missing subdirectories are skipped (fixture trees
/// usually carry only src/).
LintReport LintTree(const std::filesystem::path& root);

/// One finding per line, gcc-style (`path:line: [rule] message`), or as
/// GitHub Actions workflow commands when `github` is set so CI failures
/// annotate the offending file:line in the diff view.
std::string FormatFindings(const LintReport& report, bool github);

}  // namespace shep::lint
