// lint_rules.hpp — the shep_lint rule catalogue.
//
// Three rule families guard the invariants the fleet subsystem's tests can
// only sample:
//
//  * layer-dag            — every `#include "<layer>/..."` edge must be in
//                           the (reflexive-transitive closure of the) layer
//                           DAG; tests/bench/examples are consumers and may
//                           include any layer, but unknown layers and
//                           unresolvable local includes still fail.
//  * determinism-*        — bit-identity at any thread count / shard
//                           grouping / process boundary is the fleet
//                           contract, so nondeterminism sources are banned
//                           in src/: C PRNGs and std::random_device
//                           (determinism-rand), wall-clock reads via
//                           system_clock (determinism-time; steady_clock is
//                           fine — it only feeds runtime metadata),
//                           environment reads (determinism-env), and
//                           unordered associative containers, whose
//                           iteration order is a hash-seed accident that
//                           must never feed an accumulator or a serialized
//                           stream (determinism-unordered).
//  * serialize-float      — Serialize()/Describe() bodies in src/ must
//                           write floating-point values through the shared
//                           serdes hexfloat helpers, never bare
//                           `operator<<`: default ostream formatting
//                           truncates to 6 significant digits, which
//                           silently breaks the bit-exact round trip the
//                           distributed merge depends on.
//
// three call-graph-aware reachability families (call_graph.hpp), seeded
// from `// shep-lint: root(<rule>)` markers on defining lines:
//
//  * hot-path-alloc       — nothing reachable from an annotated hot-path
//                           root (the kernel slot loop, the synthesis
//                           scratch paths, TraceRing::TryPush) may
//                           allocate (new/malloc, growable-container
//                           push_back/resize/reserve, std::string
//                           building) or construct a lock: the per-slot
//                           and per-sample loops are sized once and then
//                           touch only preallocated storage.
//  * signal-safety        — in a function marked root(signal-safety), the
//                           region between the fork() call and the last
//                           execv*/_exit may only call an async-signal-
//                           safe allowlist (dup2, close, execv, _exit,
//                           ...), transitively: the child of a
//                           multi-threaded parent runs with every other
//                           thread's locks frozen, so one malloc can
//                           deadlock it.
//  * blocking-in-rt       — nothing reachable from a root(blocking-in-rt)
//                           function (TryPush, the worker heartbeat loop)
//                           may take a mutex, wait on a condition
//                           variable, or do stdio/fstream file I/O; these
//                           paths run on latency-critical threads that
//                           must never park behind another thread.
//
// Reachability findings land on the offending line and carry the call
// chain (root -> ... -> violation) in both the message and
// Finding::chain, so a reviewer sees WHY a deep callee fires.
//
// plus two hygiene rules:
//
//  * nodiscard            — value-returning Parse*/Merge*/Deserialize*/
//                           Validate entry points declared in src/ headers
//                           must be [[nodiscard]]: discarding a parse or
//                           merge result is always a bug.
//  * suppression          — `// shep-lint: allow(<rule>)` waivers must name
//                           a real rule and carry a justification, and
//                           `root(<rule>)` markers must name a
//                           reachability rule and sit on a function
//                           definition; this rule is itself
//                           unsuppressable.
//
// Any rule except `suppression` is waived on a line carrying
// `// shep-lint: allow(<rule>) <justification>`.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "include_graph.hpp"
#include "source_scan.hpp"

namespace shep::lint {

/// Where a file sits, which decides the rule set applied to it:
/// layer sources get every family; consumers (tests/bench/examples) only
/// the include checks — a test may legitimately use clocks or rand to
/// exercise error paths.
enum class FileCategory { kLayerSource, kConsumer };

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// For reachability rules: the call chain root -> ... -> violating
  /// function, each hop as "Display (file:line)".  Empty for line rules.
  std::vector<std::string> chain;
};

/// All rule ids, for validating allow(...) names.
const std::vector<std::string>& RuleIds();

/// One catalogue entry, for `shep_lint --list-rules`.
struct RuleInfo {
  std::string id;
  std::string description;  ///< one line, matches the header comment above.
};

/// The full catalogue in stable order (line rules, reachability rules,
/// hygiene rules).
const std::vector<RuleInfo>& RuleCatalog();

/// Result of linting a tree.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressions_honoured = 0;
};

/// Lints every *.hpp/*.cpp under root/{src,tests,bench,examples,tools};
/// any `fixtures` directory under tools is skipped (shep_lint's own bad
/// fixtures must not lint the real tree red).  `root` must exist; missing
/// subdirectories are skipped (fixture trees usually carry only src/).
LintReport LintTree(const std::filesystem::path& root);

/// Every suppression in the tree, one line each
/// (`path:line: allow(rule) justification`), for `--list-waivers` audits.
/// Root markers are listed after the waivers.
std::string ListWaivers(const std::filesystem::path& root);

/// One finding per line, gcc-style (`path:line: [rule] message`, with
/// reachability chains indented underneath), or as GitHub Actions workflow
/// commands when `github` is set so CI failures annotate the offending
/// file:line in the diff view — the annotation title carries the chain's
/// first hop so the root contract that fired is visible in the summary.
std::string FormatFindings(const LintReport& report, bool github);

}  // namespace shep::lint
