// include_graph.hpp — the layer dependency DAG, as data.
//
// The README/ROADMAP diagram and the CMake target graph both describe the
// same strict per-layer DAG; this header makes that table machine-readable
// so shep_lint can enforce it on `#include` edges at build time instead of
// trusting the linker to notice.  The authoritative copy lives in
// ProjectDag() below AND in the committed tools/lint/layer_dag.txt; the
// lint test suite asserts the two are identical, so the table cannot drift
// from the file reviewers read.
//
// Allowed edges are the REFLEXIVE-TRANSITIVE closure of the direct-deps
// table: layer links are PUBLIC in CMake, so if core may use timeseries
// and timeseries may use common, core including a common header is fine —
// what the closure still forbids is any edge the diagram doesn't imply
// (solar → core, mgmt → hw, anything → fleet, ...).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "source_scan.hpp"

namespace shep::lint {

/// The per-layer dependency table.  `layers` preserves declaration order
/// (used by Describe so the text form is stable).
class LayerDag {
 public:
  /// Declares `layer` with its allowed DIRECT dependencies, which must
  /// already have been declared (this is what keeps the table acyclic by
  /// construction).  Throws std::invalid_argument otherwise.
  void AddLayer(const std::string& layer,
                const std::vector<std::string>& deps);

  bool Knows(const std::string& layer) const;

  /// True when a file in `from` may include a header of `to`:
  /// reflexive-transitive closure of the direct edges.
  bool Allows(const std::string& from, const std::string& to) const;

  const std::vector<std::string>& layers() const { return layers_; }
  const std::vector<std::string>& DirectDeps(const std::string& layer) const;

  /// Stable text form:
  ///   shep-layer-dag v1
  ///   layer <name> : <dep> <dep> ...
  ///   ...
  ///   end
  std::string Describe() const;

  /// Inverse of Describe; throws std::invalid_argument on malformed or
  /// forward-referencing input.
  static LayerDag Parse(const std::string& text);

  /// The shep source tree's DAG (mirrors CMakeLists.txt and the README
  /// diagram).
  static const LayerDag& Project();

 private:
  std::vector<std::string> layers_;
  std::map<std::string, std::vector<std::string>> direct_;
  /// Closure cache: reachable[layer] = every layer it may depend on,
  /// including itself.
  std::map<std::string, std::vector<std::string>> reachable_;
};

/// A quoted `#include "..."` directive.
struct IncludeRef {
  std::size_t line = 0;  ///< 1-based.
  std::string path;      ///< the text between the quotes.
};

/// Extracts the quoted includes of a scanned file (angle includes are
/// system headers and carry no layer information).
std::vector<IncludeRef> ExtractIncludes(const SourceFile& file);

/// Maps a repo-relative path to its layer: "src/<layer>/..." -> <layer>;
/// anything else (tests/, bench/, examples/, tools/) has no layer.
std::optional<std::string> LayerOfPath(const std::string& repo_relative);

}  // namespace shep::lint
