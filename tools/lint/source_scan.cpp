#include "source_scan.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace shep::lint {

namespace {

/// Lexer state that survives a newline.  Strings and character literals
/// cannot span lines in standard C++ (unescaped newline terminates them),
/// so only block comments and raw strings carry over.
struct CarryState {
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_delimiter;  ///< the ")delim" that ends the raw string.
};

/// Blanks the non-code spans of `raw` in place on a copy: comment bodies,
/// string/char literal contents (the quotes themselves survive so code
/// still "shapes" right), and raw-string bodies become spaces.
std::string StripLine(const std::string& raw, CarryState& st) {
  std::string out(raw.size(), ' ');
  std::size_t i = 0;
  const std::size_t n = raw.size();
  while (i < n) {
    if (st.in_block_comment) {
      if (raw[i] == '*' && i + 1 < n && raw[i + 1] == '/') {
        st.in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (st.in_raw_string) {
      const std::size_t end = raw.find(st.raw_delimiter, i);
      if (end == std::string::npos) {
        i = n;
      } else {
        i = end + st.raw_delimiter.size();
        st.in_raw_string = false;
        if (i <= n) out[i - 1] = '"';
      }
      continue;
    }
    const char c = raw[i];
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') break;  // line comment.
    if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      st.in_block_comment = true;
      i += 2;
      continue;
    }
    // Raw string: R"delim( ... )delim", with an optional encoding prefix
    // handled by the fact that R immediately precedes the quote.
    if (c == 'R' && i + 1 < n && raw[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(raw[i - 1])) &&
                    raw[i - 1] != '_'))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && raw[j] != '(' && delim.size() <= 16) {
        delim += raw[j];
        ++j;
      }
      if (j < n && raw[j] == '(') {
        out[i] = 'R';
        out[i + 1] = '"';
        st.raw_delimiter = ")" + delim + "\"";
        const std::size_t end = raw.find(st.raw_delimiter, j + 1);
        if (end == std::string::npos) {
          st.in_raw_string = true;
          i = n;
        } else {
          i = end + st.raw_delimiter.size();
          out[i - 1] = '"';
        }
        continue;
      }
      // Not actually a raw string ("R" followed by a normal literal):
      // fall through and let the '"' branch below handle the literal.
      out[i] = c;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      out[i] = c;
      ++i;
      while (i < n) {
        if (raw[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (raw[i] == c) {
          out[i] = c;
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses `// shep-lint: allow(<rule>) <justification>` and
/// `// shep-lint: root(<rule>)...` out of the raw line.  The marker must
/// live in a genuine `//` comment — one whose `//` the stripper blanked
/// out of `code` — so a string literal containing the marker text can
/// never waive anything, and it must be the comment's first token, so
/// prose that merely quotes the syntax stays prose.
void ParseSuppressions(const std::string& raw, const std::string& code,
                       std::size_t line_number,
                       std::vector<Suppression>& out,
                       std::vector<RootMark>& roots) {
  // Locate the line comment: "//" present in raw but blanked in code, with
  // nothing but blanks after it — a "//" inside a string literal is also
  // blanked, but real code (the closing quote's statement) follows it.
  std::size_t comment = std::string::npos;
  for (std::size_t p = 0; p + 1 < raw.size(); ++p) {
    if (raw[p] == '/' && raw[p + 1] == '/' && p < code.size() &&
        code[p] == ' ' && code.find_first_not_of(' ', p) == std::string::npos) {
      comment = p;
      break;
    }
  }
  if (comment == std::string::npos) return;
  static constexpr std::string_view kMarker = "shep-lint:";
  std::string_view rest = std::string_view(raw).substr(comment + 2);
  rest = TrimView(rest);
  if (rest.substr(0, kMarker.size()) != kMarker) return;
  rest = TrimView(rest.substr(kMarker.size()));
  static constexpr std::string_view kAllow = "allow(";
  static constexpr std::string_view kRoot = "root(";
  for (;;) {
    if (rest.substr(0, kAllow.size()) == kAllow) {
      rest.remove_prefix(kAllow.size());
      const std::size_t close = rest.find(')');
      if (close == std::string::npos) return;
      Suppression s;
      s.line = line_number;
      s.rule = std::string(TrimView(rest.substr(0, close)));
      s.justification = std::string(TrimView(rest.substr(close + 1)));
      // A leading "--" or ":" separator before the justification is
      // cosmetic; strip it so emptiness checks see the real text.
      while (!s.justification.empty() &&
             (s.justification.front() == '-' ||
              s.justification.front() == ':')) {
        s.justification.erase(s.justification.begin());
      }
      s.justification = std::string(TrimView(s.justification));
      out.push_back(std::move(s));
      return;  // the justification consumes the rest of the comment.
    }
    if (rest.substr(0, kRoot.size()) == kRoot) {
      rest.remove_prefix(kRoot.size());
      const std::size_t close = rest.find(')');
      if (close == std::string::npos) return;
      RootMark mark;
      mark.line = line_number;
      mark.rule = std::string(TrimView(rest.substr(0, close)));
      roots.push_back(std::move(mark));
      rest = TrimView(rest.substr(close + 1));
      continue;  // `root(a) root(b)` groups may share one comment.
    }
    return;
  }
}

}  // namespace

std::vector<const Suppression*> SourceFile::SuppressionsOn(
    std::size_t line) const {
  std::vector<const Suppression*> on;
  for (const Suppression& s : suppressions) {
    if (s.line == line) on.push_back(&s);
  }
  return on;
}

SourceFile ScanSource(std::string_view content, std::string path) {
  SourceFile file;
  file.path = std::move(path);
  CarryState st;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string raw(content.substr(start, end - start));
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    file.code.push_back(StripLine(raw, st));
    ParseSuppressions(raw, file.code.back(), file.raw.size() + 1,
                      file.suppressions, file.roots);
    file.raw.push_back(std::move(raw));
    if (end == content.size()) break;
    start = end + 1;
  }
  return file;
}

SourceFile LoadSource(const std::filesystem::path& file,
                      std::string report_path) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("shep_lint: cannot read " + file.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ScanSource(buffer.str(), std::move(report_path));
}

}  // namespace shep::lint
