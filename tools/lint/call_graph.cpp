#include "call_graph.hpp"

#include <algorithm>
#include <cctype>
#include <set>

#include "include_graph.hpp"

namespace shep::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Names that look like calls or definitions lexically but never are:
/// control-flow keywords, expression keywords, decl specifiers that take a
/// parenthesized operand, and fundamental types (paren-init `double(x)`).
const std::set<std::string>& NeverAFunction() {
  static const std::set<std::string> kSet = {
      "if",        "for",      "while",     "switch",   "catch",
      "return",    "sizeof",   "alignof",   "alignas",  "decltype",
      "noexcept",  "throw",    "new",       "delete",   "else",
      "do",        "case",     "goto",      "co_await", "co_return",
      "co_yield",  "requires", "constexpr", "consteval", "constinit",
      "static_assert", "defined", "operator", "assert",
      "void",      "bool",     "char",      "short",    "int",
      "long",      "float",    "double",    "signed",   "unsigned",
      "auto",
  };
  return kSet;
}

/// Words that, when they precede a candidate name, mark it as part of an
/// expression or statement rather than a definition's return type.
const std::set<std::string>& NotAReturnTypeBefore() {
  static const std::set<std::string> kSet = {
      "return", "throw", "else",     "case",     "goto", "new",
      "delete", "if",    "while",    "for",      "switch", "do",
      "co_return", "co_yield", "co_await",
  };
  return kSet;
}

/// Characters that may legitimately precede a DEFINITION's name: statement
/// boundaries, closing template/attribute brackets, pointer/reference
/// declarators.  Anything else (`.`/`->` member access, `(`/`,` argument
/// position, operators, a single `:` opening a constructor init list)
/// marks the candidate as a call or init-list entry.
bool MayPrecedeDefinition(char c) {
  return c == ';' || c == '}' || c == '{' || c == '>' || c == ']' ||
         c == '&' || c == '*' || IsIdentChar(c);
}

/// Blanks preprocessor directive lines (and their `\` continuations) so
/// `#define` bodies are neither definitions nor call sites.
std::string BlankDirectives(const SourceFile& file, const JoinedCode& joined) {
  std::string text = joined.text;
  bool continued = false;
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const std::size_t first = line.find_first_not_of(" \t");
    const bool directive =
        continued || (first != std::string::npos && line[first] == '#');
    if (directive) {
      const std::size_t begin = joined.line_start[i];
      for (std::size_t p = 0; p < line.size(); ++p) text[begin + p] = ' ';
      continued = !line.empty() && line.back() == '\\';
    } else {
      continued = false;
    }
  }
  return text;
}

/// Advances past a balanced (...) group; `pos` must sit on the '('.
/// Returns false when the group never closes.
bool SkipBalancedParens(const std::string& text, std::size_t& pos) {
  int depth = 0;
  while (pos < text.size()) {
    if (text[pos] == '(') ++depth;
    if (text[pos] == ')') --depth;
    ++pos;
    if (depth == 0) return true;
  }
  return false;
}

bool SkipBalancedBraces(const std::string& text, std::size_t& pos) {
  int depth = 0;
  while (pos < text.size()) {
    if (text[pos] == '{') ++depth;
    if (text[pos] == '}') --depth;
    ++pos;
    if (depth == 0) return true;
  }
  return false;
}

void SkipWhitespace(const std::string& text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

/// Parses a constructor init list starting at the ':' and leaves `pos` on
/// the body's '{'.  Entries are `name(...)` or `name{...}` separated by
/// commas.  Returns false when the text does not parse as an init list
/// ending in a body.
bool SkipInitList(const std::string& text, std::size_t& pos) {
  ++pos;  // past the ':'.
  for (;;) {
    SkipWhitespace(text, pos);
    // Entry name (possibly qualified or templated: Base<T>::Base).
    const std::size_t name_begin = pos;
    while (pos < text.size() &&
           (IsIdentChar(text[pos]) || text[pos] == ':' || text[pos] == '<' ||
            text[pos] == '>' || text[pos] == ',' ||
            std::isspace(static_cast<unsigned char>(text[pos])))) {
      // A ',' inside <...> belongs to template args; outside it separates
      // entries — but an entry must have had its (...)/{...} first, so a
      // bare ',' here only appears inside template brackets.  Track depth.
      if (text[pos] == ',') {
        // Only legal inside template brackets; check depth by rescanning
        // is overkill — accept and let the paren check below decide.
      }
      ++pos;
    }
    if (pos >= text.size() || pos == name_begin) return false;
    if (text[pos] == '(') {
      if (!SkipBalancedParens(text, pos)) return false;
    } else if (text[pos] == '{') {
      if (!SkipBalancedBraces(text, pos)) return false;
    } else {
      return false;
    }
    SkipWhitespace(text, pos);
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      continue;
    }
    return pos < text.size() && text[pos] == '{';
  }
}

/// From just past the parameter list's ')', walks the qualifier region
/// (const, noexcept(...), override, trailing return, init list) and leaves
/// `pos` on the body's '{'.  Returns false for declarations (`;`),
/// deleted/defaulted definitions (`=`), and anything unparseable.
bool FindBodyOpen(const std::string& text, std::size_t& pos) {
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '{') return true;
    if (c == ';' || c == '=') return false;
    if (c == ':') {
      if (pos + 1 < text.size() && text[pos + 1] == ':') {
        pos += 2;  // `::` inside a trailing return type.
        continue;
      }
      return SkipInitList(text, pos);
    }
    if (c == '(') {  // noexcept(...), attribute arguments.
      if (!SkipBalancedParens(text, pos)) return false;
      continue;
    }
    if (c == '-') {
      if (pos + 1 < text.size() && text[pos + 1] == '>') {
        pos += 2;  // trailing return type arrow.
        continue;
      }
      return false;
    }
    if (IsIdentChar(c) || c == '&' || c == '*' || c == '<' || c == '>' ||
        c == ',' || c == '[' || c == ']' ||
        std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    return false;
  }
  return false;
}

/// Reads the (possibly qualified) name ending just before `paren_pos`'s
/// preceding non-space character run.  Returns the byte offset where the
/// name starts, or npos when there is no name.
std::size_t NameBegin(const std::string& text, std::size_t name_end) {
  std::size_t begin = name_end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  if (begin == name_end) return std::string::npos;
  // Pull in `Qualified::` prefixes and a destructor '~'.
  for (;;) {
    if (begin > 0 && text[begin - 1] == '~') {
      --begin;
      continue;
    }
    if (begin >= 2 && text[begin - 1] == ':' && text[begin - 2] == ':') {
      std::size_t q = begin - 2;
      while (q > 0 && IsIdentChar(text[q - 1])) --q;
      if (q == begin - 2) break;  // bare `::fork` — keep the short name.
      begin = q;
      continue;
    }
    break;
  }
  return begin;
}

std::string LastComponent(const std::string& qualified) {
  const std::size_t sep = qualified.rfind("::");
  std::string last =
      sep == std::string::npos ? qualified : qualified.substr(sep + 2);
  if (!last.empty() && last.front() == '~') last.erase(last.begin());
  return last;
}

/// The word immediately before `pos` (skipping whitespace), empty if the
/// preceding token is not a word.
std::string PrecedingWord(const std::string& text, std::size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  std::size_t end = pos;
  while (pos > 0 && IsIdentChar(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

}  // namespace

JoinedCode JoinedCode::From(const SourceFile& file) {
  JoinedCode joined;
  for (const std::string& line : file.code) {
    joined.line_start.push_back(joined.text.size());
    joined.text += line;
    joined.text += '\n';
  }
  return joined;
}

std::size_t JoinedCode::LineOf(std::size_t pos) const {
  const auto it = std::upper_bound(line_start.begin(), line_start.end(), pos);
  return static_cast<std::size_t>(it - line_start.begin());
}

std::vector<FunctionDef> ExtractFunctions(const SourceFile& file) {
  const JoinedCode joined = JoinedCode::From(file);
  const std::string text = BlankDirectives(file, joined);
  std::vector<FunctionDef> defs;

  // Pass 1: definitions.  Candidate = identifier chain directly before a
  // '(' whose parameter list is followed (through the qualifier region) by
  // a body '{'.
  for (std::size_t paren = text.find('('); paren != std::string::npos;
       paren = text.find('(', paren + 1)) {
    std::size_t name_end = paren;
    while (name_end > 0 &&
           std::isspace(static_cast<unsigned char>(text[name_end - 1]))) {
      --name_end;
    }
    const std::size_t name_begin = NameBegin(text, name_end);
    if (name_begin == std::string::npos) continue;
    const std::string qualified = text.substr(name_begin, name_end - name_begin);
    const std::string last = LastComponent(qualified);
    if (last.empty() || NeverAFunction().count(last)) continue;
    if (name_begin > 0) {
      std::size_t before = name_begin;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(text[before - 1]))) {
        --before;
      }
      if (before > 0) {
        const char c = text[before - 1];
        if (!MayPrecedeDefinition(c)) continue;
        if (IsIdentChar(c) &&
            NotAReturnTypeBefore().count(PrecedingWord(text, name_begin))) {
          continue;
        }
      }
    }
    std::size_t pos = paren;
    if (!SkipBalancedParens(text, pos)) continue;
    if (!FindBodyOpen(text, pos)) continue;
    const std::size_t body_open = pos;
    std::size_t body_end = pos;
    SkipBalancedBraces(text, body_end);  // EOF-tolerant: take what closes.

    FunctionDef def;
    def.file = file.path;
    def.display = qualified;
    def.name = last;
    def.line = joined.LineOf(name_begin);
    def.body_open_line = joined.LineOf(body_open);
    def.body_last_line = joined.LineOf(body_end == 0 ? 0 : body_end - 1);

    // Pass 2 (per def): call sites inside the body.
    for (std::size_t p = text.find('(', body_open);
         p != std::string::npos && p < body_end; p = text.find('(', p + 1)) {
      std::size_t call_end = p;
      while (call_end > 0 &&
             std::isspace(static_cast<unsigned char>(text[call_end - 1]))) {
        --call_end;
      }
      const std::size_t call_begin = NameBegin(text, call_end);
      if (call_begin == std::string::npos) continue;
      const std::string callee =
          LastComponent(text.substr(call_begin, call_end - call_begin));
      if (callee.empty() || NeverAFunction().count(callee)) continue;
      def.calls.push_back({joined.LineOf(call_begin), call_begin, callee});
    }
    defs.push_back(std::move(def));
  }

  // Root markers attach to the definition whose signature region carries
  // them: the line above the name (marker-on-its-own-line style, like
  // [[nodiscard]]) through the body-open line (trailing-comment style).
  for (const RootMark& mark : file.roots) {
    for (FunctionDef& def : defs) {
      if (mark.line + 1 >= def.line && mark.line <= def.body_open_line) {
        def.roots.push_back(mark.rule);
      }
    }
  }
  return defs;
}

std::string ResolveInclude(const std::map<std::string, SourceFile>& files,
                           const std::string& from,
                           const std::string& include) {
  const std::string as_src = "src/" + include;
  if (files.count(as_src)) return as_src;
  std::string dir = from;
  const std::size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? std::string() : dir.substr(0, slash);
  // The includer's own directory, then each ancestor down to (but never
  // including) the repo root: tools/<tool>/test/ files include headers
  // from tools/<tool>/ via the target's include dirs.
  while (!dir.empty()) {
    const std::string candidate = dir + "/" + include;
    if (files.count(candidate)) return candidate;
    const std::size_t up = dir.rfind('/');
    if (up == std::string::npos) break;
    dir = dir.substr(0, up);
  }
  return {};
}

CallGraph CallGraph::Build(const std::map<std::string, SourceFile>& files,
                           const std::string& root_file) {
  CallGraph graph;
  std::set<std::string> visited;
  std::vector<std::string> frontier = {root_file};
  while (!frontier.empty()) {
    const std::string rel = frontier.front();
    frontier.erase(frontier.begin());
    if (!visited.insert(rel).second) continue;
    const auto it = files.find(rel);
    if (it == files.end()) continue;
    graph.closure_.push_back(rel);
    for (FunctionDef& def : ExtractFunctions(it->second)) {
      graph.by_name_.emplace(def.name, graph.defs_.size());
      graph.defs_.push_back(std::move(def));
    }
    for (const IncludeRef& inc : ExtractIncludes(it->second)) {
      const std::string target = ResolveInclude(files, rel, inc.path);
      if (!target.empty() && !visited.count(target)) {
        frontier.push_back(target);
      }
    }
  }
  return graph;
}

std::vector<const FunctionDef*> CallGraph::Resolve(
    const std::string& name) const {
  std::vector<const FunctionDef*> out;
  const auto [begin, end] = by_name_.equal_range(name);
  for (auto it = begin; it != end; ++it) {
    out.push_back(&defs_[it->second]);
  }
  return out;
}

}  // namespace shep::lint
