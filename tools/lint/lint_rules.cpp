#include "lint_rules.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace shep::lint {

namespace {

namespace fs = std::filesystem;

const char* kRuleLayerDag = "layer-dag";
const char* kRuleRand = "determinism-rand";
const char* kRuleTime = "determinism-time";
const char* kRuleEnv = "determinism-env";
const char* kRuleUnordered = "determinism-unordered";
const char* kRuleSerializeFloat = "serialize-float";
const char* kRuleNodiscard = "nodiscard";
const char* kRuleSuppression = "suppression";

/// A finding before suppression processing.
struct Candidate {
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Everything the per-file rules need to see beyond their own file.
struct TreeContext {
  fs::path root;
  const LayerDag* dag = nullptr;
  /// All scanned files keyed by repo-relative path ("src/fleet/runner.cpp").
  std::map<std::string, SourceFile> files;
  /// Memoized float-identifier sets (see FloatIdents).
  std::map<std::string, std::set<std::string>> float_idents;
};

std::string DirName(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Resolves a quoted include of `from` to the repo-relative path of a
/// scanned file: layer-style ("fleet/aggregate.hpp" -> src/fleet/...) or
/// local ("repro_common.hpp" -> sibling of `from`).  Empty when the target
/// is not part of the scanned tree.
std::string ResolveInclude(const TreeContext& ctx, const std::string& from,
                           const std::string& include) {
  const std::string as_src = "src/" + include;
  if (ctx.files.count(as_src)) return as_src;
  const std::string dir = DirName(from);
  const std::string local = dir.empty() ? include : dir + "/" + include;
  if (ctx.files.count(local)) return local;
  return {};
}

/// Identifiers declared `double`/`float` in `rel` or anything it
/// transitively includes.  This is the set the serialize-float rule treats
/// as "floating-point valued": members like WelfordMoments::mean live in a
/// header two includes away from the Serialize body that streams them, so
/// the collection must follow the include graph.
const std::set<std::string>& FloatIdents(TreeContext& ctx,
                                         const std::string& rel,
                                         std::set<std::string>& visiting) {
  const auto memo = ctx.float_idents.find(rel);
  if (memo != ctx.float_idents.end()) return memo->second;
  static const std::set<std::string> kEmpty;
  if (visiting.count(rel)) return kEmpty;  // include cycle guard.
  visiting.insert(rel);

  static const std::regex kDecl(R"(\b(?:double|float)\s+([A-Za-z_]\w*))");
  std::set<std::string> idents;
  const SourceFile& file = ctx.files.at(rel);
  for (const std::string& line : file.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      idents.insert((*it)[1].str());
    }
  }
  for (const IncludeRef& inc : ExtractIncludes(file)) {
    const std::string target = ResolveInclude(ctx, rel, inc.path);
    if (!target.empty()) {
      const std::set<std::string>& sub = FloatIdents(ctx, target, visiting);
      idents.insert(sub.begin(), sub.end());
    }
  }
  visiting.erase(rel);
  return ctx.float_idents.emplace(rel, std::move(idents)).first->second;
}

// ---------------------------------------------------------------------------
// layer-dag
// ---------------------------------------------------------------------------

void CheckLayerDag(const TreeContext& ctx, const SourceFile& file,
                   FileCategory category, std::vector<Candidate>& out) {
  const std::optional<std::string> layer = LayerOfPath(file.path);
  if (category == FileCategory::kLayerSource && !layer) {
    out.push_back({1, kRuleLayerDag,
                   "file sits under src/ but not in a layer directory"});
    return;
  }
  if (layer && !ctx.dag->Knows(*layer)) {
    out.push_back({1, kRuleLayerDag,
                   "layer `" + *layer +
                       "` is not in the layer DAG table "
                       "(tools/lint/layer_dag.txt)"});
    return;
  }
  for (const IncludeRef& inc : ExtractIncludes(file)) {
    const std::size_t slash = inc.path.find('/');
    const std::string first =
        slash == std::string::npos ? std::string() : inc.path.substr(0, slash);
    if (!first.empty() && ctx.dag->Knows(first)) {
      if (layer && !ctx.dag->Allows(*layer, first)) {
        out.push_back(
            {inc.line, kRuleLayerDag,
             "layer `" + *layer + "` must not include `" + inc.path +
                 "`: edge " + *layer + " -> " + first +
                 " is not in the layer DAG"});
      }
      continue;
    }
    // Not a layer path: the include must resolve next to the including
    // file (bench/repro_common.hpp style), otherwise it is a typo or an
    // attempt to bypass the layer tree with a relative path.
    const std::string dir = DirName(file.path);
    const fs::path local =
        ctx.root / (dir.empty() ? inc.path : dir + "/" + inc.path);
    std::error_code ec;
    if (!fs::exists(local, ec)) {
      out.push_back({inc.line, kRuleLayerDag,
                     "include `" + inc.path +
                         "` is neither a `<layer>/...` path nor a file next "
                         "to the including one"});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-*
// ---------------------------------------------------------------------------

void CheckDeterminism(const SourceFile& file, std::vector<Candidate>& out) {
  static const std::regex kRand(R"(\b(s?rand|rand_r|drand48)\s*\()");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kSystemClock(R"(\bsystem_clock\b)");
  static const std::regex kGetenv(R"(\b(secure_)?getenv\b)");
  static const std::regex kUnordered(
      R"(\bunordered_(map|set|multimap|multiset)\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (std::regex_search(line, kRand) ||
        std::regex_search(line, kRandomDevice)) {
      out.push_back({i + 1, kRuleRand,
                     "C PRNG / std::random_device is nondeterministic across "
                     "runs; draw from common/Rng (its sequence is part of "
                     "the fleet bit-identity contract)"});
    }
    if (std::regex_search(line, kSystemClock)) {
      out.push_back({i + 1, kRuleTime,
                     "wall-clock reads make results time-dependent; use "
                     "steady_clock for durations (metadata only) or thread "
                     "time in explicitly"});
    }
    if (std::regex_search(line, kGetenv)) {
      out.push_back({i + 1, kRuleEnv,
                     "environment reads make behaviour host-dependent; "
                     "thread configuration through explicit parameters"});
    }
    if (std::regex_search(line, kUnordered)) {
      out.push_back({i + 1, kRuleUnordered,
                     "unordered container iteration order is a hash-seed "
                     "accident; folding it into an accumulator or stream "
                     "breaks bit-identity — use std::map/std::vector or "
                     "iterate a sorted key list"});
    }
  }
}

// ---------------------------------------------------------------------------
// serialize-float
// ---------------------------------------------------------------------------

/// Byte offsets of each stripped line inside the joined text, so regex
/// positions convert back to 1-based line numbers.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_start;

  std::size_t LineOf(std::size_t pos) const {
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), pos);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

JoinedCode JoinCode(const SourceFile& file) {
  JoinedCode joined;
  for (const std::string& line : file.code) {
    joined.line_start.push_back(joined.text.size());
    joined.text += line;
    joined.text += '\n';
  }
  return joined;
}

/// Returns [begin, end) byte ranges of the bodies of functions named
/// Serialize or Describe (definitions only — a trailing `;` after the
/// parameter list means a declaration).
std::vector<std::pair<std::size_t, std::size_t>> SerializeBodies(
    const JoinedCode& joined) {
  static const std::regex kName(R"(\b(Serialize|Describe)\s*\()");
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  const std::string& text = joined.text;
  for (std::sregex_iterator it(text.begin(), text.end(), kName), end;
       it != end; ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int paren = 1;  // we are just past the '('.
    while (pos < text.size() && paren > 0) {
      if (text[pos] == '(') ++paren;
      if (text[pos] == ')') --paren;
      ++pos;
    }
    // Skip cv-qualifiers etc. between the signature and the body.
    while (pos < text.size() && text[pos] != '{' && text[pos] != ';' &&
           text[pos] != '(') {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '{') continue;  // declaration.
    const std::size_t body_begin = pos + 1;
    int brace = 1;
    ++pos;
    while (pos < text.size() && brace > 0) {
      if (text[pos] == '{') ++brace;
      if (text[pos] == '}') --brace;
      ++pos;
    }
    bodies.emplace_back(body_begin, pos);
  }
  return bodies;
}

void CheckSerializeFloat(TreeContext& ctx, const SourceFile& file,
                         std::vector<Candidate>& out) {
  const JoinedCode joined = JoinCode(file);
  const auto bodies = SerializeBodies(joined);
  if (bodies.empty()) return;
  std::set<std::string> visiting;
  const std::set<std::string>& floats = FloatIdents(ctx, file.path, visiting);

  // `<< 1.5`, `<< .5f`, `<< 2e-3` — a literal double streamed bare.
  static const std::regex kFloatLiteral(
      R"(<<\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)[fFlL]?)");
  // `<< mean`, `<< other.m2`, `<< range->lo_` — take the chain's last
  // member and test it against the float-identifier set.
  static const std::regex kIdentChain(
      R"(<<\s*([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*))");

  for (const auto& [begin, end] : bodies) {
    const std::string body = joined.text.substr(begin, end - begin);
    for (std::sregex_iterator it(body.begin(), body.end(), kFloatLiteral),
         last;
         it != last; ++it) {
      out.push_back(
          {joined.LineOf(begin + static_cast<std::size_t>(it->position())),
           kRuleSerializeFloat,
           "floating-point literal streamed bare inside a "
           "Serialize/Describe body; write it through serdes::WriteDouble "
           "(hexfloat) so the round trip stays bit-exact"});
    }
    for (std::sregex_iterator it(body.begin(), body.end(), kIdentChain), last;
         it != last; ++it) {
      const std::string chain = (*it)[1].str();
      std::size_t cut = chain.rfind("->");
      const std::size_t dot = chain.rfind('.');
      if (cut == std::string::npos ||
          (dot != std::string::npos && dot > cut)) {
        cut = dot;
      }
      const std::string leaf =
          cut == std::string::npos ? chain : chain.substr(cut + (chain[cut] == '-' ? 2 : 1));
      if (floats.count(leaf)) {
        out.push_back(
            {joined.LineOf(begin + static_cast<std::size_t>(it->position())),
             kRuleSerializeFloat,
             "`" + chain +
                 "` is floating-point and streamed bare inside a "
                 "Serialize/Describe body; default ostream formatting "
                 "truncates doubles — use serdes::WriteDouble"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nodiscard
// ---------------------------------------------------------------------------

bool IsHeader(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

void CheckNodiscard(const SourceFile& file, std::vector<Candidate>& out) {
  if (!IsHeader(file.path)) return;
  static const std::regex kEntryPoint(
      R"((^|[\s&*>])((?:Parse|Merge|Deserialize)\w*|Validate)\s*\()");
  static const std::set<std::string> kNotATypeWord = {
      "return", "co_return", "case", "goto", "new", "delete", "throw"};
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    std::smatch m;
    if (!std::regex_search(line, m, kEntryPoint)) continue;
    // The text before the name must look like a declaration's return type:
    // type-ish characters only, non-empty, not `void`, and not an
    // expression keyword — otherwise this is a call, not a declaration.
    std::string prefix = line.substr(0, static_cast<std::size_t>(m.position(2)));
    if (prefix.find_first_not_of(
            " \t[]&*<>,:abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") != std::string::npos) {
      continue;
    }
    std::istringstream words(prefix);
    std::string word, last;
    bool has_type = false;
    while (words >> word) {
      last = word;
      if (word != "static" && word != "inline" && word != "constexpr" &&
          word != "friend" && word != "virtual" && word != "explicit") {
        has_type = true;
      }
    }
    if (!has_type || kNotATypeWord.count(last)) continue;
    if (prefix.find("void") != std::string::npos &&
        prefix.find("void*") == std::string::npos) {
      continue;  // throw-based Validate() style: nothing to discard.
    }
    const bool marked =
        line.find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && file.code[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!marked) {
      out.push_back({i + 1, kRuleNodiscard,
                     "`" + m[2].str() +
                         "` returns a value that is always a bug to ignore "
                         "(parse/validate/merge entry point); declare it "
                         "[[nodiscard]]"});
    }
  }
}

// ---------------------------------------------------------------------------
// suppression processing
// ---------------------------------------------------------------------------

void ApplySuppressions(const SourceFile& file,
                       std::vector<Candidate>& candidates, LintReport& report) {
  const std::vector<std::string>& rules = RuleIds();
  std::set<const Suppression*> used;
  std::vector<Candidate> kept;
  for (Candidate& c : candidates) {
    bool suppressed = false;
    for (const Suppression* s : file.SuppressionsOn(c.line)) {
      if (s->rule == c.rule && c.rule != kRuleSuppression &&
          !s->justification.empty()) {
        used.insert(s);
        suppressed = true;
      }
    }
    if (suppressed) {
      ++report.suppressions_honoured;
    } else {
      kept.push_back(std::move(c));
    }
  }
  for (const Suppression& s : file.suppressions) {
    if (std::find(rules.begin(), rules.end(), s.rule) == rules.end()) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule + ") names no shep_lint rule"});
      continue;
    }
    if (s.justification.empty()) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule +
                          ") needs a one-line justification after the "
                          "closing paren — a waiver documents WHY the "
                          "hazard is safe here"});
      continue;
    }
    if (!used.count(&s)) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule +
                          ") waives nothing on this line; delete the stale "
                          "suppression"});
    }
  }
  for (Candidate& c : kept) {
    report.findings.push_back(
        {file.path, c.line, std::move(c.rule), std::move(c.message)});
  }
}

}  // namespace

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string> kIds = {
      kRuleLayerDag,  kRuleRand,      kRuleTime,      kRuleEnv,
      kRuleUnordered, kRuleSerializeFloat, kRuleNodiscard, kRuleSuppression};
  return kIds;
}

LintReport LintTree(const std::filesystem::path& root) {
  TreeContext ctx;
  ctx.root = root;
  ctx.dag = &LayerDag::Project();

  static const std::vector<std::string> kDirs = {"src", "tests", "bench",
                                                 "examples"};
  static const std::set<std::string> kExtensions = {".hpp", ".h", ".cpp",
                                                    ".cc"};
  for (const std::string& dir : kDirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base), end; it != end; ++it) {
      if (!it->is_regular_file()) continue;
      if (!kExtensions.count(it->path().extension().string())) continue;
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      ctx.files.emplace(rel, LoadSource(it->path(), rel));
    }
  }

  LintReport report;
  report.files_scanned = ctx.files.size();
  for (auto& [rel, file] : ctx.files) {
    const FileCategory category = rel.rfind("src/", 0) == 0
                                      ? FileCategory::kLayerSource
                                      : FileCategory::kConsumer;
    std::vector<Candidate> candidates;
    CheckLayerDag(ctx, file, category, candidates);
    if (category == FileCategory::kLayerSource) {
      CheckDeterminism(file, candidates);
      CheckSerializeFloat(ctx, file, candidates);
      CheckNodiscard(file, candidates);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    ApplySuppressions(file, candidates, report);
  }
  return report;
}

std::string FormatFindings(const LintReport& report, bool github) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    if (github) {
      os << "::error file=" << f.file << ",line=" << f.line
         << ",title=shep_lint " << f.rule << "::" << f.message << '\n';
    } else {
      os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
         << '\n';
    }
  }
  return os.str();
}

}  // namespace shep::lint
