#include "lint_rules.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "call_graph.hpp"

namespace shep::lint {

namespace {

namespace fs = std::filesystem;

const char* kRuleLayerDag = "layer-dag";
const char* kRuleRand = "determinism-rand";
const char* kRuleTime = "determinism-time";
const char* kRuleEnv = "determinism-env";
const char* kRuleUnordered = "determinism-unordered";
const char* kRuleSerializeFloat = "serialize-float";
const char* kRuleHotPathAlloc = "hot-path-alloc";
const char* kRuleSignalSafety = "signal-safety";
const char* kRuleBlockingInRt = "blocking-in-rt";
const char* kRuleNodiscard = "nodiscard";
const char* kRuleSuppression = "suppression";

/// The rules a `root(<rule>)` marker may seed.
const std::set<std::string>& ReachabilityRules() {
  static const std::set<std::string> kSet = {
      kRuleHotPathAlloc, kRuleSignalSafety, kRuleBlockingInRt};
  return kSet;
}

/// A finding before suppression processing.
struct Candidate {
  Candidate() = default;
  Candidate(std::size_t l, std::string r, std::string m,
            std::vector<std::string> c = {})
      : line(l), rule(std::move(r)), message(std::move(m)),
        chain(std::move(c)) {}

  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::vector<std::string> chain;  ///< reachability rules only.
};

/// Everything the per-file rules need to see beyond their own file.
struct TreeContext {
  fs::path root;
  const LayerDag* dag = nullptr;
  /// All scanned files keyed by repo-relative path ("src/fleet/runner.cpp").
  std::map<std::string, SourceFile> files;
  /// Memoized float-identifier sets (see FloatIdents).
  std::map<std::string, std::set<std::string>> float_idents;
};

std::string DirName(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Identifiers declared `double`/`float` in `rel` or anything it
/// transitively includes.  This is the set the serialize-float rule treats
/// as "floating-point valued": members like WelfordMoments::mean live in a
/// header two includes away from the Serialize body that streams them, so
/// the collection must follow the include graph.
const std::set<std::string>& FloatIdents(TreeContext& ctx,
                                         const std::string& rel,
                                         std::set<std::string>& visiting) {
  const auto memo = ctx.float_idents.find(rel);
  if (memo != ctx.float_idents.end()) return memo->second;
  static const std::set<std::string> kEmpty;
  if (visiting.count(rel)) return kEmpty;  // include cycle guard.
  visiting.insert(rel);

  static const std::regex kDecl(R"(\b(?:double|float)\s+([A-Za-z_]\w*))");
  std::set<std::string> idents;
  const SourceFile& file = ctx.files.at(rel);
  for (const std::string& line : file.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      idents.insert((*it)[1].str());
    }
  }
  for (const IncludeRef& inc : ExtractIncludes(file)) {
    const std::string target = ResolveInclude(ctx.files, rel, inc.path);
    if (!target.empty()) {
      const std::set<std::string>& sub = FloatIdents(ctx, target, visiting);
      idents.insert(sub.begin(), sub.end());
    }
  }
  visiting.erase(rel);
  return ctx.float_idents.emplace(rel, std::move(idents)).first->second;
}

// ---------------------------------------------------------------------------
// layer-dag
// ---------------------------------------------------------------------------

void CheckLayerDag(const TreeContext& ctx, const SourceFile& file,
                   FileCategory category, std::vector<Candidate>& out) {
  const std::optional<std::string> layer = LayerOfPath(file.path);
  if (category == FileCategory::kLayerSource && !layer) {
    out.push_back({1, kRuleLayerDag,
                   "file sits under src/ but not in a layer directory"});
    return;
  }
  if (layer && !ctx.dag->Knows(*layer)) {
    out.push_back({1, kRuleLayerDag,
                   "layer `" + *layer +
                       "` is not in the layer DAG table "
                       "(tools/lint/layer_dag.txt)"});
    return;
  }
  for (const IncludeRef& inc : ExtractIncludes(file)) {
    const std::size_t slash = inc.path.find('/');
    const std::string first =
        slash == std::string::npos ? std::string() : inc.path.substr(0, slash);
    if (!first.empty() && ctx.dag->Knows(first)) {
      if (layer && !ctx.dag->Allows(*layer, first)) {
        out.push_back(
            {inc.line, kRuleLayerDag,
             "layer `" + *layer + "` must not include `" + inc.path +
                 "`: edge " + *layer + " -> " + first +
                 " is not in the layer DAG"});
      }
      continue;
    }
    // Not a layer path: the include must resolve next to the including
    // file (bench/repro_common.hpp style) or in an ancestor directory
    // (tools/<tool>/test/ files see tools/<tool>/ via the target's include
    // dirs) — never the repo root itself, so a layer header cannot be
    // reached by spelling out "src/...".  Anything else is a typo or an
    // attempt to bypass the layer tree with a relative path.
    bool resolved = false;
    for (std::string dir = DirName(file.path); !dir.empty();
         dir = DirName(dir)) {
      std::error_code ec;
      if (fs::exists(ctx.root / (dir + "/" + inc.path), ec)) {
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      out.push_back({inc.line, kRuleLayerDag,
                     "include `" + inc.path +
                         "` is neither a `<layer>/...` path nor a file next "
                         "to (or above) the including one"});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-*
// ---------------------------------------------------------------------------

void CheckDeterminism(const SourceFile& file, std::vector<Candidate>& out) {
  static const std::regex kRand(R"(\b(s?rand|rand_r|drand48)\s*\()");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kSystemClock(R"(\bsystem_clock\b)");
  static const std::regex kGetenv(R"(\b(secure_)?getenv\b)");
  static const std::regex kUnordered(
      R"(\bunordered_(map|set|multimap|multiset)\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (std::regex_search(line, kRand) ||
        std::regex_search(line, kRandomDevice)) {
      out.push_back({i + 1, kRuleRand,
                     "C PRNG / std::random_device is nondeterministic across "
                     "runs; draw from common/Rng (its sequence is part of "
                     "the fleet bit-identity contract)"});
    }
    if (std::regex_search(line, kSystemClock)) {
      out.push_back({i + 1, kRuleTime,
                     "wall-clock reads make results time-dependent; use "
                     "steady_clock for durations (metadata only) or thread "
                     "time in explicitly"});
    }
    if (std::regex_search(line, kGetenv)) {
      out.push_back({i + 1, kRuleEnv,
                     "environment reads make behaviour host-dependent; "
                     "thread configuration through explicit parameters"});
    }
    if (std::regex_search(line, kUnordered)) {
      out.push_back({i + 1, kRuleUnordered,
                     "unordered container iteration order is a hash-seed "
                     "accident; folding it into an accumulator or stream "
                     "breaks bit-identity — use std::map/std::vector or "
                     "iterate a sorted key list"});
    }
  }
}

// ---------------------------------------------------------------------------
// serialize-float
// ---------------------------------------------------------------------------

/// Returns [begin, end) byte ranges of the bodies of functions named
/// Serialize or Describe (definitions only — a trailing `;` after the
/// parameter list means a declaration).
std::vector<std::pair<std::size_t, std::size_t>> SerializeBodies(
    const JoinedCode& joined) {
  static const std::regex kName(R"(\b(Serialize|Describe)\s*\()");
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  const std::string& text = joined.text;
  for (std::sregex_iterator it(text.begin(), text.end(), kName), end;
       it != end; ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int paren = 1;  // we are just past the '('.
    while (pos < text.size() && paren > 0) {
      if (text[pos] == '(') ++paren;
      if (text[pos] == ')') --paren;
      ++pos;
    }
    // Skip cv-qualifiers etc. between the signature and the body.
    while (pos < text.size() && text[pos] != '{' && text[pos] != ';' &&
           text[pos] != '(') {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '{') continue;  // declaration.
    const std::size_t body_begin = pos + 1;
    int brace = 1;
    ++pos;
    while (pos < text.size() && brace > 0) {
      if (text[pos] == '{') ++brace;
      if (text[pos] == '}') --brace;
      ++pos;
    }
    bodies.emplace_back(body_begin, pos);
  }
  return bodies;
}

void CheckSerializeFloat(TreeContext& ctx, const SourceFile& file,
                         std::vector<Candidate>& out) {
  const JoinedCode joined = JoinedCode::From(file);
  const auto bodies = SerializeBodies(joined);
  if (bodies.empty()) return;
  std::set<std::string> visiting;
  const std::set<std::string>& floats = FloatIdents(ctx, file.path, visiting);

  // `<< 1.5`, `<< .5f`, `<< 2e-3` — a literal double streamed bare.
  static const std::regex kFloatLiteral(
      R"(<<\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)[fFlL]?)");
  // `<< mean`, `<< other.m2`, `<< range->lo_` — take the chain's last
  // member and test it against the float-identifier set.
  static const std::regex kIdentChain(
      R"(<<\s*([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*))");

  for (const auto& [begin, end] : bodies) {
    const std::string body = joined.text.substr(begin, end - begin);
    for (std::sregex_iterator it(body.begin(), body.end(), kFloatLiteral),
         last;
         it != last; ++it) {
      out.push_back(
          {joined.LineOf(begin + static_cast<std::size_t>(it->position())),
           kRuleSerializeFloat,
           "floating-point literal streamed bare inside a "
           "Serialize/Describe body; write it through serdes::WriteDouble "
           "(hexfloat) so the round trip stays bit-exact"});
    }
    for (std::sregex_iterator it(body.begin(), body.end(), kIdentChain), last;
         it != last; ++it) {
      const std::string chain = (*it)[1].str();
      std::size_t cut = chain.rfind("->");
      const std::size_t dot = chain.rfind('.');
      if (cut == std::string::npos ||
          (dot != std::string::npos && dot > cut)) {
        cut = dot;
      }
      const std::string leaf =
          cut == std::string::npos ? chain : chain.substr(cut + (chain[cut] == '-' ? 2 : 1));
      if (floats.count(leaf)) {
        out.push_back(
            {joined.LineOf(begin + static_cast<std::size_t>(it->position())),
             kRuleSerializeFloat,
             "`" + chain +
                 "` is floating-point and streamed bare inside a "
                 "Serialize/Describe body; default ostream formatting "
                 "truncates doubles — use serdes::WriteDouble"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nodiscard
// ---------------------------------------------------------------------------

bool IsHeader(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

void CheckNodiscard(const SourceFile& file, std::vector<Candidate>& out) {
  if (!IsHeader(file.path)) return;
  static const std::regex kEntryPoint(
      R"((^|[\s&*>])((?:Parse|Merge|Deserialize)\w*|Validate)\s*\()");
  static const std::set<std::string> kNotATypeWord = {
      "return", "co_return", "case", "goto", "new", "delete", "throw"};
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    std::smatch m;
    if (!std::regex_search(line, m, kEntryPoint)) continue;
    // The text before the name must look like a declaration's return type:
    // type-ish characters only, non-empty, not `void`, and not an
    // expression keyword — otherwise this is a call, not a declaration.
    std::string prefix = line.substr(0, static_cast<std::size_t>(m.position(2)));
    if (prefix.find_first_not_of(
            " \t[]&*<>,:abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") != std::string::npos) {
      continue;
    }
    std::istringstream words(prefix);
    std::string word, last;
    bool has_type = false;
    while (words >> word) {
      last = word;
      if (word != "static" && word != "inline" && word != "constexpr" &&
          word != "friend" && word != "virtual" && word != "explicit") {
        has_type = true;
      }
    }
    if (!has_type || kNotATypeWord.count(last)) continue;
    if (prefix.find("void") != std::string::npos &&
        prefix.find("void*") == std::string::npos) {
      continue;  // throw-based Validate() style: nothing to discard.
    }
    const bool marked =
        line.find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && file.code[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!marked) {
      out.push_back({i + 1, kRuleNodiscard,
                     "`" + m[2].str() +
                         "` returns a value that is always a bug to ignore "
                         "(parse/validate/merge entry point); declare it "
                         "[[nodiscard]]"});
    }
  }
}

// ---------------------------------------------------------------------------
// reachability rules (hot-path-alloc, signal-safety, blocking-in-rt)
// ---------------------------------------------------------------------------

/// One banned line pattern with the human name of the hazard it matches.
struct BannedPattern {
  std::regex re;
  const char* what;
};

const std::vector<BannedPattern>& HotPathBans() {
  static const std::vector<BannedPattern> kBans = {
      {std::regex(R"(\bnew\b)"), "operator new allocates"},
      {std::regex(R"(\b(malloc|calloc|realloc|strdup|aligned_alloc)\s*\()"),
       "C heap allocation"},
      {std::regex(
           R"((\.|->)\s*(push_back|emplace_back|resize|reserve|insert|emplace|append)\s*\()"),
       "growable-container mutation may allocate"},
      {std::regex(R"(\bto_string\s*\()"), "std::to_string allocates"},
      {std::regex(R"(\bstd::string\s*[({])"),
       "std::string construction allocates"},
      {std::regex(R"(\b(ostringstream|istringstream|stringstream)\b)"),
       "stringstream building allocates"},
      {std::regex(R"("\s*\+|\+\s*")"), "string-literal concatenation allocates"},
      {std::regex(R"(\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b)"),
       "lock construction can block"},
  };
  return kBans;
}

const std::vector<BannedPattern>& BlockingBans() {
  static const std::vector<BannedPattern> kBans = {
      {std::regex(R"(\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b)"),
       "mutex lock"},
      {std::regex(R"((\.|->)\s*(lock|try_lock_for|try_lock_until)\s*\()"),
       "explicit lock() call"},
      {std::regex(
           R"(\bpthread_(mutex_lock|cond_wait|cond_timedwait|rwlock_rdlock|rwlock_wrlock)\b)"),
       "pthread blocking primitive"},
      {std::regex(R"((\.|->)\s*(wait|wait_for|wait_until)\s*\()"),
       "condition-variable wait"},
      {std::regex(R"(\b(ofstream|ifstream|fstream)\b)"), "fstream file I/O"},
      {std::regex(
           R"(\b(fopen|fclose|fread|fwrite|fprintf|fscanf|fputs|fgets|fflush|fgetc|fputc)\s*\()"),
       "stdio file I/O"},
  };
  return kBans;
}

/// Functions the POSIX async-signal-safety table (and the fork->exec child
/// path) may call, plus const accessors on objects fully built BEFORE the
/// fork (no allocation, no locks — argv.data(), path.c_str()).
const std::set<std::string>& SignalSafeCalls() {
  static const std::set<std::string> kSet = {
      "fork",      "vfork",     "_exit",       "_Exit",    "execv",
      "execve",    "execvp",    "execvpe",     "execl",    "execle",
      "execlp",    "dup",       "dup2",        "dup3",     "close",
      "open",      "read",      "write",       "pipe",     "pipe2",
      "fcntl",     "kill",      "raise",       "signal",   "sigaction",
      "sigprocmask", "sigemptyset", "sigfillset", "sigaddset", "setsid",
      "chdir",     "getpid",    "getppid",     "umask",    "prctl",
      "c_str",     "data",      "size",        "begin",    "end",
      "empty",     "front",     "back",
  };
  return kSet;
}

std::string Hop(const FunctionDef& def) {
  return def.display + " (" + def.file + ":" + std::to_string(def.line) + ")";
}

/// Dedup key: two roots reaching the same line under the same rule would
/// otherwise double-report (the first discovered chain wins).
using EmittedSet = std::set<std::tuple<std::string, std::size_t, std::string>>;

void EmitReach(const std::string& file, std::size_t line, const char* rule,
               std::string message, const std::vector<std::string>& chain,
               EmittedSet& emitted,
               std::map<std::string, std::vector<Candidate>>& by_file) {
  if (!emitted.insert({file, line, rule}).second) return;
  Candidate c;
  c.line = line;
  c.rule = rule;
  c.message = std::move(message);
  c.chain = chain;
  by_file[file].push_back(std::move(c));
}

/// DFS from a pattern-rule root: every reachable definition's body is
/// scanned against `bans`.  The visited set makes include cycles and
/// call-graph diamonds terminate; conservative name resolution means a
/// call walks EVERY same-name definition in the TU closure.
void WalkPattern(const TreeContext& ctx, const CallGraph& graph,
                 const FunctionDef& def, const char* rule,
                 const std::vector<BannedPattern>& bans,
                 std::vector<std::string>& chain,
                 std::set<const FunctionDef*>& visited, EmittedSet& emitted,
                 std::map<std::string, std::vector<Candidate>>& by_file) {
  if (!visited.insert(&def).second) return;
  chain.push_back(Hop(def));
  const SourceFile& file = ctx.files.at(def.file);
  for (std::size_t ln = def.body_open_line;
       ln <= def.body_last_line && ln <= file.code.size(); ++ln) {
    for (const BannedPattern& ban : bans) {
      if (std::regex_search(file.code[ln - 1], ban.re)) {
        EmitReach(def.file, ln, rule,
                  std::string(ban.what) + ", on a path reachable from root(" +
                      std::string(rule) + ")",
                  chain, emitted, by_file);
        break;  // one finding per line per rule is enough to act on.
      }
    }
  }
  for (const CallSite& call : def.calls) {
    for (const FunctionDef* callee : graph.Resolve(call.name)) {
      WalkPattern(ctx, graph, *callee, rule, bans, chain, visited, emitted,
                  by_file);
    }
  }
  chain.pop_back();
}

/// DFS from a function called inside the fork->exec region: every call in
/// its body (and transitively) must be allowlisted or resolve to another
/// definition in the TU closure.
void WalkSignal(const CallGraph& graph, const FunctionDef& def,
                std::vector<std::string>& chain,
                std::set<const FunctionDef*>& visited, EmittedSet& emitted,
                std::map<std::string, std::vector<Candidate>>& by_file) {
  if (!visited.insert(&def).second) return;
  chain.push_back(Hop(def));
  for (const CallSite& call : def.calls) {
    if (SignalSafeCalls().count(call.name)) continue;
    const std::vector<const FunctionDef*> callees = graph.Resolve(call.name);
    if (callees.empty()) {
      EmitReach(def.file, call.line, kRuleSignalSafety,
                "`" + call.name +
                    "` is not on the async-signal-safe allowlist and has no "
                    "visible definition to vet; reached from the fork->exec "
                    "child region",
                chain, emitted, by_file);
      continue;
    }
    for (const FunctionDef* callee : callees) {
      WalkSignal(graph, *callee, chain, visited, emitted, by_file);
    }
  }
  chain.pop_back();
}

/// The signal-safety rule on one root: the call sites between the first
/// `fork()` and the last `execv*`/`_exit` (the child's lexical region —
/// the parent's code resumes after the exit call) must be allowlisted or
/// vetted transitively.  A root without a fork call is checked whole
/// (fixture style: the function IS the child path).
void CheckSignalSafety(const CallGraph& graph, const FunctionDef& root,
                       EmittedSet& emitted,
                       std::map<std::string, std::vector<Candidate>>& by_file) {
  static const std::set<std::string> kForks = {"fork", "vfork"};
  static const std::set<std::string> kExits = {
      "execv", "execve", "execvp", "execvpe", "execl",
      "execle", "execlp", "_exit", "_Exit"};
  std::size_t region_begin = 0;  // byte pos; 0 = from the body start.
  std::size_t region_end = std::string::npos;
  bool saw_fork = false;
  for (const CallSite& call : root.calls) {
    if (!saw_fork && kForks.count(call.name)) {
      saw_fork = true;
      region_begin = call.pos;
    }
    if (saw_fork && kExits.count(call.name)) region_end = call.pos;
  }
  std::vector<std::string> chain = {Hop(root)};
  for (const CallSite& call : root.calls) {
    if (call.pos <= region_begin && saw_fork) continue;
    if (region_end != std::string::npos && call.pos > region_end) continue;
    if (SignalSafeCalls().count(call.name)) continue;
    const std::vector<const FunctionDef*> callees = graph.Resolve(call.name);
    if (callees.empty()) {
      EmitReach(root.file, call.line, kRuleSignalSafety,
                "`" + call.name +
                    "` between fork() and exec is not on the async-signal-"
                    "safe allowlist (the child of a multi-threaded parent "
                    "may hold no locks, so even malloc can deadlock)",
                chain, emitted, by_file);
      continue;
    }
    std::set<const FunctionDef*> visited;
    for (const FunctionDef* callee : callees) {
      WalkSignal(graph, *callee, chain, visited, emitted, by_file);
    }
  }
}

/// Runs the reachability rules over every annotated root, each analyzed in
/// the translation unit of the file that defines it, and checks root-marker
/// hygiene (unknown rule / marker that attaches to nothing).
void CheckReachability(TreeContext& ctx,
                       std::map<std::string, std::vector<Candidate>>& by_file) {
  EmittedSet emitted;
  for (const auto& [rel, file] : ctx.files) {
    if (file.roots.empty()) continue;
    const CallGraph graph = CallGraph::Build(ctx.files, rel);
    for (const RootMark& mark : file.roots) {
      if (!ReachabilityRules().count(mark.rule)) {
        by_file[rel].push_back(
            {mark.line, kRuleSuppression,
             "root(" + mark.rule +
                 ") names no reachability rule (hot-path-alloc, "
                 "signal-safety, blocking-in-rt)",
             {}});
        continue;
      }
      bool attached = false;
      for (const FunctionDef& def : graph.functions()) {
        if (def.file == rel && mark.line + 1 >= def.line &&
            mark.line <= def.body_open_line) {
          attached = true;
          break;
        }
      }
      if (!attached) {
        by_file[rel].push_back(
            {mark.line, kRuleSuppression,
             "root(" + mark.rule +
                 ") attaches to no function definition here; put it on the "
                 "defining line (or the line directly above it)",
             {}});
      }
    }
    for (const FunctionDef& def : graph.functions()) {
      if (def.file != rel || def.roots.empty()) continue;
      for (const std::string& rule : def.roots) {
        if (rule == kRuleSignalSafety) {
          CheckSignalSafety(graph, def, emitted, by_file);
        } else if (rule == kRuleHotPathAlloc || rule == kRuleBlockingInRt) {
          const char* id =
              rule == kRuleHotPathAlloc ? kRuleHotPathAlloc : kRuleBlockingInRt;
          std::vector<std::string> chain;
          std::set<const FunctionDef*> visited;
          WalkPattern(ctx, graph, def, id,
                      id == kRuleHotPathAlloc ? HotPathBans() : BlockingBans(),
                      chain, visited, emitted, by_file);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// suppression processing
// ---------------------------------------------------------------------------

void ApplySuppressions(const SourceFile& file,
                       std::vector<Candidate>& candidates, LintReport& report) {
  const std::vector<std::string>& rules = RuleIds();
  std::set<const Suppression*> used;
  std::vector<Candidate> kept;
  for (Candidate& c : candidates) {
    bool suppressed = false;
    for (const Suppression* s : file.SuppressionsOn(c.line)) {
      if (s->rule == c.rule && c.rule != kRuleSuppression &&
          !s->justification.empty()) {
        used.insert(s);
        suppressed = true;
      }
    }
    if (suppressed) {
      ++report.suppressions_honoured;
    } else {
      kept.push_back(std::move(c));
    }
  }
  for (const Suppression& s : file.suppressions) {
    if (std::find(rules.begin(), rules.end(), s.rule) == rules.end()) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule + ") names no shep_lint rule"});
      continue;
    }
    if (s.justification.empty()) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule +
                          ") needs a one-line justification after the "
                          "closing paren — a waiver documents WHY the "
                          "hazard is safe here"});
      continue;
    }
    if (!used.count(&s)) {
      kept.push_back({s.line, kRuleSuppression,
                      "allow(" + s.rule +
                          ") waives nothing on this line; delete the stale "
                          "suppression"});
    }
  }
  for (Candidate& c : kept) {
    report.findings.push_back({file.path, c.line, std::move(c.rule),
                               std::move(c.message), std::move(c.chain)});
  }
}

/// Loads every lintable file under root/{src,tests,bench,examples,tools},
/// skipping any `fixtures` subtree (shep_lint's own bad fixtures would
/// otherwise lint the real tree red).
std::map<std::string, SourceFile> CollectFiles(const fs::path& root) {
  static const std::vector<std::string> kDirs = {"src", "tests", "bench",
                                                 "examples", "tools"};
  static const std::set<std::string> kExtensions = {".hpp", ".h", ".cpp",
                                                    ".cc"};
  std::map<std::string, SourceFile> files;
  for (const std::string& dir : kDirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base), end; it != end; ++it) {
      if (!it->is_regular_file()) continue;
      if (!kExtensions.count(it->path().extension().string())) continue;
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      if (rel.find("/fixtures/") != std::string::npos) continue;
      files.emplace(rel, LoadSource(it->path(), rel));
    }
  }
  return files;
}

}  // namespace

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string> kIds = [] {
    std::vector<std::string> ids;
    for (const RuleInfo& info : RuleCatalog()) ids.push_back(info.id);
    return ids;
  }();
  return kIds;
}

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {kRuleLayerDag,
       "every #include \"<layer>/...\" edge must be in the layer DAG "
       "closure; local includes must resolve next to (or above) the "
       "including file"},
      {kRuleRand,
       "C PRNGs and std::random_device are banned in src/; draw from "
       "common/Rng (its sequence is part of the bit-identity contract)"},
      {kRuleTime,
       "wall-clock reads (system_clock) are banned in src/; durations use "
       "steady_clock"},
      {kRuleEnv,
       "environment reads are banned in src/; configuration threads "
       "through explicit parameters"},
      {kRuleUnordered,
       "unordered container iteration order is a hash-seed accident; "
       "banned in src/"},
      {kRuleSerializeFloat,
       "Serialize/Describe bodies must write floating-point through the "
       "serdes hexfloat helpers, never bare operator<<"},
      {kRuleHotPathAlloc,
       "nothing reachable from a root(hot-path-alloc) function may "
       "allocate or construct a lock"},
      {kRuleSignalSafety,
       "the fork->exec region of a root(signal-safety) function may only "
       "call the async-signal-safe allowlist, transitively"},
      {kRuleBlockingInRt,
       "nothing reachable from a root(blocking-in-rt) function may take a "
       "mutex, wait on a condition variable, or do file I/O"},
      {kRuleNodiscard,
       "value-returning Parse*/Merge*/Deserialize*/Validate entry points "
       "in src/ headers must be [[nodiscard]]"},
      {kRuleSuppression,
       "allow(...) waivers must name a real rule and carry a "
       "justification; root(...) markers must name a reachability rule on "
       "a defining line (unsuppressable)"},
  };
  return kCatalog;
}

LintReport LintTree(const std::filesystem::path& root) {
  TreeContext ctx;
  ctx.root = root;
  ctx.dag = &LayerDag::Project();
  ctx.files = CollectFiles(root);

  LintReport report;
  report.files_scanned = ctx.files.size();

  // Per-line rules first, collected per file; the reachability pass then
  // appends candidates wherever its chains land (a violation three calls
  // deep belongs to the file that CONTAINS the violating line, which is
  // where a waiver for it must sit); suppressions apply once per file at
  // the end so waivers on chain findings are tracked like any other.
  std::map<std::string, std::vector<Candidate>> by_file;
  for (auto& [rel, file] : ctx.files) {
    const FileCategory category = rel.rfind("src/", 0) == 0
                                      ? FileCategory::kLayerSource
                                      : FileCategory::kConsumer;
    std::vector<Candidate>& candidates = by_file[rel];
    CheckLayerDag(ctx, file, category, candidates);
    if (category == FileCategory::kLayerSource) {
      CheckDeterminism(file, candidates);
      CheckSerializeFloat(ctx, file, candidates);
      CheckNodiscard(file, candidates);
    }
  }
  CheckReachability(ctx, by_file);
  for (auto& [rel, file] : ctx.files) {
    std::vector<Candidate>& candidates = by_file[rel];
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    ApplySuppressions(file, candidates, report);
  }
  return report;
}

std::string ListWaivers(const std::filesystem::path& root) {
  const std::map<std::string, SourceFile> files = CollectFiles(root);
  std::ostringstream os;
  for (const auto& [rel, file] : files) {
    for (const Suppression& s : file.suppressions) {
      os << rel << ':' << s.line << ": allow(" << s.rule << ") "
         << (s.justification.empty() ? "(no justification)" : s.justification)
         << '\n';
    }
  }
  for (const auto& [rel, file] : files) {
    for (const RootMark& m : file.roots) {
      os << rel << ':' << m.line << ": root(" << m.rule << ")\n";
    }
  }
  return os.str();
}

std::string FormatFindings(const LintReport& report, bool github) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    if (github) {
      os << "::error file=" << f.file << ",line=" << f.line
         << ",title=shep_lint " << f.rule;
      if (!f.chain.empty()) os << " via " << f.chain.front();
      os << "::" << f.message;
      if (!f.chain.empty()) {
        os << " [chain: ";
        for (std::size_t i = 0; i < f.chain.size(); ++i) {
          if (i) os << " -> ";
          os << f.chain[i];
        }
        os << ']';
      }
      os << '\n';
    } else {
      os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
         << '\n';
      if (!f.chain.empty()) {
        os << "    chain:";
        for (const std::string& hop : f.chain) os << "\n      -> " << hop;
        os << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace shep::lint
