#include "include_graph.hpp"

#include <algorithm>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace shep::lint {

void LayerDag::AddLayer(const std::string& layer,
                        const std::vector<std::string>& deps) {
  if (layer.empty() || Knows(layer)) {
    throw std::invalid_argument("layer dag: duplicate or empty layer `" +
                                layer + "`");
  }
  // Build the closure incrementally: a dep must already be declared, so
  // its own reachable set is final.  This also makes cycles impossible to
  // express — the table is a DAG by construction.
  std::vector<std::string> reach{layer};
  for (const std::string& dep : deps) {
    if (!Knows(dep)) {
      throw std::invalid_argument("layer dag: `" + layer +
                                  "` depends on undeclared layer `" + dep +
                                  "` (declare dependencies first)");
    }
    for (const std::string& r : reachable_.at(dep)) {
      if (std::find(reach.begin(), reach.end(), r) == reach.end()) {
        reach.push_back(r);
      }
    }
  }
  layers_.push_back(layer);
  direct_[layer] = deps;
  reachable_[layer] = std::move(reach);
}

bool LayerDag::Knows(const std::string& layer) const {
  return direct_.count(layer) != 0;
}

bool LayerDag::Allows(const std::string& from, const std::string& to) const {
  const auto it = reachable_.find(from);
  if (it == reachable_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) !=
         it->second.end();
}

const std::vector<std::string>& LayerDag::DirectDeps(
    const std::string& layer) const {
  const auto it = direct_.find(layer);
  if (it == direct_.end()) {
    throw std::invalid_argument("layer dag: unknown layer `" + layer + "`");
  }
  return it->second;
}

std::string LayerDag::Describe() const {
  std::ostringstream os;
  os << "shep-layer-dag v1\n";
  for (const std::string& layer : layers_) {
    os << "layer " << layer << " :";
    for (const std::string& dep : direct_.at(layer)) os << ' ' << dep;
    os << '\n';
  }
  os << "end\n";
  return os.str();
}

LayerDag LayerDag::Parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() {
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  };
  if (!next_line() || line != "shep-layer-dag v1") {
    throw std::invalid_argument("layer dag: missing `shep-layer-dag v1`");
  }
  LayerDag dag;
  while (next_line() && line != "end") {
    std::istringstream fields(line);
    std::string keyword, layer, colon;
    fields >> keyword >> layer >> colon;
    if (keyword != "layer" || colon != ":") {
      throw std::invalid_argument("layer dag: malformed line `" + line + "`");
    }
    std::vector<std::string> deps;
    std::string dep;
    while (fields >> dep) deps.push_back(dep);
    dag.AddLayer(layer, deps);
  }
  if (line != "end") {
    throw std::invalid_argument("layer dag: missing `end`");
  }
  return dag;
}

const LayerDag& LayerDag::Project() {
  // Mirrors the CMake target graph in /CMakeLists.txt and the diagram in
  // README.md; tools/lint/layer_dag.txt is the committed text twin and
  // the lint tests assert Describe() matches it byte for byte.
  static const LayerDag dag = [] {
    LayerDag d;
    d.AddLayer("common", {});
    d.AddLayer("timeseries", {"common"});
    d.AddLayer("metrics", {"common"});
    d.AddLayer("solar", {"timeseries"});
    d.AddLayer("core", {"timeseries", "metrics"});
    d.AddLayer("hw", {"core"});
    d.AddLayer("mgmt", {"core", "metrics"});
    d.AddLayer("sweep", {"core", "metrics"});
    d.AddLayer("report", {"common"});
    d.AddLayer("trace", {"common", "report"});
    d.AddLayer("fleet", {"common", "solar", "core", "hw", "mgmt", "metrics",
                         "report", "trace"});
    return d;
  }();
  return dag;
}

std::vector<IncludeRef> ExtractIncludes(const SourceFile& file) {
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  std::vector<IncludeRef> refs;
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    // Raw lines, not stripped ones: the stripper blanks the quoted path
    // (it looks like a string literal).  #include cannot appear inside a
    // comment's continuation because the directive must start the line.
    std::smatch m;
    if (std::regex_search(file.raw[i], m, kInclude) &&
        // ...unless the whole line sits in a block comment, in which case
        // the stripped line has no '#'.
        file.code[i].find('#') != std::string::npos) {
      refs.push_back({i + 1, m[1].str()});
    }
  }
  return refs;
}

std::optional<std::string> LayerOfPath(const std::string& repo_relative) {
  static constexpr std::string_view kSrc = "src/";
  if (repo_relative.rfind(kSrc, 0) != 0) return std::nullopt;
  const std::size_t slash = repo_relative.find('/', kSrc.size());
  if (slash == std::string::npos) return std::nullopt;
  return repo_relative.substr(kSrc.size(), slash - kSrc.size());
}

}  // namespace shep::lint
