// shep_lint — project-specific static analysis for the shep tree.
//
// Usage:
//   shep_lint [--github] <repo-root>     lint src/ tests/ bench/ examples/ tools/
//   shep_lint --dag                      print the layer DAG table
//   shep_lint --list-rules               print the rule catalogue
//   shep_lint --list-waivers <repo-root> print every suppression + root marker
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.  Unknown flags are
// rejected with the usage message (matching shep_trace's treatment) so a
// typo like `--githb` fails loudly instead of being swallowed as a path.
//
// The tool runs as a CTest case over the real tree (`ctest -R lint_tree`)
// and as the CI `lint` job; rule catalogue, suppression syntax, and the
// reachability root(...) contract are documented in README.md
// ("Correctness tooling").

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "include_graph.hpp"
#include "lint_rules.hpp"

namespace {

constexpr const char* kUsage =
    "usage: shep_lint [--github] <repo-root>\n"
    "       shep_lint --dag\n"
    "       shep_lint --list-rules\n"
    "       shep_lint --list-waivers <repo-root>\n";

}  // namespace

int main(int argc, char** argv) {
  bool github = false;
  bool list_waivers = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--github") {
      github = true;
    } else if (arg == "--dag") {
      std::cout << shep::lint::LayerDag::Project().Describe();
      return 0;
    } else if (arg == "--list-rules") {
      for (const shep::lint::RuleInfo& info : shep::lint::RuleCatalog()) {
        std::cout << info.id << "\n    " << info.description << '\n';
      }
      return 0;
    } else if (arg == "--list-waivers") {
      list_waivers = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "shep_lint: unknown flag `" << arg << "`\n" << kUsage;
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    if (list_waivers) {
      std::cout << shep::lint::ListWaivers(positional[0]);
      return 0;
    }
    const shep::lint::LintReport report = shep::lint::LintTree(positional[0]);
    if (report.files_scanned == 0) {
      std::cerr << "shep_lint: nothing to scan under " << positional[0]
                << " (expected src/, tests/, bench/, examples/, or tools/)\n";
      return 2;
    }
    std::cout << shep::lint::FormatFindings(report, github);
    std::cerr << "shep_lint: " << report.findings.size() << " finding"
              << (report.findings.size() == 1 ? "" : "s") << " in "
              << report.files_scanned << " files ("
              << report.suppressions_honoured << " suppression"
              << (report.suppressions_honoured == 1 ? "" : "s")
              << " honoured)\n";
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "shep_lint: " << e.what() << '\n';
    return 2;
  }
}
