// shep_lint — project-specific static analysis for the shep tree.
//
// Usage:
//   shep_lint [--github] <repo-root>     lint src/ tests/ bench/ examples/
//   shep_lint --dag                      print the layer DAG table
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
// The tool runs as a CTest case over the real tree (`ctest -R lint_tree`)
// and as the CI `lint` job; rule catalogue and suppression syntax are
// documented in README.md ("Correctness tooling").

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "include_graph.hpp"
#include "lint_rules.hpp"

int main(int argc, char** argv) {
  bool github = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--github") {
      github = true;
    } else if (arg == "--dag") {
      std::cout << shep::lint::LayerDag::Project().Describe();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: shep_lint [--github] <repo-root> | shep_lint --dag\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::cerr << "usage: shep_lint [--github] <repo-root> | shep_lint --dag\n";
    return 2;
  }

  try {
    const shep::lint::LintReport report = shep::lint::LintTree(positional[0]);
    if (report.files_scanned == 0) {
      std::cerr << "shep_lint: nothing to scan under " << positional[0]
                << " (expected src/, tests/, bench/, or examples/)\n";
      return 2;
    }
    std::cout << shep::lint::FormatFindings(report, github);
    std::cerr << "shep_lint: " << report.findings.size() << " finding"
              << (report.findings.size() == 1 ? "" : "s") << " in "
              << report.files_scanned << " files ("
              << report.suppressions_honoured << " suppression"
              << (report.suppressions_honoured == 1 ? "" : "s")
              << " honoured)\n";
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "shep_lint: " << e.what() << '\n';
    return 2;
  }
}
