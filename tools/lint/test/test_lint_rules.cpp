// test_lint_rules.cpp — unit suite of the shep_lint rules library.
//
// The committed fixture mini-trees under tools/lint/fixtures/ are the
// primary drivers: each bad/<case>/ must produce the finding class it is
// named after (and the same trees run as WILL_FAIL CTest cases through
// the shep_lint binary), while good/ must lint clean with its justified
// suppressions honoured.  On top of that: scanner token-class tests, the
// layer-DAG closure semantics, and the Describe/Parse round trip pinned
// against the committed tools/lint/layer_dag.txt.

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>
#include "call_graph.hpp"
#include "include_graph.hpp"
#include "lint_rules.hpp"
#include "source_scan.hpp"

namespace shep::lint {
namespace {

std::string FixtureDir(const std::string& name) {
  return std::string(SHEP_LINT_DIR) + "/fixtures/" + name;
}

/// Count of findings carrying `rule` in the report.
std::size_t CountRule(const LintReport& report, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string Dump(const LintReport& report) {
  return FormatFindings(report, /*github=*/false);
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

TEST(SourceScan, BlanksLineCommentsButKeepsCode) {
  const SourceFile f =
      ScanSource("int x = rand();  // rand() is fine in prose\n", "f.cpp");
  ASSERT_EQ(f.code.size(), 1u);
  EXPECT_NE(f.code[0].find("rand()"), std::string::npos);
  EXPECT_EQ(f.code[0].find("prose"), std::string::npos);
}

TEST(SourceScan, BlanksBlockCommentsAcrossLines) {
  const SourceFile f = ScanSource(
      "/* system_clock everywhere\n   second line system_clock */\n"
      "int y;\n",
      "f.cpp");
  ASSERT_EQ(f.code.size(), 3u);
  EXPECT_EQ(f.code[0].find("system_clock"), std::string::npos);
  EXPECT_EQ(f.code[1].find("system_clock"), std::string::npos);
  EXPECT_NE(f.code[2].find("int y;"), std::string::npos);
}

TEST(SourceScan, BlanksStringAndCharLiteralContents) {
  const SourceFile f = ScanSource(
      "const char* s = \"std::random_device\"; char c = 'r';\n", "f.cpp");
  EXPECT_EQ(f.code[0].find("random_device"), std::string::npos);
  // The quotes themselves survive so the line keeps its shape.
  EXPECT_NE(f.code[0].find('"'), std::string::npos);
}

TEST(SourceScan, BlanksRawStringsIncludingMultiline) {
  const SourceFile f = ScanSource(
      "auto s = R\"(rand() inside)\";\n"
      "auto t = R\"x(line one rand()\nline two getenv)x\"; int z;\n",
      "f.cpp");
  EXPECT_EQ(f.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(f.code[1].find("rand"), std::string::npos);
  EXPECT_EQ(f.code[2].find("getenv"), std::string::npos);
  EXPECT_NE(f.code[2].find("int z;"), std::string::npos);
}

TEST(SourceScan, ParsesSuppressionWithJustification) {
  const SourceFile f = ScanSource(
      "use();  // shep-lint: allow(determinism-rand) exercised error path\n",
      "f.cpp");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].line, 1u);
  EXPECT_EQ(f.suppressions[0].rule, "determinism-rand");
  EXPECT_EQ(f.suppressions[0].justification, "exercised error path");
}

TEST(SourceScan, SuppressionSeparatorsAreCosmetic) {
  const SourceFile f = ScanSource(
      "use();  // shep-lint: allow(layer-dag) -- legacy bridge\n", "f.cpp");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].justification, "legacy bridge");
}

TEST(SourceScan, SuppressionInsideStringLiteralIsIgnored) {
  const SourceFile f = ScanSource(
      "auto s = \"// shep-lint: allow(determinism-rand) nope\";\n", "f.cpp");
  EXPECT_TRUE(f.suppressions.empty());
}

TEST(SourceScan, ParsesRootMarkers) {
  const SourceFile f = ScanSource(
      "// shep-lint: root(hot-path-alloc) root(blocking-in-rt)\n"
      "void F() {}\n",
      "f.cpp");
  ASSERT_EQ(f.roots.size(), 2u);
  EXPECT_EQ(f.roots[0].line, 1u);
  EXPECT_EQ(f.roots[0].rule, "hot-path-alloc");
  EXPECT_EQ(f.roots[1].rule, "blocking-in-rt");
}

TEST(SourceScan, MarkerMustLeadTheComment) {
  // Prose that merely mentions the marker syntax must parse as prose —
  // the tool's own doc comments quote it constantly.
  const SourceFile f = ScanSource(
      "// waivers use `// shep-lint: allow(layer-dag)` trailing comments\n"
      "// and roots use `// shep-lint: root(hot-path-alloc)` markers\n",
      "f.cpp");
  EXPECT_TRUE(f.suppressions.empty());
  EXPECT_TRUE(f.roots.empty());
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

TEST(CallGraph, ExtractsFreeFunctionsAndCallSites) {
  const SourceFile f = ScanSource(
      "int Helper(int x) { return x + 1; }\n"
      "int Outer(int x) {\n"
      "  return Helper(x) + Helper(x + 2);\n"
      "}\n",
      "f.cpp");
  const std::vector<FunctionDef> defs = ExtractFunctions(f);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "Helper");
  EXPECT_TRUE(defs[0].calls.empty());
  EXPECT_EQ(defs[1].name, "Outer");
  ASSERT_EQ(defs[1].calls.size(), 2u);
  EXPECT_EQ(defs[1].calls[0].name, "Helper");
  EXPECT_EQ(defs[1].calls[0].line, 3u);
}

TEST(CallGraph, ExtractsQualifiedMethodsButNotDeclarations) {
  const SourceFile f = ScanSource(
      "struct Ring {\n"
      "  bool TryPush(int v);\n"
      "};\n"
      "bool Ring::TryPush(int v) {\n"
      "  return Accept(v);\n"
      "}\n",
      "f.cpp");
  const std::vector<FunctionDef> defs = ExtractFunctions(f);
  ASSERT_EQ(defs.size(), 1u);  // the declaration on line 2 is not a def.
  EXPECT_EQ(defs[0].display, "Ring::TryPush");
  EXPECT_EQ(defs[0].name, "TryPush");
  EXPECT_EQ(defs[0].line, 4u);
  ASSERT_EQ(defs[0].calls.size(), 1u);
  EXPECT_EQ(defs[0].calls[0].name, "Accept");
}

TEST(CallGraph, HandlesTemplatesInitListsAndTrailingReturns) {
  const SourceFile f = ScanSource(
      "template <class T>\n"
      "auto First(const T& c) -> decltype(c.front()) {\n"
      "  return c.front();\n"
      "}\n"
      "struct Holder {\n"
      "  explicit Holder(int n) : size_(n), data_{nullptr} {\n"
      "    Init(n);\n"
      "  }\n"
      "  int size_;\n"
      "  void* data_;\n"
      "};\n",
      "f.cpp");
  const std::vector<FunctionDef> defs = ExtractFunctions(f);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "First");
  EXPECT_EQ(defs[1].name, "Holder");  // the constructor, init list skipped.
  ASSERT_EQ(defs[1].calls.size(), 1u);
  EXPECT_EQ(defs[1].calls[0].name, "Init");
}

TEST(CallGraph, MacroBodiesAndControlKeywordsAreNotFunctions) {
  const SourceFile f = ScanSource(
      "#define CHECK(c) \\\n"
      "  do { if (!(c)) Abort(); } while (false)\n"
      "void Real() {\n"
      "  if (Ready()) { while (Spin()) {} }\n"
      "}\n",
      "f.cpp");
  const std::vector<FunctionDef> defs = ExtractFunctions(f);
  ASSERT_EQ(defs.size(), 1u);  // neither the macro body nor if/while.
  EXPECT_EQ(defs[0].name, "Real");
  ASSERT_EQ(defs[0].calls.size(), 2u);
  EXPECT_EQ(defs[0].calls[0].name, "Ready");
  EXPECT_EQ(defs[0].calls[1].name, "Spin");
}

TEST(CallGraph, AttachesRootMarkersBothStyles) {
  const SourceFile f = ScanSource(
      "// shep-lint: root(hot-path-alloc)\n"
      "void HotLoop() {\n"
      "}\n"
      "void Beat() {  // shep-lint: root(blocking-in-rt)\n"
      "}\n",
      "f.cpp");
  const std::vector<FunctionDef> defs = ExtractFunctions(f);
  ASSERT_EQ(defs.size(), 2u);
  ASSERT_EQ(defs[0].roots.size(), 1u);
  EXPECT_EQ(defs[0].roots[0], "hot-path-alloc");
  ASSERT_EQ(defs[1].roots.size(), 1u);
  EXPECT_EQ(defs[1].roots[0], "blocking-in-rt");
}

TEST(CallGraph, ResolvesOverloadsConservatively) {
  std::map<std::string, SourceFile> files;
  files.emplace("src/solar/x.cpp",
                ScanSource("#include \"solar/h1.hpp\"\n"
                           "void Use() { Emit(1); }\n",
                           "src/solar/x.cpp"));
  files.emplace("src/solar/h1.hpp",
                ScanSource("void Emit(int x) { Sink(x); }\n"
                           "void Emit(double x) { Sink(x); }\n",
                           "src/solar/h1.hpp"));
  const CallGraph g = CallGraph::Build(files, "src/solar/x.cpp");
  EXPECT_EQ(g.closure().size(), 2u);
  // A call site named Emit matches BOTH overloads: the reachability rules
  // would rather walk one callee too many than miss the one that
  // allocates.
  EXPECT_EQ(g.Resolve("Emit").size(), 2u);
  EXPECT_EQ(g.Resolve("NoSuch").size(), 0u);
}

TEST(CallGraph, ToleratesIncludeCycles) {
  std::map<std::string, SourceFile> files;
  files.emplace("src/solar/p.hpp",
                ScanSource("#include \"solar/q.hpp\"\n"
                           "inline void Ping(int n) { if (n > 0) Pong(n); }\n",
                           "src/solar/p.hpp"));
  files.emplace("src/solar/q.hpp",
                ScanSource("#include \"solar/p.hpp\"\n"
                           "inline void Pong(int n) { if (n > 0) Ping(n); }\n",
                           "src/solar/q.hpp"));
  const CallGraph g = CallGraph::Build(files, "src/solar/p.hpp");
  EXPECT_EQ(g.closure().size(), 2u);  // each file contributes exactly once.
  EXPECT_EQ(g.Resolve("Ping").size(), 1u);
  EXPECT_EQ(g.Resolve("Pong").size(), 1u);
}

TEST(CallGraph, ResolveIncludeWalksAncestorsButNeverRepoRoot) {
  std::map<std::string, SourceFile> files;
  files.emplace("tools/lint/include_graph.hpp",
                ScanSource("", "tools/lint/include_graph.hpp"));
  files.emplace("src/fleet/runner.hpp", ScanSource("", "src/fleet/runner.hpp"));
  // Layer-style resolution.
  EXPECT_EQ(ResolveInclude(files, "src/fleet/coord.cpp", "fleet/runner.hpp"),
            "src/fleet/runner.hpp");
  // Ancestor-directory resolution (tools/<tool>/test/ sees tools/<tool>/).
  EXPECT_EQ(
      ResolveInclude(files, "tools/lint/test/t.cpp", "include_graph.hpp"),
      "tools/lint/include_graph.hpp");
  // The repo root itself is never an implicit include dir: a layer header
  // cannot be reached by spelling out "src/...".
  EXPECT_EQ(
      ResolveInclude(files, "tools/lint/test/t.cpp", "src/fleet/runner.hpp"),
      "");
}

// ---------------------------------------------------------------------------
// Layer DAG
// ---------------------------------------------------------------------------

TEST(LayerDag, ClosureAllowsTransitiveAndReflexiveEdges) {
  const LayerDag& dag = LayerDag::Project();
  EXPECT_TRUE(dag.Allows("core", "core"));
  EXPECT_TRUE(dag.Allows("core", "timeseries"));
  EXPECT_TRUE(dag.Allows("core", "common"));      // via timeseries.
  EXPECT_TRUE(dag.Allows("hw", "timeseries"));    // via core.
  EXPECT_TRUE(dag.Allows("fleet", "timeseries"));  // via solar/core.
}

TEST(LayerDag, ClosureForbidsEverythingElse) {
  const LayerDag& dag = LayerDag::Project();
  EXPECT_FALSE(dag.Allows("solar", "core"));
  EXPECT_FALSE(dag.Allows("common", "timeseries"));
  EXPECT_FALSE(dag.Allows("mgmt", "hw"));
  EXPECT_FALSE(dag.Allows("core", "fleet"));
  EXPECT_FALSE(dag.Allows("report", "metrics"));
  EXPECT_FALSE(dag.Allows("sweep", "fleet"));
}

TEST(LayerDag, DescribeParseRoundTrip) {
  const std::string text = LayerDag::Project().Describe();
  EXPECT_EQ(LayerDag::Parse(text).Describe(), text);
}

TEST(LayerDag, MatchesCommittedTable) {
  // tools/lint/layer_dag.txt is the reviewable twin of ProjectDag(); the
  // two must be byte-identical so the table cannot drift from the file
  // (and the file in turn mirrors the README diagram).
  std::ifstream in(std::string(SHEP_LINT_DIR) + "/layer_dag.txt");
  ASSERT_TRUE(in) << "missing tools/lint/layer_dag.txt";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), LayerDag::Project().Describe());
}

TEST(LayerDag, ParseRejectsForwardReferences) {
  EXPECT_THROW(LayerDag::Parse("shep-layer-dag v1\n"
                               "layer a : b\n"
                               "layer b :\n"
                               "end\n"),
               std::invalid_argument);
}

TEST(LayerDag, ParseRejectsMissingFraming) {
  EXPECT_THROW(LayerDag::Parse("layer a :\nend\n"), std::invalid_argument);
  EXPECT_THROW(LayerDag::Parse("shep-layer-dag v1\nlayer a :\n"),
               std::invalid_argument);
}

TEST(LayerDag, ExtractIncludesSkipsAngleAndCommentedOnes) {
  const SourceFile f = ScanSource(
      "#include <vector>\n"
      "#include \"fleet/runner.hpp\"\n"
      "// #include \"core/wcma.hpp\"\n",
      "src/fleet/x.cpp");
  const auto refs = ExtractIncludes(f);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].line, 2u);
  EXPECT_EQ(refs[0].path, "fleet/runner.hpp");
}

// ---------------------------------------------------------------------------
// Rule fixtures (bad trees must fire their class, good tree stays clean)
// ---------------------------------------------------------------------------

TEST(Fixtures, LayerDagViolation) {
  const LintReport r = LintTree(FixtureDir("bad/layer_dag"));
  EXPECT_EQ(CountRule(r, "layer-dag"), 1u) << Dump(r);
  EXPECT_EQ(r.findings.size(), 1u) << Dump(r);  // timeseries include is fine.
}

TEST(Fixtures, RandAndRandomDevice) {
  const LintReport r = LintTree(FixtureDir("bad/rand"));
  EXPECT_EQ(CountRule(r, "determinism-rand"), 2u) << Dump(r);
}

TEST(Fixtures, WallClock) {
  const LintReport r = LintTree(FixtureDir("bad/wallclock"));
  EXPECT_EQ(CountRule(r, "determinism-time"), 1u) << Dump(r);
}

TEST(Fixtures, EnvironmentRead) {
  const LintReport r = LintTree(FixtureDir("bad/env"));
  EXPECT_EQ(CountRule(r, "determinism-env"), 1u) << Dump(r);
}

TEST(Fixtures, UnorderedIteration) {
  const LintReport r = LintTree(FixtureDir("bad/unordered"));
  // The include line and the range-for's container type both carry the
  // token; what matters is that the fold cannot slip through unseen.
  EXPECT_GE(CountRule(r, "determinism-unordered"), 2u) << Dump(r);
}

TEST(Fixtures, BareDoubleInSerialize) {
  const LintReport r = LintTree(FixtureDir("bad/serialize_float"));
  // `<< mean` (identifier) and `<< 1.5` (literal); `<< count` must NOT
  // fire (integer).
  EXPECT_EQ(CountRule(r, "serialize-float"), 2u) << Dump(r);
}

TEST(Fixtures, MissingNodiscard) {
  const LintReport r = LintTree(FixtureDir("bad/nodiscard"));
  EXPECT_EQ(CountRule(r, "nodiscard"), 2u) << Dump(r);  // Parse + Merge.
}

TEST(Fixtures, SuppressionWithoutJustification) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_empty"));
  // The unjustified waiver does not waive: original finding + waiver
  // finding.
  EXPECT_EQ(CountRule(r, "determinism-rand"), 1u) << Dump(r);
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, SuppressionOfUnknownRule) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_unknown"));
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, StaleSuppression) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_stale"));
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, HotPathAllocReachable) {
  // The violation lives two hops from the root, across a quoted include.
  const LintReport r = LintTree(FixtureDir("bad/hot_path_alloc"));
  ASSERT_EQ(CountRule(r, "hot-path-alloc"), 1u) << Dump(r);
  const Finding& f = r.findings[0];
  EXPECT_EQ(f.file, "src/trace/grow.hpp");
  ASSERT_EQ(f.chain.size(), 2u);
  EXPECT_NE(f.chain[0].find("PushHot"), std::string::npos);
  EXPECT_NE(f.chain[1].find("Grow"), std::string::npos);
}

TEST(Fixtures, SignalSafetyForkRegion) {
  // argv assembled between fork() and execv(): two allocating calls in
  // the async-signal-safe region.
  const LintReport r = LintTree(FixtureDir("bad/signal_safety"));
  EXPECT_EQ(CountRule(r, "signal-safety"), 2u) << Dump(r);
}

TEST(Fixtures, BlockingInRtReachable) {
  const LintReport r = LintTree(FixtureDir("bad/blocking_in_rt"));
  ASSERT_EQ(CountRule(r, "blocking-in-rt"), 1u) << Dump(r);
  const Finding& f = r.findings[0];
  ASSERT_EQ(f.chain.size(), 2u);
  EXPECT_NE(f.chain[0].find("PollOnce"), std::string::npos);
}

TEST(Fixtures, RootMarkerHygiene) {
  // root(no-such-rule) and a marker attached to no definition both fire
  // the suppression rule.
  const LintReport r = LintTree(FixtureDir("bad/root_marker"));
  EXPECT_EQ(CountRule(r, "suppression"), 2u) << Dump(r);
}

TEST(Fixtures, GoodTreeLintsClean) {
  const LintReport r = LintTree(FixtureDir("good"));
  EXPECT_TRUE(r.findings.empty()) << Dump(r);
  // Both unordered waivers plus the hot-path warm-up waiver were
  // exercised, not ignored.
  EXPECT_EQ(r.suppressions_honoured, 3u);
  EXPECT_GE(r.files_scanned, 10u);
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(RealTree, LintsClean) {
  // Same check as the `lint_tree` CTest case, but through the library so
  // a failure prints the findings in the gtest log.  The floor guards
  // against the walk silently losing a directory; it is deliberately not
  // an exact pin so adding files never breaks this test.
  const LintReport r = LintTree(SHEP_REPO_ROOT);
  EXPECT_TRUE(r.findings.empty()) << Dump(r);
  EXPECT_GE(r.files_scanned, 180u);
}

TEST(RealTree, DeclaresReachabilityRoots) {
  // The contracts the reachability rules exist for must actually be
  // anchored in the sources: kernel slot loop, trace ring, fork->exec.
  const std::string waivers = ListWaivers(SHEP_REPO_ROOT);
  EXPECT_NE(waivers.find("root(hot-path-alloc)"), std::string::npos);
  EXPECT_NE(waivers.find("root(signal-safety)"), std::string::npos);
  EXPECT_NE(waivers.find("root(blocking-in-rt)"), std::string::npos);
}

TEST(Findings, GithubFormatAnnotatesFileAndLine) {
  LintReport r;
  r.findings.push_back(
      {"src/fleet/runner.cpp", 12, "layer-dag", "bad edge", {}});
  EXPECT_EQ(FormatFindings(r, /*github=*/true),
            "::error file=src/fleet/runner.cpp,line=12,"
            "title=shep_lint layer-dag::bad edge\n");
}

TEST(Findings, GithubFormatCarriesChainFirstHop) {
  LintReport r;
  r.findings.push_back({"src/a.cpp", 7, "hot-path-alloc", "allocates",
                        {"Root (src/b.hpp:3)", "Leaf (src/a.cpp:7)"}});
  EXPECT_EQ(FormatFindings(r, /*github=*/true),
            "::error file=src/a.cpp,line=7,"
            "title=shep_lint hot-path-alloc via Root (src/b.hpp:3)::"
            "allocates [chain: Root (src/b.hpp:3) -> Leaf (src/a.cpp:7)]\n");
}

TEST(Findings, TextFormatIndentsTheChain) {
  LintReport r;
  r.findings.push_back({"src/a.cpp", 7, "blocking-in-rt", "takes a lock",
                        {"Root (src/b.hpp:3)", "Leaf (src/a.cpp:7)"}});
  EXPECT_EQ(FormatFindings(r, /*github=*/false),
            "src/a.cpp:7: [blocking-in-rt] takes a lock\n"
            "    chain:\n"
            "      -> Root (src/b.hpp:3)\n"
            "      -> Leaf (src/a.cpp:7)\n");
}

}  // namespace
}  // namespace shep::lint
