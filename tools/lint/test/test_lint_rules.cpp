// test_lint_rules.cpp — unit suite of the shep_lint rules library.
//
// The committed fixture mini-trees under tools/lint/fixtures/ are the
// primary drivers: each bad/<case>/ must produce the finding class it is
// named after (and the same trees run as WILL_FAIL CTest cases through
// the shep_lint binary), while good/ must lint clean with its justified
// suppressions honoured.  On top of that: scanner token-class tests, the
// layer-DAG closure semantics, and the Describe/Parse round trip pinned
// against the committed tools/lint/layer_dag.txt.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "gtest/gtest.h"
#include "include_graph.hpp"
#include "lint_rules.hpp"
#include "source_scan.hpp"

namespace shep::lint {
namespace {

std::string FixtureDir(const std::string& name) {
  return std::string(SHEP_LINT_DIR) + "/fixtures/" + name;
}

/// Count of findings carrying `rule` in the report.
std::size_t CountRule(const LintReport& report, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string Dump(const LintReport& report) {
  return FormatFindings(report, /*github=*/false);
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

TEST(SourceScan, BlanksLineCommentsButKeepsCode) {
  const SourceFile f =
      ScanSource("int x = rand();  // rand() is fine in prose\n", "f.cpp");
  ASSERT_EQ(f.code.size(), 1u);
  EXPECT_NE(f.code[0].find("rand()"), std::string::npos);
  EXPECT_EQ(f.code[0].find("prose"), std::string::npos);
}

TEST(SourceScan, BlanksBlockCommentsAcrossLines) {
  const SourceFile f = ScanSource(
      "/* system_clock everywhere\n   second line system_clock */\n"
      "int y;\n",
      "f.cpp");
  ASSERT_EQ(f.code.size(), 3u);
  EXPECT_EQ(f.code[0].find("system_clock"), std::string::npos);
  EXPECT_EQ(f.code[1].find("system_clock"), std::string::npos);
  EXPECT_NE(f.code[2].find("int y;"), std::string::npos);
}

TEST(SourceScan, BlanksStringAndCharLiteralContents) {
  const SourceFile f = ScanSource(
      "const char* s = \"std::random_device\"; char c = 'r';\n", "f.cpp");
  EXPECT_EQ(f.code[0].find("random_device"), std::string::npos);
  // The quotes themselves survive so the line keeps its shape.
  EXPECT_NE(f.code[0].find('"'), std::string::npos);
}

TEST(SourceScan, BlanksRawStringsIncludingMultiline) {
  const SourceFile f = ScanSource(
      "auto s = R\"(rand() inside)\";\n"
      "auto t = R\"x(line one rand()\nline two getenv)x\"; int z;\n",
      "f.cpp");
  EXPECT_EQ(f.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(f.code[1].find("rand"), std::string::npos);
  EXPECT_EQ(f.code[2].find("getenv"), std::string::npos);
  EXPECT_NE(f.code[2].find("int z;"), std::string::npos);
}

TEST(SourceScan, ParsesSuppressionWithJustification) {
  const SourceFile f = ScanSource(
      "use();  // shep-lint: allow(determinism-rand) exercised error path\n",
      "f.cpp");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].line, 1u);
  EXPECT_EQ(f.suppressions[0].rule, "determinism-rand");
  EXPECT_EQ(f.suppressions[0].justification, "exercised error path");
}

TEST(SourceScan, SuppressionSeparatorsAreCosmetic) {
  const SourceFile f = ScanSource(
      "use();  // shep-lint: allow(layer-dag) -- legacy bridge\n", "f.cpp");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].justification, "legacy bridge");
}

TEST(SourceScan, SuppressionInsideStringLiteralIsIgnored) {
  const SourceFile f = ScanSource(
      "auto s = \"// shep-lint: allow(determinism-rand) nope\";\n", "f.cpp");
  EXPECT_TRUE(f.suppressions.empty());
}

// ---------------------------------------------------------------------------
// Layer DAG
// ---------------------------------------------------------------------------

TEST(LayerDag, ClosureAllowsTransitiveAndReflexiveEdges) {
  const LayerDag& dag = LayerDag::Project();
  EXPECT_TRUE(dag.Allows("core", "core"));
  EXPECT_TRUE(dag.Allows("core", "timeseries"));
  EXPECT_TRUE(dag.Allows("core", "common"));      // via timeseries.
  EXPECT_TRUE(dag.Allows("hw", "timeseries"));    // via core.
  EXPECT_TRUE(dag.Allows("fleet", "timeseries"));  // via solar/core.
}

TEST(LayerDag, ClosureForbidsEverythingElse) {
  const LayerDag& dag = LayerDag::Project();
  EXPECT_FALSE(dag.Allows("solar", "core"));
  EXPECT_FALSE(dag.Allows("common", "timeseries"));
  EXPECT_FALSE(dag.Allows("mgmt", "hw"));
  EXPECT_FALSE(dag.Allows("core", "fleet"));
  EXPECT_FALSE(dag.Allows("report", "metrics"));
  EXPECT_FALSE(dag.Allows("sweep", "fleet"));
}

TEST(LayerDag, DescribeParseRoundTrip) {
  const std::string text = LayerDag::Project().Describe();
  EXPECT_EQ(LayerDag::Parse(text).Describe(), text);
}

TEST(LayerDag, MatchesCommittedTable) {
  // tools/lint/layer_dag.txt is the reviewable twin of ProjectDag(); the
  // two must be byte-identical so the table cannot drift from the file
  // (and the file in turn mirrors the README diagram).
  std::ifstream in(std::string(SHEP_LINT_DIR) + "/layer_dag.txt");
  ASSERT_TRUE(in) << "missing tools/lint/layer_dag.txt";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), LayerDag::Project().Describe());
}

TEST(LayerDag, ParseRejectsForwardReferences) {
  EXPECT_THROW(LayerDag::Parse("shep-layer-dag v1\n"
                               "layer a : b\n"
                               "layer b :\n"
                               "end\n"),
               std::invalid_argument);
}

TEST(LayerDag, ParseRejectsMissingFraming) {
  EXPECT_THROW(LayerDag::Parse("layer a :\nend\n"), std::invalid_argument);
  EXPECT_THROW(LayerDag::Parse("shep-layer-dag v1\nlayer a :\n"),
               std::invalid_argument);
}

TEST(LayerDag, ExtractIncludesSkipsAngleAndCommentedOnes) {
  const SourceFile f = ScanSource(
      "#include <vector>\n"
      "#include \"fleet/runner.hpp\"\n"
      "// #include \"core/wcma.hpp\"\n",
      "src/fleet/x.cpp");
  const auto refs = ExtractIncludes(f);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].line, 2u);
  EXPECT_EQ(refs[0].path, "fleet/runner.hpp");
}

// ---------------------------------------------------------------------------
// Rule fixtures (bad trees must fire their class, good tree stays clean)
// ---------------------------------------------------------------------------

TEST(Fixtures, LayerDagViolation) {
  const LintReport r = LintTree(FixtureDir("bad/layer_dag"));
  EXPECT_EQ(CountRule(r, "layer-dag"), 1u) << Dump(r);
  EXPECT_EQ(r.findings.size(), 1u) << Dump(r);  // timeseries include is fine.
}

TEST(Fixtures, RandAndRandomDevice) {
  const LintReport r = LintTree(FixtureDir("bad/rand"));
  EXPECT_EQ(CountRule(r, "determinism-rand"), 2u) << Dump(r);
}

TEST(Fixtures, WallClock) {
  const LintReport r = LintTree(FixtureDir("bad/wallclock"));
  EXPECT_EQ(CountRule(r, "determinism-time"), 1u) << Dump(r);
}

TEST(Fixtures, EnvironmentRead) {
  const LintReport r = LintTree(FixtureDir("bad/env"));
  EXPECT_EQ(CountRule(r, "determinism-env"), 1u) << Dump(r);
}

TEST(Fixtures, UnorderedIteration) {
  const LintReport r = LintTree(FixtureDir("bad/unordered"));
  // The include line and the range-for's container type both carry the
  // token; what matters is that the fold cannot slip through unseen.
  EXPECT_GE(CountRule(r, "determinism-unordered"), 2u) << Dump(r);
}

TEST(Fixtures, BareDoubleInSerialize) {
  const LintReport r = LintTree(FixtureDir("bad/serialize_float"));
  // `<< mean` (identifier) and `<< 1.5` (literal); `<< count` must NOT
  // fire (integer).
  EXPECT_EQ(CountRule(r, "serialize-float"), 2u) << Dump(r);
}

TEST(Fixtures, MissingNodiscard) {
  const LintReport r = LintTree(FixtureDir("bad/nodiscard"));
  EXPECT_EQ(CountRule(r, "nodiscard"), 2u) << Dump(r);  // Parse + Merge.
}

TEST(Fixtures, SuppressionWithoutJustification) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_empty"));
  // The unjustified waiver does not waive: original finding + waiver
  // finding.
  EXPECT_EQ(CountRule(r, "determinism-rand"), 1u) << Dump(r);
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, SuppressionOfUnknownRule) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_unknown"));
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, StaleSuppression) {
  const LintReport r = LintTree(FixtureDir("bad/suppression_stale"));
  EXPECT_EQ(CountRule(r, "suppression"), 1u) << Dump(r);
}

TEST(Fixtures, GoodTreeLintsClean) {
  const LintReport r = LintTree(FixtureDir("good"));
  EXPECT_TRUE(r.findings.empty()) << Dump(r);
  // Both justified unordered waivers were exercised, not ignored.
  EXPECT_EQ(r.suppressions_honoured, 2u);
  EXPECT_GE(r.files_scanned, 7u);
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(RealTree, LintsClean) {
  // Same check as the `lint_tree` CTest case, but through the library so
  // a failure prints the findings in the gtest log.
  const LintReport r = LintTree(SHEP_REPO_ROOT);
  EXPECT_TRUE(r.findings.empty()) << Dump(r);
  EXPECT_GT(r.files_scanned, 100u);
}

TEST(Findings, GithubFormatAnnotatesFileAndLine) {
  LintReport r;
  r.findings.push_back({"src/fleet/runner.cpp", 12, "layer-dag", "bad edge"});
  EXPECT_EQ(FormatFindings(r, /*github=*/true),
            "::error file=src/fleet/runner.cpp,line=12,"
            "title=shep_lint layer-dag::bad edge\n");
}

}  // namespace
}  // namespace shep::lint
