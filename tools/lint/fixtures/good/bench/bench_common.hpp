// GOOD: a local helper header shared by bench mains, included by file
// name rather than a layer path — allowed because it resolves next to the
// including file.
#pragma once

inline int WarmupIterations() { return 3; }
