// GOOD: same-directory include plus layer includes from a consumer.
#include "bench_common.hpp"
#include "fleet/cell_state.hpp"

int main() { return WarmupIterations() > 0 ? 0 : 1; }
