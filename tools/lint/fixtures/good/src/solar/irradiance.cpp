// GOOD: solar -> common is allowed through the DAG closure (solar ->
// timeseries -> common), even though it is not a direct edge.
#include "common/util.hpp"

namespace shep {

double ScaleIrradiance(double ghi, const Ratio& ratio) {
  return ghi * ratio.value;
}

}  // namespace shep
