// GOOD: doubles flow through the serdes hexfloat helper inside Serialize;
// the bare `<<` uses are integers and separators.  The memo table is
// unordered but carries a justified waiver: it is looked up by key only,
// never iterated, so its order can't reach an accumulator.
#include "fleet/cell_state.hpp"

#include <ostream>
#include <unordered_map>  // shep-lint: allow(determinism-unordered) key lookups only; nothing ever iterates this table

namespace shep {

namespace serdes {
void WriteDouble(std::ostream& os, double value);
}

void CellState::Serialize(std::ostream& os) const {
  os << "cell " << count << ' ';
  serdes::WriteDouble(os, mean);
  os << '\n';
}

double LookupCalibration(int site) {
  static const std::unordered_map<int, double> kBySite =  // shep-lint: allow(determinism-unordered) key lookups only; nothing ever iterates this table
      {{0, 1.0}, {1, 0.97}};
  const auto it = kBySite.find(site);
  return it == kBySite.end() ? 1.0 : it->second;
}

}  // namespace shep
