// GOOD: fleet-layer state with hexfloat-clean serialization entry points.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace shep {

struct CellState {
  std::size_t count = 0;
  double mean = 0.0;

  void Serialize(std::ostream& os) const;
  [[nodiscard]] static CellState Deserialize(std::istream& is);
};

[[nodiscard]] CellState ParseCellState(const std::string& text);

[[nodiscard]] CellState MergeCellStates(const CellState& a,
                                        const CellState& b);

}  // namespace shep
