// Fixture: the correct fork->exec shape — argv built before the fork, the
// child region touching only allowlisted calls and const accessors.
#include <unistd.h>

#include <string>
#include <vector>

namespace demo {

// shep-lint: root(signal-safety)
int SpawnSafe(const std::string& path, std::vector<char*>& argv) {
  const int pid = fork();
  if (pid == 0) {
    dup2(0, 1);
    execv(path.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

}  // namespace demo
