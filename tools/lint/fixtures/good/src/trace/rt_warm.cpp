// Fixture: a justified reachability waiver — the one allocation on the
// hot path is a deliberate warm-up, documented on the offending line.
#include <cstddef>
#include <vector>

namespace demo {

// shep-lint: root(hot-path-alloc)
void WarmScratch(std::vector<double>& scratch, std::size_t n) {
  scratch.resize(n);  // shep-lint: allow(hot-path-alloc) warm-up sizing happens once, before the hot loop runs
  for (std::size_t i = 0; i < n; ++i) scratch[i] = 0.0;
}

}  // namespace demo
