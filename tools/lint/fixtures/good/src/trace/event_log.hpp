// GOOD: trace-layer telemetry record staying inside its DAG slice
// (common + report) with hexfloat-clean serialization entry points.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "report/table.hpp"

namespace shep {

struct EventLogEntry {
  std::uint64_t slot = 0;
  double value = 0.0;

  void Serialize(std::ostream& os) const;
  [[nodiscard]] static EventLogEntry Deserialize(std::istream& is);
};

}  // namespace shep
