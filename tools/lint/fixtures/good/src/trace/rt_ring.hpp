// Fixture: a hot-path root whose callees are clean — fixed-size storage,
// a resolvable helper that does arithmetic only.  Both reachability rules
// must walk this and stay silent.
#pragma once

#include <cstddef>

namespace demo {

inline int Saturate(int x, int cap) { return x > cap ? cap : x; }

class MiniRing {
 public:
  // shep-lint: root(hot-path-alloc) root(blocking-in-rt)
  bool TryPush(int value) {
    if (count_ == kCap) return false;
    slots_[count_] = Saturate(value, 1000);
    ++count_;
    return true;
  }

 private:
  static constexpr std::size_t kCap = 8;
  int slots_[kCap] = {};
  std::size_t count_ = 0;
};

}  // namespace demo
