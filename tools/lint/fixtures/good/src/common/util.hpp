// GOOD: value-returning parse entry point marked [[nodiscard]]; a
// throw-based void Validate() has nothing to discard and is exempt.
// Comments mentioning rand() or system_clock must not trip the lint, and
// neither may a string literal: "prefer std::random_device" is prose here.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace shep {

inline const char* kAdvice = "never seed from std::random_device";

struct Ratio {
  double value = 0.0;

  void Validate() const;
};

[[nodiscard]] std::optional<double> ParseRatio(std::string_view s);

}  // namespace shep
