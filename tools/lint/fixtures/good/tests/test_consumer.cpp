// GOOD: tests are consumers — they may include any layer and may use
// banned constructs (here rand()) to exercise error paths; only the
// include rules apply to them.
#include <cstdlib>

#include "fleet/cell_state.hpp"
#include "solar/irradiance.hpp"

int main() {
  return rand() % 1;
}
