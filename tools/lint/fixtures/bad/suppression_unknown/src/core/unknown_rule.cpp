// BAD: allow(...) must name a real rule; a typo here would silently waive
// nothing while looking like a sanctioned exception.
namespace shep {

int AnsweredQuestions() {
  return 42;  // shep-lint: allow(determinsm-rand) typo'd rule id
}

}  // namespace shep
