// BAD: environment-dependent seeds make runs host-dependent; seeds must
// arrive through explicit parameters (ScenarioSpec::seed).
#include <cstdlib>
#include <string>

namespace shep {

unsigned long long SeedFromEnvironment() {
  const char* value = std::getenv("SHEP_SEED");
  return value == nullptr ? 0ull : std::stoull(value);
}

}  // namespace shep
