// BAD: the waiver names the right rule but carries no justification, so
// BOTH the original finding and the suppression rule fire.
#include <cstdlib>

namespace shep {

int QuietRand() {
  return rand();  // shep-lint: allow(determinism-rand)
}

}  // namespace shep
