// BAD: range-for over an unordered container folds hash-seed iteration
// order into the accumulator, so the sum's rounding differs between runs
// and standard-library implementations.
#include <unordered_map>

namespace shep {

double FoldPerCellTotals(const std::unordered_map<int, double>& per_cell) {
  double total = 0.0;
  for (const auto& [cell, value] : per_cell) total += value;
  return total;
}

}  // namespace shep
