// Fixture: the classic fork bug — building argv (heap allocation) INSIDE
// the child of a multi-threaded parent.  Another thread can hold the heap
// lock at the fork instant, and in the child it never unlocks.
#include <unistd.h>

#include <string>
#include <vector>

namespace demo {

// shep-lint: root(signal-safety)
int SpawnChild(const std::string& path) {
  const int pid = fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(path.c_str()));
    argv.push_back(nullptr);
    execv(path.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

}  // namespace demo
