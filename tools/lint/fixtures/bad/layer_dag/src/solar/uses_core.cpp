// BAD: solar may depend on timeseries/common only; reaching into core
// inverts the layer DAG (core depends on data produced by solar's
// consumers, never the other way around).
#include "core/wcma.hpp"
#include "timeseries/trace.hpp"

namespace shep {

double SolarPeekAtPredictor() { return 0.0; }

}  // namespace shep
