// BAD: trace sits BELOW fleet in the DAG (fleet hands the sink to its
// runner); a trace-layer file including fleet headers would close a cycle
// — telemetry must never depend on the subsystem it observes.
#include "fleet/runner.hpp"
#include "report/table.hpp"

namespace shep {

double TracePeeksAtFleet() { return 0.0; }

}  // namespace shep
