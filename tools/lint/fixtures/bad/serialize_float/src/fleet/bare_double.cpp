// BAD: a double streamed bare in a Serialize body round-trips through the
// default 6-significant-digit ostream formatting, so the parsed value is
// not bit-identical to the written one.
#include <ostream>

namespace shep {

struct LossyMoments {
  std::size_t count = 0;
  double mean = 0.0;

  void Serialize(std::ostream& os) const {
    os << "moments " << count << ' ' << mean << ' ' << 1.5 << '\n';
  }
};

}  // namespace shep
