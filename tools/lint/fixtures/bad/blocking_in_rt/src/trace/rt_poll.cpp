// Fixture: a root(blocking-in-rt) function that takes a mutex one call
// deep — the latency-critical thread would park behind whoever holds it.
#include <mutex>

namespace demo {

std::mutex g_mutex;
int g_value = 0;

int ReadShared() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_value;
}

// shep-lint: root(blocking-in-rt)
int PollOnce() {
  return ReadShared();
}

}  // namespace demo
