// Fixture: root-marker hygiene — a marker naming a non-reachability rule
// and a marker that attaches to no function definition must both fire the
// (unsuppressable) suppression rule.
namespace demo {

// shep-lint: root(no-such-rule)
void A() {}

// shep-lint: root(hot-path-alloc)
int g_not_a_function = 0;

}  // namespace demo
