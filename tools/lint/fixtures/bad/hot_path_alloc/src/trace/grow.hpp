// Fixture: helper one include away from the hot-path root; the violation
// must be reported in THIS file with the chain back to the root.
#pragma once

#include <vector>

namespace demo {

inline void Grow(std::vector<int>& v, int x) {
  v.push_back(x);
}

}  // namespace demo
