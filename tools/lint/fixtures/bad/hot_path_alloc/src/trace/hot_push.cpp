// Fixture: a root(hot-path-alloc) function that allocates two calls deep —
// the lint must follow the include-transitive call graph to catch it.
#include <vector>

#include "trace/grow.hpp"

namespace demo {

// shep-lint: root(hot-path-alloc)
bool PushHot(std::vector<int>& v, int x) {
  Grow(v, x);
  return true;
}

}  // namespace demo
