// BAD: a waiver on a line that triggers nothing is stale — it would
// silently pre-authorize a future hazard nobody reviewed.
namespace shep {

int PlainArithmetic() {
  return 1 + 1;  // shep-lint: allow(determinism-rand) left over from a refactor
}

}  // namespace shep
