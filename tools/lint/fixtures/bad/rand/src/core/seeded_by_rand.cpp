// BAD: C PRNGs and std::random_device draw different sequences on every
// run, which breaks the fleet's bit-identity contract.
#include <cstdlib>
#include <random>

namespace shep {

unsigned NondeterministicSeed() {
  std::random_device device;
  return device() ^ static_cast<unsigned>(rand());
}

}  // namespace shep
