// BAD: a parse entry point whose return value can be silently dropped —
// callers that discard a parsed plan almost certainly meant to use it.
#pragma once

#include <string>
#include <vector>

namespace shep {

struct PlanStub {
  std::vector<int> shards;
};

PlanStub ParsePlanStub(const std::string& text);

PlanStub MergePlanStubs(const std::vector<PlanStub>& stubs);

}  // namespace shep
