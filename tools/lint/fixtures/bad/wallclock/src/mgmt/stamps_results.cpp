// BAD: system_clock reads make a result depend on when it ran; durations
// must come from steady_clock and feed runtime metadata only.
#include <chrono>

namespace shep {

long long WallClockStamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace shep
