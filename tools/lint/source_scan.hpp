// source_scan.hpp — lexical front end of shep_lint.
//
// The lint rules (tools/lint/lint_rules.hpp) are line-oriented pattern
// checks, so the scanner's job is to make pattern matching honest:
//
//  * `code` holds each line with comments, string literals (including raw
//    strings), and character literals blanked out to spaces — a rule that
//    greps `code` can never fire on prose in a comment or on the contents
//    of a log message, and column numbers still line up with `raw`;
//  * `suppressions` holds the per-line `// shep-lint: allow(<rule>)`
//    waivers parsed out of the comments, each with its justification text,
//    so rules can honour them without re-tokenizing;
//  * `roots` holds the `// shep-lint: root(<rule>)` markers that seed the
//    reachability rules (call_graph.hpp).
//
// A marker is only recognised when `shep-lint:` is the FIRST token of the
// comment — prose that merely mentions the marker syntax (like this
// header) parses as prose.
//
// The scanner is deliberately NOT a C++ parser: it only understands the
// token classes that would otherwise cause false positives.  That keeps it
// dependency-free (no libclang in the build image) and fast enough to run
// over the whole tree on every build.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace shep::lint {

/// One `// shep-lint: allow(<rule>) <justification>` waiver.  The
/// justification is required by the lint (an empty one is itself a
/// finding): a suppression documents WHY the hazard is safe here, not just
/// that someone wanted the tool to be quiet.
struct Suppression {
  std::size_t line = 0;  ///< 1-based line the waiver sits on.
  std::string rule;      ///< rule id inside allow(...).
  std::string justification;  ///< trimmed text after the closing paren.
};

/// One `// shep-lint: root(<rule>)` marker: the function defined on (or
/// spanning) this line is a reachability root for `rule`.  Several
/// `root(...)` groups may share one comment (`root(a) root(b)`).
struct RootMark {
  std::size_t line = 0;  ///< 1-based line the marker sits on.
  std::string rule;      ///< rule id inside root(...).
};

/// A scanned translation unit (or header).
struct SourceFile {
  /// Path as reported in findings; repo-relative with '/' separators.
  std::string path;
  std::vector<std::string> raw;   ///< original lines, no trailing '\n'.
  std::vector<std::string> code;  ///< raw with comments/literals blanked.
  std::vector<Suppression> suppressions;  ///< all waivers, any line.
  std::vector<RootMark> roots;            ///< all root markers, any line.

  /// Waivers attached to `line` (1-based).
  std::vector<const Suppression*> SuppressionsOn(std::size_t line) const;
};

/// Scans in-memory content.  `path` is only recorded for reporting.
SourceFile ScanSource(std::string_view content, std::string path);

/// Loads `file` from disk and scans it; `report_path` becomes
/// SourceFile::path.  Throws std::runtime_error if the file can't be read.
SourceFile LoadSource(const std::filesystem::path& file,
                      std::string report_path);

}  // namespace shep::lint
