// shep_trace — list, filter, and join the per-shard trace files a fleet
// run's TraceSink writes.
//
//   shep_trace list  <path...>                 one row per trace file
//   shep_trace slots <path...> [filters]       full-resolution slot records
//   shep_trace days  <path...> [filters]       per-node-day coarse summaries
//
// A <path> is a trace file or a directory (scanned for *.shtr, sorted).
// Files must come from one run — same plan fingerprint — or the join is
// refused, exactly like merging foreign fleet partials.
//
// Filters: --site CODE, --predictor LABEL, --cell ID (repeatable),
//          --node ID, --slots BEGIN:END (END exclusive; either side may be
//          empty), --trigger NAME (violation-burst | soc-low-water |
//          divergence | outage; repeatable, matches any).
// Output:  aligned table by default, --csv for machine consumption.
#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "trace/query.hpp"

namespace {

int Usage() {
  std::cerr
      << "usage: shep_trace <list|slots|days> <path...> [filters]\n"
         "  paths: trace files or directories (scanned for *.shtr)\n"
         "  filters: --site CODE --predictor LABEL --cell ID --node ID\n"
         "           --slots BEGIN:END --trigger NAME --csv\n";
  return 2;
}

/// Parses a non-negative integer option value, naming the offending option
/// in the error.  Replaces the raw std::stoull calls that reported bare
/// "stoull" on garbage, silently accepted trailing junk ("12abc" -> 12),
/// and wrapped negatives into huge IDs.
std::uint64_t ParseId(const std::string& option, const std::string& text) {
  const std::optional<long long> parsed = shep::ParseInt(text);
  if (!parsed || *parsed < 0) {
    throw std::invalid_argument(option + " wants a non-negative integer, got '" +
                                text + "'");
  }
  return static_cast<std::uint64_t>(*parsed);
}

/// Slot indices are 32-bit in the record format; reject values that a
/// static_cast would silently truncate.
std::uint32_t ParseSlot(const std::string& option, const std::string& text) {
  const std::uint64_t value = ParseId(option, text);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(option + " slot index out of range: " + text);
  }
  return static_cast<std::uint32_t>(value);
}

/// Expands a directory argument into its *.shtr files, sorted for
/// deterministic join order regardless of readdir order.
void CollectPaths(const std::string& arg, std::vector<std::string>& paths) {
  if (!std::filesystem::is_directory(arg)) {
    paths.push_back(arg);
    return;
  }
  std::vector<std::string> found;
  for (const auto& entry : std::filesystem::directory_iterator(arg)) {
    if (entry.is_regular_file() && entry.path().extension() == ".shtr") {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  paths.insert(paths.end(), found.begin(), found.end());
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command != "list" && command != "slots" && command != "days") {
    return Usage();
  }

  std::vector<std::string> paths;
  shep::TraceQuery query;
  bool csv = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--site") {
      query.site = value();
    } else if (arg == "--predictor") {
      query.predictor = value();
    } else if (arg == "--cell") {
      query.cells.push_back(ParseId("--cell", value()));
    } else if (arg == "--node") {
      query.has_node = true;
      query.node = ParseId("--node", value());
    } else if (arg == "--slots") {
      const std::string range = value();
      const std::size_t colon = range.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--slots wants BEGIN:END, got " + range);
      }
      if (colon > 0) {
        query.slot_begin = ParseSlot("--slots", range.substr(0, colon));
      }
      if (colon + 1 < range.size()) {
        query.slot_end = ParseSlot("--slots", range.substr(colon + 1));
      }
      if (query.slot_end < query.slot_begin) {
        throw std::invalid_argument("--slots begin " +
                                    std::to_string(query.slot_begin) +
                                    " is past end " +
                                    std::to_string(query.slot_end));
      }
    } else if (arg == "--trigger") {
      const std::string name = value();
      const std::uint32_t bit = shep::TraceTriggerFromName(name);
      if (bit == 0) throw std::invalid_argument("unknown trigger: " + name);
      query.trigger_mask |= bit;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return Usage();
    } else {
      CollectPaths(arg, paths);
    }
  }
  if (paths.empty()) {
    std::cerr << "no trace files found\n";
    return 1;
  }

  const std::vector<shep::TraceShardFile> files =
      shep::LoadTraceFiles(paths);
  shep::TableBuilder table =
      command == "list" ? shep::TraceFilesTable(files)
      : command == "slots"
          ? shep::TraceSlotsTable(shep::RunTraceQuery(files, query))
          : shep::TraceDaysTable(shep::RunTraceQuery(files, query));
  std::cout << (csv ? table.ToCsv() : table.ToString());
  return 0;
} catch (const std::exception& e) {
  std::cerr << "shep_trace: " << e.what() << '\n';
  return 1;
}
