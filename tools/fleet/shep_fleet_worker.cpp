// shep_fleet_worker — the worker end of the multi-process fleet runtime
// (src/fleet/coord.hpp documents the protocol).
//
// The process reads one job from stdin (the campaign's exact ScenarioSpec
// text + shard size), rebuilds the shard plan and proves identity by
// checking its fingerprint against the job's, then serves "run <shard>"
// commands: each shard runs through the ordinary RunFleetShards and goes
// back as one checksummed frame of FleetPartial::Serialize() text.  A
// heartbeat thread keeps a line flowing so the coordinator can tell a
// busy worker from a dead one.
//
// Fault-injection flags (used by tests/test_fleet_coord.cpp and the
// chaos mode of fleet_distributed_demo to exercise the coordinator's
// reassignment paths deterministically):
//   --die-after-frames N   exit(9) right after the Nth valid frame.
//   --corrupt-frame N      Nth frame: payload garbled AFTER the checksum
//                          is computed (framing lies — checksum fails).
//   --garble-frame N       Nth frame: payload garbled BEFORE the checksum
//                          (framing honest — FleetPartial::Parse fails).
//   --hang-after-frames N  after N frames, heartbeat forever but answer
//                          nothing (the straggler the shard deadline
//                          exists for).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "fleet/coord.hpp"
#include "fleet/partial.hpp"
#include "fleet/runner.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/trace_cache.hpp"
#include "trace/sink.hpp"

namespace {

std::mutex g_out_mutex;

/// Full atomic-enough write to stdout: every message goes out in one
/// locked call so heartbeats never interleave with a frame.
void WriteOut(std::string_view data) {
  std::lock_guard<std::mutex> lock(g_out_mutex);  // shep-lint: allow(blocking-in-rt) bounded critical section (one pipe write, no allocation); a stalled pipe parks control and data plane alike and is covered by the coordinator's liveness deadline
  while (!data.empty()) {
    const ssize_t wrote = ::write(STDOUT_FILENO, data.data(), data.size());
    if (wrote < 0) {
      if (errno == EINTR) continue;
      std::exit(2);  // coordinator gone; nothing sensible left to do.
    }
    data.remove_prefix(static_cast<std::size_t>(wrote));
  }
}

/// Heartbeat thread body: the worker's control plane.  One short line per
/// period, forever — the coordinator times out on silence, so this loop
/// must never park behind the data plane (sleep_for is its pacing, not a
/// hazard; the WriteOut lock is the one vetted exception, waived at its
/// definition).
// shep-lint: root(blocking-in-rt)
void HeartbeatMain(const std::atomic<bool>& stop, std::uint32_t period_ms) {
  while (!stop.load(std::memory_order_relaxed)) {
    WriteOut("hb\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
  }
}

[[noreturn]] void Fail(const std::string& message) {
  // The error must be one line for the coordinator to relay it.
  std::string one_line = message;
  for (char& c : one_line) {
    if (c == '\n') c = ' ';
  }
  WriteOut("error " + one_line + "\n");
  std::exit(1);
}

struct FaultFlags {
  std::size_t die_after_frames = 0;   ///< 0 = never.
  std::size_t corrupt_frame = 0;      ///< 1-based frame index; 0 = never.
  std::size_t garble_frame = 0;       ///< 1-based frame index; 0 = never.
  std::size_t hang_after_frames = 0;  ///< 0 = never.
};

FaultFlags ParseArgs(int argc, char** argv) {
  FaultFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    const auto value = [&]() -> std::size_t {
      const std::optional<long long> parsed =
          has_value ? shep::ParseInt(argv[i + 1]) : std::nullopt;
      if (!parsed || *parsed < 0) {
        Fail("worker flag " + std::string(arg) +
             " needs a non-negative integer");
      }
      ++i;
      return static_cast<std::size_t>(*parsed);
    };
    if (arg == "--die-after-frames") {
      flags.die_after_frames = value();
    } else if (arg == "--corrupt-frame") {
      flags.corrupt_frame = value();
    } else if (arg == "--garble-frame") {
      flags.garble_frame = value();
    } else if (arg == "--hang-after-frames") {
      flags.hang_after_frames = value();
    } else {
      Fail("unknown worker flag: " + std::string(arg));
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const FaultFlags flags = ParseArgs(argc, argv);

  shep::FleetWorkerJob job;
  shep::ShardPlan plan;
  try {
    job = shep::ParseFleetJob(std::cin);
    plan = shep::BuildShardPlan(job.spec, job.shard_size);
  } catch (const std::exception& e) {
    Fail(e.what());
  }
  if (plan.fingerprint != job.fingerprint) {
    Fail("plan fingerprint mismatch: coordinator and worker disagree about"
         " the campaign (version skew?)");
  }

  // Heartbeat: the control plane.  One short line per period, forever —
  // cheap enough to never gate, and the coordinator times out on silence.
  std::atomic<bool> stop_heartbeat{false};
  std::thread heartbeat(
      [&] { HeartbeatMain(stop_heartbeat, job.heartbeat_ms); });

  std::unique_ptr<shep::ThreadPool> pool;
  if (job.threads > 1) pool = std::make_unique<shep::ThreadPool>(job.threads);
  // One lane per entry is plenty for a single campaign; the cap (rather
  // than unbounded) is deliberate — a worker reused across many jobs would
  // otherwise grow forever (the coordinator-era leak this PR closes).
  shep::TraceCache cache(plan.lanes.size());
  std::unique_ptr<shep::TraceSink> sink;
  if (!job.trace_dir.empty()) {
    shep::TraceSinkOptions sink_options;
    sink_options.directory = job.trace_dir;
    // Size the ring to hold the largest shard outright: the worker runs
    // one shard per frame and flushes between frames, so a ring this big
    // can never overflow — trace files become a pure function of the
    // shard, byte-identical no matter which worker (or retry) wrote them.
    std::size_t max_shard_nodes = 0;
    for (const shep::ShardRange& range : plan.shards) {
      max_shard_nodes = std::max(max_shard_nodes, range.node_count());
    }
    sink_options.ring_capacity =
        std::max<std::size_t>(sink_options.ring_capacity,
                              max_shard_nodes * job.spec.days *
                                      static_cast<std::size_t>(
                                          job.spec.slots_per_day) +
                                  2);
    sink = std::make_unique<shep::TraceSink>(sink_options);
  }
  shep::FleetRunOptions run_options;
  run_options.pool = pool.get();
  run_options.shard_size = job.shard_size;
  run_options.trace_cache = &cache;
  run_options.trace_sink = sink.get();

  std::size_t frames_written = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit") break;
    if (line.rfind("run ", 0) != 0) Fail("unknown command: " + line);
    const std::optional<long long> shard = shep::ParseInt(line.substr(4));
    if (!shard || static_cast<std::size_t>(*shard) >= plan.shards.size()) {
      Fail("run command names a shard outside the plan: " + line);
    }

    std::string payload;
    try {
      const shep::FleetPartial partial = shep::RunFleetShards(
          plan, {static_cast<std::size_t>(*shard)}, run_options);
      payload = partial.Serialize();
    } catch (const std::exception& e) {
      Fail(e.what());
    }

    const std::size_t frame_index = frames_written + 1;
    std::string frame;
    if (flags.garble_frame == frame_index) {
      payload[0] = '#';  // honest checksum over an unparseable payload.
      frame = shep::EncodeFleetFrame(static_cast<std::size_t>(*shard),
                                     payload);
    } else {
      frame = shep::EncodeFleetFrame(static_cast<std::size_t>(*shard),
                                     payload);
      if (flags.corrupt_frame == frame_index) {
        // Garble the payload INSIDE the already-checksummed frame: the
        // header's byte count still matches, the checksum does not.
        frame[frame.find('\n') + 1] = '#';
      }
    }
    WriteOut(frame);
    ++frames_written;

    if (flags.die_after_frames != 0 &&
        frames_written >= flags.die_after_frames) {
      std::_Exit(9);  // no bye, no flush: an honest crash.
    }
    if (flags.hang_after_frames != 0 &&
        frames_written >= flags.hang_after_frames) {
      while (true) {  // heartbeating zombie; only SIGKILL ends it.
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    }
  }

  stop_heartbeat.store(true, std::memory_order_relaxed);
  heartbeat.join();
  WriteOut("bye\n");
  return 0;
}
