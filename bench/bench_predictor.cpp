// bench_predictor — google-benchmark micro-costs of the predictors.
//
// Host-side analogue of Table IV: how expensive is one Observe+PredictNext
// as K, D, and the predictor family vary.  (Absolute host numbers are not
// the MCU numbers — those come from repro_table4 — but the scaling with K
// must match.)
#include <benchmark/benchmark.h>

#include "core/baselines.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "core/wcma_fixed.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"

namespace {

using namespace shep;

const SlotSeries& Series48() {
  static const SlotSeries* series = [] {
    SynthOptions opt;
    opt.days = 40;
    static const PowerTrace trace =
        SynthesizeTrace(SiteByCode("ECSU"), opt);
    return new SlotSeries(trace, 48);
  }();
  return *series;
}

void RunLoop(Predictor& p, benchmark::State& state) {
  const auto& s = Series48();
  std::size_t g = 0;
  double acc = 0.0;
  for (auto _ : state) {
    p.Observe(s.boundary(g));
    acc += p.PredictNext();
    g = (g + 1) % s.size();
    if (g == 0) p.Reset();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WcmaByK(benchmark::State& state) {
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = static_cast<int>(state.range(0));
  Wcma predictor(p, 48);
  RunLoop(predictor, state);
}
BENCHMARK(BM_WcmaByK)->DenseRange(1, 6, 1);

void BM_WcmaByD(benchmark::State& state) {
  WcmaParams p;
  p.alpha = 0.7;
  p.days = static_cast<int>(state.range(0));
  p.slots_k = 2;
  Wcma predictor(p, 48);
  RunLoop(predictor, state);
}
BENCHMARK(BM_WcmaByD)->Arg(2)->Arg(5)->Arg(10)->Arg(20);

void BM_FixedWcma(benchmark::State& state) {
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = static_cast<int>(state.range(0));
  FixedWcma predictor(p, 48);
  RunLoop(predictor, state);
}
BENCHMARK(BM_FixedWcma)->Arg(1)->Arg(3)->Arg(6);

void BM_Ewma(benchmark::State& state) {
  Ewma predictor(0.5, 48);
  RunLoop(predictor, state);
}
BENCHMARK(BM_Ewma);

void BM_Persistence(benchmark::State& state) {
  Persistence predictor;
  RunLoop(predictor, state);
}
BENCHMARK(BM_Persistence);

}  // namespace
