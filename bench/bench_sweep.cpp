// bench_sweep — google-benchmark throughput of the design-exploration
// engine: the per-stage costs (BuildD / BuildQ / Score) and the full-grid
// sweep that generates the paper's Tables II/III.
#include <benchmark/benchmark.h>

#include "solar/synth.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace shep;

const SweepContext& Ctx48() {
  static const SweepContext* ctx = [] {
    SynthOptions opt;
    opt.days = 60;
    const auto trace = SynthesizeTrace(SiteByCode("ORNL"), opt);
    return new SweepContext(trace, 48);
  }();
  return *ctx;
}

void BM_BuildD(benchmark::State& state) {
  for (auto _ : state) {
    auto d = Ctx48().BuildD(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(d.eta.data());
  }
}
BENCHMARK(BM_BuildD)->Arg(2)->Arg(10)->Arg(20);

void BM_BuildQ(benchmark::State& state) {
  const auto d = Ctx48().BuildD(20);
  for (auto _ : state) {
    auto q = Ctx48().BuildQ(d, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_BuildQ)->DenseRange(1, 6, 1);

void BM_ScoreAlpha(benchmark::State& state) {
  const auto d = Ctx48().BuildD(20);
  const auto q = Ctx48().BuildQ(d, 3);
  for (auto _ : state) {
    auto s = Ctx48().Score(q, 0.7);
    benchmark::DoNotOptimize(s.mean.mape);
  }
}
BENCHMARK(BM_ScoreAlpha);

void BM_FullGridSerial(benchmark::State& state) {
  const auto grid = ParamGrid::Coarse();
  for (auto _ : state) {
    auto r = SweepWcma(Ctx48(), grid);
    benchmark::DoNotOptimize(r.points.data());
  }
}
BENCHMARK(BM_FullGridSerial)->Unit(benchmark::kMillisecond);

void BM_FullGridParallel(benchmark::State& state) {
  const auto grid = ParamGrid::Coarse();
  ThreadPool pool;
  for (auto _ : state) {
    auto r = SweepWcma(Ctx48(), grid, {}, &pool);
    benchmark::DoNotOptimize(r.points.data());
  }
}
BENCHMARK(BM_FullGridParallel)->Unit(benchmark::kMillisecond);

}  // namespace
