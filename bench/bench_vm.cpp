// bench_vm — google-benchmark of the MicroVm interpreter and the WCMA
// prediction routine it executes (host-side speed; the modelled MCU cycle
// counts are what repro_table4 reports).
#include <benchmark/benchmark.h>

#include "hw/predictor_program.hpp"
#include "hw/vm.hpp"

namespace {

using namespace shep;

WcmaVmInputs Inputs(int k) {
  WcmaVmInputs in;
  in.sample = 0.9;
  in.mu_next = 1.0;
  for (int i = 0; i < k; ++i) {
    in.recent_samples.push_back(0.8);
    in.recent_mus.push_back(0.95);
  }
  return in;
}

void BM_WcmaRoutineByK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  WcmaProgramLayout layout;
  layout.slots_k = k;
  layout.alpha = 0.7;
  const auto in = Inputs(k);
  double modelled_cycles = 0.0;
  for (auto _ : state) {
    const auto run = RunWcmaOnVm(layout, in);
    modelled_cycles = run.vm.cycles;
    benchmark::DoNotOptimize(run.prediction);
  }
  state.counters["modelled_msp430_cycles"] = modelled_cycles;
}
BENCHMARK(BM_WcmaRoutineByK)->DenseRange(1, 7, 1);

void BM_InterpreterLoop(benchmark::State& state) {
  // Tight arithmetic loop to measure raw interpreter dispatch cost.
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 0.0},    {Op::kLoadImm, 1, 0, 0, 1000.0},
      {Op::kLoadImm, 2, 0, 0, 0.0},    {Op::kLoadImm, 3, 0, 0, 1.0},
      {Op::kAdd, 0, 0, 3, 0.0},        {Op::kSub, 1, 1, 3, 0.0},
      {Op::kJgt, 4, 1, 2, 0.0},        {Op::kStore, 0, 0, 0, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  for (auto _ : state) {
    const auto r = vm.Run(prog, 100000);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3000);
}
BENCHMARK(BM_InterpreterLoop);

}  // namespace
