// repro_fig6 — Fig. 6: "Prediction algorithm overhead at different N":
// the sampling+prediction energy per day as a percentage of the deep-sleep
// energy per day, for N in {288, 96, 72, 48, 24}.
#include <iostream>

#include "common/strings.hpp"
#include "hw/energy_model.hpp"
#include "report/figure.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"

int main() {
  using namespace shep;
  repro::Banner("Figure 6", "management overhead vs sampling rate N");

  const McuPowerSpec spec;
  const CycleCosts costs;

  SynthOptions opt;
  opt.days = std::min<std::size_t>(repro::TraceDays(), 60);
  const auto trace = SynthesizeTrace(SiteByCode("NPCS"), opt);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;  // the paper's guideline configuration
  const auto ops = MeasureWakeupOps(p, trace, 48).full_work;
  const auto act = ComputeActivityEnergy(spec, costs, ops);

  TableBuilder table("Fig. 6 data: per-day energy and overhead");
  table.Columns({"N", "sampling/day", "prediction/day", "sleep/day",
                 "%overhead"});
  Series series;
  series.name = "% overhead vs sleep energy";
  const double paper_values[] = {4.85, 1.62, 1.21, 0.81, 0.40};
  Series paper;
  paper.name = "paper (Fig. 6)";
  std::size_t i = 0;
  for (int n : repro::PaperNs()) {
    const auto b = ComputeDayBudget(spec, costs, act, n, ops);
    table.AddRow({std::to_string(n),
                  FormatFixed(b.sampling_j * 1e3, 2) + " mJ",
                  FormatFixed(b.prediction_j * 1e3, 3) + " mJ",
                  FormatFixed(b.sleep_j * 1e3, 0) + " mJ",
                  FormatFixed(b.OverheadPercent(), 2) + "%"});
    series.x.push_back(n);
    series.y.push_back(b.OverheadPercent());
    paper.x.push_back(n);
    paper.y.push_back(paper_values[i++]);
  }
  std::cout << table.ToString() << "\n";
  std::cout << AsciiChartMulti({series, paper}, 72, 14) << "\n";
  std::cout << "CSV:\n" << SeriesCsv({series, paper});
  std::cout << "\nShape check: overhead scales linearly with N and stays "
               "under ~5% of sleep energy even at N=288 (paper: 4.85%, "
               "0.40% at N=24).\n";
  return 0;
}
