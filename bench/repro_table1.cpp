// repro_table1 — Table I: "Details of the data sets used."
//
// Paper: six NREL MIDC sites with 105,120 (5-min) or 525,600 (1-min)
// observations over 365 days.  We print the same inventory for the
// synthetic substitutes, plus the climate statistics that drive the
// prediction-difficulty ordering (stationary weather mix, daily-energy
// coefficient of variation).
#include <cmath>
#include <iostream>

#include "common/mathutil.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "solar/weather.hpp"

int main() {
  using namespace shep;
  repro::Banner("Table I", "data-set inventory");

  const auto traces = repro::PaperTraces();

  TableBuilder table("Table I: details of the (synthetic) data sets used");
  table.Columns({"Data Set", "Location", "Observations", "Days", "Resolution",
                 "pi(clear/partly/overcast)", "daily-energy CV"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& trace = traces[i];
    const auto& site = PaperSites()[i];
    const WeatherModel model(site.weather);
    const auto pi = model.StationaryDistribution();

    std::vector<double> daily(trace.days());
    for (std::size_t d = 0; d < trace.days(); ++d) {
      daily[d] = trace.day_energy_j(d);
    }
    const double cv = std::sqrt(Variance(daily)) / Mean(daily);

    table.AddRow({trace.name(), site.location, std::to_string(trace.size()),
                  std::to_string(trace.days()),
                  std::to_string(trace.resolution_s() / 60) +
                      (trace.resolution_s() == 60 ? " minute" : " minutes"),
                  FormatFixed(pi[0], 2) + "/" + FormatFixed(pi[1], 2) + "/" +
                      FormatFixed(pi[2], 2),
                  FormatFixed(cv, 3)});
  }
  std::cout << table.ToString();

  std::cout << "\nPaper values for reference: 5-minute sites record 105,120\n"
               "observations and 1-minute sites 525,600 over 365 days; the\n"
               "synthetic inventory above must match those counts exactly\n"
               "when SHEP_DAYS=365.\n";
  return 0;
}
