// ext_pareto — the design space as one menu: accuracy vs energy vs RAM.
//
// Tables III/IV and Figs. 6/7 each fix all but one knob.  This extension
// bench sweeps (N, α, D, K) jointly on one volatile and one sunny site,
// attaches each configuration's per-day management energy (hw model) and
// history-matrix RAM, and prints the Pareto-optimal configurations.  The
// paper's guideline configuration should appear on or near this front —
// that is the strongest possible form of "the guidelines are good".
#include <iostream>

#include "common/strings.hpp"
#include "hw/energy_model.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/pareto.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Extension", "accuracy / energy / memory Pareto front");

  const auto filter = repro::PaperFilter();
  ThreadPool pool;
  const McuPowerSpec spec;
  const CycleCosts costs;

  // Energy per wake-up depends on K (divisions) far more than on anything
  // else; measure it once per K on a reference trace.
  SynthOptions eopt;
  eopt.days = 30;
  const auto etrace = SynthesizeTrace(SiteByCode("NPCS"), eopt);
  std::vector<ActivityEnergy> energy_by_k(7);
  std::vector<OpCounts> ops_by_k(7);
  for (int k = 1; k <= 6; ++k) {
    WcmaParams p;
    p.alpha = 0.7;
    p.days = 20;
    p.slots_k = k;
    ops_by_k[static_cast<std::size_t>(k)] =
        MeasureWakeupOps(p, etrace, 48).average;
    energy_by_k[static_cast<std::size_t>(k)] = ComputeActivityEnergy(
        spec, costs, ops_by_k[static_cast<std::size_t>(k)]);
  }

  for (const char* code : {"ORNL", "PFCI"}) {
    const auto& site = SiteByCode(code);
    SynthOptions opt;
    opt.days = repro::TraceDays();
    const auto trace = SynthesizeTrace(site, opt);

    // Collect candidates: for each (N, D, K) keep the best α.
    std::vector<TradeoffPoint> points;
    const auto grid = ParamGrid::Paper();
    for (int n : repro::PaperNs()) {
      if ((kSecondsPerDay / n) % trace.resolution_s() != 0) continue;
      const SweepContext ctx(trace, n);
      if (ctx.series().grid().degenerate()) continue;
      const auto sweep = SweepWcma(ctx, grid, filter, &pool);
      for (std::size_t i_d = 0; i_d < grid.days.size(); ++i_d) {
        for (std::size_t i_k = 0; i_k < grid.ks.size(); ++i_k) {
          const SweepPoint* best = nullptr;
          for (std::size_t i_a = 0; i_a < grid.alphas.size(); ++i_a) {
            const auto& p = sweep.At(i_d, i_k, i_a);
            if (best == nullptr ||
                p.mean_stats.mape < best->mean_stats.mape) {
              best = &p;
            }
          }
          const auto& act =
              energy_by_k[static_cast<std::size_t>(best->slots_k)];
          const auto budget = ComputeDayBudget(
              spec, costs, act, n,
              ops_by_k[static_cast<std::size_t>(best->slots_k)]);
          TradeoffPoint tp;
          tp.mape = best->mean_stats.mape;
          tp.energy_j_per_day = budget.management_j();
          tp.memory_words =
              static_cast<double>(best->days_d) * n;
          tp.slots_per_day = n;
          tp.alpha = best->alpha;
          tp.days_d = best->days_d;
          tp.slots_k = best->slots_k;
          points.push_back(tp);
        }
      }
    }

    const auto front = ParetoFront(points);
    TableBuilder table("Pareto front for " + std::string(code) + " (" +
                       std::to_string(points.size()) +
                       " candidate configurations, " +
                       std::to_string(front.size()) + " non-dominated)");
    table.Columns({"N", "alpha", "D", "K", "MAPE", "mgmt energy/day",
                   "RAM (words)"});
    // The full front repeats long accuracy-vs-RAM plateaus; print every
    // other knee: first few per N plus the extremes.
    std::size_t printed = 0;
    int last_n = -1;
    std::size_t per_n = 0;
    constexpr std::size_t kMaxPerN = 6;
    for (const auto& p : front) {
      if (p.slots_per_day != last_n) {
        last_n = p.slots_per_day;
        per_n = 0;
      }
      if (++per_n > kMaxPerN) continue;
      table.AddRow({std::to_string(p.slots_per_day), FormatFixed(p.alpha, 1),
                    std::to_string(p.days_d), std::to_string(p.slots_k),
                    FormatPercent(p.mape),
                    FormatFixed(p.energy_j_per_day * 1e3, 2) + " mJ",
                    FormatFixed(p.memory_words, 0)});
      ++printed;
    }
    std::cout << table.ToString() << "(showing " << printed << " of "
              << front.size() << " front points, max " << kMaxPerN
              << " per N)\n\n";
  }

  std::cout << "Reading: every front should show the Table III/Fig. 6 "
               "economics at a glance — accuracy is bought with sampling "
               "rate (energy) first and history depth (RAM) second, with "
               "small D and K dominating the cheap end.  The paper's "
               "guideline (N=48, D~10, K=2) sits at the knee.\n";
  return 0;
}
