// repro_table2 — Table II: "Prediction error and parameter values using
// different error evaluations at N = 48 for six solar power data sets."
//
// The paper's methodological ablation: optimizing the predictor's (α, D, K)
// under MAPE′ (error vs the next boundary sample, as prior work did) versus
// under MAPE (error vs the predicted slot's mean power).  Expected shape:
// MAPE optima report much lower error and select a distinctly higher α.
#include <iostream>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Table II", "MAPE' vs MAPE optimization at N = 48");

  const auto traces = repro::PaperTraces();
  const auto grid = ParamGrid::Paper();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;

  TableBuilder table(
      "Table II: optimized (alpha, D, K) under each error function, N = 48");
  table.Columns({"Data set", "a'", "D'", "K'", "MAPE'", "a", "D", "K",
                 "MAPE"});

  double sum_alpha_prime = 0.0;
  double sum_alpha = 0.0;
  for (const auto& trace : traces) {
    const SweepContext ctx(trace, 48);
    const auto sweep = SweepWcma(ctx, grid, filter, &pool);
    const auto& by_prime = sweep.BestByMapePrime();
    const auto& by_mape = sweep.BestByMape();
    sum_alpha_prime += by_prime.alpha;
    sum_alpha += by_mape.alpha;
    table.AddRow({trace.name(), FormatFixed(by_prime.alpha, 1),
                  std::to_string(by_prime.days_d),
                  std::to_string(by_prime.slots_k),
                  FormatPercent(by_prime.boundary_stats.mape),
                  FormatFixed(by_mape.alpha, 1),
                  std::to_string(by_mape.days_d),
                  std::to_string(by_mape.slots_k),
                  FormatPercent(by_mape.mean_stats.mape)});
  }
  std::cout << table.ToString();

  std::cout << "\nShape checks vs the paper:\n"
            << "  * MAPE values are significantly lower than MAPE' values\n"
            << "  * the MAPE-optimal alpha is higher (paper: 0.6-0.7 vs "
               "0.0-0.4); measured means: "
            << FormatFixed(sum_alpha / 6.0, 2) << " vs "
            << FormatFixed(sum_alpha_prime / 6.0, 2) << "\n"
            << "  * D optimizes near its maximum (15-20) in both columns\n";
  return 0;
}
