// repro_fig7 — Fig. 7: "MAPE trends with increasing D for different data
// sets": MAPE versus the history depth D (2..20) at N = 48, holding (α, K)
// at each site's Table III optimum.  The paper's takeaway — and the basis
// of its "D ≈ 10-11 suffices" guideline — is a steep initial drop followed
// by a long flat tail.
#include <iostream>

#include "common/strings.hpp"
#include "report/figure.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Figure 7", "MAPE vs history depth D at N = 48");

  const auto traces = repro::PaperTraces();
  const auto grid = ParamGrid::Paper();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;

  std::vector<Series> all_series;
  TableBuilder table("Fig. 7 data: MAPE (%) vs D, (alpha, K) from Table III");
  std::vector<std::string> header{"D"};
  for (const auto& t : traces) header.push_back(t.name());
  table.Columns(header);

  std::vector<std::vector<double>> mape_by_site;
  for (const auto& trace : traces) {
    const SweepContext ctx(trace, 48);
    const auto sweep = SweepWcma(ctx, grid, filter, &pool);
    const auto& best = sweep.BestByMape();

    Series s;
    s.name = trace.name() + " (a=" + FormatFixed(best.alpha, 1) +
             ", K=" + std::to_string(best.slots_k) + ")";
    std::vector<double> mapes;
    for (int d : grid.days) {
      const auto* point = sweep.Find(best.alpha, d, best.slots_k);
      s.x.push_back(d);
      s.y.push_back(point->mean_stats.mape);
      mapes.push_back(point->mean_stats.mape * 100.0);
    }
    mape_by_site.push_back(mapes);
    all_series.push_back(std::move(s));
  }

  for (std::size_t di = 0; di < grid.days.size(); ++di) {
    std::vector<std::string> row{std::to_string(grid.days[di])};
    for (const auto& site_mapes : mape_by_site) {
      row.push_back(FormatFixed(site_mapes[di], 2));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString() << "\n";
  std::cout << AsciiChartMulti(all_series, 72, 18) << "\n";
  std::cout << "CSV:\n" << SeriesCsv(all_series);
  std::cout << "\nShape checks vs the paper: every curve drops steeply from "
               "D=2, flattens by D~10-11, and the site ordering (PFCI/NPCS "
               "lowest, ORNL/SPMD highest) is preserved across all D.\n";
  return 0;
}
