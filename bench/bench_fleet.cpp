// bench_fleet — fleet-runner throughput, emitted as timing JSON.
//
// Runs the same scenario serially and on a full thread pool and reports
// wall times, node throughput, and the parallel speedup as a single JSON
// object on stdout, so CI can archive the file (BENCH_fleet.json) and the
// perf trajectory of the batch layer is tracked across PRs.  A standalone
// main rather than a google-benchmark binary: the measured region is
// seconds long, needs no statistical replication framework, and this way
// the target exists even where google-benchmark is not installed.
//
// Usage: bench_fleet [--fast]     (--fast shrinks the fleet for CI)
#include <cstring>
#include <iostream>
#include <string>

#include "common/threadpool.hpp"
#include "fleet/runner.hpp"
#include "fleet/trace_cache.hpp"

int main(int argc, char** argv) {
  using namespace shep;

  const bool fast =
      argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  ScenarioSpec spec;
  spec.name = fast ? "bench_fleet_fast" : "bench_fleet";
  spec.sites = {"ORNL", "ECSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 2;
  // The MCU backends keep the interpreted-VM and op-counted hot paths in
  // the measured mix, so their cost shows up in the perf trajectory too.
  PredictorSpec wcma_fixed = wcma;
  wcma_fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec wcma_vm = wcma;
  wcma_vm.kind = PredictorKind::kWcmaVm;
  PredictorSpec ewma;
  ewma.kind = PredictorKind::kEwma;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, wcma_fixed, wcma_vm, ewma, persistence};
  spec.storage_tiers_j = {1200.0, 4000.0, 12000.0};
  spec.nodes_per_cell = fast ? 8 : 40;
  spec.days = fast ? 45 : 120;
  spec.slots_per_day = 48;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;

  FleetRunInfo serial_info;
  const FleetSummary serial = RunFleet(spec, {}, &serial_info);

  ThreadPool pool;
  FleetRunOptions parallel_options;
  parallel_options.pool = &pool;
  FleetRunInfo parallel_info;
  const FleetSummary parallel = RunFleet(spec, parallel_options,
                                         &parallel_info);

  // The two runs must agree bit-for-bit (the runner's core invariant);
  // refuse to report timings for a broken build.  Compare the raw summary
  // fields exactly — a rendered-CSV comparison would hide sub-rounding
  // divergence.
  auto moments_equal = [](const StreamingMoments& a,
                          const StreamingMoments& b) {
    return a.count == b.count && a.mean == b.mean && a.m2 == b.m2 &&
           a.min == b.min && a.max == b.max;
  };
  bool identical = serial.stats.size() == parallel.stats.size();
  for (std::size_t i = 0; identical && i < serial.stats.size(); ++i) {
    const CellAccumulator& a = serial.stats[i];
    const CellAccumulator& b = parallel.stats[i];
    identical = moments_equal(a.violation_rate, b.violation_rate) &&
                moments_equal(a.mean_duty, b.mean_duty) &&
                moments_equal(a.wasted_fraction, b.wasted_fraction) &&
                moments_equal(a.mape, b.mape) &&
                moments_equal(a.cycles_per_wakeup, b.cycles_per_wakeup) &&
                moments_equal(a.ops_per_wakeup, b.ops_per_wakeup) &&
                a.violation_hist.bins() == b.violation_hist.bins() &&
                a.cycles_hist.bins() == b.cycles_hist.bins() &&
                a.violations == b.violations &&
                a.scored_slots == b.scored_slots;
  }
  if (!identical) {
    std::cerr << "FATAL: serial and parallel summaries diverge\n";
    return 1;
  }

  // Trace-cache trajectory: the same scenario run cold (every lane
  // synthesized into the cache) and warm (every lane served from it).
  // Warm synth time is the cache's whole value proposition for campaigns
  // that re-run overlapping scenarios, so CI tracks both.
  TraceCache cache;
  FleetRunOptions cached_options;
  cached_options.pool = &pool;
  cached_options.trace_cache = &cache;
  FleetRunInfo cold_info;
  const FleetSummary cold = RunFleet(spec, cached_options, &cold_info);
  FleetRunInfo warm_info;
  const FleetSummary warm = RunFleet(spec, cached_options, &warm_info);
  if (cold.ToCsv() != serial.ToCsv() || warm.ToCsv() != serial.ToCsv()) {
    std::cerr << "FATAL: trace-cached summaries diverge\n";
    return 1;
  }
  if (warm_info.trace_cache_misses != 0) {
    std::cerr << "FATAL: warm run missed the trace cache\n";
    return 1;
  }

  const double serial_s = serial_info.synth_seconds + serial_info.sim_seconds;
  const double parallel_s =
      parallel_info.synth_seconds + parallel_info.sim_seconds;
  const auto nodes = static_cast<double>(serial.node_count);
  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"bench\": \"fleet\",\n"
            << "  \"mode\": \"" << (fast ? "fast" : "full") << "\",\n"
            << "  \"nodes\": " << serial.node_count << ",\n"
            << "  \"cells\": " << serial.cells.size() << ",\n"
            << "  \"days\": " << spec.days << ",\n"
            << "  \"unique_traces\": " << parallel_info.unique_traces << ",\n"
            << "  \"shards\": " << parallel_info.shards << ",\n"
            << "  \"threads\": " << parallel_info.threads << ",\n"
            << "  \"serial_seconds\": " << serial_s << ",\n"
            << "  \"serial_synth_seconds\": " << serial_info.synth_seconds
            << ",\n"
            << "  \"serial_sim_seconds\": " << serial_info.sim_seconds
            << ",\n"
            << "  \"parallel_seconds\": " << parallel_s << ",\n"
            << "  \"parallel_synth_seconds\": " << parallel_info.synth_seconds
            << ",\n"
            << "  \"parallel_sim_seconds\": " << parallel_info.sim_seconds
            << ",\n"
            << "  \"speedup\": " << (parallel_s > 0.0 ? serial_s / parallel_s
                                                      : 0.0)
            << ",\n"
            << "  \"nodes_per_second\": "
            << (parallel_s > 0.0 ? nodes / parallel_s : 0.0) << ",\n"
            << "  \"cache_cold_synth_seconds\": " << cold_info.synth_seconds
            << ",\n"
            << "  \"cache_warm_synth_seconds\": " << warm_info.synth_seconds
            << ",\n"
            << "  \"cache_hits\": " << warm_info.trace_cache_hits << ",\n"
            << "  \"cache_misses\": " << cold_info.trace_cache_misses << "\n"
            << "}\n";
  return 0;
}
