// bench_fleet — fleet-runner throughput, emitted as timing JSON, with a
// regression gate.
//
// Runs the same scenario serially and on a full thread pool and reports
// per-stage wall times (weather synthesis vs node simulation), per-stage
// throughput, the parallel speedup, and the advisory cost of attaching a
// stats-only TraceSink as a single JSON object on stdout,
// so CI can archive the file (BENCH_fleet.json) and the perf trajectory of
// the batch layer is tracked across PRs.  A standalone main rather than a
// google-benchmark binary: the measured region is seconds long, needs no
// statistical replication framework, and this way the target exists even
// where google-benchmark is not installed.
//
// Usage: bench_fleet [--fast] [--compare BASELINE.json] [--threshold PCT]
//
//   --fast            shrinks the fleet for CI.
//   --compare FILE    after measuring, gates against the baseline JSON:
//                     exits 1 when nodes_per_second regressed by more than
//                     the threshold (default 15 %).  Baselines from a
//                     different workload are rejected outright; baselines
//                     from a different machine class (thread-count
//                     mismatch) downgrade the gate to advisory — deltas
//                     reported, exit 0 — until the baseline is refreshed.
//                     The fresh JSON still goes to stdout first, so CI can
//                     archive it and the next PR's trajectory continues
//                     even when the gate trips.  Comparison goes to stderr.
//   --threshold PCT   regression tolerance for --compare, in percent.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/threadpool.hpp"
#include "fleet/coord.hpp"
#include "fleet/runner.hpp"
#include "fleet/trace_cache.hpp"
#include "trace/sink.hpp"

namespace {

/// Minimal extraction of `"key": <number>` from a flat JSON object — all
/// bench_fleet ever writes.  Returns false when the key is absent.
bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const char* start = json.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shep;

  bool fast = false;
  std::string compare_path;
  double threshold_pct = 15.0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[a], "--compare") == 0 && a + 1 < argc) {
      compare_path = argv[++a];
    } else if (std::strcmp(argv[a], "--threshold") == 0 && a + 1 < argc) {
      const char* arg = argv[++a];
      char* end = nullptr;
      threshold_pct = std::strtod(arg, &end);
      if (end == arg || *end != '\0' || !(threshold_pct >= 0.0) ||
          threshold_pct >= 100.0) {
        std::cerr << "bench_fleet: --threshold wants a percentage in "
                     "[0, 100), got \"" << arg << "\"\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_fleet [--fast] [--compare BASELINE.json]"
                   " [--threshold PCT]\n";
      return 2;
    }
  }

  ScenarioSpec spec;
  spec.name = fast ? "bench_fleet_fast" : "bench_fleet";
  spec.sites = {"ORNL", "ECSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 2;
  // The MCU backends keep the interpreted-VM and op-counted hot paths in
  // the measured mix, so their cost shows up in the perf trajectory too.
  PredictorSpec wcma_fixed = wcma;
  wcma_fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec wcma_vm = wcma;
  wcma_vm.kind = PredictorKind::kWcmaVm;
  PredictorSpec ewma;
  ewma.kind = PredictorKind::kEwma;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, wcma_fixed, wcma_vm, ewma, persistence};
  spec.storage_tiers_j = {1200.0, 4000.0, 12000.0};
  spec.nodes_per_cell = fast ? 8 : 40;
  spec.days = fast ? 45 : 120;
  spec.slots_per_day = 48;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;

  FleetRunStats serial_info;
  const FleetSummary serial = RunFleet(spec, {}, &serial_info);

  ThreadPool pool;
  FleetRunOptions parallel_options;
  parallel_options.pool = &pool;
  FleetRunStats parallel_info;
  const FleetSummary parallel = RunFleet(spec, parallel_options,
                                         &parallel_info);

  // The two runs must agree bit-for-bit (the runner's core invariant);
  // refuse to report timings for a broken build.  Compare the raw summary
  // fields exactly — a rendered-CSV comparison would hide sub-rounding
  // divergence.
  auto moments_equal = [](const StreamingMoments& a,
                          const StreamingMoments& b) {
    return a.count == b.count && a.mean == b.mean && a.m2 == b.m2 &&
           a.min == b.min && a.max == b.max;
  };
  bool identical = serial.stats.size() == parallel.stats.size();
  for (std::size_t i = 0; identical && i < serial.stats.size(); ++i) {
    const CellAccumulator& a = serial.stats[i];
    const CellAccumulator& b = parallel.stats[i];
    identical = moments_equal(a.violation_rate, b.violation_rate) &&
                moments_equal(a.mean_duty, b.mean_duty) &&
                moments_equal(a.wasted_fraction, b.wasted_fraction) &&
                moments_equal(a.min_soc, b.min_soc) &&
                moments_equal(a.mape, b.mape) &&
                moments_equal(a.cycles_per_wakeup, b.cycles_per_wakeup) &&
                moments_equal(a.ops_per_wakeup, b.ops_per_wakeup) &&
                moments_equal(a.availability, b.availability) &&
                moments_equal(a.post_recovery_violation_rate,
                              b.post_recovery_violation_rate) &&
                a.violation_hist.bins() == b.violation_hist.bins() &&
                a.cycles_hist.bins() == b.cycles_hist.bins() &&
                a.violations == b.violations &&
                a.scored_slots == b.scored_slots &&
                a.downtime_slots == b.downtime_slots &&
                a.recoveries == b.recoveries;
  }
  if (!identical) {
    std::cerr << "FATAL: serial and parallel summaries diverge\n";
    return 1;
  }

  // Trace-cache trajectory: the same scenario run cold (every lane
  // synthesized into the cache) and warm (every lane served from it).
  // Warm synth time is the cache's whole value proposition for campaigns
  // that re-run overlapping scenarios, so CI tracks both.
  TraceCache cache;
  FleetRunOptions cached_options;
  cached_options.pool = &pool;
  cached_options.trace_cache = &cache;
  FleetRunStats cold_info;
  const FleetSummary cold = RunFleet(spec, cached_options, &cold_info);
  FleetRunStats warm_info;
  const FleetSummary warm = RunFleet(spec, cached_options, &warm_info);
  if (cold.ToCsv() != serial.ToCsv() || warm.ToCsv() != serial.ToCsv()) {
    std::cerr << "FATAL: trace-cached summaries diverge\n";
    return 1;
  }
  if (warm_info.trace_cache_misses != 0) {
    std::cerr << "FATAL: warm run missed the trace cache\n";
    return 1;
  }

  // Telemetry overhead, priced honestly: the same parallel run with a
  // TraceSink attached in stats-only mode (empty directory — full probe,
  // ring, and drain cost, no disk noise).  Advisory JSON fields only; the
  // regression gate below still reads the untraced nodes_per_second, so
  // tracing cost shows up in the trajectory without ever tripping the
  // build.
  FleetRunOptions traced_options;
  traced_options.pool = &pool;
  // Size the rings to hold the largest shard outright, exactly like
  // shep_fleet_worker: the default 16 Ki-event ring silently dropped tens
  // of thousands of events on this workload, so the measured drain cost
  // (and the trace_events count below) covered only part of the run.
  // Unlike the worker, RunFleet runs a worker's shards back to back with
  // no flush between them, so sizing alone cannot make the run drop-free
  // when the single drain lags sixteen hot producers — block_on_full
  // turns that lag into measured backpressure instead of lost events.
  TraceSinkOptions sink_options;  // directory stays empty: stats-only.
  sink_options.block_on_full = true;
  {
    const ShardPlan sized = BuildShardPlan(spec, traced_options.shard_size);
    std::size_t max_shard_nodes = 0;
    for (const ShardRange& range : sized.shards) {
      max_shard_nodes = std::max(max_shard_nodes, range.node_count());
    }
    sink_options.ring_capacity = std::max<std::size_t>(
        sink_options.ring_capacity,
        max_shard_nodes * spec.days *
                static_cast<std::size_t>(spec.slots_per_day) +
            2);
  }
  TraceSink trace_sink(sink_options);
  traced_options.trace_sink = &trace_sink;
  FleetRunStats traced_info;
  const FleetSummary traced = RunFleet(spec, traced_options, &traced_info);
  if (traced.ToCsv() != serial.ToCsv()) {
    std::cerr << "FATAL: traced summary diverges from untraced\n";
    return 1;
  }
  if (traced_info.trace_dropped != 0) {
    std::cerr << "FATAL: traced run dropped " << traced_info.trace_dropped
              << " events despite block_on_full\n";
    return 1;
  }

  // Multi-process scaling: the same campaign through RunFleetCoordinated
  // at 1, 2, and 4 single-threaded workers, so the curve measures process
  // fan-out (fork/exec, pipes, frames, merge) and nothing else.  Each
  // merge must match the serial summary bit for bit.  Advisory JSON
  // fields; the regression gate stays on the in-process nodes_per_second.
  double coord_seconds[3] = {0.0, 0.0, 0.0};
#ifdef SHEP_FLEET_WORKER_PATH
  constexpr std::size_t kCoordWorkers[] = {1, 2, 4};
  for (int c = 0; c < 3; ++c) {
    FleetCoordOptions coord;
    coord.worker_path = SHEP_FLEET_WORKER_PATH;
    coord.workers = kCoordWorkers[c];
    coord.shard_size = FleetRunOptions{}.shard_size;
    const auto begin = std::chrono::steady_clock::now();
    const FleetSummary merged = RunFleetCoordinated(spec, coord);
    coord_seconds[c] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    if (merged.ToCsv() != serial.ToCsv()) {
      std::cerr << "FATAL: coordinated summary diverges at "
                << kCoordWorkers[c] << " worker(s)\n";
      return 1;
    }
  }
#endif

  const double serial_s = serial_info.synth_seconds + serial_info.sim_seconds;
  const double parallel_s =
      parallel_info.synth_seconds + parallel_info.sim_seconds;
  const auto nodes = static_cast<double>(serial.node_count);
  // Per-stage throughput: lane-days/s for phase 1 (its work unit is one
  // synthesized day of one weather lane), nodes/s for phase 2.
  const double lane_days =
      static_cast<double>(parallel_info.unique_traces * spec.days);
  const double nodes_per_second =
      parallel_s > 0.0 ? nodes / parallel_s : 0.0;
  auto rate = [](double units, double seconds) {
    return seconds > 0.0 ? units / seconds : 0.0;
  };
  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"bench\": \"fleet\",\n"
       << "  \"mode\": \"" << (fast ? "fast" : "full") << "\",\n"
       << "  \"nodes\": " << serial.node_count << ",\n"
       << "  \"cells\": " << serial.cells.size() << ",\n"
       << "  \"days\": " << spec.days << ",\n"
       << "  \"unique_traces\": " << parallel_info.unique_traces << ",\n"
       << "  \"shards\": " << parallel_info.shards << ",\n"
       << "  \"threads\": " << parallel_info.threads << ",\n"
       << "  \"serial_seconds\": " << serial_s << ",\n"
       << "  \"serial_synth_seconds\": " << serial_info.synth_seconds << ",\n"
       << "  \"serial_sim_seconds\": " << serial_info.sim_seconds << ",\n"
       << "  \"serial_nodes_per_second\": " << rate(nodes, serial_s) << ",\n"
       << "  \"serial_synth_lane_days_per_second\": "
       << rate(lane_days, serial_info.synth_seconds) << ",\n"
       << "  \"serial_sim_nodes_per_second\": "
       << rate(nodes, serial_info.sim_seconds) << ",\n"
       << "  \"parallel_seconds\": " << parallel_s << ",\n"
       << "  \"parallel_synth_seconds\": " << parallel_info.synth_seconds
       << ",\n"
       << "  \"parallel_sim_seconds\": " << parallel_info.sim_seconds << ",\n"
       << "  \"parallel_synth_lane_days_per_second\": "
       << rate(lane_days, parallel_info.synth_seconds) << ",\n"
       << "  \"parallel_sim_nodes_per_second\": "
       << rate(nodes, parallel_info.sim_seconds) << ",\n"
       << "  \"speedup\": " << (parallel_s > 0.0 ? serial_s / parallel_s : 0.0)
       << ",\n"
       << "  \"nodes_per_second\": " << nodes_per_second << ",\n"
       << "  \"cache_cold_synth_seconds\": " << cold_info.synth_seconds
       << ",\n"
       << "  \"cache_warm_synth_seconds\": " << warm_info.synth_seconds
       << ",\n"
       << "  \"cache_hits\": " << warm_info.trace_cache_hits << ",\n"
       << "  \"cache_misses\": " << cold_info.trace_cache_misses << ",\n"
       << "  \"traced_sim_seconds\": " << traced_info.sim_seconds << ",\n"
       << "  \"traced_sim_nodes_per_second\": "
       << rate(nodes, traced_info.sim_seconds) << ",\n"
       << "  \"trace_overhead_pct\": "
       << (parallel_info.sim_seconds > 0.0
               ? 100.0 * traced_info.sim_seconds / parallel_info.sim_seconds -
                     100.0
               : 0.0)
       << ",\n"
       << "  \"trace_events\": " << traced_info.trace_events << ",\n"
       << "  \"trace_dropped\": " << traced_info.trace_dropped;
#ifdef SHEP_FLEET_WORKER_PATH
  json << ",\n"
       << "  \"coord_workers_1_seconds\": " << coord_seconds[0] << ",\n"
       << "  \"coord_workers_2_seconds\": " << coord_seconds[1] << ",\n"
       << "  \"coord_workers_4_seconds\": " << coord_seconds[2] << ",\n"
       << "  \"coord_speedup_2w\": "
       << (coord_seconds[1] > 0.0 ? coord_seconds[0] / coord_seconds[1] : 0.0)
       << ",\n"
       << "  \"coord_speedup_4w\": "
       << (coord_seconds[2] > 0.0 ? coord_seconds[0] / coord_seconds[2] : 0.0);
#else
  (void)coord_seconds;
#endif
  json << "\n}\n";
  std::cout << json.str();

  if (compare_path.empty()) return 0;

  // ---- Regression gate -----------------------------------------------------
  // The fresh JSON is already on stdout: a tripped gate fails the build but
  // never hides the measurement that tripped it.
  std::ifstream baseline_file(compare_path);
  if (!baseline_file) {
    std::cerr << "FATAL: cannot read baseline " << compare_path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << baseline_file.rdbuf();
  const std::string baseline = buffer.str();

  double base_nps = 0.0;
  if (!ExtractJsonNumber(baseline, "nodes_per_second", &base_nps) ||
      base_nps <= 0.0) {
    std::cerr << "FATAL: baseline " << compare_path
              << " has no usable nodes_per_second\n";
    return 1;
  }
  // The gate only means something when both sides measured the same
  // workload: a fast-mode run compared against a full-mode baseline (or a
  // baseline from a differently shaped scenario) would trip or pass on
  // the workload difference, not a regression.
  for (const char* key : {"nodes", "cells", "days"}) {
    double base_value = 0.0;
    double current = 0.0;
    if (!ExtractJsonNumber(baseline, key, &base_value) ||
        !ExtractJsonNumber(json.str(), key, &current) ||
        base_value != current) {
      std::cerr << "FATAL: baseline " << compare_path << " measured \"" << key
                << "\" = " << base_value << " but this run measured "
                << current << " — different workloads are not comparable "
                << "(fast vs full mode?)\n";
      return 1;
    }
  }
  // A thread-count mismatch means the baseline came from different
  // hardware, and a wall-clock threshold across machines measures the
  // hardware change, not the code: the comparison downgrades to advisory
  // (deltas still printed, exit 0) until the baseline is refreshed from
  // this machine class — the README recommends committing the CI artifact
  // of a green run, after which thread counts match and the gate arms.
  bool advisory = false;
  {
    double base_threads = 0.0;
    if (ExtractJsonNumber(baseline, "threads", &base_threads) &&
        base_threads != static_cast<double>(parallel_info.threads)) {
      advisory = true;
      std::cerr << "compare: WARNING baseline used " << base_threads
                << " thread(s), this run used " << parallel_info.threads
                << " — cross-machine comparison, reporting deltas without "
                << "gating; refresh the baseline from this machine class\n";
    }
  }
  // Context lines (informational): how each stage moved.
  for (const char* key :
       {"serial_synth_seconds", "serial_sim_seconds", "parallel_seconds"}) {
    double base_value = 0.0;
    double current = 0.0;
    if (ExtractJsonNumber(baseline, key, &base_value) &&
        ExtractJsonNumber(json.str(), key, &current) && base_value > 0.0) {
      std::cerr << "compare: " << key << " " << base_value << " -> "
                << current << " (" << (100.0 * current / base_value - 100.0)
                << " %)\n";
    }
  }
  const double change_pct = 100.0 * nodes_per_second / base_nps - 100.0;
  std::cerr << "compare: nodes_per_second " << base_nps << " -> "
            << nodes_per_second << " (" << change_pct << " %), threshold -"
            << threshold_pct << " %\n";
  if (nodes_per_second < base_nps * (1.0 - threshold_pct / 100.0)) {
    if (advisory) {
      std::cerr << "compare: below threshold, but ADVISORY only "
                   "(cross-machine baseline)\n";
      return 0;
    }
    std::cerr << "FATAL: nodes_per_second regressed beyond the threshold\n";
    return 1;
  }
  std::cerr << "compare: PASS\n";
  return 0;
}
