// repro_table4 — Table IV: "Energy consumption of power sampling and
// prediction algorithm", plus the Fig. 5 wake-up sequence.
//
// The paper measured an MSP430F1611 at 3 V / 5 MHz.  Here the same numbers
// come from the hardware model (DESIGN.md §2): the ADC sample cost is
// Vref-settle dominated; the prediction cost is measured two independent
// ways — (a) operation counts of the fixed-point predictor run over a real
// trace, and (b) executing the prediction routine on the cycle-counted
// MicroVm — and both are converted through the active-cycle energy.
#include <iostream>

#include "common/strings.hpp"
#include "hw/energy_model.hpp"
#include "hw/predictor_program.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"

namespace {

using namespace shep;

/// Representative mid-day VM inputs for the routine's dynamic cost.
WcmaVmInputs MidDayInputs(int k) {
  WcmaVmInputs in;
  in.sample = 0.9;
  in.mu_next = 1.0;
  for (int i = 0; i < k; ++i) {
    in.recent_samples.push_back(0.8 + 0.02 * i);
    in.recent_mus.push_back(0.95);
  }
  return in;
}

}  // namespace

int main() {
  using namespace shep;
  repro::Banner("Table IV (and Fig. 5)",
                "energy of power sampling and prediction");

  const McuPowerSpec spec;
  const CycleCosts costs;

  std::cout << "Fig. 5 wake-up sequence (modelled):\n"
            << "  1. wake on sample timer                  (deep sleep -> "
               "active)\n"
            << "  2. enable Vref, sleep "
            << FormatFixed(spec.vref_settle_s * 1000.0, 0) << " ms settle @ "
            << FormatFixed(spec.vref_current_a * 1e3, 2) << " mA\n"
            << "  3. A/D conversion ("
            << FormatFixed(spec.adc_conversion_s * 1e6, 0) << " us)\n"
            << "  4. disable Vref, run prediction, deep sleep until next "
               "slot\n\n";

  // Steady-state operation counts measured on a sunny trace at N = 48.
  SynthOptions opt;
  opt.days = std::min<std::size_t>(repro::TraceDays(), 60);
  const auto trace = SynthesizeTrace(SiteByCode("NPCS"), opt);

  struct Config {
    int k;
    double alpha;
  };
  const Config configs[] = {{1, 0.7}, {7, 0.7}, {7, 0.0}};

  TableBuilder table("Table IV: energy per activity");
  table.Columns({"Hardware Activity", "Energy/Cycle (model)",
                 "VM cross-check"});
  table.AddRow({"A/D conversion",
                FormatFixed(spec.AdcSampleEnergyJ() * 1e6, 1) + " uJ", "-"});

  ActivityEnergy typical{};
  OpCounts typical_ops;
  for (const auto& cfg : configs) {
    WcmaParams p;
    p.alpha = cfg.alpha;
    p.days = 20;
    p.slots_k = cfg.k;
    const auto ops = MeasureWakeupOps(p, trace, 48).full_work;
    const auto act = ComputeActivityEnergy(spec, costs, ops);
    if (cfg.k == 1) {
      typical = act;
      typical_ops = ops;
    }

    // Independent measurement: run the predict routine on the MicroVm.
    WcmaProgramLayout layout;
    layout.slots_k = cfg.k;
    layout.alpha = cfg.alpha;
    const auto vm_run = RunWcmaOnVm(layout, MidDayInputs(cfg.k), costs);
    const double vm_predict_j =
        (vm_run.vm.cycles + costs.wakeup_overhead) *
        spec.ActiveCycleEnergyJ();

    table.AddRow(
        {"A/D + Prediction (K=" + std::to_string(cfg.k) +
             ", a=" + FormatFixed(cfg.alpha, 1) + ")",
         FormatFixed(act.sample_and_predict_j * 1e6, 2) + " uJ",
         FormatFixed((spec.AdcSampleEnergyJ() + vm_predict_j) * 1e6, 2) +
             " uJ"});
  }

  const double sleep_day_j = spec.SleepPowerW() * 86400.0;
  table.AddRow({"Low power (sleep) mode 1.4uA@3V",
                FormatFixed(sleep_day_j * 1e3, 0) + " mJ per day", "-"});
  table.AddRow({"A/D conversion 48 samples per day",
                FormatFixed(spec.AdcSampleEnergyJ() * 48.0 * 1e6, 0) +
                    " uJ per day",
                "-"});
  const auto budget48 =
      ComputeDayBudget(spec, costs, typical, 48, typical_ops);
  table.AddRow({"A/D + prediction 48 times per day",
                FormatFixed(budget48.management_j() * 1e6, 0) + " uJ per day",
                "-"});
  std::cout << table.ToString();

  std::cout << "\nPaper anchors: ADC 55 uJ; ADC+prediction 58.6 uJ (K=1, "
               "a=0.7), 63.4 uJ (K=7, a=0.7), 61.5 uJ (K=7, a=0); sleep "
               "356 mJ/day; 2640/2880 uJ per day at N=48.\n"
            << "Shape checks: prediction grows with K by roughly one "
               "software division per slot; a=0 is cheaper than a=0.7 at "
               "equal K; sampling dominates prediction; management is <1% "
               "of sleep energy at N=48.\n"
            << "Known deviation (documented in EXPERIMENTS.md): our a=0 "
               "saving is smaller than the paper's 1.9 uJ because only the "
               "blend multiplies are elided; the paper's firmware likely "
               "skipped a software floating-point path we do not model.\n";
  return 0;
}
