// repro_table3 — Table III: "Prediction results at different values of N."
//
// For every data set and every N in {288, 96, 72, 48, 24}: the optimized
// (α, D, K) under MAPE, the achieved MAPE, and the best MAPE achievable
// with K pinned to 2 (the paper's simplification guideline).  N=288 on the
// 5-minute sites is degenerate (slot mean == boundary sample) and printed
// as "0† / n/a" exactly as the paper footnotes it.
#include <iostream>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Table III", "optimized parameters and MAPE across N");

  const auto traces = repro::PaperTraces();
  const auto grid = ParamGrid::Paper();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;

  TableBuilder table("Table III: prediction results at different N");
  table.Columns({"Data Set", "N", "alpha", "D", "K", "MAPE", "MAPE@K=2"});

  for (const auto& trace : traces) {
    bool first_row = true;
    for (int n : repro::PaperNs()) {
      // 5-minute data cannot form N=288 slots with M > 1.
      const bool representable =
          (kSecondsPerDay / n) % trace.resolution_s() == 0;
      if (!representable) {
        table.AddRow({first_row ? trace.name() : "", std::to_string(n), "-",
                      "-", "-", "resolution", "n/a"});
        first_row = false;
        continue;
      }
      const SweepContext ctx(trace, n);
      const auto sweep = SweepWcma(ctx, grid, filter, &pool);
      const auto& best = sweep.BestByMape();
      if (sweep.degenerate) {
        // The paper's "0†": with one sample per slot, alpha = 1 scores an
        // exact 0 because prediction and reference coincide.
        table.AddRow({first_row ? trace.name() : "", std::to_string(n),
                      FormatFixed(best.alpha, 1), "n/a", "n/a", "0 (*)",
                      "0 (*)"});
        first_row = false;
        continue;
      }
      const auto* k2 = sweep.BestByMapeWithK(2);
      const std::string k2_cell = best.slots_k == 2 || k2 == nullptr
                                      ? "n/a"
                                      : FormatPercent(k2->mean_stats.mape);
      table.AddRow({first_row ? trace.name() : "", std::to_string(n),
                    FormatFixed(best.alpha, 1), std::to_string(best.days_d),
                    std::to_string(best.slots_k),
                    FormatPercent(best.mean_stats.mape), k2_cell});
      first_row = false;
    }
    if (&trace != &traces.back()) table.AddSeparator();
  }
  std::cout << table.ToString();
  std::cout << "(*) degenerate: at N=288 a 5-minute trace has one sample "
               "per slot, so the slot mean equals the boundary sample and "
               "alpha=1 is trivially exact — the paper's footnote case.\n";

  std::cout << "\nShape checks vs the paper:\n"
            << "  * MAPE decreases monotonically with N on every site\n"
            << "  * alpha rises toward 1 as N grows (0.5-0.6 at N=24, "
               "0.8-1.0 at N=288)\n"
            << "  * D optimizes near 20; K stays small (1-5)\n"
            << "  * MAPE@K=2 is within a fraction of a point of the "
               "unconstrained optimum\n"
            << "  * site ordering: PFCI/NPCS (desert) easiest, ORNL/SPMD "
               "(convective) hardest\n";
  return 0;
}
