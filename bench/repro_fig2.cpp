// repro_fig2 — Fig. 2: "Solar energy measured on 6 days showing variation
// in energy received during different times in a day and across days.
// Each point represents energy received during a 5 minutes interval."
//
// We render six consecutive spring days of the SPMD-like trace as (a) a
// terminal chart, (b) per-day sparklines + daily energy totals, and (c)
// CSV for external plotting.
#include <iostream>

#include "common/strings.hpp"
#include "report/figure.hpp"
#include "repro_common.hpp"
#include "timeseries/trace.hpp"

int main() {
  using namespace shep;
  repro::Banner("Figure 2", "six days of 5-minute solar energy");

  SynthOptions opt;
  opt.days = std::max<std::size_t>(repro::TraceDays(), 66);
  const auto trace = SynthesizeTrace(SiteByCode("SPMD"), opt);

  constexpr std::size_t kFirstDay = 60;  // late winter/early spring mix
  constexpr std::size_t kDays = 6;

  // Energy per 5-minute interval (J) across the 6 days, like the figure.
  Series series;
  series.name = "energy per 5-min interval (J), SPMD days 61-66";
  for (std::size_t d = 0; d < kDays; ++d) {
    const auto day = trace.day(kFirstDay + d);
    for (std::size_t i = 0; i < day.size(); ++i) {
      series.x.push_back(static_cast<double>(d * day.size() + i));
      series.y.push_back(day[i] * trace.resolution_s());
    }
  }
  std::cout << AsciiChart(series, 72, 16) << "\n";

  std::cout << "Per-day profiles (sparkline of 5-min energy) and totals:\n";
  for (std::size_t d = 0; d < kDays; ++d) {
    const auto day = trace.day(kFirstDay + d);
    std::vector<double> energy(day.size());
    for (std::size_t i = 0; i < day.size(); ++i) {
      energy[i] = day[i] * trace.resolution_s();
    }
    std::cout << "  day " << (kFirstDay + d + 1) << ": "
              << Sparkline(energy) << "  total "
              << FormatFixed(trace.day_energy_j(kFirstDay + d) / 1000.0, 1)
              << " kJ\n";
  }

  std::cout << "\nCSV (first 24 rows shown; full series has "
            << series.x.size() << " rows):\n";
  Series head;
  head.name = series.name;
  for (std::size_t i = 0; i < 24; ++i) {
    head.x.push_back(series.x[i]);
    head.y.push_back(series.y[i]);
  }
  std::cout << SeriesCsv({head});
  std::cout << "\nShape check vs the paper: pronounced diurnal bells whose\n"
               "height varies strongly across days, with ragged intra-day\n"
               "dips on partly-cloudy days.\n";
  return 0;
}
