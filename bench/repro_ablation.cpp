// repro_ablation — ablations of the design choices DESIGN.md §5 calls out
// beyond those the paper already tabulates:
//   A. Φ weighting: the paper's ramp θ(k)=k/K vs uniform weights.
//   B. ROI threshold: the 10 %-of-peak cut vs 0 % and 20 %.
//   C. Arithmetic: double vs Q16.16 fixed point (deployment fidelity).
//   D. Predictor family: WCMA vs EWMA (Kansal) vs persistence vs D-day
//      slot average — the baseline landscape the paper positions [5] in.
#include <iostream>
#include <sstream>

#include "common/strings.hpp"
#include "core/ar.hpp"
#include "core/baselines.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "core/wcma_fixed.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Ablations", "design choices behind the evaluation");

  const auto traces = repro::PaperTraces();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;
  constexpr int kN = 48;

  // Configuration from the paper's guidelines: α=0.7, D=20 (we also probe
  // D=10, the memory guideline), K=2.
  WcmaParams guideline;
  guideline.alpha = 0.7;
  guideline.days = 20;
  guideline.slots_k = 2;

  // ----------------------------------------------------- A: Φ weighting
  {
    TableBuilder t("Ablation A: conditioning weights, ramp vs uniform "
                   "(alpha=0.7, D=20, K=4, N=48)");
    t.Columns({"Data Set", "MAPE ramp", "MAPE uniform", "delta (pts)"});
    WcmaParams p = guideline;
    p.slots_k = 4;  // weighting only matters for K > 1; use a wider window
    for (const auto& trace : traces) {
      const SweepContext ctx(trace, kN);
      const auto ramp = ctx.EvaluateConfig(p, filter, WcmaWeighting::kRamp);
      const auto uni =
          ctx.EvaluateConfig(p, filter, WcmaWeighting::kUniform);
      t.AddRow({trace.name(), FormatPercent(ramp.mean.mape),
                FormatPercent(uni.mean.mape),
                FormatFixed((uni.mean.mape - ramp.mean.mape) * 100.0, 2)});
    }
    std::cout << t.ToString()
              << "Expectation: the ramp (recent slots weighted higher) is "
                 "never worse by more than noise, and usually slightly "
                 "better — supporting Eq. 5's design.\n\n";
  }

  // --------------------------------------------------- B: ROI threshold
  {
    TableBuilder t("Ablation B: region-of-interest threshold (guideline "
                   "config, N=48)");
    t.Columns({"Data Set", "MAPE @0%", "MAPE @10% (paper)", "MAPE @20%"});
    // Near-zero dawn references blow the unfiltered MAPE up by tens of
    // orders of magnitude; render those astronomically via exponent.
    auto render = [](double mape) {
      if (mape < 10.0) return FormatPercent(mape);
      std::ostringstream os;
      os.setf(std::ios::scientific);
      os.precision(1);
      os << mape * 100.0 << "%";
      return os.str();
    };
    for (const auto& trace : traces) {
      const SweepContext ctx(trace, kN);
      std::vector<std::string> row{trace.name()};
      for (double thr : {0.0, 0.10, 0.20}) {
        RoiFilter f = filter;
        f.threshold_fraction = thr;
        row.push_back(render(ctx.EvaluateConfig(guideline, f).mean.mape));
      }
      t.AddRow(row);
    }
    std::cout << t.ToString()
              << "Expectation: with no threshold, dawn/dusk slots with tiny "
                 "denominators inflate MAPE dramatically — the paper's "
                 "motivation for excluding them; 10% vs 20% differs far "
                 "less.\n\n";
  }

  // ------------------------------------------------ C: double vs Q16.16
  {
    TableBuilder t("Ablation C: evaluation (double) vs deployment (Q16.16) "
                   "arithmetic (guideline config, N=48)");
    t.Columns({"Data Set", "MAPE double", "MAPE fixed", "delta (pts)"});
    for (const auto& trace : traces) {
      const SlotSeries series(trace, kN);
      Wcma ref(guideline, kN);
      FixedWcma fx(guideline, kN);
      const auto ref_stats =
          ScorePredictor(ref, series, ErrorTarget::kSlotMean, filter);
      const auto fx_stats =
          ScorePredictor(fx, series, ErrorTarget::kSlotMean, filter);
      t.AddRow({trace.name(), FormatPercent(ref_stats.mape),
                FormatPercent(fx_stats.mape),
                FormatFixed((fx_stats.mape - ref_stats.mape) * 100.0, 3)});
    }
    std::cout << t.ToString()
              << "Expectation: Q16.16 quantisation costs well under 0.5 "
                 "MAPE points — the MCU build is faithful to the "
                 "evaluation.\n\n";
  }

  // ----------------------------------------------- D: predictor family
  {
    TableBuilder t("Ablation D: predictor family at N=48 (guideline "
                   "parameters where applicable)");
    t.Columns({"Data Set", "WCMA", "AR(3)", "EWMA(0.5)", "Persistence",
               "SlotAvg(D=20)", "PrevDay"});
    for (const auto& trace : traces) {
      const SlotSeries series(trace, kN);
      Wcma wcma(guideline, kN);
      ArPredictor ar(ArParams{}, kN);
      Ewma ewma(0.5, kN);
      Persistence persist;
      SlotMovingAverage sma(20, kN);
      PreviousDay prev(kN);
      auto mape = [&](Predictor& p) {
        return FormatPercent(
            ScorePredictor(p, series, ErrorTarget::kSlotMean, filter).mape);
      };
      t.AddRow({trace.name(), mape(wcma), mape(ar), mape(ewma),
                mape(persist), mape(sma), mape(prev)});
    }
    std::cout << t.ToString()
              << "Expectation: WCMA < min(EWMA, persistence, slot-average, "
                 "previous-day) on every site — the reason the paper "
                 "evaluates [5] rather than [2].\n";
  }
  return 0;
}
