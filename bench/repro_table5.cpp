// repro_table5 — Table V: "Results for dynamic parameters selection
// varying both α and K, only K at a fixed α and vice versa."
//
// The clairvoyant oracle study (Sec. IV-C): at every prediction the best
// α and/or K on the grid is chosen with perfect hindsight, lower-bounding
// what a realisable dynamic selector could achieve.  D is fixed at 20.
// The paper tabulates four sites (SPMD, ECSU, ORNL, HSU); we print all six
// for completeness — the extra two desert sites behave consistently.
#include <iostream>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/dynamic.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Table V", "clairvoyant dynamic parameter selection");

  const auto traces = repro::PaperTraces();
  const auto grid = ParamGrid::Paper();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;
  constexpr int kDynamicD = 20;

  TableBuilder table(
      "Table V: static vs clairvoyant-dynamic MAPE (D = 20)");
  table.Columns({"Data Set", "N", "Static MAPE", "K+a MAPE", "a (K only)",
                 "K-only MAPE", "K (a only)", "a-only MAPE"});

  double gain_accum = 0.0;
  std::size_t gain_count = 0;
  for (const auto& trace : traces) {
    bool first_row = true;
    for (int n : repro::PaperNs()) {
      const bool representable =
          (kSecondsPerDay / n) % trace.resolution_s() == 0;
      if (!representable) {
        table.AddRow({first_row ? trace.name() : "", std::to_string(n), "-",
                      "-", "-", "-", "-", "-"});
        first_row = false;
        continue;
      }
      const SweepContext ctx(trace, n);
      if (ctx.series().grid().degenerate()) {
        table.AddRow({first_row ? trace.name() : "", std::to_string(n),
                      "0 (*)", "0 (*)", "n/a", "0 (*)", "n/a", "0 (*)"});
        first_row = false;
        continue;
      }
      // Static reference: the Table III optimum (D free) for this (set, N).
      const auto sweep = SweepWcma(ctx, grid, filter, &pool);
      const double static_mape = sweep.BestByMape().mean_stats.mape;
      const auto dyn = EvaluateDynamic(ctx, kDynamicD, grid, filter);

      table.AddRow({first_row ? trace.name() : "", std::to_string(n),
                    FormatPercent(static_mape),
                    FormatPercent(dyn.both_mape),
                    FormatFixed(dyn.k_only_alpha, 1),
                    FormatPercent(dyn.k_only_mape),
                    std::to_string(dyn.alpha_only_k),
                    FormatPercent(dyn.alpha_only_mape)});
      first_row = false;
      gain_accum += static_mape - dyn.both_mape;
      ++gain_count;
    }
    table.AddSeparator();
  }
  std::cout << table.ToString();
  std::cout << "(*) degenerate N=288 on 5-minute data, as in Table III.\n";

  std::cout << "\nAverage (static - dynamic K+a) MAPE gain across "
            << gain_count << " cells: "
            << FormatPercent(gain_accum / static_cast<double>(gain_count))
            << "\n";
  std::cout << "\nShape checks vs the paper:\n"
            << "  * K+a oracle gives the largest gain, then a-only, then "
               "K-only\n"
            << "  * absolute gains grow as N decreases\n"
            << "  * the K-only oracle prefers LOW fixed alpha (paper: "
               "0.0-0.4) and the a-only oracle prefers HIGH fixed K "
               "(paper: mostly 6)\n"
            << "  * dynamic accuracy at N=48 rivals static accuracy at "
               "N=288 (paper Sec. IV-C)\n";
  return 0;
}
