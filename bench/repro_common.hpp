// repro_common.hpp — shared plumbing for the bench/repro_* harnesses.
//
// Every reproduction binary uses the same protocol as the paper's Sec. IV-A:
// 365-day traces, evaluation over days 21..365, samples >= 10 % of peak.
// SHEP_DAYS (environment) shortens the traces for quick runs; the printed
// header always states the protocol actually used.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/error.hpp"
#include "solar/synth.hpp"
#include "timeseries/trace.hpp"

namespace shep::repro {

/// Trace length: SHEP_DAYS env var, default 365 (the paper's year).
inline std::size_t TraceDays() {
  if (const char* env = std::getenv("SHEP_DAYS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 25) return static_cast<std::size_t>(v);
    std::cerr << "SHEP_DAYS must be >= 25; using 365\n";
  }
  return 365;
}

/// The paper's evaluation filter: days 21.. (0-based index 20), >= 10 % of
/// the peak value.
inline RoiFilter PaperFilter() {
  RoiFilter f;
  f.first_day = 20;
  f.threshold_fraction = 0.10;
  return f;
}

/// Synthesizes all six paper sites at TraceDays() length.
inline std::vector<PowerTrace> PaperTraces() {
  SynthOptions opt;
  opt.days = TraceDays();
  return SynthesizePaperTraces(opt);
}

/// Prints the standard harness banner.
inline void Banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << artifact << " — " << what << "\n"
            << "Protocol: " << TraceDays()
            << "-day synthetic traces (see DESIGN.md §2), evaluation days "
               "21.., samples >= 10% of peak, MAPE per Sec. III\n"
            << "==============================================================\n";
}

/// The paper's N axis.
inline const std::vector<int>& PaperNs() {
  static const std::vector<int> ns{288, 96, 72, 48, 24};
  return ns;
}

}  // namespace shep::repro
