// ext_dynamic — the paper's future work, built: a realizable dynamic
// (α, K) selector (core/adaptive.hpp) benchmarked against the static
// optimum and the clairvoyant oracle of Table V.
//
// Paper Sec. IV-C closes with: "These results show that it is promising to
// develop dynamic parameters selection algorithms that can achieve less
// than 10% average error without the need to use higher sampling rates."
// This harness answers the question the paper leaves open — how much of
// the clairvoyant gain can a causal selector actually bank?
#include <iostream>

#include "common/strings.hpp"
#include "core/adaptive.hpp"
#include "report/table.hpp"
#include "repro_common.hpp"
#include "sweep/dynamic.hpp"
#include "sweep/sweep.hpp"

int main() {
  using namespace shep;
  repro::Banner("Extension (paper Sec. IV-C future work)",
                "realizable dynamic (alpha, K) selection");

  const auto traces = repro::PaperTraces();
  const auto grid = ParamGrid::Paper();
  const auto filter = repro::PaperFilter();
  ThreadPool pool;
  constexpr int kD = 10;  // the paper's memory guideline

  TableBuilder table(
      "Static optimum vs realizable adaptive vs clairvoyant oracle "
      "(N = 48, D = 10 for adaptive/oracle)");
  table.Columns({"Data Set", "Static MAPE", "Adaptive MAPE", "Oracle K+a",
                 "oracle gain captured", "top (a,K) chosen"});

  for (const auto& trace : traces) {
    const SweepContext ctx(trace, 48);
    const auto sweep = SweepWcma(ctx, grid, filter, &pool);
    const double static_mape = sweep.BestByMape().mean_stats.mape;
    const auto oracle = EvaluateDynamic(ctx, kD, grid, filter);

    AdaptiveWcmaParams ap;
    ap.days = kD;
    AdaptiveWcma adaptive(ap, 48);
    const SlotSeries series(trace, 48);
    const double adaptive_mape =
        ScorePredictor(adaptive, series, ErrorTarget::kSlotMean, filter)
            .mape;

    // Which candidate won most of the time?
    const auto& counts = adaptive.selection_counts();
    std::size_t top = 0;
    for (std::size_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[top]) top = c;
    }
    const double top_alpha = ap.alphas[top / ap.ks.size()];
    const int top_k = ap.ks[top % ap.ks.size()];
    const double top_share =
        static_cast<double>(counts[top]) /
        static_cast<double>(series.size());

    // Fraction of the (static - oracle) gap the causal selector closed.
    const double gap = static_mape - oracle.both_mape;
    const double captured =
        gap > 1e-12 ? (static_mape - adaptive_mape) / gap : 0.0;

    table.AddRow({trace.name(), FormatPercent(static_mape),
                  FormatPercent(adaptive_mape),
                  FormatPercent(oracle.both_mape),
                  FormatPercent(captured, 0),
                  "a=" + FormatFixed(top_alpha, 1) + ",K=" +
                      std::to_string(top_k) + " (" +
                      FormatPercent(top_share, 0) + ")"});
  }
  std::cout << table.ToString();

  std::cout
      << "\nReading: the oracle is a hindsight bound, so 'captured' "
         "fractions are expected to be modest — the selector's real value "
         "is robustness: it tracks the best static configuration per site "
         "WITHOUT per-site tuning (compare the Adaptive column against "
         "Table III's per-site optima), which is precisely the deployment "
         "problem the paper's guidelines try to solve by hand.\n";
  return 0;
}
