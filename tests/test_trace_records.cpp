// Trace-record serialization: the telemetry layer's exactness contract.
//
// Trace files cross process and machine boundaries like fleet partials
// do, so their records must round-trip doubles BIT-identically — including
// the representation's edge cases (signed zero, subnormals, infinities,
// NaN), mirroring tests/test_serdes.cpp for the shared hexfloat helpers.
// The suite also pins the ring buffer's loss accounting: a full ring DROPS
// and COUNTS, it never blocks and never lies.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "trace/record.hpp"
#include "trace/ring_buffer.hpp"
#include "trace/trace_file.hpp"

namespace shep {
namespace {

// EXPECT_EQ(0.0, -0.0) passes; comparing the bit patterns is the real
// exactness claim (and the only way to compare NaNs at all).
void ExpectBitIdentical(double expected, double actual) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(expected),
            std::bit_cast<std::uint64_t>(actual))
      << "expected " << expected << ", got " << actual;
}

/// The adversarial doubles: both zeros, the subnormal range's ends, a
/// subnormal with a busy mantissa, the finite extrema, and both infinities
/// (NaN is exercised separately — its bit pattern is not unique).
std::vector<double> EdgeValues() {
  return {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::bit_cast<double>(std::uint64_t{0x000FFFFFFFFFFFFFull}),
      std::bit_cast<double>(std::uint64_t{0x000FEDCBA9876543ull}),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      1.0 / 3.0,
  };
}

TraceRecord RoundTrip(const TraceRecord& r) {
  std::stringstream ss;
  r.Serialize(ss);
  return TraceRecord::Deserialize(ss);
}

TraceDayRecord RoundTrip(const TraceDayRecord& r) {
  std::stringstream ss;
  r.Serialize(ss);
  return TraceDayRecord::Deserialize(ss);
}

TEST(TraceRecordSerde, SlotRecordRoundTripsDoubleEdges) {
  for (double value : EdgeValues()) {
    TraceRecord r;
    r.node = 123456789ull;
    r.cell = 42;
    r.slot = 4095;
    r.trigger_mask = kTraceTriggerSocLowWater | kTraceTriggerDivergence;
    r.violated = true;
    r.soc = value;
    r.predicted_w = -value;
    r.actual_w = value;
    r.duty = value;
    const TraceRecord back = RoundTrip(r);
    EXPECT_EQ(back.node, r.node);
    EXPECT_EQ(back.cell, r.cell);
    EXPECT_EQ(back.slot, r.slot);
    EXPECT_EQ(back.trigger_mask, r.trigger_mask);
    EXPECT_EQ(back.violated, r.violated);
    ExpectBitIdentical(r.soc, back.soc);
    ExpectBitIdentical(r.predicted_w, back.predicted_w);
    ExpectBitIdentical(r.actual_w, back.actual_w);
    ExpectBitIdentical(r.duty, back.duty);
  }
}

TEST(TraceRecordSerde, NanSurvivesAsNan) {
  TraceRecord r;
  r.predicted_w = std::numeric_limits<double>::quiet_NaN();
  const TraceRecord back = RoundTrip(r);
  EXPECT_TRUE(std::isnan(back.predicted_w));
}

TEST(TraceRecordSerde, DayRecordRoundTripsDoubleEdges) {
  for (double value : EdgeValues()) {
    TraceDayRecord r;
    r.node = 7;
    r.cell = 3;
    r.day = 29;
    r.slots = 48;
    r.violations = 48;
    r.min_soc = value;
    r.mean_duty = -value;
    r.max_abs_error_w = value;
    const TraceDayRecord back = RoundTrip(r);
    EXPECT_EQ(back.day, r.day);
    EXPECT_EQ(back.slots, r.slots);
    EXPECT_EQ(back.violations, r.violations);
    ExpectBitIdentical(r.min_soc, back.min_soc);
    ExpectBitIdentical(r.mean_duty, back.mean_duty);
    ExpectBitIdentical(r.max_abs_error_w, back.max_abs_error_w);
  }
}

TEST(TraceRecordSerde, RejectsMalformedRecords) {
  // Wrong leading token.
  {
    std::istringstream is("slit 1 2 3 0 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0");
    EXPECT_THROW((void)TraceRecord::Deserialize(is), std::exception);
  }
  // Unknown trigger bit (16 is outside the defined mask).
  {
    std::istringstream is("slot 1 2 3 16 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0");
    EXPECT_THROW((void)TraceRecord::Deserialize(is), std::exception);
  }
  // Violation flag must be 0/1.
  {
    std::istringstream is("slot 1 2 3 0 2 0x0p+0 0x0p+0 0x0p+0 0x0p+0");
    EXPECT_THROW((void)TraceRecord::Deserialize(is), std::exception);
  }
  // More violations than slots in a day summary.
  {
    std::istringstream is("day 1 2 3 10 11 0x0p+0 0x0p+0 0x0p+0");
    EXPECT_THROW((void)TraceDayRecord::Deserialize(is), std::exception);
  }
  // Truncated record.
  {
    std::istringstream is("slot 1 2 3 0 0 0x0p+0");
    EXPECT_THROW((void)TraceRecord::Deserialize(is), std::exception);
  }
}

TEST(TraceRecordSerde, TriggerNamesRoundTrip) {
  for (const TraceTrigger t :
       {kTraceTriggerViolationBurst, kTraceTriggerSocLowWater,
        kTraceTriggerDivergence, kTraceTriggerOutage}) {
    EXPECT_EQ(TraceTriggerFromName(TraceTriggerName(t)), t);
  }
  EXPECT_EQ(TraceTriggerFromName("not-a-trigger"), 0u);
  EXPECT_EQ(TraceTriggerMaskName(0), "-");
  EXPECT_EQ(
      TraceTriggerMaskName(kTraceTriggerViolationBurst |
                           kTraceTriggerDivergence | kTraceTriggerOutage),
      "violation-burst+divergence+outage");
}

TEST(TraceFileSerde, ShardFileRoundTripsExactly) {
  TraceShardFile file;
  file.scenario_name = "edges";
  file.fingerprint = 0xFEEDFACECAFEBEEFull;
  file.shard = 17;
  file.slots_per_day = 48;
  file.days = 30;
  file.cells.push_back({4, "HSU", "WCMA", 1500.0});
  file.cells.push_back({5, "PFCI", "WCMA#1", 6000.0});
  for (double value : EdgeValues()) {
    TraceRecord r;
    r.node = 12;
    r.cell = 4;
    r.slot = 100;
    r.trigger_mask = kTraceTriggerViolationBurst;
    r.soc = value;
    file.records.push_back(r);
    TraceDayRecord d;
    d.node = 13;
    d.cell = 5;
    d.day = 2;
    d.slots = 48;
    d.min_soc = value;
    file.day_records.push_back(d);
  }
  file.dropped_events = 9;

  std::stringstream ss;
  file.Serialize(ss);
  const TraceShardFile back = TraceShardFile::Parse(ss);
  EXPECT_EQ(back.scenario_name, file.scenario_name);
  EXPECT_EQ(back.fingerprint, file.fingerprint);
  EXPECT_EQ(back.shard, file.shard);
  EXPECT_EQ(back.slots_per_day, file.slots_per_day);
  EXPECT_EQ(back.days, file.days);
  ASSERT_EQ(back.cells.size(), file.cells.size());
  EXPECT_EQ(back.cells[1].site_code, "PFCI");
  EXPECT_EQ(back.cells[1].predictor_label, "WCMA#1");
  ExpectBitIdentical(file.cells[0].storage_j, back.cells[0].storage_j);
  ASSERT_EQ(back.records.size(), file.records.size());
  ASSERT_EQ(back.day_records.size(), file.day_records.size());
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    ExpectBitIdentical(file.records[i].soc, back.records[i].soc);
    ExpectBitIdentical(file.day_records[i].min_soc,
                       back.day_records[i].min_soc);
  }
  EXPECT_EQ(back.dropped_events, 9u);

  // The round-tripped file re-serializes byte-identically.
  std::ostringstream again;
  back.Serialize(again);
  std::ostringstream first;
  file.Serialize(first);
  EXPECT_EQ(again.str(), first.str());
}

TEST(TraceRing, OverflowDropsAndCountsExactly) {
  TraceRing ring(8);  // rounds to capacity 8.
  ASSERT_EQ(ring.capacity(), 8u);
  TraceEvent e;
  std::size_t accepted = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    e.slot = i;
    if (ring.TryPush(e)) ++accepted;
  }
  // Exactly capacity events fit; every refusal is counted, never silent.
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.PopBatch(out, 100), 8u);
  ASSERT_EQ(out.size(), 8u);
  // FIFO order, and the survivors are the FIRST pushes (drops are the
  // latecomers, so a full ring preserves the oldest context).
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].slot, i);
  EXPECT_TRUE(ring.empty());

  // Space freed by the pop is reusable and the drop counter is monotonic.
  EXPECT_TRUE(ring.TryPush(e));
  EXPECT_EQ(ring.dropped(), 12u);
}

TEST(TraceRing, PopBatchHonorsMax) {
  TraceRing ring(8);
  TraceEvent e;
  for (std::uint32_t i = 0; i < 6; ++i) {
    e.slot = i;
    ASSERT_TRUE(ring.TryPush(e));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.PopBatch(out, 4), 4u);
  EXPECT_EQ(ring.PopBatch(out, 4), 2u);
  ASSERT_EQ(out.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].slot, i);
}

}  // namespace
}  // namespace shep
