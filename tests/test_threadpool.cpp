// Tests for common/threadpool.hpp.
#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace shep {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorksWithoutPool) {
  std::vector<int> hits(50, 0);
  ParallelFor(nullptr, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

// Regression: a throwing body used to escape WorkerLoop and
// std::terminate the process (and leak in_flight_, wedging Wait forever).
// The first exception of the batch must surface at the join instead, and
// the pool must stay fully usable afterwards.
TEST(ParallelFor, RethrowsTaskExceptionAtJoin) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [&ran](std::size_t i) {
                    ran.fetch_add(1);
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // Iterations claimed after the failure are abandoned, never half-run.
  EXPECT_LE(ran.load(), 100);

  // The pool is not wedged: a fresh batch and a global Wait both complete.
  std::atomic<int> after{0};
  ParallelFor(&pool, 50, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
  pool.Wait();
}

// The serial (inline) path propagates exceptions the same way.
TEST(ParallelFor, RethrowsTaskExceptionInline) {
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(nullptr, 10,
                           [&ran](std::size_t i) {
                             ran.fetch_add(1);
                             if (i == 3) throw std::logic_error("inline");
                           }),
               std::logic_error);
  EXPECT_EQ(ran.load(), 4);  // inline execution stops at the throw.
}

// Regression: ParallelFor used to join through the pool-global in_flight_
// counter, so two concurrent batches each waited for the OTHER's tasks
// too.  Here batch A's iterations only finish after batch B's join has
// returned — under the old global join that is a deadlock (B's join waits
// for A's tasks, A's tasks wait for B's join); with per-batch counters it
// completes.
TEST(ParallelFor, OverlappingBatchesJoinIndependently) {
  ThreadPool pool(4);
  std::atomic<int> a_started{0};
  std::atomic<bool> release_a{false};
  std::atomic<int> a_done{0};

  std::thread runner_a([&] {
    ParallelFor(&pool, 2, [&](std::size_t) {
      a_started.fetch_add(1);
      while (!release_a.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      a_done.fetch_add(1);
    });
  });

  // Wait until batch A genuinely occupies two workers.
  while (a_started.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Batch B must come and go while A is still in flight.
  std::atomic<int> b_done{0};
  ParallelFor(&pool, 2, [&b_done](std::size_t) { b_done.fetch_add(1); });
  EXPECT_EQ(b_done.load(), 2);
  EXPECT_EQ(a_done.load(), 0);  // A is provably still running at B's join.

  release_a.store(true);
  runner_a.join();
  EXPECT_EQ(a_done.load(), 2);
}

TEST(ParallelFor, ResultsMatchSerialExecution) {
  ThreadPool pool(8);
  std::vector<double> parallel_out(512), serial_out(512);
  auto work = [](std::size_t i) {
    double acc = 0.0;
    for (int k = 1; k < 50; ++k) acc += 1.0 / (static_cast<double>(i) + k);
    return acc;
  };
  ParallelFor(&pool, parallel_out.size(),
              [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = work(i);
  }
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForWorker, WorkerCountMatchesHelperAndBoundsIds) {
  ThreadPool pool(4);
  EXPECT_EQ(ParallelWorkerCount(nullptr, 100), 1u);
  EXPECT_EQ(ParallelWorkerCount(&pool, 0), 1u);
  EXPECT_EQ(ParallelWorkerCount(&pool, 1), 1u);
  EXPECT_EQ(ParallelWorkerCount(&pool, 3), 3u);
  EXPECT_EQ(ParallelWorkerCount(&pool, 100), 4u);

  const std::size_t bound = ParallelWorkerCount(&pool, 64);
  std::vector<std::atomic<int>> visits(64);
  std::atomic<bool> id_in_range{true};
  ParallelForWorker(&pool, 64, [&](std::size_t worker, std::size_t i) {
    if (worker >= bound) id_in_range = false;
    ++visits[i];
  });
  EXPECT_TRUE(id_in_range.load());
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForWorker, SameWorkerIdNeverRunsConcurrently) {
  // The contract that makes per-worker scratch race-free: iterations that
  // report the same worker id are fully serialized.  Each id owns a flag;
  // observing it already set from another in-flight iteration would mean
  // two iterations shared an id concurrently.
  ThreadPool pool(4);
  const std::size_t bound = ParallelWorkerCount(&pool, 256);
  std::vector<std::atomic<int>> in_flight(bound);
  std::atomic<bool> overlap{false};
  ParallelForWorker(&pool, 256, [&](std::size_t worker, std::size_t) {
    if (in_flight[worker].fetch_add(1) != 0) overlap = true;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    in_flight[worker].fetch_sub(1);
  });
  EXPECT_FALSE(overlap.load());
}

TEST(ParallelForWorker, InlineExecutionUsesWorkerZero) {
  std::vector<std::size_t> ids;
  ParallelForWorker(nullptr, 5, [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(i, ids.size());
    ids.push_back(worker);
  });
  EXPECT_EQ(ids, std::vector<std::size_t>(5, 0u));
}

}  // namespace
}  // namespace shep
