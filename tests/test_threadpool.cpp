// Tests for common/threadpool.hpp.
#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace shep {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorksWithoutPool) {
  std::vector<int> hits(50, 0);
  ParallelFor(nullptr, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, ResultsMatchSerialExecution) {
  ThreadPool pool(8);
  std::vector<double> parallel_out(512), serial_out(512);
  auto work = [](std::size_t i) {
    double acc = 0.0;
    for (int k = 1; k < 50; ++k) acc += 1.0 / (static_cast<double>(i) + k);
    return acc;
  };
  ParallelFor(&pool, parallel_out.size(),
              [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = work(i);
  }
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace shep
