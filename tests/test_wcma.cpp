// Tests for core/wcma.hpp — Eq. 1–5 semantics.
#include "core/wcma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/baselines.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

// A tiny deterministic "trace": N=4 slots/day, with day d slot j boundary
// sample = base(j) * daylevel(d).
std::vector<double> MiniDay(double level) {
  return {0.0, 2.0 * level, 4.0 * level, 1.0 * level};
}

TEST(WcmaParams, Validation) {
  WcmaParams p;
  EXPECT_NO_THROW(p.Validate());
  p.alpha = 1.2;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = WcmaParams{};
  p.days = 0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = WcmaParams{};
  p.slots_k = 0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(Wcma, RejectsKNotBelowN) {
  WcmaParams p;
  p.slots_k = 4;
  EXPECT_THROW(Wcma(p, 4), std::invalid_argument);
}

TEST(Wcma, AlphaOneIsPersistence) {
  WcmaParams p;
  p.alpha = 1.0;
  p.days = 2;
  p.slots_k = 1;
  Wcma wcma(p, 4);
  Persistence persist;
  for (double level : {1.0, 0.8, 1.2, 0.9}) {
    for (double s : MiniDay(level)) {
      wcma.Observe(s);
      persist.Observe(s);
      EXPECT_DOUBLE_EQ(wcma.PredictNext(), persist.PredictNext());
    }
  }
}

TEST(Wcma, FirstPredictionFallsBackToPersistence) {
  WcmaParams p;
  p.alpha = 0.3;
  Wcma wcma(p, 8);
  wcma.Observe(5.0);
  EXPECT_DOUBLE_EQ(wcma.PredictNext(), 5.0);
}

TEST(Wcma, PredictNextBeforeObserveThrows) {
  Wcma wcma(WcmaParams{}, 8);
  EXPECT_THROW(wcma.PredictNext(), std::invalid_argument);
}

TEST(Wcma, ReadyAfterDFullDays) {
  WcmaParams p;
  p.days = 3;
  p.slots_k = 1;
  Wcma wcma(p, 4);
  for (int d = 0; d < 3; ++d) {
    EXPECT_FALSE(wcma.Ready());
    for (double s : MiniDay(1.0)) wcma.Observe(s);
  }
  EXPECT_TRUE(wcma.Ready());
}

TEST(Wcma, IdenticalDaysGiveExactPrediction) {
  // If every day is identical, μ equals the day's profile, all η = 1 (in
  // lit slots), so ê(n+1) = α·ẽ(n) + (1−α)·e(n+1) — exact when the profile
  // is flat.
  WcmaParams p;
  p.alpha = 0.4;
  p.days = 2;
  p.slots_k = 2;
  Wcma wcma(p, 4);
  const std::vector<double> flat{3.0, 3.0, 3.0, 3.0};
  for (int d = 0; d < 5; ++d) {
    for (double s : flat) {
      wcma.Observe(s);
      if (wcma.Ready()) {
        EXPECT_NEAR(wcma.PredictNext(), 3.0, 1e-12);
      }
    }
  }
}

TEST(Wcma, HandComputedPrediction) {
  // Two identical history days {0, 2, 4, 1}, then a current day at half
  // brightness {0, 1}.  Predict slot 2 with α=0.5, D=2, K=1:
  //   μ2 = 4, η(last=slot1) = 1/2 = 0.5 → Φ = 0.5,
  //   ê = 0.5·1 + 0.5·(4·0.5) = 1.5.
  WcmaParams p;
  p.alpha = 0.5;
  p.days = 2;
  p.slots_k = 1;
  Wcma wcma(p, 4);
  for (int d = 0; d < 2; ++d) {
    for (double s : MiniDay(1.0)) wcma.Observe(s);
  }
  wcma.Observe(0.0);
  wcma.Observe(1.0);
  EXPECT_NEAR(wcma.PredictNext(), 1.5, 1e-12);
}

TEST(Wcma, HandComputedPhiWithKTwo) {
  // Same setup, K=2 ramp weights θ = {1/2, 1}.  Recent slots: slot0
  // (μ=0 → η=1 night guard), slot1 (η=0.5).
  //   Φ = (0.5·1 + 1·0.5) / 1.5 = 2/3;  ê = 0.5·1 + 0.5·4·(2/3) = 1.8333…
  WcmaParams p;
  p.alpha = 0.5;
  p.days = 2;
  p.slots_k = 2;
  Wcma wcma(p, 4);
  for (int d = 0; d < 2; ++d) {
    for (double s : MiniDay(1.0)) wcma.Observe(s);
  }
  wcma.Observe(0.0);
  wcma.Observe(1.0);
  EXPECT_NEAR(wcma.CurrentPhi(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(wcma.PredictNext(), 0.5 + 0.5 * 4.0 * (2.0 / 3.0), 1e-12);
}

TEST(Wcma, PhiScalesWithCurrentDayBrightness) {
  // A brighter-than-history day must push Φ above 1, a darker one below.
  auto phi_for = [](double level) {
    WcmaParams p;
    p.days = 3;
    p.slots_k = 2;
    Wcma wcma(p, 4);
    for (int d = 0; d < 3; ++d) {
      for (double s : MiniDay(1.0)) wcma.Observe(s);
    }
    for (double s : {0.0, 2.0 * level, 4.0 * level}) wcma.Observe(s);
    return wcma.CurrentPhi();
  };
  EXPECT_GT(phi_for(1.5), 1.3);
  EXPECT_LT(phi_for(0.5), 0.7);
  EXPECT_NEAR(phi_for(1.0), 1.0, 1e-9);
}

TEST(Wcma, AlphaZeroIgnoresCurrentSampleLevel) {
  // With α=0 and K=1 the prediction depends on the current sample only
  // through η; two days with the same ratio profile but different last
  // samples at the same ratio give the same prediction.
  WcmaParams p;
  p.alpha = 0.0;
  p.days = 2;
  p.slots_k = 1;
  Wcma wcma(p, 4);
  for (int d = 0; d < 2; ++d) {
    for (double s : MiniDay(1.0)) wcma.Observe(s);
  }
  wcma.Observe(0.0);
  wcma.Observe(2.0);  // η = 1
  const double pred = wcma.PredictNext();
  EXPECT_NEAR(pred, 4.0, 1e-12);  // μ2 · Φ = 4 · 1
}

TEST(Wcma, CurrentMuMatchesHistoryAverage) {
  WcmaParams p;
  p.days = 2;
  p.slots_k = 1;
  Wcma wcma(p, 4);
  for (double s : MiniDay(1.0)) wcma.Observe(s);
  for (double s : MiniDay(2.0)) wcma.Observe(s);
  EXPECT_NEAR(wcma.CurrentMu(1), (2.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(wcma.CurrentMu(2), (4.0 + 8.0) / 2.0, 1e-12);
}

TEST(Wcma, ResetRestoresInitialState) {
  WcmaParams p;
  p.days = 2;
  Wcma wcma(p, 4);
  for (int d = 0; d < 3; ++d) {
    for (double s : MiniDay(1.0)) wcma.Observe(s);
  }
  EXPECT_TRUE(wcma.Ready());
  wcma.Reset();
  EXPECT_FALSE(wcma.Ready());
  EXPECT_THROW(wcma.PredictNext(), std::invalid_argument);
}

TEST(Wcma, NameMentionsParameters) {
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 3;
  const Wcma wcma(p, 48);
  const auto name = wcma.Name();
  EXPECT_NE(name.find("0.7"), std::string::npos);
  EXPECT_NE(name.find("20"), std::string::npos);
  EXPECT_NE(name.find("3"), std::string::npos);
}

TEST(Wcma, UniformWeightingChangesPhi) {
  auto phi = [](WcmaWeighting w) {
    WcmaParams p;
    p.days = 2;
    p.slots_k = 2;
    Wcma wcma(p, 4, w);
    for (int d = 0; d < 2; ++d) {
      for (double s : MiniDay(1.0)) wcma.Observe(s);
    }
    wcma.Observe(0.0);
    wcma.Observe(1.0);  // η history: night(1.0), 0.5
    return wcma.CurrentPhi();
  };
  // Ramp: (0.5·1 + 1·0.5)/1.5 = 2/3.  Uniform: (1+0.5)/2 = 0.75.
  EXPECT_NEAR(phi(WcmaWeighting::kRamp), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(phi(WcmaWeighting::kUniform), 0.75, 1e-12);
}

TEST(Wcma, RejectsNegativeSamples) {
  Wcma wcma(WcmaParams{}, 8);
  EXPECT_THROW(wcma.Observe(-1.0), std::invalid_argument);
}

// Property sweep: on a real synthetic trace the predictor stays finite and
// non-negative for all grid parameter combinations.
class WcmaGridTest
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(WcmaGridTest, FiniteNonNegativePredictions) {
  const auto [alpha, days_d, slots_k] = GetParam();
  SynthOptions opt;
  opt.days = static_cast<std::size_t>(days_d) + 4;
  const auto trace = SynthesizeTrace(SiteByCode("ECSU"), opt);
  const SlotSeries series(trace, 24);
  WcmaParams p;
  p.alpha = alpha;
  p.days = days_d;
  p.slots_k = slots_k;
  Wcma wcma(p, 24);
  for (std::size_t g = 0; g < series.size(); ++g) {
    wcma.Observe(series.boundary(g));
    const double pred = wcma.PredictNext();
    ASSERT_TRUE(std::isfinite(pred)) << "g=" << g;
    ASSERT_GE(pred, 0.0) << "g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WcmaGridTest,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(2, 10, 20),
                       ::testing::Values(1, 3, 6)));

}  // namespace
}  // namespace shep
