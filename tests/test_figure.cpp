// Tests for report/figure.hpp.
#include "report/figure.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

Series MakeSeries(const std::string& name) {
  Series s;
  s.name = name;
  s.x = {1.0, 2.0, 3.0, 4.0};
  s.y = {0.1, 0.4, 0.2, 0.3};
  return s;
}

TEST(SeriesCsv, HeaderAndRows) {
  const auto csv = SeriesCsv({MakeSeries("a"), MakeSeries("b")});
  EXPECT_NE(csv.find("x,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,0.1,0.1"), std::string::npos);
  EXPECT_NE(csv.find("4,0.3,0.3"), std::string::npos);
}

TEST(SeriesCsv, RejectsMismatchedAxes) {
  auto a = MakeSeries("a");
  auto b = MakeSeries("b");
  b.x[0] = 99.0;
  EXPECT_THROW(SeriesCsv({a, b}), std::invalid_argument);
  auto c = MakeSeries("c");
  c.y.pop_back();
  EXPECT_THROW(SeriesCsv({c}), std::invalid_argument);
  EXPECT_THROW(SeriesCsv({}), std::invalid_argument);
}

TEST(AsciiChart, ContainsGlyphAndAxisLabels) {
  const auto chart = AsciiChart(MakeSeries("demo"));
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("0.4"), std::string::npos);  // y max
  EXPECT_NE(chart.find("demo"), std::string::npos); // legend
}

TEST(AsciiChart, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiChart(MakeSeries("x"), 4, 2), std::invalid_argument);
}

TEST(AsciiChartMulti, UsesDistinctGlyphs) {
  const auto chart = AsciiChartMulti({MakeSeries("a"), MakeSeries("b")});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("a"), std::string::npos);
  EXPECT_NE(chart.find("b"), std::string::npos);
}

TEST(AsciiChartMulti, RejectsEmpty) {
  EXPECT_THROW(AsciiChartMulti({}), std::invalid_argument);
}

TEST(Sparkline, MapsRangeToLevels) {
  const auto line = Sparkline({0.0, 1.0});
  EXPECT_FALSE(line.empty());
  // Lowest and highest glyphs present.
  EXPECT_NE(line.find("▁"), std::string::npos);
  EXPECT_NE(line.find("█"), std::string::npos);
}

TEST(Sparkline, HandlesConstantAndEmpty) {
  EXPECT_EQ(Sparkline({}), "");
  const auto flat = Sparkline({2.0, 2.0, 2.0});
  EXPECT_FALSE(flat.empty());
}

}  // namespace
}  // namespace shep
