// Tests for solar/weather.hpp — the stochastic cloud process.
#include "solar/weather.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace shep {
namespace {

TEST(WeatherParams, DefaultsValidate) {
  WeatherParams w;
  EXPECT_NO_THROW(w.Validate());
}

TEST(WeatherParams, RejectsBadTransitionRows) {
  WeatherParams w;
  w.transition[0] = {0.5, 0.5, 0.5};
  EXPECT_THROW(w.Validate(), std::invalid_argument);
}

TEST(WeatherParams, RejectsOutOfRangeValues) {
  {
    WeatherParams w;
    w.base_transmittance[1] = 1.5;
    EXPECT_THROW(w.Validate(), std::invalid_argument);
  }
  {
    WeatherParams w;
    w.drift_phi = 1.0;
    EXPECT_THROW(w.Validate(), std::invalid_argument);
  }
  {
    WeatherParams w;
    w.cloud_depth_min = 0.9;
    w.cloud_depth_max = 0.5;
    EXPECT_THROW(w.Validate(), std::invalid_argument);
  }
  {
    WeatherParams w;
    w.cloud_duration_min_s = 0.0;
    EXPECT_THROW(w.Validate(), std::invalid_argument);
  }
}

TEST(WeatherStateName, AllNamed) {
  EXPECT_STREQ(WeatherStateName(WeatherState::kClear), "clear");
  EXPECT_STREQ(WeatherStateName(WeatherState::kPartly), "partly");
  EXPECT_STREQ(WeatherStateName(WeatherState::kOvercast), "overcast");
}

TEST(WeatherModel, NextStateFollowsTransitionFrequencies) {
  WeatherParams w;  // defaults: clear row {0.70, 0.20, 0.10}
  WeatherModel model(w);
  Rng rng(1234);
  std::array<int, 3> counts{0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto s = model.NextState(WeatherState::kClear, rng);
    counts[static_cast<std::size_t>(s)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.70, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.10, 0.01);
}

TEST(WeatherModel, StationaryDistributionSumsToOne) {
  WeatherModel model(WeatherParams{});
  const auto pi = model.StationaryDistribution();
  EXPECT_NEAR(pi[0] + pi[1] + pi[2], 1.0, 1e-9);
  for (double p : pi) EXPECT_GE(p, 0.0);
}

TEST(WeatherModel, StationaryDistributionIsFixedPoint) {
  WeatherParams w;
  WeatherModel model(w);
  const auto pi = model.StationaryDistribution();
  for (int to = 0; to < 3; ++to) {
    double next = 0.0;
    for (int from = 0; from < 3; ++from) {
      next += pi[static_cast<std::size_t>(from)] *
              w.transition[static_cast<std::size_t>(from)]
                          [static_cast<std::size_t>(to)];
    }
    EXPECT_NEAR(next, pi[static_cast<std::size_t>(to)], 1e-9);
  }
}

TEST(WeatherModel, DayTransmittanceWithinBounds) {
  WeatherModel model(WeatherParams{});
  Rng rng(7);
  double drift = 0.0;
  for (auto state : {WeatherState::kClear, WeatherState::kPartly,
                     WeatherState::kOvercast}) {
    const auto tau = model.DayTransmittance(state, 60, drift, rng);
    ASSERT_EQ(tau.size(), 1440u);
    for (double t : tau) {
      EXPECT_GE(t, WeatherParams{}.min_transmittance);
      EXPECT_LE(t, 1.0);
    }
  }
}

TEST(WeatherModel, ClearDaysBrighterThanOvercast) {
  WeatherModel model(WeatherParams{});
  Rng rng(99);
  double drift = 0.0;
  double clear_sum = 0.0, overcast_sum = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    for (double t :
         model.DayTransmittance(WeatherState::kClear, 300, drift, rng)) {
      clear_sum += t;
    }
    for (double t :
         model.DayTransmittance(WeatherState::kOvercast, 300, drift, rng)) {
      overcast_sum += t;
    }
  }
  EXPECT_GT(clear_sum, 1.5 * overcast_sum);
}

TEST(WeatherModel, PartlyDaysAreMostVolatile) {
  // The defining property for prediction difficulty: partly-cloudy days
  // carry much more intra-day variance than clear days.  (Step-to-step
  // differences would be dominated by the fast scintillation noise that
  // all states share, so the level variance is the discriminating metric.)
  WeatherModel model(WeatherParams{});
  Rng rng(42);
  auto level_stddev = [&](WeatherState s) {
    double drift = 0.0;
    double acc = 0.0;
    int reps = 20;
    for (int rep = 0; rep < reps; ++rep) {
      const auto tau = model.DayTransmittance(s, 300, drift, rng);
      double mean = 0.0;
      for (double t : tau) mean += t;
      mean /= static_cast<double>(tau.size());
      double var = 0.0;
      for (double t : tau) var += (t - mean) * (t - mean);
      acc += std::sqrt(var / static_cast<double>(tau.size()));
    }
    return acc / reps;
  };
  EXPECT_GT(level_stddev(WeatherState::kPartly),
            2.0 * level_stddev(WeatherState::kClear));
}

TEST(WeatherModel, DeterministicGivenSeed) {
  WeatherModel model(WeatherParams{});
  Rng r1(5), r2(5);
  double d1 = 0.0, d2 = 0.0;
  const auto a = model.DayTransmittance(WeatherState::kPartly, 300, d1, r1);
  const auto b = model.DayTransmittance(WeatherState::kPartly, 300, d2, r2);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(WeatherModel, ValidatesResolution) {
  WeatherModel model(WeatherParams{});
  Rng rng(1);
  double drift = 0.0;
  EXPECT_THROW(model.DayTransmittance(WeatherState::kClear, 7, drift, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace shep
