// Tests for solar/clearsky.hpp — solar geometry sanity.
#include "solar/clearsky.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "timeseries/trace.hpp"

namespace shep {
namespace {

TEST(Declination, SeasonalExtremes) {
  // Summer solstice (~day 172): +23.45 deg; winter (~day 355): -23.45 deg.
  EXPECT_NEAR(RadToDeg(SolarDeclinationRad(172)), 23.45, 0.1);
  EXPECT_NEAR(RadToDeg(SolarDeclinationRad(355)), -23.45, 0.1);
  // Equinoxes near zero.
  EXPECT_NEAR(RadToDeg(SolarDeclinationRad(81)), 0.0, 1.0);
}

TEST(Declination, ValidatesDayOfYear) {
  EXPECT_THROW(SolarDeclinationRad(0), std::invalid_argument);
  EXPECT_THROW(SolarDeclinationRad(367), std::invalid_argument);
}

TEST(HourAngle, NoonIsZero) {
  EXPECT_DOUBLE_EQ(HourAngleRad(12.0), 0.0);
  EXPECT_NEAR(HourAngleRad(6.0), DegToRad(-90.0), 1e-12);
  EXPECT_NEAR(HourAngleRad(18.0), DegToRad(90.0), 1e-12);
}

TEST(SinElevation, NoonAboveMorning) {
  const double lat = DegToRad(40.0);
  const double decl = SolarDeclinationRad(172);
  const double noon = SinElevation(lat, decl, HourAngleRad(12.0));
  const double morning = SinElevation(lat, decl, HourAngleRad(8.0));
  EXPECT_GT(noon, morning);
  EXPECT_GT(noon, 0.9);  // high summer sun at 40N
}

TEST(HaurwitzGhi, ZeroBelowHorizon) {
  EXPECT_DOUBLE_EQ(HaurwitzGhi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(HaurwitzGhi(-0.5), 0.0);
}

TEST(HaurwitzGhi, RealisticNoonPeak) {
  // Overhead sun: ~1000 W/m^2 (Haurwitz: 1098*exp(-0.057) ≈ 1037).
  EXPECT_NEAR(HaurwitzGhi(1.0), 1037.0, 5.0);
  // Monotone in elevation.
  EXPECT_LT(HaurwitzGhi(0.3), HaurwitzGhi(0.6));
}

TEST(ClearSkyDayGhi, ShapeAndNight) {
  const auto ghi = ClearSkyDayGhi(40.0, 172, 60);
  ASSERT_EQ(ghi.size(), 1440u);
  // Night at local midnight, sun at local noon.
  EXPECT_DOUBLE_EQ(ghi[0], 0.0);
  const auto peak_it = std::max_element(ghi.begin(), ghi.end());
  const auto peak_idx =
      static_cast<std::size_t>(peak_it - ghi.begin());
  EXPECT_NEAR(static_cast<double>(peak_idx), 720.0, 2.0);  // solar noon
  EXPECT_GT(*peak_it, 800.0);
  EXPECT_LT(*peak_it, 1100.0);
}

TEST(ClearSkyDayGhi, SummerBrighterThanWinter) {
  const auto summer = ClearSkyDayGhi(40.0, 172, 300);
  const auto winter = ClearSkyDayGhi(40.0, 355, 300);
  double es = 0.0, ew = 0.0;
  for (double v : summer) es += v;
  for (double v : winter) ew += v;
  EXPECT_GT(es, 1.8 * ew);
}

TEST(ClearSkyDayGhi, ValidatesResolution) {
  EXPECT_THROW(ClearSkyDayGhi(40.0, 100, 7), std::invalid_argument);
  EXPECT_THROW(ClearSkyDayGhi(40.0, 100, 0), std::invalid_argument);
}

TEST(DaylightHours, SeasonalAsymmetry) {
  const double summer = DaylightHours(40.0, 172);
  const double winter = DaylightHours(40.0, 355);
  EXPECT_GT(summer, 14.0);
  EXPECT_LT(summer, 15.5);
  EXPECT_GT(winter, 8.5);
  EXPECT_LT(winter, 10.0);
  // Equator is ~12 h year-round.
  EXPECT_NEAR(DaylightHours(0.0, 172), 12.0, 0.2);
}

TEST(DaylightHours, PolarCases) {
  EXPECT_DOUBLE_EQ(DaylightHours(80.0, 172), 24.0);  // midnight sun
  EXPECT_DOUBLE_EQ(DaylightHours(80.0, 355), 0.0);   // polar night
}

TEST(ClearSkyMemo, ReturnsBitIdenticalProfilesAndSharesInstances) {
  ClearClearSkyMemo();
  const auto direct = ClearSkyDayGhi(35.93, 120, 60);
  const auto cached = ClearSkyDayGhiCached(35.93, 120, 60);
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ((*cached)[i], direct[i]) << "sample " << i;
  }
  // Second lookup: the SAME shared instance, and a hit in the stats.
  const auto again = ClearSkyDayGhiCached(35.93, 120, 60);
  EXPECT_EQ(again.get(), cached.get());
  const auto stats = GetClearSkyMemoStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ClearSkyMemo, DistinguishesEveryKeyComponent) {
  ClearClearSkyMemo();
  const auto base = ClearSkyDayGhiCached(35.93, 120, 60);
  EXPECT_NE(ClearSkyDayGhiCached(36.10, 120, 60).get(), base.get());
  EXPECT_NE(ClearSkyDayGhiCached(35.93, 121, 60).get(), base.get());
  EXPECT_NE(ClearSkyDayGhiCached(35.93, 120, 300).get(), base.get());
  EXPECT_EQ(GetClearSkyMemoStats().entries, 4u);
  ClearClearSkyMemo();
  EXPECT_EQ(GetClearSkyMemoStats().entries, 0u);
}

TEST(ClearSkyMemo, CapacityBoundsGrowthAndCountsEvictions) {
  ClearClearSkyMemo();
  SetClearSkyMemoCapacity(3);
  for (int doy = 1; doy <= 5; ++doy) ClearSkyDayGhiCached(40.0, doy, 60);

  auto stats = GetClearSkyMemoStats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.misses, 5u);

  // Eviction takes the lowest key, never the just-inserted one: a campaign
  // sweeping keys in order keeps its newest entry, so re-requesting the
  // last insert is a hit, and the survivors are exactly the top three.
  ClearSkyDayGhiCached(40.0, 5, 60);
  EXPECT_EQ(GetClearSkyMemoStats().hits, 1u);
  ClearSkyDayGhiCached(40.0, 1, 60);  // evicted: a miss that re-evicts.
  stats = GetClearSkyMemoStats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.entries, 3u);

  // Shrinking the cap evicts eagerly and keeps counting.
  SetClearSkyMemoCapacity(1);
  stats = GetClearSkyMemoStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 5u);

  SetClearSkyMemoCapacity(0);  // restore the default for later tests.
  ClearClearSkyMemo();
  EXPECT_EQ(GetClearSkyMemoStats().entries, 0u);
}

TEST(ClearSkyMemo, ConcurrentFirstUseIsRaceFreeAndConverges) {
  // Many threads hammer an overlapping key set on a cold memo — the
  // sanitizer jobs (TSan in particular) check the locking discipline; the
  // assertions check every thread ends up with the shared, bit-exact
  // profile no matter who computed it first.
  ClearClearSkyMemo();
  constexpr int kThreads = 8;
  constexpr int kDays = 12;
  std::vector<std::vector<std::shared_ptr<const std::vector<double>>>> seen(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int doy = 1; doy <= kDays; ++doy) {
        // Two interleaved key orders so threads collide on cold keys.
        const int day = (t % 2 == 0) ? doy : kDays + 1 - doy;
        seen[static_cast<std::size_t>(t)].push_back(
            ClearSkyDayGhiCached(39.74, day, 300));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Whatever the race outcome, every thread must hold the instance that
  // won the insertion for its key — the one later lookups return — and
  // each kept profile must match a fresh recomputation bit for bit.
  for (int t = 0; t < kThreads; ++t) {
    for (int doy = 1; doy <= kDays; ++doy) {
      const int day = (t % 2 == 0) ? doy : kDays + 1 - doy;
      const auto& mine =
          seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(doy - 1)];
      EXPECT_EQ(mine.get(), ClearSkyDayGhiCached(39.74, day, 300).get())
          << "thread " << t << " day " << day;
      const auto direct = ClearSkyDayGhi(39.74, day, 300);
      ASSERT_EQ(mine->size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        ASSERT_EQ((*mine)[i], direct[i]) << "day " << day << " sample " << i;
      }
    }
  }
  const auto stats = GetClearSkyMemoStats();
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kDays));
  EXPECT_GE(stats.misses, static_cast<std::uint64_t>(kDays));
}

// Property: for all paper-site latitudes and several days, GHI is
// non-negative, zero at midnight, and the daily curve is unimodal enough to
// peak within 2 h of noon.
class ClearSkyPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ClearSkyPropertyTest, PhysicallyPlausible) {
  const double lat = std::get<0>(GetParam());
  const int doy = std::get<1>(GetParam());
  const auto ghi = ClearSkyDayGhi(lat, doy, 300);
  for (double v : ghi) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1200.0);
  }
  EXPECT_DOUBLE_EQ(ghi[0], 0.0);
  const auto peak_idx = static_cast<std::size_t>(
      std::max_element(ghi.begin(), ghi.end()) - ghi.begin());
  EXPECT_NEAR(static_cast<double>(peak_idx), 144.0, 24.0);
}

INSTANTIATE_TEST_SUITE_P(
    SiteLatitudesAndSeasons, ClearSkyPropertyTest,
    ::testing::Combine(::testing::Values(33.45, 35.93, 36.10, 36.28, 39.74,
                                         40.88),
                       ::testing::Values(21, 81, 172, 265, 355)));

}  // namespace
}  // namespace shep
