// Differential parity across the three WCMA backends: double-precision
// reference (core/Wcma), Q16.16 fixed point (core/FixedWcma via
// hw/CostedFixedWcma), and the MicroVm-executed routine
// (hw/VmWcmaPredictor).  "Same algorithm" is a value claim, so the tests
// bound the value divergence — per slot on a shared series and per cell
// (MAPE delta on paired fleet weather) — and pin the runner's core
// invariant for the new backends: summaries, including the MCU-cost
// aggregates, are bit-identical at any thread count.
#include "fleet/parity.hpp"

#include <gtest/gtest.h>

#include "common/threadpool.hpp"
#include "core/wcma.hpp"
#include "fleet/runner.hpp"
#include "hw/costed_fixed.hpp"
#include "hw/vm_predictor.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"

namespace shep {
namespace {

constexpr int kSlotsPerDay = 48;

WcmaParams Params() {
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 5;
  p.slots_k = 3;
  return p;
}

SlotSeries MakeSeries(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  return SlotSeries(SynthesizeTrace(SiteByCode(site), opt), kSlotsPerDay);
}

// The scenario of the fleet-level tests: two contrasting sites, the same
// WCMA design on all three backends, paired weather.
ScenarioSpec BackendSpec() {
  ScenarioSpec spec;
  spec.name = "backend_parity";
  spec.sites = {"ECSU", "PFCI"};
  PredictorSpec float_wcma;
  float_wcma.kind = PredictorKind::kWcma;
  float_wcma.wcma = Params();
  PredictorSpec fixed_wcma = float_wcma;
  fixed_wcma.kind = PredictorKind::kWcmaFixed;
  PredictorSpec vm_wcma = float_wcma;
  vm_wcma.kind = PredictorKind::kWcmaVm;
  spec.predictors = {float_wcma, fixed_wcma, vm_wcma};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 2;
  spec.days = 30;
  spec.slots_per_day = kSlotsPerDay;
  spec.seed = 99;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  return spec;
}

TEST(BackendParity, VmTracksFloatToUlps) {
  // The VM routine performs the same double operations in the same order as
  // core/Wcma; the only admissible divergence is FMA contraction in the
  // compiled host expressions.  Bound: 1e-12 of the series peak, from the
  // very first slot (warm-up included — the VM warm-up programs replicate
  // the float warm-up θ ramp exactly).
  const auto series = MakeSeries("ECSU", 15);
  Wcma reference(Params(), kSlotsPerDay);
  VmWcmaPredictor vm(Params(), kSlotsPerDay);
  const BackendDivergence d =
      MeasurePredictionDivergence(reference, vm, series);
  EXPECT_GT(d.slots, 0u);
  EXPECT_LT(d.max_rel_peak, 1e-12) << "max_abs_w=" << d.max_abs_w;
}

TEST(BackendParity, FixedTracksFloatWithinQuantisationBudget) {
  // Same bound as tests/test_wcma_fixed.cpp, via the fleet-layer harness:
  // 1 % of peak + 1 mW once past day 0 (warm-up θ indexing differs by
  // design between the fixed and float builds — see wcma_fixed.hpp).
  const auto series = MakeSeries("ECSU", 15);
  Wcma reference(Params(), kSlotsPerDay);
  CostedFixedWcma fixed(Params(), kSlotsPerDay);
  const BackendDivergence d = MeasurePredictionDivergence(
      reference, fixed, series, /*skip_slots=*/series.slots_per_day());
  EXPECT_GT(d.slots, 0u);
  EXPECT_LT(d.max_abs_w, 0.01 * series.peak_mean() + 1e-3);
  EXPECT_LT(d.mean_abs_w, d.max_abs_w + 1e-15);
}

TEST(BackendParity, FixedTracksVmWithinQuantisationBudget) {
  // Transitively bounded by the two tests above; measured directly so the
  // fixed↔VM pair never silently drifts apart through the float leg.
  const auto series = MakeSeries("PFCI", 15);
  VmWcmaPredictor vm(Params(), kSlotsPerDay);
  CostedFixedWcma fixed(Params(), kSlotsPerDay);
  const BackendDivergence d = MeasurePredictionDivergence(
      vm, fixed, series, /*skip_slots=*/series.slots_per_day());
  EXPECT_LT(d.max_abs_w, 0.01 * series.peak_mean() + 1e-3);
}

TEST(BackendParity, MixedBackendFleetRunsEndToEnd) {
  const ScenarioSpec spec = BackendSpec();
  const FleetSummary summary = RunFleet(spec);
  ASSERT_EQ(summary.stats.size(), spec.cell_count());

  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const ScenarioCell& cell = summary.cells[i];
    const CellAccumulator& stats = summary.stats[i];
    EXPECT_EQ(stats.nodes(), spec.nodes_per_cell);
    EXPECT_TRUE(stats.mape.valid());
    if (cell.predictor_label == "WCMA") {
      // Float backend: no modelled MCU cost.
      EXPECT_FALSE(stats.has_compute_cost());
    } else {
      // Fixed and VM backends: positive per-wake-up cycle and op cost, one
      // sample per node of the cell.
      ASSERT_TRUE(stats.has_compute_cost()) << cell.predictor_label;
      EXPECT_EQ(stats.cycles_per_wakeup.count, spec.nodes_per_cell);
      EXPECT_GT(stats.cycles_per_wakeup.mean, 0.0);
      EXPECT_GT(stats.ops_per_wakeup.mean, 0.0);
      // Division dominates: K+2 divisions in steady state put the mean
      // comfortably above one div's cycle price.
      EXPECT_GT(stats.cycles_per_wakeup.mean, 560.0);
    }
  }

  // Cost columns render in both report shapes.
  EXPECT_NE(summary.ToTable().find("cyc_mean"), std::string::npos);
  EXPECT_NE(summary.ToCsv().find("cyc_mean,cyc_p95,ops_mean"),
            std::string::npos);
  EXPECT_NE(summary.ToCsv().find("n/a"), std::string::npos);
}

TEST(BackendParity, FleetWideMapeDeltasAreBounded) {
  const FleetSummary summary = RunFleet(BackendSpec());

  // Float↔VM: predictions differ by ulps, so per-cell MAPE deltas on
  // paired weather are noise-level.
  const auto vm_deltas = MapeDeltas(summary, "WCMA", "VmWCMA");
  EXPECT_EQ(vm_deltas.size(), 2u * 2u);  // sites × storage tiers.
  EXPECT_LT(MaxAbsMapeDelta(vm_deltas), 1e-9);

  // Float↔fixed: Q16.16 quantisation moves per-slot predictions by <= 1 %
  // of peak; averaged into an in-ROI MAPE that stays within a percentage
  // point.
  const auto fixed_deltas = MapeDeltas(summary, "WCMA", "FixedWCMA");
  EXPECT_EQ(fixed_deltas.size(), 2u * 2u);
  EXPECT_LT(MaxAbsMapeDelta(fixed_deltas), 0.01);

  // Missing labels and unmatched pairs are rejected, not silently empty.
  EXPECT_THROW(MapeDeltas(summary, "WCMA", "NOPE"), std::invalid_argument);
}

// Acceptance criterion: the runner's bit-identity invariant extends to the
// new backends and to the MCU-cost aggregates.
TEST(BackendParity, CostAggregatesBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = BackendSpec();
  // The invariant is bit-identity in (spec, shard_size): shard boundaries
  // fix the merge grouping, the pool only decides who runs a shard.  Both
  // runs therefore share shard_size (3: straddles cell boundaries).
  FleetRunOptions serial_options;
  serial_options.shard_size = 3;
  const FleetSummary serial = RunFleet(spec, serial_options);

  ThreadPool pool(4);
  FleetRunOptions options;
  options.pool = &pool;
  options.shard_size = 3;
  const FleetSummary pooled = RunFleet(spec, options);

  ASSERT_EQ(serial.stats.size(), pooled.stats.size());
  for (std::size_t i = 0; i < serial.stats.size(); ++i) {
    const CellAccumulator& a = serial.stats[i];
    const CellAccumulator& b = pooled.stats[i];
    EXPECT_EQ(a.nodes(), b.nodes());
    EXPECT_EQ(a.has_compute_cost(), b.has_compute_cost());
    // Bit-identical, not merely close: EXPECT_EQ on doubles.
    EXPECT_EQ(a.mape.mean, b.mape.mean);
    EXPECT_EQ(a.cycles_per_wakeup.count, b.cycles_per_wakeup.count);
    EXPECT_EQ(a.cycles_per_wakeup.mean, b.cycles_per_wakeup.mean);
    EXPECT_EQ(a.cycles_per_wakeup.m2, b.cycles_per_wakeup.m2);
    EXPECT_EQ(a.cycles_per_wakeup.min, b.cycles_per_wakeup.min);
    EXPECT_EQ(a.cycles_per_wakeup.max, b.cycles_per_wakeup.max);
    EXPECT_EQ(a.ops_per_wakeup.mean, b.ops_per_wakeup.mean);
    EXPECT_EQ(a.ops_per_wakeup.m2, b.ops_per_wakeup.m2);
    EXPECT_EQ(a.cycles_hist.bins(), b.cycles_hist.bins());
  }
  EXPECT_EQ(serial.ToCsv(), pooled.ToCsv());
  EXPECT_EQ(serial.ToTable(), pooled.ToTable());
}

}  // namespace
}  // namespace shep
