// Tests for timeseries/csv.hpp.
#include "timeseries/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace shep {
namespace {

std::string HourlyCsv(int days) {
  std::ostringstream os;
  os << "power_w\n";
  for (int d = 0; d < days; ++d) {
    for (int i = 0; i < 24; ++i) os << (i * 0.1) << "\n";
  }
  return os.str();
}

TEST(ParseCsv, SingleColumnWithHeader) {
  const auto r = ParseCsv(HourlyCsv(2), "T", 3600);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.trace->days(), 2u);
  EXPECT_DOUBLE_EQ(r.trace->at(0, 3), 0.3);
}

TEST(ParseCsv, SkipsBlankAndCommentLines) {
  const std::string text =
      "# MIDC export\npower_w\n\n1.0\n2.0\n# midway comment\n3.0\n4.0\n";
  CsvOptions opt;
  const auto r = ParseCsv(text, "T", 21600, opt);  // 4 samples/day
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.trace->size(), 4u);
}

TEST(ParseCsv, SelectsValueColumn) {
  std::ostringstream os;
  os << "time,ghi\n";
  for (int i = 0; i < 4; ++i) os << i << "," << (i + 0.5) << "\n";
  CsvOptions opt;
  opt.value_column = 1;
  const auto r = ParseCsv(os.str(), "T", 21600, opt);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_DOUBLE_EQ(r.trace->at(0, 2), 2.5);
}

TEST(ParseCsv, ClampsNegativeNightValuesByDefault) {
  const std::string text = "h\n-0.4\n1.0\n2.0\n3.0\n";
  const auto r = ParseCsv(text, "T", 21600);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_DOUBLE_EQ(r.trace->at(0, 0), 0.0);
}

TEST(ParseCsv, RejectsNegativeWhenClampDisabled) {
  CsvOptions opt;
  opt.clamp_negative = false;
  const auto r = ParseCsv("h\n-0.4\n1\n2\n3\n", "T", 21600, opt);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("negative"), std::string::npos);
}

TEST(ParseCsv, ReportsLineNumberOnGarbage) {
  const auto r = ParseCsv("h\n1.0\nnot-a-number\n3.0\n4.0\n", "T", 21600);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(ParseCsv, ReportsMissingColumn) {
  CsvOptions opt;
  opt.value_column = 3;
  const auto r = ParseCsv("h\n1,2\n", "T", 21600, opt);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("column"), std::string::npos);
}

TEST(ParseCsv, RejectsPartialDay) {
  const auto r = ParseCsv("h\n1\n2\n3\n", "T", 21600);  // needs 4/day
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("whole days"), std::string::npos);
}

TEST(ParseCsv, RejectsBadResolution) {
  const auto r = ParseCsv("h\n1\n", "T", 7);
  EXPECT_FALSE(r.ok());
}

TEST(SaveAndLoadCsv, RoundTrips) {
  std::vector<double> v(24);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<double>(i) * 0.25;
  const PowerTrace t("T", v, 3600);
  const std::string path = "/tmp/shep_test_roundtrip.csv";
  std::string error;
  ASSERT_TRUE(SaveCsv(t, path, &error)) << error;
  const auto r = LoadCsv(path, "T2", 3600);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.trace->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.trace->samples()[i], t.samples()[i]);
  }
  std::remove(path.c_str());
}

TEST(LoadCsv, MissingFileIsAnError) {
  const auto r = LoadCsv("/nonexistent/definitely_missing.csv", "T", 3600);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace shep
