// Tests for core/baselines.hpp and the WCMA identities they encode.
#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"
#include "sweep/sweep.hpp"

namespace shep {
namespace {

TEST(Persistence, PredictsLastObservation) {
  Persistence p;
  p.Observe(3.0);
  EXPECT_DOUBLE_EQ(p.PredictNext(), 3.0);
  p.Observe(7.0);
  EXPECT_DOUBLE_EQ(p.PredictNext(), 7.0);
}

TEST(Persistence, LifecycleAndValidation) {
  Persistence p;
  EXPECT_FALSE(p.Ready());
  EXPECT_THROW(p.PredictNext(), std::invalid_argument);
  EXPECT_THROW(p.Observe(-1.0), std::invalid_argument);
  p.Observe(1.0);
  EXPECT_TRUE(p.Ready());
  p.Reset();
  EXPECT_FALSE(p.Ready());
}

TEST(SlotMovingAverage, PredictsColumnMean) {
  SlotMovingAverage sma(2, 3);
  for (double s : {1.0, 2.0, 3.0}) sma.Observe(s);
  for (double s : {3.0, 4.0, 5.0}) sma.Observe(s);
  // Next slot is slot 0: mean(1, 3) = 2.
  EXPECT_DOUBLE_EQ(sma.PredictNext(), 2.0);
  sma.Observe(0.0);  // now predicting slot 1: mean(2, 4) = 3.
  EXPECT_DOUBLE_EQ(sma.PredictNext(), 3.0);
}

TEST(SlotMovingAverage, FallsBackToPersistenceOnDayOne) {
  SlotMovingAverage sma(3, 4);
  sma.Observe(5.0);
  EXPECT_DOUBLE_EQ(sma.PredictNext(), 5.0);
}

TEST(SlotMovingAverage, NameAndReset) {
  SlotMovingAverage sma(7, 4);
  EXPECT_NE(sma.Name().find("7"), std::string::npos);
  for (int i = 0; i < 8; ++i) sma.Observe(1.0);
  EXPECT_FALSE(sma.Ready());  // needs 7 days
  sma.Reset();
  EXPECT_THROW(sma.PredictNext(), std::invalid_argument);
}

TEST(PreviousDay, PredictsYesterdaySlot) {
  PreviousDay pd(3);
  for (double s : {1.0, 2.0, 3.0}) pd.Observe(s);
  // Predicting slot 0 of day 2 -> yesterday's slot 0 = 1.
  EXPECT_DOUBLE_EQ(pd.PredictNext(), 1.0);
  pd.Observe(9.0);
  EXPECT_DOUBLE_EQ(pd.PredictNext(), 2.0);
}

TEST(PreviousDay, DayOneFallsBackToPersistence) {
  PreviousDay pd(3);
  pd.Observe(4.0);
  EXPECT_DOUBLE_EQ(pd.PredictNext(), 4.0);
}

// --- Identities tying the baselines to the WCMA design space -------------

SlotSeries EcsuSeries(int n) {
  SynthOptions opt;
  opt.days = 40;
  static const auto trace = SynthesizeTrace(SiteByCode("ECSU"), SynthOptions{
                                                                    40, 1, 0});
  return SlotSeries(trace, n);
}

TEST(Identities, WcmaAlphaOneEqualsPersistenceEverywhere) {
  const auto series = EcsuSeries(24);
  WcmaParams p;
  p.alpha = 1.0;
  p.days = 5;
  p.slots_k = 2;
  Wcma wcma(p, 24);
  Persistence persist;
  const auto a = RunPredictor(wcma, series);
  const auto b = RunPredictor(persist, series);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].predicted, b[i].predicted) << "i=" << i;
  }
}

TEST(Identities, WcmaAlphaZeroUniformPhiOnIdenticalDaysEqualsSma) {
  // On a perfectly periodic input all η == 1 (lit slots), so α=0 WCMA
  // reduces to the slot moving average.
  std::vector<double> samples;
  for (int d = 0; d < 6; ++d) {
    for (double s : {0.0, 1.0, 2.0, 1.0}) samples.push_back(s);
  }
  PowerTrace trace("flatdays", samples, kSecondsPerDay / 4);
  SlotSeries series(trace, 4);
  WcmaParams p;
  p.alpha = 0.0;
  p.days = 3;
  p.slots_k = 2;
  Wcma wcma(p, 4);
  SlotMovingAverage sma(3, 4);
  const auto a = RunPredictor(wcma, series);
  const auto b = RunPredictor(sma, series);
  for (std::size_t i = 3 * 4; i < a.size(); ++i) {  // past warm-up
    EXPECT_NEAR(a[i].predicted, b[i].predicted, 1e-12) << "i=" << i;
  }
}

TEST(Identities, PreviousDayEqualsSmaWithDOne) {
  const auto series = EcsuSeries(24);
  PreviousDay pd(24);
  SlotMovingAverage sma(1, 24);
  const auto a = RunPredictor(pd, series);
  const auto b = RunPredictor(sma, series);
  for (std::size_t i = 24; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].predicted, b[i].predicted) << "i=" << i;
  }
}

TEST(Hierarchy, TunedWcmaBeatsAllBaselinesOnVolatileSite) {
  // The headline claim of the predictor paper [5], reproduced on our
  // substrate: the TUNED predictor (the paper always tunes per data set,
  // Sec. IV-A) beats persistence, the unconditioned average, and
  // previous-day on a volatile site.  α = 1 (pure persistence) is on the
  // grid, so "beats persistence" also certifies the optimum is interior —
  // the conditioning machinery genuinely earns its keep.
  SynthOptions opt;
  opt.days = 120;
  const auto trace = SynthesizeTrace(SiteByCode("SPMD"), opt);
  const SweepContext ctx(trace, 48);
  const auto sweep = SweepWcma(ctx, ParamGrid::Paper());
  const auto& best = sweep.BestByMape();
  EXPECT_LT(best.alpha, 1.0);  // conditioning term is used at the optimum

  const SlotSeries series(trace, 48);
  Persistence persist;
  SlotMovingAverage sma(20, 48);
  PreviousDay prev(48);
  const double wcma_mape = best.mean_stats.mape;
  EXPECT_LT(wcma_mape, ScorePredictor(persist, series).mape);
  EXPECT_LT(wcma_mape, ScorePredictor(sma, series).mape);
  EXPECT_LT(wcma_mape, ScorePredictor(prev, series).mape);
}

}  // namespace
}  // namespace shep
