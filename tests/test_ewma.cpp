// Tests for core/ewma.hpp — the Kansal et al. baseline.
#include "core/ewma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/predictor.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

TEST(Ewma, ValidatesConstruction) {
  EXPECT_THROW(Ewma(-0.1, 8), std::invalid_argument);
  EXPECT_THROW(Ewma(1.1, 8), std::invalid_argument);
  EXPECT_THROW(Ewma(0.5, 1), std::invalid_argument);
}

TEST(Ewma, FirstDayPredictsPersistence) {
  Ewma e(0.5, 4);
  e.Observe(3.0);
  EXPECT_DOUBLE_EQ(e.PredictNext(), 3.0);  // slot 1 never seen yet
}

TEST(Ewma, SecondDayPredictsFirstDayValues) {
  Ewma e(0.5, 4);
  for (double s : {1.0, 2.0, 3.0, 4.0}) e.Observe(s);
  // Now at day 2 slot 0; prediction for slot 1 is day 1's value.
  e.Observe(9.0);
  EXPECT_DOUBLE_EQ(e.PredictNext(), 2.0);
}

TEST(Ewma, ExponentialUpdateRule) {
  // slot average after two observations x0, x1: w·x1 + (1-w)·x0.
  Ewma e(0.25, 2);
  e.Observe(8.0);   // slot 0 seeded with 8
  e.Observe(0.0);   // slot 1
  e.Observe(4.0);   // slot 0 again: 0.25*4 + 0.75*8 = 7
  e.Observe(0.0);   // slot 1; next prediction is for slot 0
  EXPECT_DOUBLE_EQ(e.PredictNext(), 7.0);
}

TEST(Ewma, WeightOneTracksYesterdayExactly) {
  Ewma e(1.0, 3);
  for (double s : {1.0, 2.0, 3.0}) e.Observe(s);
  e.Observe(5.0);
  EXPECT_DOUBLE_EQ(e.PredictNext(), 2.0);  // yesterday's slot 1
}

TEST(Ewma, WeightZeroFreezesFirstDay) {
  Ewma e(0.0, 3);
  for (double s : {1.0, 2.0, 3.0}) e.Observe(s);
  for (double s : {9.0, 9.0, 9.0}) e.Observe(s);
  e.Observe(9.0);
  EXPECT_DOUBLE_EQ(e.PredictNext(), 2.0);  // still day-1 value
}

TEST(Ewma, ReadyAfterOneFullDay) {
  Ewma e(0.5, 3);
  EXPECT_FALSE(e.Ready());
  e.Observe(1.0);
  e.Observe(1.0);
  EXPECT_FALSE(e.Ready());
  e.Observe(1.0);
  EXPECT_TRUE(e.Ready());
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.5, 3);
  for (double s : {1.0, 2.0, 3.0}) e.Observe(s);
  e.Reset();
  EXPECT_FALSE(e.Ready());
  EXPECT_THROW(e.PredictNext(), std::invalid_argument);
}

TEST(Ewma, RejectsNegativeSample) {
  Ewma e(0.5, 3);
  EXPECT_THROW(e.Observe(-0.1), std::invalid_argument);
}

TEST(Ewma, LagsSuddenWeatherChange) {
  // EWMA's defining weakness vs WCMA: a sudden dark day is predicted as if
  // it were bright, because the per-slot average only updates once a day.
  Ewma e(0.5, 4);
  for (int d = 0; d < 10; ++d) {
    for (double s : {0.0, 4.0, 8.0, 2.0}) e.Observe(s);
  }
  // Dark day begins: observed 0.4 instead of 4 at slot 1; prediction for
  // slot 2 is still ≈ 8, nowhere near the dark-day ~0.8.
  e.Observe(0.0);
  e.Observe(0.4);
  EXPECT_GT(e.PredictNext(), 6.0);
}

TEST(Ewma, ConvergesOnPeriodicInput) {
  Ewma e(0.3, 4);
  for (int d = 0; d < 60; ++d) {
    for (double s : {0.0, 4.0, 8.0, 2.0}) e.Observe(s);
  }
  e.Observe(0.0);
  EXPECT_NEAR(e.PredictNext(), 4.0, 1e-6);
}

TEST(Ewma, ScoresWorseThanPersistenceOnVolatileSiteShortHorizon) {
  // Sanity of the baseline hierarchy on real-ish data at N=96 (15-min
  // horizon): pure persistence beats day-history EWMA because adjacent
  // slots are strongly correlated.
  SynthOptions opt;
  opt.days = 60;
  const auto trace = SynthesizeTrace(SiteByCode("ORNL"), opt);
  const SlotSeries series(trace, 96);
  Ewma ewma(0.5, 96);
  auto ewma_stats = ScorePredictor(ewma, series);
  Persistence persist;
  auto persist_stats = ScorePredictor(persist, series);
  ASSERT_TRUE(ewma_stats.valid());
  ASSERT_TRUE(persist_stats.valid());
  EXPECT_LT(persist_stats.mape, ewma_stats.mape);
}

}  // namespace
}  // namespace shep
