// Tests for timeseries/history.hpp — the E_{D×N} matrix.
#include "timeseries/history.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shep {
namespace {

std::vector<double> DayOf(double value, std::size_t n) {
  return std::vector<double>(n, value);
}

TEST(HistoryMatrix, StartsEmpty) {
  HistoryMatrix h(3, 4);
  EXPECT_EQ(h.stored_days(), 0u);
  EXPECT_FALSE(h.full());
  EXPECT_EQ(h.capacity_days(), 3u);
  EXPECT_EQ(h.slots_per_day(), 4u);
}

TEST(HistoryMatrix, FillsToCapacity) {
  HistoryMatrix h(2, 4);
  h.PushDay(DayOf(1.0, 4));
  EXPECT_EQ(h.stored_days(), 1u);
  EXPECT_FALSE(h.full());
  h.PushDay(DayOf(2.0, 4));
  EXPECT_TRUE(h.full());
  h.PushDay(DayOf(3.0, 4));
  EXPECT_EQ(h.stored_days(), 2u);  // saturates
}

TEST(HistoryMatrix, AtAgeOrdersNewestFirst) {
  HistoryMatrix h(3, 2);
  h.PushDay({1.0, 10.0});
  h.PushDay({2.0, 20.0});
  h.PushDay({3.0, 30.0});
  EXPECT_DOUBLE_EQ(h.at_age(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(h.at_age(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(h.at_age(2, 1), 10.0);
}

TEST(HistoryMatrix, EvictsOldestWhenFull) {
  HistoryMatrix h(2, 1);
  h.PushDay({1.0});
  h.PushDay({2.0});
  h.PushDay({3.0});  // evicts 1.0
  EXPECT_DOUBLE_EQ(h.at_age(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(h.at_age(1, 0), 2.0);
  EXPECT_THROW(h.at_age(2, 0), std::invalid_argument);
}

TEST(HistoryMatrix, MuIsColumnAverage) {
  // Eq. 2: μ_D(j) = Σ e(i,j) / D.
  HistoryMatrix h(3, 2);
  h.PushDay({1.0, 4.0});
  h.PushDay({2.0, 5.0});
  h.PushDay({3.0, 6.0});
  EXPECT_DOUBLE_EQ(h.Mu(0), 2.0);
  EXPECT_DOUBLE_EQ(h.Mu(1), 5.0);
}

TEST(HistoryMatrix, MuWithSmallerWindowUsesNewestDays) {
  HistoryMatrix h(3, 1);
  h.PushDay({1.0});
  h.PushDay({2.0});
  h.PushDay({9.0});
  EXPECT_DOUBLE_EQ(h.Mu(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(h.Mu(0, 2), 5.5);
  EXPECT_DOUBLE_EQ(h.Mu(0, 3), 4.0);
}

TEST(HistoryMatrix, MuBeforeFullUsesStoredDaysOnly) {
  HistoryMatrix h(5, 1);
  h.PushDay({4.0});
  h.PushDay({8.0});
  EXPECT_DOUBLE_EQ(h.Mu(0, 5), 6.0);  // window capped at stored days
}

TEST(HistoryMatrix, MuValidation) {
  HistoryMatrix h(2, 2);
  EXPECT_THROW(h.Mu(0), std::invalid_argument);  // empty
  h.PushDay({1.0, 2.0});
  EXPECT_THROW(h.Mu(2), std::invalid_argument);     // bad slot
  EXPECT_THROW(h.Mu(0, 0), std::invalid_argument);  // zero window
  EXPECT_THROW(h.Mu(0, 3), std::invalid_argument);  // beyond capacity
}

TEST(HistoryMatrix, PushValidatesWidth) {
  HistoryMatrix h(2, 3);
  EXPECT_THROW(h.PushDay(DayOf(1.0, 2)), std::invalid_argument);
}

TEST(HistoryMatrix, ColumnSumsMatchManualSum) {
  HistoryMatrix h(3, 2);
  h.PushDay({1.0, 10.0});
  h.PushDay({2.0, 20.0});
  const auto sums = h.ColumnSums();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 30.0);
}

TEST(HistoryMatrix, FootprintWordsIsDtimesN) {
  // The paper's memory guideline: the matrix costs D*N words.
  HistoryMatrix h(20, 48);
  EXPECT_EQ(h.FootprintWords(), 960u);
}

TEST(HistoryMatrix, RejectsZeroDimensions) {
  EXPECT_THROW(HistoryMatrix(0, 4), std::invalid_argument);
  EXPECT_THROW(HistoryMatrix(4, 0), std::invalid_argument);
}

// Property: after pushing many days into a D-capacity ring, Mu over window
// w equals the arithmetic mean of the last w pushed values, for any w <= D.
class HistoryWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistoryWindowTest, MuMatchesDirectAverage) {
  const std::size_t window = GetParam();
  const std::size_t capacity = 8;
  HistoryMatrix h(capacity, 1);
  std::vector<double> pushed;
  for (int day = 0; day < 30; ++day) {
    const double v = 0.5 * day + (day % 3);
    h.PushDay({v});
    pushed.push_back(v);
    const std::size_t w = std::min(window, pushed.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < w; ++i) acc += pushed[pushed.size() - 1 - i];
    EXPECT_NEAR(h.Mu(0, window), acc / static_cast<double>(w), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, HistoryWindowTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace shep
