// Tests for mgmt/storage.hpp.
#include "mgmt/storage.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace shep {
namespace {

StorageParams Ideal() {
  StorageParams p;
  p.capacity_j = 100.0;
  p.charge_efficiency = 1.0;
  p.leakage_w = 0.0;
  return p;
}

TEST(StorageParams, Validation) {
  EXPECT_NO_THROW(StorageParams{}.Validate());
  StorageParams p = Ideal();
  p.capacity_j = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Ideal();
  p.charge_efficiency = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Ideal();
  p.charge_efficiency = 1.2;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Ideal();
  p.leakage_w = -1.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(EnergyStorage, InitialLevelWithinCapacity) {
  EnergyStorage s(Ideal(), 40.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 40.0);
  EXPECT_DOUBLE_EQ(s.fraction(), 0.4);
  EXPECT_THROW(EnergyStorage(Ideal(), 101.0), std::invalid_argument);
  EXPECT_THROW(EnergyStorage(Ideal(), -1.0), std::invalid_argument);
}

TEST(EnergyStorage, ChargeAccumulates) {
  EnergyStorage s(Ideal(), 10.0);
  const double overflow = s.Charge(20.0);
  EXPECT_DOUBLE_EQ(overflow, 0.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 30.0);
  EXPECT_DOUBLE_EQ(s.total_charged_j(), 20.0);
}

TEST(EnergyStorage, OverflowWhenFull) {
  EnergyStorage s(Ideal(), 95.0);
  const double overflow = s.Charge(20.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 100.0);
  EXPECT_DOUBLE_EQ(overflow, 15.0);
  EXPECT_DOUBLE_EQ(s.total_overflow_j(), 15.0);
}

TEST(EnergyStorage, ChargeEfficiencyReducesStored) {
  StorageParams p = Ideal();
  p.charge_efficiency = 0.5;
  EnergyStorage s(p, 0.0);
  s.Charge(20.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 10.0);
}

TEST(EnergyStorage, OverflowReportedInHarvestedJoules) {
  StorageParams p = Ideal();
  p.charge_efficiency = 0.5;
  EnergyStorage s(p, 99.0);  // space for 1 J stored = 2 J harvested
  const double overflow = s.Charge(10.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 100.0);
  EXPECT_DOUBLE_EQ(overflow, 8.0);
}

TEST(EnergyStorage, DischargeDeliversUpToLevel) {
  EnergyStorage s(Ideal(), 30.0);
  EXPECT_DOUBLE_EQ(s.Discharge(10.0), 10.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 20.0);
  // Request beyond level: partial delivery.
  EXPECT_DOUBLE_EQ(s.Discharge(50.0), 20.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_delivered_j(), 30.0);
}

TEST(EnergyStorage, LeakDrainsOverTime) {
  StorageParams p = Ideal();
  p.leakage_w = 0.5;
  EnergyStorage s(p, 10.0);
  s.Leak(4.0);
  EXPECT_DOUBLE_EQ(s.level_j(), 8.0);
  s.Leak(100.0);  // clamps at zero
  EXPECT_DOUBLE_EQ(s.level_j(), 0.0);
}

TEST(EnergyStorage, RejectsNegativeAmounts) {
  EnergyStorage s(Ideal(), 10.0);
  EXPECT_THROW(s.Charge(-1.0), std::invalid_argument);
  EXPECT_THROW(s.Discharge(-1.0), std::invalid_argument);
  EXPECT_THROW(s.Leak(-1.0), std::invalid_argument);
}

TEST(EnergyStorage, ConservationInvariant) {
  // level = initial + charged - delivered (ideal store, no leak).
  EnergyStorage s(Ideal(), 50.0);
  s.Charge(30.0);
  s.Discharge(25.0);
  s.Charge(10.0);
  s.Discharge(5.0);
  EXPECT_DOUBLE_EQ(
      s.level_j(),
      50.0 + s.total_charged_j() - s.total_delivered_j());
}

}  // namespace
}  // namespace shep
