// Tests for sweep/sweep.hpp — full-grid exploration and result queries.
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "solar/synth.hpp"

namespace shep {
namespace {

const SweepContext& EcsuContext() {
  static const SweepContext* ctx = [] {
    SynthOptions opt;
    opt.days = 45;
    const auto trace = SynthesizeTrace(SiteByCode("ECSU"), opt);
    return new SweepContext(trace, 24);
  }();
  return *ctx;
}

RoiFilter ShortFilter() {
  RoiFilter f;
  f.first_day = 20;
  return f;
}

TEST(SweepWcma, ProducesOnePointPerGridEntry) {
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  EXPECT_EQ(result.points.size(), grid.size());
  EXPECT_EQ(result.dataset, "ECSU");
  EXPECT_EQ(result.slots_per_day, 24);
  EXPECT_FALSE(result.degenerate);
  for (const auto& p : result.points) {
    EXPECT_TRUE(p.mean_stats.valid());
    EXPECT_TRUE(p.boundary_stats.valid());
    EXPECT_GE(p.mean_stats.mape, 0.0);
  }
}

TEST(SweepWcma, AtIndexingMatchesGridOrder) {
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  for (std::size_t i_d = 0; i_d < grid.days.size(); ++i_d) {
    for (std::size_t i_k = 0; i_k < grid.ks.size(); ++i_k) {
      for (std::size_t i_a = 0; i_a < grid.alphas.size(); ++i_a) {
        const auto& p = result.At(i_d, i_k, i_a);
        EXPECT_EQ(p.days_d, grid.days[i_d]);
        EXPECT_EQ(p.slots_k, grid.ks[i_k]);
        EXPECT_DOUBLE_EQ(p.alpha, grid.alphas[i_a]);
      }
    }
  }
  EXPECT_THROW(result.At(99, 0, 0), std::invalid_argument);
}

TEST(SweepWcma, ParallelAndSerialResultsAreIdentical) {
  const auto grid = ParamGrid::Coarse();
  const auto serial = SweepWcma(EcsuContext(), grid, ShortFilter());
  ThreadPool pool(4);
  const auto parallel = SweepWcma(EcsuContext(), grid, ShortFilter(), &pool);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points[i].mean_stats.mape,
                     parallel.points[i].mean_stats.mape);
    EXPECT_DOUBLE_EQ(serial.points[i].boundary_stats.mape,
                     parallel.points[i].boundary_stats.mape);
  }
}

TEST(SweepWcma, BestByMapeIsActuallyMinimal) {
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  const auto& best = result.BestByMape();
  for (const auto& p : result.points) {
    EXPECT_LE(best.mean_stats.mape, p.mean_stats.mape);
  }
  const auto& best_prime = result.BestByMapePrime();
  for (const auto& p : result.points) {
    EXPECT_LE(best_prime.boundary_stats.mape, p.boundary_stats.mape);
  }
}

TEST(SweepWcma, BestWithConstraintRespectsConstraint) {
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  const auto* with_k = result.BestByMapeWithK(2);
  ASSERT_NE(with_k, nullptr);
  EXPECT_EQ(with_k->slots_k, 2);
  EXPECT_GE(with_k->mean_stats.mape, result.BestByMape().mean_stats.mape);
  EXPECT_EQ(result.BestByMapeWithK(99), nullptr);

  const auto* with_d = result.BestByMapeWithD(10);
  ASSERT_NE(with_d, nullptr);
  EXPECT_EQ(with_d->days_d, 10);
}

TEST(SweepWcma, FindLocatesExactTriples) {
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  const auto* p = result.Find(0.5, 10, 2);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->alpha, 0.5);
  EXPECT_EQ(p->days_d, 10);
  EXPECT_EQ(p->slots_k, 2);
  EXPECT_EQ(result.Find(0.33, 10, 2), nullptr);
}

TEST(SweepWcma, MapeLowerThanMapePrimeAtOptimum) {
  // The qualitative heart of Table II: scoring against the slot mean gives
  // systematically lower error than scoring against the boundary sample.
  const auto grid = ParamGrid::Coarse();
  const auto result = SweepWcma(EcsuContext(), grid, ShortFilter());
  EXPECT_LT(result.BestByMape().mean_stats.mape,
            result.BestByMapePrime().boundary_stats.mape);
}

TEST(SweepWcma, RejectsEmptyGrid) {
  ParamGrid g;
  EXPECT_THROW(SweepWcma(EcsuContext(), g), std::invalid_argument);
}

}  // namespace
}  // namespace shep
