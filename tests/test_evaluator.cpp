// Tests for sweep/evaluator.hpp — the batch evaluator must be EXACTLY the
// streaming predictor, just faster.
#include "sweep/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

PowerTrace MakeTrace(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  return SynthesizeTrace(SiteByCode(site), opt);
}

TEST(SweepContext, GeometryAndPeaks) {
  const auto trace = MakeTrace("ECSU", 10);
  const SweepContext ctx(trace, 48);
  EXPECT_EQ(ctx.dataset(), "ECSU");
  EXPECT_EQ(ctx.slots_per_day(), 48);
  EXPECT_EQ(ctx.points(), 10u * 48u - 1u);
  EXPECT_GT(ctx.peak_mean(), 0.0);
  EXPECT_GT(ctx.peak_boundary(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.peak_mean(), ctx.series().peak_mean());
}

TEST(SweepContext, MuBeforeMatchesDirectAverage) {
  const auto trace = MakeTrace("NPCS", 8);
  const SweepContext ctx(trace, 24);
  const auto& s = ctx.series();
  // μ over 3 days before day 5, slot 12.
  const double expected = (s.boundary(2 * 24 + 12) + s.boundary(3 * 24 + 12) +
                           s.boundary(4 * 24 + 12)) /
                          3.0;
  EXPECT_NEAR(ctx.MuBefore(5, 12, 3), expected, 1e-12);
}

// The central equivalence property: for any (α, D, K), the evaluator's
// MAPE/MAPE′ equal those of the streaming Wcma run through RunPredictor.
class EvaluatorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int, int, int>> {};

TEST_P(EvaluatorEquivalenceTest, MatchesStreamingPredictor) {
  const auto [alpha, days_d, slots_k, n_slots] = GetParam();
  const auto trace = MakeTrace("SPMD", 30);
  const SweepContext ctx(trace, n_slots);

  WcmaParams p;
  p.alpha = alpha;
  p.days = days_d;
  p.slots_k = slots_k;

  RoiFilter filter;  // paper defaults: day >= 20, >= 10 % peak

  const auto batch = ctx.EvaluateConfig(p, filter);

  Wcma streaming(p, n_slots);
  const auto mean_stats = ScorePredictor(streaming, ctx.series(),
                                         ErrorTarget::kSlotMean, filter);
  const auto boundary_stats = ScorePredictor(
      streaming, ctx.series(), ErrorTarget::kBoundarySample, filter);

  ASSERT_EQ(batch.mean.count, mean_stats.count);
  ASSERT_EQ(batch.boundary.count, boundary_stats.count);
  EXPECT_NEAR(batch.mean.mape, mean_stats.mape, 1e-12);
  EXPECT_NEAR(batch.boundary.mape, boundary_stats.mape, 1e-12);
  EXPECT_NEAR(batch.mean.rmse, mean_stats.rmse, 1e-12);
  EXPECT_NEAR(batch.mean.mae, mean_stats.mae, 1e-12);
  EXPECT_NEAR(batch.mean.mbe, mean_stats.mbe, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EvaluatorEquivalenceTest,
    ::testing::Values(std::make_tuple(0.0, 2, 1, 24),
                      std::make_tuple(0.7, 20, 3, 48),
                      std::make_tuple(1.0, 5, 2, 48),
                      std::make_tuple(0.3, 10, 6, 24),
                      std::make_tuple(0.5, 20, 1, 96),
                      std::make_tuple(0.9, 3, 4, 24)));

TEST(SweepContext, AlphaDecompositionIsExact) {
  // ê = α·P + (1−α)·Q means Score(q, α) at α = 0 and 1 bracket any blend.
  const auto trace = MakeTrace("HSU", 25);
  const SweepContext ctx(trace, 24);
  const auto d = ctx.BuildD(5);
  const auto q = ctx.BuildQ(d, 3);

  WcmaParams p0;
  p0.alpha = 0.0;
  p0.days = 5;
  p0.slots_k = 3;
  const auto direct = ctx.EvaluateConfig(p0);
  const auto via_q = ctx.Score(q, 0.0);
  EXPECT_NEAR(direct.mean.mape, via_q.mean.mape, 1e-12);
}

TEST(SweepContext, DegenerateGridGivesZeroMapeAtAlphaOne) {
  // N=288 on a 5-minute site: M=1, mean == boundary, α=1 predicts the value
  // the error is scored against — the paper's "0†" entries.
  const auto trace = MakeTrace("SPMD", 25);  // 5-minute site
  const SweepContext ctx(trace, 288);
  EXPECT_TRUE(ctx.series().grid().degenerate());
  WcmaParams p;
  p.alpha = 1.0;
  p.days = 2;
  p.slots_k = 1;
  const auto score = ctx.EvaluateConfig(p);
  ASSERT_TRUE(score.mean.valid());
  EXPECT_DOUBLE_EQ(score.mean.mape, 0.0);
}

TEST(SweepContext, ValidatesArguments) {
  const auto trace = MakeTrace("NPCS", 5);
  const SweepContext ctx(trace, 24);
  EXPECT_THROW(ctx.BuildD(0), std::invalid_argument);
  const auto d = ctx.BuildD(2);
  EXPECT_THROW(ctx.BuildQ(d, 0), std::invalid_argument);
  EXPECT_THROW(ctx.BuildQ(d, 24), std::invalid_argument);
  const auto q = ctx.BuildQ(d, 2);
  EXPECT_THROW(ctx.Score(q, 1.5), std::invalid_argument);
}

TEST(SweepContext, EtaIsNeutralAtNightAndOnDayZero) {
  const auto trace = MakeTrace("PFCI", 5);
  const SweepContext ctx(trace, 24);
  const auto d = ctx.BuildD(3);
  // Day 0: all η = 1 by definition.
  for (std::size_t g = 0; g < 24; ++g) EXPECT_DOUBLE_EQ(d.eta[g], 1.0);
  // Midnight slots on later days: μ ≈ 0 -> η = 1 (night guard).
  EXPECT_DOUBLE_EQ(d.eta[3 * 24], 1.0);
}

TEST(SweepContext, MuPredSentinelOnlyOnDayZero) {
  const auto trace = MakeTrace("PFCI", 4);
  const SweepContext ctx(trace, 24);
  const auto d = ctx.BuildD(2);
  for (std::size_t g = 0; g < ctx.points(); ++g) {
    if ((g + 1) / 24 == 0) {
      EXPECT_LT(d.mu_pred[g], 0.0) << "g=" << g;
    } else {
      EXPECT_GE(d.mu_pred[g], 0.0) << "g=" << g;
    }
  }
}

}  // namespace
}  // namespace shep
