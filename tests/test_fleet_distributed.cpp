// Tests for the distributed fleet pipeline: shard plans, serialized
// partials, the plan-order merge, and the trace cache.  The acceptance
// pin lives here — a scenario executed as several separate RunFleetShards
// partial runs, each serialized to text and parsed back, must merge into
// a FleetSummary bit-identical (table + CSV + integer totals) to the
// single-process RunFleet at any thread count.
#include "fleet/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"
#include "fleet/partial.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/trace_cache.hpp"
#include "solar/clearsky.hpp"

namespace shep {
namespace {

ScenarioSpec DistributedSpec() {
  ScenarioSpec spec;
  spec.name = "distributed";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.days = 10;
  PredictorSpec fixed = wcma;  // a costed backend, so the cycle moments
  fixed.kind = PredictorKind::kWcmaFixed;  // and histograms are exercised.
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, fixed, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 3;
  spec.days = 30;
  spec.slots_per_day = 48;
  spec.seed = 77;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  return spec;
}

void ExpectMomentsBitIdentical(const StreamingMoments& a,
                               const StreamingMoments& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.m2, b.m2);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
}

void ExpectCellBitIdentical(const CellAccumulator& a,
                            const CellAccumulator& b) {
  ExpectMomentsBitIdentical(a.violation_rate, b.violation_rate);
  ExpectMomentsBitIdentical(a.mean_duty, b.mean_duty);
  ExpectMomentsBitIdentical(a.wasted_fraction, b.wasted_fraction);
  ExpectMomentsBitIdentical(a.min_soc, b.min_soc);
  ExpectMomentsBitIdentical(a.mape, b.mape);
  ExpectMomentsBitIdentical(a.cycles_per_wakeup, b.cycles_per_wakeup);
  ExpectMomentsBitIdentical(a.ops_per_wakeup, b.ops_per_wakeup);
  EXPECT_EQ(a.violation_hist.bins(), b.violation_hist.bins());
  EXPECT_EQ(a.violation_hist.total(), b.violation_hist.total());
  EXPECT_EQ(a.violation_hist.nan_count(), b.violation_hist.nan_count());
  EXPECT_EQ(a.cycles_hist.bins(), b.cycles_hist.bins());
  EXPECT_EQ(a.cycles_hist.nan_count(), b.cycles_hist.nan_count());
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.scored_slots, b.scored_slots);
}

void ExpectSummaryBitIdentical(const FleetSummary& a, const FleetSummary& b) {
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    ExpectCellBitIdentical(a.stats[i], b.stats[i]);
  }
  EXPECT_EQ(a.ToTable(), b.ToTable());
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
}

/// Runs each shard group as its own RunFleetShards call, pushes every
/// partial through Serialize → Parse (the process boundary), and merges.
FleetSummary RunDistributed(const ShardPlan& plan,
                            const std::vector<std::vector<std::size_t>>& groups,
                            const FleetRunOptions& options = {}) {
  std::vector<FleetPartial> partials;
  for (const auto& group : groups) {
    const FleetPartial partial = RunFleetShards(plan, group, options);
    const std::string wire = partial.Serialize();
    partials.push_back(FleetPartial::Parse(wire));
  }
  return MergeFleetPartials(plan, partials);
}

/// Round-robins the plan's shards into n groups.
std::vector<std::vector<std::size_t>> RoundRobinGroups(const ShardPlan& plan,
                                                       std::size_t n) {
  std::vector<std::vector<std::size_t>> groups(n);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    groups[i % n].push_back(i);
  }
  return groups;
}

TEST(ShardPlan, IsDeterministicAndCoversEveryNode) {
  const ScenarioSpec spec = DistributedSpec();
  const ShardPlan a = BuildShardPlan(spec, 5);
  const ShardPlan b = BuildShardPlan(spec, 5);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.Describe(), b.Describe());

  // Ranges tile [0, node_count) exactly.
  std::size_t next = 0;
  for (const ShardRange& range : a.shards) {
    EXPECT_EQ(range.begin_node, next);
    EXPECT_GT(range.end_node, range.begin_node);
    next = range.end_node;
  }
  EXPECT_EQ(next, a.matrix.nodes.size());

  // Lane table matches the matrix's (site, replica) keying.
  ASSERT_EQ(a.lanes.size(), a.matrix.trace_lane_count());
  for (const FleetNodeConfig& node : a.matrix.nodes) {
    const TraceLanePlan& lane = a.lanes[a.matrix.trace_lane(node)];
    EXPECT_EQ(lane.trace_seed, node.trace_seed);
    EXPECT_EQ(lane.site_code, a.matrix.cells[node.cell].site_code);
  }

  // A different shard size is a different plan identity.
  EXPECT_NE(BuildShardPlan(spec, 4).fingerprint, a.fingerprint);
  ScenarioSpec reseeded = spec;
  reseeded.seed = spec.seed + 1;
  EXPECT_NE(BuildShardPlan(reseeded, 5).fingerprint, a.fingerprint);
}

// The fingerprint must cover every result-relevant spec field — specs that
// differ only in a predictor parameter, a storage tier, or the node config
// expand to identically-shaped matrices, yet merging their partials has to
// fail loudly.
TEST(ShardPlan, FingerprintCoversResultRelevantSpecFields) {
  const ScenarioSpec base = DistributedSpec();
  const std::uint64_t fp = BuildShardPlan(base, 5).fingerprint;

  ScenarioSpec tuned = base;
  tuned.predictors[0].wcma.alpha = 0.5;
  EXPECT_NE(BuildShardPlan(tuned, 5).fingerprint, fp);

  ScenarioSpec retiered = base;
  retiered.storage_tiers_j[0] = 2000.0;
  EXPECT_NE(BuildShardPlan(retiered, 5).fingerprint, fp);

  ScenarioSpec reloaded = base;
  reloaded.node.duty.active_power_w = 0.35;
  EXPECT_NE(BuildShardPlan(reloaded, 5).fingerprint, fp);

  ScenarioSpec rewarmed = base;
  rewarmed.node.warmup_days = 21;
  rewarmed.days = base.days + 1;  // keep the horizon valid.
  EXPECT_NE(BuildShardPlan(rewarmed, 5).fingerprint, fp);

  ScenarioSpec jittered = base;
  jittered.initial_level_jitter = 0.1;
  EXPECT_NE(BuildShardPlan(jittered, 5).fingerprint, fp);
}

TEST(ShardPlan, DescribeRoundTripsThroughLayout) {
  const ShardPlan plan = BuildShardPlan(DistributedSpec(), 5);
  const ShardPlanLayout layout = ParseShardPlanLayout(plan.Describe());
  EXPECT_EQ(layout.scenario_name, plan.matrix.spec.name);
  EXPECT_EQ(layout.fingerprint, plan.fingerprint);
  EXPECT_EQ(layout.node_count, plan.matrix.nodes.size());
  EXPECT_EQ(layout.shard_size, plan.shard_size);
  EXPECT_EQ(layout.days, plan.matrix.spec.days);
  EXPECT_EQ(layout.slots_per_day, plan.matrix.spec.slots_per_day);
  ASSERT_EQ(layout.shards.size(), plan.shards.size());
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    EXPECT_EQ(layout.shards[i].begin_node, plan.shards[i].begin_node);
    EXPECT_EQ(layout.shards[i].end_node, plan.shards[i].end_node);
  }
  ASSERT_EQ(layout.lanes.size(), plan.lanes.size());
  for (std::size_t l = 0; l < plan.lanes.size(); ++l) {
    EXPECT_EQ(layout.lanes[l].site_code, plan.lanes[l].site_code);
    EXPECT_EQ(layout.lanes[l].trace_seed, plan.lanes[l].trace_seed);
  }

  EXPECT_THROW(ParseShardPlanLayout("not a plan"), std::invalid_argument);

  // Shard ranges must tile the node list: a gap, an overlap, or a short
  // covering is corruption a coordinator must not dispatch from.
  auto with_ranges = [&](const std::string& ranges, std::size_t count) {
    return "shep-shard-plan v1\nscenario s\nfingerprint 1\n"
           "nodes 10 shard_size 5 days 30 slots_per_day 48\n"
           "shards " + std::to_string(count) + "\n" + ranges + "lanes 0\n";
  };
  EXPECT_EQ(
      ParseShardPlanLayout(with_ranges("shard 0 0 5\nshard 1 5 10\n", 2))
          .shards.size(),
      2u);
  EXPECT_THROW(  // gap: nodes 5-6 uncovered.
      ParseShardPlanLayout(with_ranges("shard 0 0 5\nshard 1 7 10\n", 2)),
      std::invalid_argument);
  EXPECT_THROW(  // overlap: nodes 3-4 double-covered.
      ParseShardPlanLayout(with_ranges("shard 0 0 5\nshard 1 3 10\n", 2)),
      std::invalid_argument);
  EXPECT_THROW(  // short: nodes 8-9 never covered.
      ParseShardPlanLayout(with_ranges("shard 0 0 5\nshard 1 5 8\n", 2)),
      std::invalid_argument);
}

TEST(FleetPartial, SerializeParseRoundTripIsBitIdentical) {
  const ShardPlan plan = BuildShardPlan(DistributedSpec(), 5);
  std::vector<std::size_t> subset(plan.shards.size());
  std::iota(subset.begin(), subset.end(), 0);
  const FleetPartial original = RunFleetShards(plan, subset);

  const FleetPartial parsed = FleetPartial::Parse(original.Serialize());
  EXPECT_EQ(parsed.scenario_name, original.scenario_name);
  EXPECT_EQ(parsed.plan_fingerprint, original.plan_fingerprint);
  EXPECT_EQ(parsed.nodes_simulated, original.nodes_simulated);
  EXPECT_EQ(parsed.synth_seconds, original.synth_seconds);
  EXPECT_EQ(parsed.sim_seconds, original.sim_seconds);
  ASSERT_EQ(parsed.shards.size(), original.shards.size());
  for (std::size_t s = 0; s < original.shards.size(); ++s) {
    EXPECT_EQ(parsed.shards[s].shard, original.shards[s].shard);
    ASSERT_EQ(parsed.shards[s].cells.size(), original.shards[s].cells.size());
    for (std::size_t c = 0; c < original.shards[s].cells.size(); ++c) {
      EXPECT_EQ(parsed.shards[s].cells[c].first,
                original.shards[s].cells[c].first);
      ExpectCellBitIdentical(parsed.shards[s].cells[c].second,
                             original.shards[s].cells[c].second);
    }
  }

  // Serializing the parsed value reproduces the wire text exactly.
  EXPECT_EQ(parsed.Serialize(), original.Serialize());

  EXPECT_THROW(FleetPartial::Parse("garbage"), std::invalid_argument);
}

// Corrupted wire bytes must be rejected, never silently reinterpreted.
TEST(FleetPartial, ParseRejectsCorruptedAggregates) {
  std::ostringstream os;
  FixedHistogram h(0.0, 1.0, 10);
  h.Add(0.35);
  h.Add(0.35);
  h.Serialize(os);
  const std::string good = os.str();

  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return FixedHistogram::Deserialize(is);
  };
  // Sanity: the untampered line round-trips.
  EXPECT_EQ(parse(good).total(), 2u);

  // A negative bin count would cast to a huge uint64 mass.
  EXPECT_THROW(parse("hist 0x0p+0 0x1p+0 10 0 1 3:-5"),
               std::invalid_argument);
  // A zero count is not a non-zero entry.
  EXPECT_THROW(parse("hist 0x0p+0 0x1p+0 10 0 1 3:0"),
               std::invalid_argument);
  // Duplicate bin indices would overwrite the bin yet double-add total.
  EXPECT_THROW(parse("hist 0x0p+0 0x1p+0 10 0 2 3:1 3:1"),
               std::invalid_argument);
  // Out-of-order entries are equally malformed.
  EXPECT_THROW(parse("hist 0x0p+0 0x1p+0 10 0 2 4:1 3:1"),
               std::invalid_argument);

  // Integer overflow must not clamp to ULLONG_MAX silently.
  std::istringstream overflow("99999999999999999999999");
  EXPECT_THROW(serdes::ReadU64(overflow), std::invalid_argument);

  // Double overflow must not become infinity silently (no Serialize call
  // ever emits an overflowing decimal — hexfloat round-trips exactly).
  std::istringstream double_overflow("1e999");
  EXPECT_THROW(serdes::ReadDouble(double_overflow), std::invalid_argument);
  // Subnormals still parse exactly: underflow ERANGE is not corruption.
  std::ostringstream tiny;
  serdes::WriteDouble(tiny, 5e-324);  // smallest positive denormal.
  std::istringstream tiny_in(tiny.str());
  EXPECT_EQ(serdes::ReadDouble(tiny_in), 5e-324);
}

// The acceptance criterion: >= 3 separate partial runs, serialized and
// parsed back, merged in any grouping, at several thread counts — always
// bit-identical to the monolithic single-process RunFleet.
TEST(MergeFleetPartials, SerializedPartialRunsReproduceRunFleet) {
  const ScenarioSpec spec = DistributedSpec();
  FleetRunOptions mono_options;
  mono_options.shard_size = 5;
  const FleetSummary monolithic = RunFleet(spec, mono_options);

  const ShardPlan plan = BuildShardPlan(spec, 5);
  ASSERT_GE(plan.shards.size(), 3u);

  // Three serial partial runs over contiguous thirds.
  {
    std::vector<std::vector<std::size_t>> thirds(3);
    for (std::size_t i = 0; i < plan.shards.size(); ++i) {
      thirds[i * 3 / plan.shards.size()].push_back(i);
    }
    ExpectSummaryBitIdentical(RunDistributed(plan, thirds), monolithic);
  }

  // Interleaved grouping (shards of one partial are not contiguous), with
  // the subsets handed over in scrambled order.
  {
    auto groups = RoundRobinGroups(plan, 3);
    for (auto& group : groups) {
      std::reverse(group.begin(), group.end());
    }
    std::swap(groups[0], groups[2]);
    ExpectSummaryBitIdentical(RunDistributed(plan, groups), monolithic);
  }

  // One partial per shard (the finest grouping), executed on a pool.
  {
    ThreadPool pool(4);
    FleetRunOptions options;
    options.pool = &pool;
    std::vector<std::vector<std::size_t>> singles;
    for (std::size_t i = 0; i < plan.shards.size(); ++i) {
      singles.push_back({i});
    }
    ExpectSummaryBitIdentical(RunDistributed(plan, singles, options),
                              monolithic);
  }
}

TEST(MergeFleetPartials, RejectsForeignMissingAndDuplicateCoverage) {
  const ShardPlan plan = BuildShardPlan(DistributedSpec(), 5);
  const auto groups = RoundRobinGroups(plan, 2);
  std::vector<FleetPartial> partials;
  for (const auto& group : groups) {
    partials.push_back(RunFleetShards(plan, group));
  }

  // Happy path sanity first.
  EXPECT_EQ(MergeFleetPartials(plan, partials).node_count,
            plan.matrix.nodes.size());

  // A shard missing.
  EXPECT_THROW(MergeFleetPartials(plan, {partials[0]}),
               std::invalid_argument);

  // A shard covered twice.
  EXPECT_THROW(
      MergeFleetPartials(plan, {partials[0], partials[1], partials[0]}),
      std::invalid_argument);

  // A partial from a different plan (other seed => other fingerprint).
  ScenarioSpec reseeded = DistributedSpec();
  reseeded.seed = 123456;
  const ShardPlan foreign_plan = BuildShardPlan(reseeded, 5);
  std::vector<FleetPartial> foreign = partials;
  foreign[0].plan_fingerprint = foreign_plan.fingerprint;
  EXPECT_THROW(MergeFleetPartials(plan, foreign), std::invalid_argument);

  // Malformed subsets are rejected by RunFleetShards itself.
  EXPECT_THROW(RunFleetShards(plan, {}), std::invalid_argument);
  EXPECT_THROW(RunFleetShards(plan, {0, 0}), std::invalid_argument);
  EXPECT_THROW(RunFleetShards(plan, {plan.shards.size()}),
               std::invalid_argument);
}

TEST(TraceCache, HitReturnsTheIdenticalSeries) {
  TraceCache cache;
  const auto a = cache.Get("HSU", 42, 30, 48);
  const auto b = cache.Get("HSU", 42, 30, 48);
  EXPECT_EQ(a.get(), b.get());  // literally the same object.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  // Any differing key component is a distinct entry.
  EXPECT_NE(cache.Get("PFCI", 42, 30, 48).get(), a.get());
  EXPECT_NE(cache.Get("HSU", 43, 30, 48).get(), a.get());
  EXPECT_NE(cache.Get("HSU", 42, 31, 48).get(), a.get());
  EXPECT_NE(cache.Get("HSU", 42, 30, 24).get(), a.get());
  EXPECT_EQ(cache.stats().entries, 5u);

  // The cached series is the same synthesis a direct run performs.
  TraceCache fresh;
  const auto c = fresh.Get("HSU", 42, 30, 48);
  ASSERT_EQ(c->size(), a->size());
  for (std::size_t g = 0; g < a->size(); ++g) {
    EXPECT_EQ(c->boundary(g), a->boundary(g));
    EXPECT_EQ(c->mean(g), a->mean(g));
  }

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(TraceCache, CapBoundsEntriesAndKeepsHandedOutSeriesAlive) {
  TraceCache cache(3);
  const auto first = cache.Get("HSU", 1, 3, 24);
  for (std::uint64_t seed = 2; seed <= 5; ++seed) {
    cache.Get("HSU", seed, 3, 24);
  }

  TraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.misses, 5u);

  // The just-inserted key is never the victim, so a run sweeping seeds in
  // order still hits its newest entry.
  bool hit = false;
  cache.Get("HSU", 5, 3, 24, &hit);
  EXPECT_TRUE(hit);

  // An evicted key re-synthesizes a NEW instance with identical data,
  // while series already handed out stay alive through their shared_ptrs.
  const auto again = cache.Get("HSU", 1, 3, 24, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(again.get(), first.get());
  ASSERT_EQ(again->size(), first->size());
  for (std::size_t g = 0; g < first->size(); ++g) {
    EXPECT_EQ(again->boundary(g), first->boundary(g));
    EXPECT_EQ(again->mean(g), first->mean(g));
  }
  stats = cache.stats();
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(TraceCache, RunStatsReportCacheAndClearSkyDeltas) {
  const ScenarioSpec spec = DistributedSpec();
  const FleetSummary reference = RunFleet(spec);
  ClearClearSkyMemo();

  // A one-entry cache forces an eviction per lane after the first; the
  // summary must not notice (caps change wall time and memory, nothing
  // else), and the run stats must report the churn.
  TraceCache tiny(1);
  FleetRunOptions options;
  options.trace_cache = &tiny;
  FleetRunStats info;
  const FleetSummary capped = RunFleet(spec, options, &info);
  ExpectSummaryBitIdentical(capped, reference);

  EXPECT_EQ(info.trace_cache_misses, info.unique_traces);
  EXPECT_EQ(info.trace_cache_evictions, info.unique_traces - 1);
  EXPECT_EQ(tiny.stats().entries, 1u);

  // Phase 1's synthesis goes through the process-wide clear-sky memo:
  // every (site, day-of-year) profile misses once, and the other lanes of
  // the same site hit it.  The default capacity comfortably holds a
  // 30-day, 2-site campaign, so nothing is evicted.
  EXPECT_GT(info.clearsky_misses, 0u);
  EXPECT_GT(info.clearsky_hits, 0u);
  EXPECT_EQ(info.clearsky_evictions, 0u);
}

TEST(TraceCache, CachedRunsAreBitIdenticalAndWarmRunsHit) {
  const ScenarioSpec spec = DistributedSpec();
  const FleetSummary uncached = RunFleet(spec);

  TraceCache cache;
  ThreadPool pool(4);
  FleetRunOptions options;
  options.pool = &pool;
  options.trace_cache = &cache;

  FleetRunStats cold_info;
  const FleetSummary cold = RunFleet(spec, options, &cold_info);
  ExpectSummaryBitIdentical(cold, uncached);
  EXPECT_EQ(cold_info.trace_cache_hits, 0u);
  EXPECT_EQ(cold_info.trace_cache_misses, cold_info.unique_traces);

  // A warm re-run synthesizes nothing and still matches bit for bit.
  FleetRunStats warm_info;
  const FleetSummary warm = RunFleet(spec, options, &warm_info);
  ExpectSummaryBitIdentical(warm, uncached);
  EXPECT_EQ(warm_info.trace_cache_hits, warm_info.unique_traces);
  EXPECT_EQ(warm_info.trace_cache_misses, 0u);

  // Partial runs share the same cache: a subset run on warm lanes hits.
  const ShardPlan plan = BuildShardPlan(spec, options.shard_size);
  FleetRunStats subset_info;
  RunFleetShards(plan, {0}, options, &subset_info);
  EXPECT_GT(subset_info.trace_cache_hits, 0u);
  EXPECT_EQ(subset_info.trace_cache_misses, 0u);
}

}  // namespace
}  // namespace shep
