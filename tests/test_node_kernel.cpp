// Tests for the static-dispatch node-sim kernel (mgmt/node_sim_kernel.hpp)
// and its fleet-side dispatcher (SimulateSpecNode): the devirtualized hot
// path must reproduce the classic virtual entry point bit for bit, cost
// channel included — otherwise "fleet results are dispatch-independent"
// (what lets sweep/examples stay on Predictor& while the fleet runs
// concrete types) would silently stop holding.
#include <gtest/gtest.h>

#include "core/ar.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "fleet/runner.hpp"
#include "hw/costed_fixed.hpp"
#include "mgmt/node_sim_kernel.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

SlotSeries MakeSeries(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  return SlotSeries(SynthesizeTrace(SiteByCode(site), opt), 48);
}

NodeSimConfig MakeConfig() {
  NodeSimConfig c;
  c.duty.slot_seconds = 1800.0;
  c.duty.active_power_w = 0.40;
  c.storage.capacity_j = 4000.0;
  c.warmup_days = 20;
  return c;
}

void ExpectBitIdentical(const NodeSimResult& a, const NodeSimResult& b) {
  EXPECT_EQ(a.predictor_name, b.predictor_name);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.violation_rate, b.violation_rate);
  EXPECT_EQ(a.mean_duty, b.mean_duty);
  EXPECT_EQ(a.duty_stddev, b.duty_stddev);
  EXPECT_EQ(a.overflow_j, b.overflow_j);
  EXPECT_EQ(a.delivered_j, b.delivered_j);
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(a.min_level_fraction, b.min_level_fraction);
  EXPECT_EQ(a.mape, b.mape);
  EXPECT_EQ(a.mape_points, b.mape_points);
  EXPECT_EQ(a.has_compute_cost, b.has_compute_cost);
  EXPECT_EQ(a.compute.cycles, b.compute.cycles);
  EXPECT_EQ(a.compute.ops, b.compute.ops);
  EXPECT_EQ(a.compute.predictions, b.compute.predictions);
}

PredictorSpec HotSpec(PredictorKind kind) {
  PredictorSpec spec;
  spec.kind = kind;
  spec.wcma.alpha = 0.7;
  spec.wcma.days = 10;
  spec.wcma.slots_k = 3;
  spec.ewma_weight = 0.5;
  spec.ar.order = 3;
  spec.ar.days = 10;
  return spec;
}

// Every hot fleet kind: the concrete-type kernel instantiation selected by
// SimulateSpecNode must equal Make() + virtual SimulateNode exactly.
TEST(SimulateSpecNode, HotKindsMatchVirtualPathBitForBit) {
  const auto series = MakeSeries("ORNL", 40);
  const auto config = MakeConfig();
  for (PredictorKind kind :
       {PredictorKind::kWcma, PredictorKind::kWcmaFixed, PredictorKind::kEwma,
        PredictorKind::kAr}) {
    const PredictorSpec spec = HotSpec(kind);
    const NodeSimResult fast = SimulateSpecNode(spec, 48, series, config);
    const auto predictor = spec.Make(48);
    const NodeSimResult slow = SimulateNode(*predictor, series, config);
    ExpectBitIdentical(fast, slow);
  }
}

// The compute-cost channel specifically: the concrete instantiation probes
// at compile time (if constexpr), the virtual one via dynamic_cast — both
// must report the identical totals for a cost-reporting backend and agree
// that a float backend reports none.
TEST(SimulateSpecNode, CostChannelMatchesDynamicCastProbe) {
  const auto series = MakeSeries("HSU", 35);
  const auto config = MakeConfig();

  const NodeSimResult fixed =
      SimulateSpecNode(HotSpec(PredictorKind::kWcmaFixed), 48, series, config);
  EXPECT_TRUE(fixed.has_compute_cost);
  EXPECT_GT(fixed.compute.predictions, 0u);
  EXPECT_GT(fixed.compute.cycles, 0.0);

  const NodeSimResult floating =
      SimulateSpecNode(HotSpec(PredictorKind::kWcma), 48, series, config);
  EXPECT_FALSE(floating.has_compute_cost);
  EXPECT_EQ(floating.compute.predictions, 0u);
}

// Kinds outside the hot set take the Make() + virtual fallback inside
// SimulateSpecNode; they must behave exactly like calling it directly.
TEST(SimulateSpecNode, FallbackKindsMatchVirtualPath) {
  const auto series = MakeSeries("PFCI", 35);
  const auto config = MakeConfig();
  for (PredictorKind kind : {PredictorKind::kPersistence,
                             PredictorKind::kPreviousDay,
                             PredictorKind::kWcmaVm}) {
    PredictorSpec spec = HotSpec(kind);
    const NodeSimResult via_dispatch = SimulateSpecNode(spec, 48, series,
                                                        config);
    const auto predictor = spec.Make(48);
    const NodeSimResult direct = SimulateNode(*predictor, series, config);
    ExpectBitIdentical(via_dispatch, direct);
  }
}

// Direct kernel instantiation on a stack-constructed concrete predictor:
// what the fleet runner executes per node, pinned against the virtual
// reference without going through the PredictorSpec layer.
TEST(SimulateNodeKernel, ConcreteInstantiationEqualsVirtual) {
  const auto series = MakeSeries("ECSU", 40);
  const auto config = MakeConfig();
  WcmaParams params;
  params.alpha = 0.7;
  params.days = 10;
  params.slots_k = 2;

  Wcma concrete(params, 48);
  const NodeSimResult fast = SimulateNodeKernel(concrete, series, config);

  Wcma virtual_instance(params, 48);
  Predictor& as_base = virtual_instance;
  const NodeSimResult slow = SimulateNode(as_base, series, config);
  ExpectBitIdentical(fast, slow);
}

}  // namespace
}  // namespace shep
