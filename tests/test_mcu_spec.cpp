// Tests for hw/mcu_spec.hpp — platform constants against Table IV anchors.
#include "hw/mcu_spec.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

TEST(McuPowerSpec, AdcSampleEnergyNearPaperValue) {
  // Table IV: "A/D conversion 55 µJ".
  McuPowerSpec spec;
  EXPECT_NEAR(spec.AdcSampleEnergyJ(), 55.0e-6, 1.0e-6);
}

TEST(McuPowerSpec, SleepEnergyPerDayNearPaperValue) {
  // Table IV: "Low power (sleep) mode 1.4 µA@3V — 356 mJ per day".
  // 1.4 µA × 3 V × 86400 s = 362.9 mJ; the paper's own 356 mJ differs from
  // its stated current by ~2 % — we accept either within that band.
  McuPowerSpec spec;
  const double day_j = spec.SleepPowerW() * 86400.0;
  EXPECT_NEAR(day_j, 0.360, 0.008);
}

TEST(McuPowerSpec, ActiveCycleEnergyIsSubTwoNanojoule) {
  // 3 V × 2.2 mA / 5 MHz = 1.32 nJ/cycle — typical for the F1611 class.
  McuPowerSpec spec;
  EXPECT_NEAR(spec.ActiveCycleEnergyJ(), 1.32e-9, 0.05e-9);
}

TEST(McuPowerSpec, VrefSettleDominatesAdcEnergy) {
  // Fig. 5's design point: the 45 ms settle wait is >95 % of sample cost.
  McuPowerSpec spec;
  const double settle_j = spec.supply_v * spec.vref_current_a *
                          spec.vref_settle_s;
  EXPECT_GT(settle_j / spec.AdcSampleEnergyJ(), 0.95);
}

TEST(McuPowerSpec, Validation) {
  McuPowerSpec spec;
  EXPECT_NO_THROW(spec.Validate());
  spec.supply_v = 0.0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = McuPowerSpec{};
  spec.sleep_current_a = spec.active_current_a;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec = McuPowerSpec{};
  spec.clock_hz = -1.0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(CycleCosts, DivisionDominates) {
  // MSP430F1611: hardware multiplier but no divider — a software division
  // must cost an order of magnitude more than a multiply.
  CycleCosts costs;
  EXPECT_GT(costs.div, 10.0 * costs.mul);
  EXPECT_GT(costs.mul, costs.add);
}

TEST(CycleCosts, CyclesLinearInCounts) {
  CycleCosts costs;
  OpCounts ops;
  ops.add = 2;
  ops.mul = 3;
  ops.div = 1;
  ops.load = 4;
  ops.store = 5;
  ops.branch = 6;
  const double expected = 2 * costs.add + 3 * costs.mul + 1 * costs.div +
                          4 * costs.load + 5 * costs.store + 6 * costs.branch;
  EXPECT_DOUBLE_EQ(costs.Cycles(ops), expected);

  OpCounts doubled = ops;
  doubled += ops;
  EXPECT_DOUBLE_EQ(costs.Cycles(doubled), 2.0 * expected);
}

TEST(CycleCosts, Validation) {
  CycleCosts costs;
  EXPECT_NO_THROW(costs.Validate());
  costs.div = -1.0;
  EXPECT_THROW(costs.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace shep
