// Tests for hw/vm.hpp — MicroVm semantics and cycle accounting.
#include "hw/vm.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

TEST(MicroVm, LoadStoreRoundTrip) {
  MicroVm vm(8);
  vm.Poke(2, 42.5);
  const std::vector<Instr> prog{
      {Op::kLoad, 0, 2, 0, 0.0},
      {Op::kStore, 0, 3, 0, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_DOUBLE_EQ(vm.Peek(3), 42.5);
  EXPECT_EQ(r.instructions, 3u);
}

TEST(MicroVm, ArithmeticOps) {
  MicroVm vm(8);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 6.0}, {Op::kLoadImm, 1, 0, 0, 4.0},
      {Op::kAdd, 2, 0, 1, 0.0},     {Op::kStore, 2, 0, 0, 0.0},
      {Op::kSub, 2, 0, 1, 0.0},     {Op::kStore, 2, 1, 0, 0.0},
      {Op::kMul, 2, 0, 1, 0.0},     {Op::kStore, 2, 2, 0, 0.0},
      {Op::kDiv, 2, 0, 1, 0.0},     {Op::kStore, 2, 3, 0, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_DOUBLE_EQ(vm.Peek(0), 10.0);
  EXPECT_DOUBLE_EQ(vm.Peek(1), 2.0);
  EXPECT_DOUBLE_EQ(vm.Peek(2), 24.0);
  EXPECT_DOUBLE_EQ(vm.Peek(3), 1.5);
}

TEST(MicroVm, IndexedAddressing) {
  MicroVm vm(16);
  for (int i = 0; i < 4; ++i) vm.Poke(4 + static_cast<std::size_t>(i), i * 10.0);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 1, 0, 0, 2.0},   // idx = 2
      {Op::kLoadIdx, 0, 4, 1, 0.0},   // r0 = mem[4+2] = 20
      {Op::kStoreIdx, 0, 8, 1, 0.0},  // mem[8+2] = 20
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_DOUBLE_EQ(vm.Peek(10), 20.0);
}

TEST(MicroVm, BranchesAndLoop) {
  // Sum 1..5 with a jgt loop.
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 0.0},  // acc
      {Op::kLoadImm, 1, 0, 0, 5.0},  // i = 5
      {Op::kLoadImm, 2, 0, 0, 0.0},  // zero
      {Op::kLoadImm, 3, 0, 0, 1.0},  // one
      // loop:
      {Op::kAdd, 0, 0, 1, 0.0},      // acc += i
      {Op::kSub, 1, 1, 3, 0.0},      // i -= 1
      {Op::kJgt, 4, 1, 2, 0.0},      // if i > 0 goto loop
      {Op::kStore, 0, 0, 0, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_DOUBLE_EQ(vm.Peek(0), 15.0);
}

TEST(MicroVm, JzAndJge) {
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 0.0},
      {Op::kJz, 4, 0, 0, 0.0},        // taken
      {Op::kLoadImm, 1, 0, 0, 99.0},  // skipped
      {Op::kHalt, 0, 0, 0, 0.0},
      {Op::kLoadImm, 2, 0, 0, 1.0},
      {Op::kJge, 7, 2, 0, 0.0},       // 1 >= 0 -> taken
      {Op::kLoadImm, 1, 0, 0, 99.0},  // skipped
      {Op::kStore, 1, 0, 0, 0.0},     // stores r1 (still 0)
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok) << r.trap;
  EXPECT_DOUBLE_EQ(vm.Peek(0), 0.0);
}

TEST(MicroVm, CycleAccountingUsesCosts) {
  CycleCosts costs;
  costs.load = 3;
  costs.store = 4;
  costs.add = 2;
  MicroVm vm(4, costs);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 1.0},  // load: 3
      {Op::kAdd, 0, 0, 0, 0.0},      // add: 2
      {Op::kStore, 0, 0, 0, 0.0},    // store: 4
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.cycles, 9.0);
  EXPECT_EQ(r.ops.load, 1u);
  EXPECT_EQ(r.ops.add, 1u);
  EXPECT_EQ(r.ops.store, 1u);
}

TEST(MicroVm, DivisionCostsDominateInMix) {
  CycleCosts costs;  // defaults: div >> mul
  MicroVm vm(4, costs);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 6.0},
      {Op::kLoadImm, 1, 0, 0, 3.0},
      {Op::kDiv, 2, 0, 1, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.cycles, costs.div);
  EXPECT_LT(r.cycles, costs.div + 10.0);
}

TEST(MicroVm, TrapsOnDivideByZero) {
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 0, 0, 0, 1.0},
      {Op::kLoadImm, 1, 0, 0, 0.0},
      {Op::kDiv, 2, 0, 1, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("division by zero"), std::string::npos);
}

TEST(MicroVm, TrapsOnOutOfRangeMemory) {
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoad, 0, 99, 0, 0.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("out of range"), std::string::npos);
}

TEST(MicroVm, TrapsOnBadRegister) {
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kLoadImm, 77, 0, 0, 1.0},
      {Op::kHalt, 0, 0, 0, 0.0},
  };
  const auto r = vm.Run(prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("bad register"), std::string::npos);
}

TEST(MicroVm, TrapsOnRunawayProgram) {
  MicroVm vm(4);
  const std::vector<Instr> prog{
      {Op::kJmp, 0, 0, 0, 0.0},  // infinite loop
  };
  const auto r = vm.Run(prog, 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.trap.find("max steps"), std::string::npos);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST(MicroVm, EmptyProgramIsATrap) {
  MicroVm vm(4);
  const auto r = vm.Run({});
  EXPECT_FALSE(r.ok);
}

TEST(MicroVm, PokePeekValidation) {
  MicroVm vm(4);
  EXPECT_THROW(vm.Poke(4, 1.0), std::invalid_argument);
  EXPECT_THROW(vm.Peek(4), std::invalid_argument);
  EXPECT_THROW(MicroVm(0), std::invalid_argument);
}

TEST(ToStringInstr, RendersAllOpcodes) {
  EXPECT_NE(ToString({Op::kLoadImm, 1, 0, 0, 2.5}).find("loadi"),
            std::string::npos);
  EXPECT_NE(ToString({Op::kDiv, 1, 2, 3, 0.0}).find("div"),
            std::string::npos);
  EXPECT_NE(ToString({Op::kJgt, 5, 1, 2, 0.0}).find("jgt"),
            std::string::npos);
  EXPECT_NE(ToString({Op::kHalt, 0, 0, 0, 0.0}).find("halt"),
            std::string::npos);
}

}  // namespace
}  // namespace shep
