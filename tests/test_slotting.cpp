// Tests for timeseries/slotting.hpp — the paper's Fig. 4 geometry.
#include "timeseries/slotting.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shep {
namespace {

PowerTrace MakeTrace(std::size_t days, int resolution_s) {
  const std::size_t per_day =
      static_cast<std::size_t>(kSecondsPerDay / resolution_s);
  std::vector<double> v(days * per_day);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % per_day);
  }
  return PowerTrace("T", std::move(v), resolution_s);
}

TEST(SlotGrid, PaperGeometryAt5Minutes) {
  // Sec. III example: T = 30 min (N = 48) with 5-minute data -> M = 6.
  const auto trace = MakeTrace(1, 300);
  const auto grid = SlotGrid::Make(trace, 48);
  EXPECT_EQ(grid.slots_per_day, 48);
  EXPECT_EQ(grid.samples_per_slot, 6);
  EXPECT_EQ(grid.slot_seconds, 1800);
  EXPECT_FALSE(grid.degenerate());
}

TEST(SlotGrid, N288IsDegenerateOn5MinuteData) {
  // Table III footnote: N=288 "is not defined" for the 5-minute sites.
  const auto trace = MakeTrace(1, 300);
  const auto grid = SlotGrid::Make(trace, 288);
  EXPECT_EQ(grid.samples_per_slot, 1);
  EXPECT_TRUE(grid.degenerate());
}

TEST(SlotGrid, N288IsFineOn1MinuteData) {
  const auto trace = MakeTrace(1, 60);
  const auto grid = SlotGrid::Make(trace, 288);
  EXPECT_EQ(grid.samples_per_slot, 5);
  EXPECT_FALSE(grid.degenerate());
}

TEST(SlotGrid, RejectsNonDividingN) {
  const auto trace = MakeTrace(1, 300);
  EXPECT_THROW(SlotGrid::Make(trace, 7), std::invalid_argument);
  EXPECT_THROW(SlotGrid::Make(trace, 0), std::invalid_argument);
  // N=576 -> slot 150 s, not a multiple of the 300 s resolution.
  EXPECT_THROW(SlotGrid::Make(trace, 576), std::invalid_argument);
}

TEST(SlotSeries, BoundaryIsFirstSampleOfSlot) {
  const auto trace = MakeTrace(2, 3600);  // 24 samples/day, values 0..23
  const SlotSeries s(trace, 12);          // M = 2
  EXPECT_EQ(s.size(), 24u);
  EXPECT_DOUBLE_EQ(s.boundary(0), 0.0);
  EXPECT_DOUBLE_EQ(s.boundary(1), 2.0);
  EXPECT_DOUBLE_EQ(s.boundary(12), 0.0);  // day 2 repeats the ramp
}

TEST(SlotSeries, MeanIsAverageOfSlotSamples) {
  const auto trace = MakeTrace(1, 3600);
  const SlotSeries s(trace, 12);  // slots of samples {0,1},{2,3},...
  EXPECT_DOUBLE_EQ(s.mean(0), 0.5);
  EXPECT_DOUBLE_EQ(s.mean(1), 2.5);
  EXPECT_DOUBLE_EQ(s.mean(11), 22.5);
}

TEST(SlotSeries, SlotEnergyIsMeanTimesT) {
  const auto trace = MakeTrace(1, 3600);
  const SlotSeries s(trace, 12);
  EXPECT_DOUBLE_EQ(s.slot_energy_j(1), 2.5 * 7200.0);
}

TEST(SlotSeries, DegenerateGridMeansEqualBoundaries) {
  // M = 1: the slot mean IS the boundary sample — the mechanism behind the
  // paper's "0†" entries at N=288 on 5-minute data.
  const auto trace = MakeTrace(2, 300);
  const SlotSeries s(trace, 288);
  for (std::size_t g = 0; g < s.size(); ++g) {
    EXPECT_DOUBLE_EQ(s.boundary(g), s.mean(g));
  }
}

TEST(SlotSeries, GlobalIndexingRoundTrips) {
  const auto trace = MakeTrace(3, 3600);
  const SlotSeries s(trace, 24);
  const auto g = s.global_index(2, 5);
  EXPECT_EQ(g, 53u);
  EXPECT_EQ(s.day_of(g), 2u);
  EXPECT_EQ(s.slot_of(g), 5u);
}

TEST(SlotSeries, DayViewsHaveNSlots) {
  const auto trace = MakeTrace(2, 3600);
  const SlotSeries s(trace, 8);
  EXPECT_EQ(s.day_boundaries(0).size(), 8u);
  EXPECT_EQ(s.day_means(1).size(), 8u);
  EXPECT_THROW(s.day_means(2), std::invalid_argument);
}

TEST(SlotSeries, PeakMeanIsMaxOfMeans) {
  std::vector<double> v(24, 0.0);
  v[4] = 10.0;  // spike inside slot 2 (with N=12, M=2)
  PowerTrace trace("T", v, 3600);
  const SlotSeries s(trace, 12);
  EXPECT_DOUBLE_EQ(s.peak_mean(), 5.0);  // (10+0)/2
}

// Property sweep: for every paper N, boundaries and means are consistent
// with the raw trace.
class SlotSeriesParamTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotSeriesParamTest, ConsistentWithRawSamplesAt1Minute) {
  const int n = GetParam();
  const auto trace = MakeTrace(2, 60);
  const SlotSeries s(trace, n);
  const auto m = static_cast<std::size_t>(s.grid().samples_per_slot);
  ASSERT_EQ(s.size(), 2u * static_cast<std::size_t>(n));
  for (std::size_t g = 0; g < s.size(); g += 37) {  // stride for speed
    const std::size_t day = s.day_of(g);
    const std::size_t slot = s.slot_of(g);
    EXPECT_DOUBLE_EQ(s.boundary(g), trace.at(day, slot * m));
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += trace.at(day, slot * m + i);
    EXPECT_DOUBLE_EQ(s.mean(g), acc / static_cast<double>(m));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSlotCounts, SlotSeriesParamTest,
                         ::testing::Values(288, 96, 72, 48, 24));

}  // namespace
}  // namespace shep
