// Tests for mgmt/node_sim.hpp — prediction quality has operational value.
#include "mgmt/node_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/baselines.hpp"
#include "core/ewma.hpp"
#include "core/wcma.hpp"
#include "mgmt/duty_cycle.hpp"
#include "mgmt/storage.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

SlotSeries MakeSeries(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  const auto trace = SynthesizeTrace(SiteByCode(site), opt);
  return SlotSeries(trace, 48);
}

NodeSimConfig MakeConfig() {
  NodeSimConfig c;
  c.duty.slot_seconds = 1800.0;
  // Load sized to the harvester: the 1.5 W-peak panel delivers ~0.2 W on
  // average, so a 0.4 W active load settles near 50 % duty and the
  // controller genuinely has to ration energy.
  c.duty.active_power_w = 0.40;
  c.duty.sleep_power_w = 5.0e-6;
  c.duty.min_duty = 0.05;
  c.duty.level_gain = 0.10;
  // A few-hours buffer, not a day-scale one: prediction errors must be
  // able to show up as brown-outs or spilled harvest.
  c.storage.capacity_j = 4000.0;
  c.storage.charge_efficiency = 0.85;
  c.storage.leakage_w = 20.0e-6;
  c.warmup_days = 20;
  return c;
}

TEST(SimulateNode, ProducesConsistentAccounting) {
  const auto series = MakeSeries("ECSU", 60);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;
  Wcma predictor(p, 48);
  const auto r = SimulateNode(predictor, series, MakeConfig());
  EXPECT_EQ(r.slots, (60u - 20u) * 48u - 1u);
  EXPECT_GE(r.mean_duty, MakeConfig().duty.min_duty);
  EXPECT_LE(r.mean_duty, 1.0);
  EXPECT_GE(r.violation_rate, 0.0);
  EXPECT_LE(r.violation_rate, 1.0);
  EXPECT_GT(r.harvested_j, 0.0);
  EXPECT_GT(r.delivered_j, 0.0);
  EXPECT_GE(r.min_level_fraction, 0.0);
  EXPECT_NE(r.predictor_name.find("WCMA"), std::string::npos);
}

TEST(SimulateNode, DeterministicForSamePredictor) {
  const auto series = MakeSeries("HSU", 40);
  WcmaParams p;
  p.days = 10;
  Wcma a(p, 48), b(p, 48);
  const auto ra = SimulateNode(a, series, MakeConfig());
  const auto rb = SimulateNode(b, series, MakeConfig());
  EXPECT_DOUBLE_EQ(ra.mean_duty, rb.mean_duty);
  EXPECT_EQ(ra.violations, rb.violations);
  EXPECT_DOUBLE_EQ(ra.overflow_j, rb.overflow_j);
}

TEST(SimulateNode, NodeStaysUpMostOfTheTime) {
  const auto series = MakeSeries("PFCI", 60);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 10;
  p.slots_k = 2;
  Wcma predictor(p, 48);
  const auto r = SimulateNode(predictor, series, MakeConfig());
  // Sunny site + conservative controller: brown-outs must be rare.
  EXPECT_LT(r.violation_rate, 0.05);
}

TEST(SimulateNode, BetterPredictorDeliversBetterOperation) {
  // The paper's premise: management effectiveness is sensitive to
  // prediction accuracy.  Score = violation rate with wasted-harvest as a
  // tiebreaker; WCMA must beat the day-lagging EWMA baseline on a volatile
  // site.
  const auto series = MakeSeries("ORNL", 90);
  auto config = MakeConfig();

  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;
  Wcma wcma(p, 48);
  Ewma ewma(0.5, 48);

  const auto r_wcma = SimulateNode(wcma, series, config);
  const auto r_ewma = SimulateNode(ewma, series, config);

  const double score_wcma =
      r_wcma.violation_rate + r_wcma.overflow_j / r_wcma.harvested_j;
  const double score_ewma =
      r_ewma.violation_rate + r_ewma.overflow_j / r_ewma.harvested_j;
  EXPECT_LT(score_wcma, score_ewma);
}

TEST(SimulateNode, SlotLengthMismatchIsRejected) {
  const auto series = MakeSeries("HSU", 25);
  auto config = MakeConfig();
  config.duty.slot_seconds = 900.0;  // series is 1800 s slots
  Persistence p;
  EXPECT_THROW(SimulateNode(p, series, config), std::invalid_argument);
}

TEST(SimulateNode, ValidatesInitialLevel) {
  const auto series = MakeSeries("HSU", 25);
  auto config = MakeConfig();
  config.initial_level_fraction = 1.5;
  Persistence p;
  EXPECT_THROW(SimulateNode(p, series, config), std::invalid_argument);
}

TEST(SimulateNode, LongRunDutyStddevMatchesTwoPassReference) {
  // Pin for the Welford duty-variance accumulator: replay the simulation
  // loop with the same public components, collect the actual duty
  // sequence, and compare the kernel's streamed stddev against the exact
  // two-pass computation.  At ~17k scored slots the old duty_sq_sum/n -
  // mean^2 form visibly drifts; Welford must track the reference to
  // near machine precision.
  const auto series = MakeSeries("ECSU", 380);
  const auto config = MakeConfig();
  Ewma predictor(0.5, 48);
  const auto result = SimulateNode(predictor, series, config);
  ASSERT_GT(result.slots, 15000u);

  Ewma replay_predictor(0.5, 48);
  replay_predictor.Reset();
  EnergyStorage store(config.storage,
                      config.initial_level_fraction *
                          config.storage.capacity_j);
  DutyCycleController controller(config.duty);
  const std::size_t warmup_slots =
      config.warmup_days * series.slots_per_day();
  std::vector<double> duties;
  for (std::size_t g = 0; g + 1 < series.size(); ++g) {
    replay_predictor.Observe(series.boundary(g));
    const double predicted_j =
        std::max(0.0, replay_predictor.PredictNext()) *
        config.duty.slot_seconds;
    const double duty = controller.DutyForSlot(
        predicted_j, store.level_j(), config.storage.capacity_j);
    store.Charge(series.mean(g) * config.duty.slot_seconds);
    store.Discharge(controller.ConsumptionJ(duty));
    store.Leak(config.duty.slot_seconds);
    if (g >= warmup_slots) duties.push_back(duty);
  }
  ASSERT_EQ(duties.size(), result.slots);

  double mean = 0.0;
  for (double d : duties) mean += d;
  mean /= static_cast<double>(duties.size());
  double m2 = 0.0;
  for (double d : duties) m2 += (d - mean) * (d - mean);
  const double two_pass_stddev =
      std::sqrt(m2 / static_cast<double>(duties.size()));

  EXPECT_GT(result.duty_stddev, 0.0);
  EXPECT_NEAR(result.duty_stddev, two_pass_stddev,
              1e-12 * std::max(1.0, two_pass_stddev));
  EXPECT_NEAR(result.mean_duty, mean, 1e-12);
}

TEST(SimulateNode, TinyStorageCausesMoreViolations) {
  const auto series = MakeSeries("SPMD", 60);
  WcmaParams p;
  p.days = 10;
  auto big = MakeConfig();
  auto small = MakeConfig();
  small.storage.capacity_j = 500.0;  // under one night's minimum draw
  Wcma pa(p, 48), pb(p, 48);
  const auto r_big = SimulateNode(pa, series, big);
  const auto r_small = SimulateNode(pb, series, small);
  EXPECT_GT(r_small.violations, r_big.violations);
}

}  // namespace
}  // namespace shep
