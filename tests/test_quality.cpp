// Tests for timeseries/quality.hpp — gap screening and repair.
#include "timeseries/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace shep {
namespace {

// 4 samples per day (21600 s) keeps the arithmetic inspectable.
constexpr int kRes = 21600;

TEST(ScreenSamples, CleanDataIsClean) {
  const std::vector<double> v{0.0, 1.0, 2.0, 1.0};
  const auto r = ScreenSamples(v, kRes);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.samples, 4u);
  EXPECT_DOUBLE_EQ(r.max_gap_minutes, 0.0);
}

TEST(ScreenSamples, DetectsSentinelsNansAndNegatives) {
  const std::vector<double> v{
      0.0, -9999.0, std::numeric_limits<double>::quiet_NaN(), -0.5};
  const auto r = ScreenSamples(v, kRes);
  EXPECT_EQ(r.gaps, 3u);
  EXPECT_FALSE(r.clean());
}

TEST(ScreenSamples, MeasuresLongestGap) {
  std::vector<double> v(8, 1.0);
  v[2] = v[3] = v[4] = -9999.0;
  const auto r = ScreenSamples(v, kRes);
  EXPECT_DOUBLE_EQ(r.max_gap_minutes, 3.0 * kRes / 60.0);
}

TEST(ScreenSamples, DetectsStuckRuns) {
  QualityOptions opt;
  opt.stuck_run_length = 3;
  std::vector<double> v{1.0, 0.7, 0.7, 0.7, 0.7, 2.0, 0.0, 1.0};
  const auto r = ScreenSamples(v, kRes, opt);
  EXPECT_EQ(r.stuck_runs, 1u);
}

TEST(ScreenSamples, ZeroRunsAtNightAreNotStuck) {
  QualityOptions opt;
  opt.stuck_run_length = 3;
  std::vector<double> v{0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0};
  const auto r = ScreenSamples(v, kRes, opt);
  EXPECT_EQ(r.stuck_runs, 0u);
}

TEST(RepairSamples, InterpolatesShortGaps) {
  std::vector<double> v{1.0, -9999.0, -9999.0, 4.0};
  const auto r = RepairSamples(v, kRes);
  EXPECT_EQ(r.repaired, 2u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(RepairSamples, LongGapsBorrowPreviousDay) {
  QualityOptions opt;
  opt.interpolate_up_to = 1;
  // Two days of 4 samples; day 2 slot 1..2 missing -> copy day 1.
  std::vector<double> v{0.0, 2.0, 3.0, 1.0, 0.0, -9999.0, -9999.0, 1.5};
  const auto r = RepairSamples(v, kRes, opt);
  EXPECT_EQ(r.repaired, 2u);
  EXPECT_DOUBLE_EQ(v[5], 2.0);
  EXPECT_DOUBLE_EQ(v[6], 3.0);
}

TEST(RepairSamples, LeadingGapBorrowsNextDay) {
  QualityOptions opt;
  opt.interpolate_up_to = 0;  // force day-borrowing
  std::vector<double> v{-9999.0, 2.0, 3.0, 1.0, 0.5, 2.5, 3.5, 1.5};
  RepairSamples(v, kRes, opt);
  EXPECT_DOUBLE_EQ(v[0], 0.5);  // from day 2 slot 0
}

TEST(RepairSamples, OutputAlwaysTraceable) {
  std::vector<double> v{-9999.0, std::numeric_limits<double>::infinity(),
                        -1.0,    std::numeric_limits<double>::quiet_NaN(),
                        1.0,     2.0,
                        3.0,     0.0};
  RepairSamples(v, kRes);
  EXPECT_NO_THROW(PowerTrace("repaired", v, kRes));
}

TEST(RepairSamples, StuckRunTailIsRewritten) {
  QualityOptions opt;
  opt.stuck_run_length = 3;
  opt.interpolate_up_to = 10;
  std::vector<double> v{1.0, 0.7, 0.7, 0.7, 0.7, 2.0, 1.0, 0.0};
  const auto r = RepairSamples(v, kRes, opt);
  EXPECT_GT(r.repaired, 0u);
  // First sample of the run is kept, the tail is interpolated toward 2.0.
  EXPECT_DOUBLE_EQ(v[1], 0.7);
  EXPECT_GT(v[4], 0.7);
  EXPECT_LT(v[4], 2.0);
}

TEST(RepairedTrace, EndToEnd) {
  std::vector<double> v{0.0, -9999.0, 3.0, 1.0};
  QualityReport report;
  const auto trace = RepairedTrace("T", v, kRes, &report);
  EXPECT_EQ(report.gaps, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.at(0, 1), 1.5);
}

TEST(RepairSamples, Validation) {
  std::vector<double> v{1.0};
  EXPECT_THROW(RepairSamples(v, 0), std::invalid_argument);
  EXPECT_THROW(RepairSamples(v, 7), std::invalid_argument);
}

}  // namespace
}  // namespace shep
