// Tests for core/ar.hpp — the RLS-fitted AR(p)-on-ratios predictor.
#include "core/ar.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/ewma.hpp"
#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

SlotSeries MakeSeries(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  const auto trace = SynthesizeTrace(SiteByCode(site), opt);
  return SlotSeries(trace, 48);
}

TEST(ArParams, Validation) {
  ArParams p;
  EXPECT_NO_THROW(p.Validate());
  p.order = 0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = ArParams{};
  p.order = 17;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = ArParams{};
  p.lambda = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = ArParams{};
  p.delta = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(ArPredictor, LifecycleAndFallbacks) {
  ArPredictor ar(ArParams{}, 48);
  EXPECT_THROW(ar.PredictNext(), std::invalid_argument);
  EXPECT_FALSE(ar.Ready());
  ar.Observe(0.5);
  // No history yet -> persistence.
  EXPECT_DOUBLE_EQ(ar.PredictNext(), 0.5);
  ar.Reset();
  EXPECT_THROW(ar.PredictNext(), std::invalid_argument);
  EXPECT_EQ(ar.updates(), 0u);
}

TEST(ArPredictor, RejectsNegativeSample) {
  ArPredictor ar(ArParams{}, 48);
  EXPECT_THROW(ar.Observe(-0.1), std::invalid_argument);
}

TEST(ArPredictor, RecoversKnownArProcess) {
  // Feed a day-periodic envelope modulated by a known AR(1) ratio process
  // r(t) = 0.6 r(t-1) + 0.4 + noise; after enough RLS updates the learned
  // lag-1 coefficient must approach 0.6 and the bias 0.4.
  const int n = 24;
  ArParams p;
  p.order = 1;
  p.days = 3;
  ArPredictor ar(p, n);
  Rng rng(77);
  double r = 1.0;
  // Flat envelope of 1 W during "day" slots 6..18, 0 at night.
  for (int day = 0; day < 60; ++day) {
    for (int slot = 0; slot < n; ++slot) {
      double sample = 0.0;
      if (slot >= 6 && slot < 18) {
        r = 0.6 * r + 0.4 + rng.Gaussian(0.0, 0.02);
        sample = r;  // envelope == 1 after warm-up, so ratio == r
      } else {
        r = 1.0;
      }
      ar.Observe(sample);
    }
  }
  ASSERT_GE(ar.coefficients().size(), 2u);
  EXPECT_NEAR(ar.coefficients()[1], 0.6, 0.1);  // lag-1
  EXPECT_NEAR(ar.coefficients()[0], 0.4, 0.1);  // bias
  EXPECT_TRUE(ar.Ready());
}

TEST(ArPredictor, PredictionsFiniteAndNonNegativeOnRealTrace) {
  const auto series = MakeSeries("ORNL", 30);
  ArPredictor ar(ArParams{}, 48);
  for (std::size_t g = 0; g < series.size(); ++g) {
    ar.Observe(series.boundary(g));
    const double pred = ar.PredictNext();
    ASSERT_TRUE(std::isfinite(pred)) << g;
    ASSERT_GE(pred, 0.0) << g;
  }
}

TEST(ArPredictor, DeterministicAcrossRuns) {
  const auto series = MakeSeries("HSU", 25);
  ArPredictor a(ArParams{}, 48), b(ArParams{}, 48);
  const auto ra = RunPredictor(a, series);
  const auto rb = RunPredictor(b, series);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra[i].predicted, rb[i].predicted);
  }
}

TEST(ArPredictor, CompetitiveHierarchyOnSolarData) {
  // The literature's finding, reproduced: the de-seasonalised AR baseline
  // beats the day-lagging EWMA comfortably but does not beat a tuned WCMA
  // (otherwise the paper would have evaluated AR instead).
  const auto series = MakeSeries("SPMD", 90);
  ArPredictor ar(ArParams{}, 48);
  Ewma ewma(0.5, 48);
  WcmaParams wp;
  wp.alpha = 0.7;
  wp.days = 10;
  wp.slots_k = 2;
  Wcma wcma(wp, 48);

  const double ar_mape = ScorePredictor(ar, series).mape;
  const double ewma_mape = ScorePredictor(ewma, series).mape;
  const double wcma_mape = ScorePredictor(wcma, series).mape;
  EXPECT_LT(ar_mape, ewma_mape);
  EXPECT_LT(wcma_mape, ar_mape + 0.02);  // WCMA at least matches AR
}

TEST(ArPredictor, NameDescribesModel) {
  ArParams p;
  p.order = 4;
  ArPredictor ar(p, 48);
  EXPECT_NE(ar.Name().find("AR(4"), std::string::npos);
}

// Property: RLS stays numerically sane across orders and forgetting
// factors on real data (covariance never poisons the predictions).
class ArStabilityTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ArStabilityTest, StableOnVolatileTrace) {
  const auto [order, lambda] = GetParam();
  const auto series = MakeSeries("ORNL", 20);
  ArParams p;
  p.order = order;
  p.lambda = lambda;
  ArPredictor ar(p, 48);
  for (std::size_t g = 0; g < series.size(); ++g) {
    ar.Observe(series.boundary(g));
    const double pred = ar.PredictNext();
    ASSERT_TRUE(std::isfinite(pred));
    ASSERT_LE(pred, 10.0);  // ratios are clamped, envelope is ~1.5 W
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndForgetting, ArStabilityTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.95, 0.99, 1.0)));

}  // namespace
}  // namespace shep
