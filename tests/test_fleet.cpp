// Tests for the fleet layer: scenario expansion, mergeable statistics, and
// the runner's core invariant — the aggregate summary of a given
// (ScenarioSpec, seed) is bit-identical at 1 thread and at N threads.
#include "fleet/runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "common/threadpool.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/scenario.hpp"

namespace shep {
namespace {

ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "test";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.days = 10;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 3;
  spec.days = 30;
  spec.slots_per_day = 48;
  spec.seed = 42;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  return spec;
}

TEST(ScenarioMatrix, ExpansionCounts) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioMatrix matrix = ExpandScenario(spec);
  EXPECT_EQ(matrix.cells.size(), 2u * 2u * 2u);
  EXPECT_EQ(matrix.nodes.size(), matrix.cells.size() * 3u);
  EXPECT_EQ(spec.cell_count(), matrix.cells.size());
  EXPECT_EQ(spec.node_count(), matrix.nodes.size());

  // Cells are (site, predictor, storage)-major and self-indexed.
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    EXPECT_EQ(matrix.cells[i].index, i);
  }
  EXPECT_EQ(matrix.cells.front().site_code, "HSU");
  EXPECT_EQ(matrix.cells.back().site_code, "PFCI");
  EXPECT_EQ(matrix.cells.front().predictor_label, "WCMA");
  EXPECT_EQ(matrix.cells.front().storage_j, 1500.0);

  // Nodes are cell-major with per-cell replica numbering.
  for (std::size_t i = 0; i < matrix.nodes.size(); ++i) {
    EXPECT_EQ(matrix.nodes[i].index, i);
    EXPECT_EQ(matrix.nodes[i].cell, i / 3);
    EXPECT_EQ(matrix.nodes[i].replica, i % 3);
  }
}

TEST(ScenarioMatrix, SeedDerivationIsPairedAndUnique) {
  const ScenarioMatrix matrix = ExpandScenario(SmallSpec());

  // Node seeds are unique fleet-wide.
  std::set<std::uint64_t> node_seeds;
  for (const auto& node : matrix.nodes) node_seeds.insert(node.node_seed);
  EXPECT_EQ(node_seeds.size(), matrix.nodes.size());

  // Weather seeds are paired: equal across cells of the same site for the
  // same replica, distinct across sites and replicas.
  std::set<std::uint64_t> trace_seeds;
  for (const auto& node : matrix.nodes) trace_seeds.insert(node.trace_seed);
  EXPECT_EQ(trace_seeds.size(),
            matrix.spec.sites.size() * matrix.spec.nodes_per_cell);
  for (const auto& a : matrix.nodes) {
    for (const auto& b : matrix.nodes) {
      const bool same_lane =
          matrix.cells[a.cell].site_index == matrix.cells[b.cell].site_index &&
          a.replica == b.replica;
      EXPECT_EQ(a.trace_seed == b.trace_seed, same_lane);
    }
  }
}

TEST(ScenarioMatrix, SameSpecExpandsIdentically) {
  const ScenarioMatrix a = ExpandScenario(SmallSpec());
  const ScenarioMatrix b = ExpandScenario(SmallSpec());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].trace_seed, b.nodes[i].trace_seed);
    EXPECT_EQ(a.nodes[i].node_seed, b.nodes[i].node_seed);
    EXPECT_EQ(a.nodes[i].initial_level_fraction,
              b.nodes[i].initial_level_fraction);
  }
}

TEST(ScenarioMatrix, DuplicateKindsGetDistinctLabels) {
  ScenarioSpec spec = SmallSpec();
  PredictorSpec aggressive;
  aggressive.kind = PredictorKind::kWcma;
  aggressive.wcma.alpha = 0.9;
  spec.predictors.push_back(aggressive);  // second WCMA tuning.
  const ScenarioMatrix matrix = ExpandScenario(spec);
  std::set<std::string> labels;
  for (const auto& cell : matrix.cells) {
    if (cell.site_index == 0 && cell.storage_index == 0) {
      EXPECT_TRUE(labels.insert(cell.predictor_label).second)
          << "duplicate label " << cell.predictor_label;
    }
  }
  // EVERY member of the duplicated kind is suffixed — a bare "WCMA" would
  // be ambiguous between "the first duplicate" and "a singleton design".
  EXPECT_EQ(labels.count("WCMA"), 0u);
  EXPECT_EQ(labels.count("WCMA#0"), 1u);
  EXPECT_EQ(labels.count("WCMA#2"), 1u);
  // The non-duplicated kind keeps its bare name.
  EXPECT_EQ(labels.count("Persistence"), 1u);
}

TEST(ScenarioMatrix, ValidatesSpec) {
  ScenarioSpec spec = SmallSpec();
  spec.sites = {"NOPE"};
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.storage_tiers_j = {};
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.sites = {};
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors = {};
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.nodes_per_cell = 0;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.storage_tiers_j = {1500.0, 0.0};  // every tier must be positive.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.initial_level_jitter = -0.1;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.initial_level_jitter = 0.6;  // > the 0.5 half-width cap.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.days = spec.node.warmup_days;  // nothing left to score.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.slots_per_day = 1;             // one post-warm-up slot, and the sim
  spec.days = spec.node.warmup_days + 1;  // drops the final boundary slot:
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);  // 0 scored.
  spec = SmallSpec();
  spec.slots_per_day = 47;  // does not divide the day.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.sites = {"ECSU"};      // 300 s logger...
  spec.slots_per_day = 1440;  // ...cannot fill 60 s slots.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.node.duty.active_power_w = -1.0;  // node config errors throw up
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);  // front, not
}  // on a pool worker (where a throw would abort the process).

TEST(ScenarioMatrix, ValidatesPredictorParameters) {
  // Malformed designs must be rejected by Validate(), not discovered by
  // Make() throwing on a pool worker mid-run.
  ScenarioSpec spec = SmallSpec();
  spec.predictors[0].wcma.alpha = 1.5;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[0].wcma.days = 0;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[0].wcma.slots_k = spec.slots_per_day;  // K must be < N.
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[0].kind = PredictorKind::kWcmaVm;  // same K rule, VM build.
  spec.predictors[0].wcma.slots_k = spec.slots_per_day;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[1].kind = PredictorKind::kEwma;
  spec.predictors[1].ewma_weight = -0.2;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[1].kind = PredictorKind::kAr;
  spec.predictors[1].ar.lambda = 0.0;
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
  spec = SmallSpec();
  spec.predictors[1].kind = PredictorKind::kAdaptiveWcma;
  spec.predictors[1].adaptive.ks = {1, spec.slots_per_day};
  EXPECT_THROW(ExpandScenario(spec), std::invalid_argument);
}

TEST(PredictorSpec, FactoryMakesEveryKind) {
  for (PredictorKind kind :
       {PredictorKind::kWcma, PredictorKind::kWcmaFixed,
        PredictorKind::kWcmaVm, PredictorKind::kEwma, PredictorKind::kAr,
        PredictorKind::kAdaptiveWcma, PredictorKind::kPersistence,
        PredictorKind::kPreviousDay}) {
    PredictorSpec spec;
    spec.kind = kind;
    const auto predictor = spec.Make(48);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->Name().empty());
    EXPECT_EQ(spec.Label(), PredictorKindName(kind));
  }
}

TEST(StreamingMoments, MatchesDirectComputation) {
  const std::vector<double> xs{0.1, 0.9, 0.4, 0.4, 0.75};
  StreamingMoments m;
  for (double x : xs) m.Add(x);
  EXPECT_EQ(m.count, xs.size());
  EXPECT_NEAR(m.mean, 0.51, 1e-12);
  EXPECT_DOUBLE_EQ(m.min, 0.1);
  EXPECT_DOUBLE_EQ(m.max, 0.9);
  double direct_var = 0.0;
  for (double x : xs) direct_var += (x - 0.51) * (x - 0.51);
  direct_var /= static_cast<double>(xs.size());
  EXPECT_NEAR(m.variance(), direct_var, 1e-12);
}

TEST(StreamingMoments, MergeIsAssociative) {
  StreamingMoments a, b, c;
  for (double x : {0.05, 0.20, 0.11}) a.Add(x);
  for (double x : {0.90, 0.33}) b.Add(x);
  for (double x : {0.61, 0.62, 0.63, 0.01}) c.Add(x);

  StreamingMoments left = a;   // (a ⊕ b) ⊕ c
  left.Merge(b);
  left.Merge(c);
  StreamingMoments bc = b;     // a ⊕ (b ⊕ c)
  bc.Merge(c);
  StreamingMoments right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.min, right.min);
  EXPECT_DOUBLE_EQ(left.max, right.max);
  EXPECT_NEAR(left.mean, right.mean, 1e-15);
  EXPECT_NEAR(left.m2, right.m2, 1e-15);

  // Merging an empty accumulator is the identity, bit for bit.
  StreamingMoments with_empty = left;
  with_empty.Merge(StreamingMoments{});
  EXPECT_EQ(with_empty.mean, left.mean);
  EXPECT_EQ(with_empty.m2, left.m2);
  StreamingMoments from_empty;
  from_empty.Merge(left);
  EXPECT_EQ(from_empty.mean, left.mean);
  EXPECT_EQ(from_empty.m2, left.m2);
}

TEST(FixedHistogram, QuantilesAndMerge) {
  FixedHistogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100; ++i) h.Add((static_cast<double>(i) + 0.5) / 100.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.Quantile(0.50), 0.50, 0.011);
  EXPECT_NEAR(h.Quantile(0.95), 0.95, 0.011);
  EXPECT_NEAR(h.Quantile(1.0), 1.0, 0.011);

  FixedHistogram a(0.0, 1.0, 100), b(0.0, 1.0, 100), c(0.0, 1.0, 100);
  for (int i = 0; i < 40; ++i) a.Add(i / 100.0);
  for (int i = 40; i < 70; ++i) b.Add(i / 100.0);
  for (int i = 70; i < 100; ++i) c.Add(i / 100.0);
  FixedHistogram left = a;  // (a ⊕ b) ⊕ c vs a ⊕ (b ⊕ c): exactly equal,
  left.Merge(b);            // bin counts are integers.
  left.Merge(c);
  FixedHistogram bc = b;
  bc.Merge(c);
  FixedHistogram right = a;
  right.Merge(bc);
  EXPECT_EQ(left.bins(), right.bins());
  EXPECT_EQ(left.total(), right.total());

  // Out-of-range samples clamp to the edge bins instead of being dropped.
  FixedHistogram clamped(0.0, 1.0, 10);
  clamped.Add(-5.0);
  clamped.Add(7.0);
  EXPECT_EQ(clamped.total(), 2u);
  EXPECT_EQ(clamped.bins().front(), 1u);
  EXPECT_EQ(clamped.bins().back(), 1u);
}

// Regression: a NaN sample used to flow through std::clamp (unordered ⇒
// clamp is a no-op) and be cast to std::size_t — undefined behaviour.  It
// must land in the dedicated NaN tally, leaving bins and quantiles alone.
TEST(FixedHistogram, NanSamplesCountSeparately) {
  FixedHistogram h(0.0, 1.0, 10);
  h.Add(0.25);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(0.75);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_count(), 1u);
  std::uint64_t binned = 0;
  for (std::uint64_t b : h.bins()) binned += b;
  EXPECT_EQ(binned, 2u);  // no bin was corrupted by the NaN.
  // Quantiles see only the real mass.
  EXPECT_GT(h.Quantile(0.5), 0.0);

  // The NaN tally merges like the bins do.
  FixedHistogram other(0.0, 1.0, 10);
  other.Add(std::numeric_limits<double>::quiet_NaN());
  other.Add(0.5);
  h.Merge(other);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_count(), 2u);
}

TEST(CellAccumulator, MergeMatchesSequentialAdd) {
  NodeSimResult r1, r2, r3;
  r1.violation_rate = 0.10; r1.mean_duty = 0.50; r1.violations = 12;
  r1.slots = 120; r1.overflow_j = 5.0; r1.harvested_j = 100.0; r1.mape = 0.20;
  r2.violation_rate = 0.02; r2.mean_duty = 0.62; r2.violations = 2;
  r2.slots = 120; r2.overflow_j = 9.0; r2.harvested_j = 90.0; r2.mape = 0.10;
  r3.violation_rate = 0.30; r3.mean_duty = 0.41; r3.violations = 36;
  r3.slots = 120; r3.overflow_j = 0.0; r3.harvested_j = 110.0; r3.mape = 0.45;

  CellAccumulator sequential;
  sequential.Add(r1);
  sequential.Add(r2);
  sequential.Add(r3);

  CellAccumulator left, right_tail;
  left.Add(r1);
  right_tail.Add(r2);
  right_tail.Add(r3);
  left.Merge(right_tail);

  EXPECT_EQ(left.nodes(), sequential.nodes());
  EXPECT_EQ(left.violations, sequential.violations);
  EXPECT_EQ(left.scored_slots, sequential.scored_slots);
  EXPECT_EQ(left.violation_hist.bins(), sequential.violation_hist.bins());
  EXPECT_NEAR(left.violation_rate.mean, sequential.violation_rate.mean, 1e-15);
  EXPECT_NEAR(left.mape.mean, sequential.mape.mean, 1e-15);
  EXPECT_NEAR(left.wasted_fraction.mean, sequential.wasted_fraction.mean,
              1e-15);
  EXPECT_DOUBLE_EQ(left.violation_rate.max, sequential.violation_rate.max);
}

// The acceptance-criterion test: same spec + seed, serial vs pooled
// execution, every aggregate field bit-identical.
TEST(RunFleet, SummaryBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = SmallSpec();

  FleetRunStats serial_info;
  const FleetSummary serial = RunFleet(spec, {}, &serial_info);
  EXPECT_EQ(serial_info.threads, 1u);

  ThreadPool pool(4);
  FleetRunOptions options;
  options.pool = &pool;
  FleetRunStats pooled_info;
  const FleetSummary pooled = RunFleet(spec, options, &pooled_info);
  EXPECT_EQ(pooled_info.threads, 4u);

  ASSERT_EQ(serial.stats.size(), pooled.stats.size());
  for (std::size_t i = 0; i < serial.stats.size(); ++i) {
    const CellAccumulator& a = serial.stats[i];
    const CellAccumulator& b = pooled.stats[i];
    EXPECT_EQ(a.nodes(), b.nodes());
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.scored_slots, b.scored_slots);
    EXPECT_EQ(a.violation_hist.bins(), b.violation_hist.bins());
    // Bit-identical, not merely close: EXPECT_EQ on doubles.
    EXPECT_EQ(a.violation_rate.mean, b.violation_rate.mean);
    EXPECT_EQ(a.violation_rate.m2, b.violation_rate.m2);
    EXPECT_EQ(a.mean_duty.mean, b.mean_duty.mean);
    EXPECT_EQ(a.wasted_fraction.mean, b.wasted_fraction.mean);
    EXPECT_EQ(a.mape.mean, b.mape.mean);
    EXPECT_EQ(a.violation_rate.min, b.violation_rate.min);
    EXPECT_EQ(a.violation_rate.max, b.violation_rate.max);
  }
  EXPECT_EQ(serial.ToCsv(), pooled.ToCsv());
  EXPECT_EQ(serial.ToTable(), pooled.ToTable());
}

TEST(RunFleet, EveryCellIsPopulated) {
  ScenarioSpec spec = SmallSpec();
  spec.nodes_per_cell = 2;
  ThreadPool pool(2);
  FleetRunOptions options;
  options.pool = &pool;
  options.shard_size = 3;  // shards straddle cell boundaries on purpose.
  const FleetSummary summary = RunFleet(spec, options);
  ASSERT_EQ(summary.stats.size(), spec.cell_count());
  for (const auto& cell : summary.stats) {
    EXPECT_EQ(cell.nodes(), spec.nodes_per_cell);
    EXPECT_GT(cell.scored_slots, 0u);
    EXPECT_TRUE(cell.mape.valid());
  }
  // The summary renders through the report layer in both shapes.
  EXPECT_NE(summary.ToTable().find("PFCI"), std::string::npos);
  EXPECT_NE(summary.ToCsv().find("site,predictor"), std::string::npos);
}

TEST(RunFleet, PredictionQualityOrdersOperationalOutcomes) {
  // Fleet-scale restatement of the paper's premise on the hard site: the
  // WCMA cells must not suffer more brown-outs + waste than persistence.
  ScenarioSpec spec = SmallSpec();
  spec.sites = {"ORNL"};
  spec.nodes_per_cell = 4;
  spec.days = 40;
  ThreadPool pool;
  FleetRunOptions options;
  options.pool = &pool;
  const FleetSummary summary = RunFleet(spec, options);
  double wcma_score = 0.0;
  double persistence_score = 0.0;
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const double score = summary.stats[i].violation_rate.mean +
                         summary.stats[i].wasted_fraction.mean;
    if (summary.cells[i].predictor_label == "WCMA") {
      wcma_score += score;
    } else {
      persistence_score += score;
    }
  }
  EXPECT_LE(wcma_score, persistence_score);
}

}  // namespace
}  // namespace shep
