// Tests for sweep/pareto.hpp — multi-objective dominance.
#include "sweep/pareto.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

TradeoffPoint Point(double mape, double energy, double memory) {
  TradeoffPoint p;
  p.mape = mape;
  p.energy_j_per_day = energy;
  p.memory_words = memory;
  return p;
}

TEST(Dominates, StrictAndPartialOrders) {
  const auto a = Point(0.10, 1.0, 100);
  const auto b = Point(0.20, 2.0, 200);
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  // Equal in all objectives: neither dominates.
  EXPECT_FALSE(Dominates(a, a));
  // Trade-off: better error, worse energy — no dominance either way.
  const auto c = Point(0.05, 5.0, 100);
  EXPECT_FALSE(Dominates(a, c));
  EXPECT_FALSE(Dominates(c, a));
}

TEST(Dominates, EqualInTwoBetterInOne) {
  const auto a = Point(0.10, 1.0, 100);
  const auto b = Point(0.10, 1.0, 150);
  EXPECT_TRUE(Dominates(a, b));
}

TEST(ParetoFrontIndices, KeepsOnlyNonDominated) {
  std::vector<TradeoffPoint> pts{
      Point(0.10, 3.0, 300),  // front (best error)
      Point(0.20, 1.0, 300),  // front (best energy)
      Point(0.20, 3.0, 100),  // front (best memory)
      Point(0.25, 3.5, 350),  // dominated by all three
      Point(0.10, 3.0, 300),  // duplicate of 0: not dominated (ties)
  };
  const auto idx = ParetoFrontIndices(pts);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(idx[2], 2u);
  EXPECT_EQ(idx[3], 4u);
}

TEST(ParetoFront, SortedByMape) {
  std::vector<TradeoffPoint> pts{
      Point(0.30, 1.0, 100),
      Point(0.10, 3.0, 300),
      Point(0.20, 2.0, 200),
  };
  const auto front = ParetoFront(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].mape, 0.10);
  EXPECT_DOUBLE_EQ(front[1].mape, 0.20);
  EXPECT_DOUBLE_EQ(front[2].mape, 0.30);
}

TEST(ParetoFront, EmptyAndSingleton) {
  EXPECT_TRUE(ParetoFront({}).empty());
  std::vector<TradeoffPoint> one{Point(0.1, 1.0, 10)};
  EXPECT_EQ(ParetoFront(one).size(), 1u);
}

TEST(ParetoFront, ChainCollapsesToBest) {
  // Monotone chain: each point worse in everything; only the first
  // survives.
  std::vector<TradeoffPoint> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(Point(0.1 + i * 0.01, 1.0 + i, 100 + i));
  }
  EXPECT_EQ(ParetoFront(pts).size(), 1u);
}

}  // namespace
}  // namespace shep
