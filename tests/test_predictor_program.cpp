// Tests for hw/predictor_program.hpp — the VM build of Eq. 1.
#include "hw/predictor_program.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace shep {
namespace {

WcmaVmInputs RandomInputs(int k, Rng& rng) {
  WcmaVmInputs in;
  in.sample = rng.Uniform(0.0, 1.5);
  in.mu_next = rng.Uniform(0.01, 1.5);
  for (int i = 0; i < k; ++i) {
    in.recent_samples.push_back(rng.Uniform(0.0, 1.5));
    in.recent_mus.push_back(rng.Uniform(0.01, 1.5));
  }
  return in;
}

// Property: the VM-executed routine equals the double-precision formula
// for every K and a spread of α values.
class ProgramEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ProgramEquivalenceTest, VmMatchesReferenceFormula) {
  const auto [k, alpha] = GetParam();
  WcmaProgramLayout layout;
  layout.slots_k = k;
  layout.alpha = alpha;
  Rng rng(static_cast<std::uint64_t>(k * 1000 + alpha * 100));
  for (int rep = 0; rep < 50; ++rep) {
    const auto in = RandomInputs(k, rng);
    const auto run = RunWcmaOnVm(layout, in);
    ASSERT_TRUE(run.vm.ok) << run.vm.trap;
    EXPECT_NEAR(run.prediction, ReferenceWcmaPrediction(layout, in), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAlphaGrid, ProgramEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

TEST(PredictorProgram, NightGuardBranchTaken) {
  WcmaProgramLayout layout;
  layout.slots_k = 2;
  layout.alpha = 0.5;
  WcmaVmInputs in;
  in.sample = 1.0;
  in.mu_next = 0.8;
  in.recent_samples = {0.5, 1.0};
  in.recent_mus = {0.0, 1.0};  // first slot is "night": η must become 1
  const auto run = RunWcmaOnVm(layout, in);
  ASSERT_TRUE(run.vm.ok) << run.vm.trap;
  EXPECT_NEAR(run.prediction, ReferenceWcmaPrediction(layout, in), 1e-12);
  // And the reference treats η(0) as 1: Φ = (1/2·1 + 1·1)/1.5 = 1.
  EXPECT_NEAR(run.prediction, 0.5 * 1.0 + 0.5 * 0.8 * 1.0, 1e-12);
}

TEST(PredictorProgram, CyclesGrowMonotonicallyWithK) {
  // Table IV mechanism on the VM: each extra conditioning slot costs about
  // one more software division.
  WcmaProgramLayout layout;
  layout.alpha = 0.7;
  Rng rng(7);
  double prev_cycles = 0.0;
  const CycleCosts costs;
  for (int k = 1; k <= 7; ++k) {
    layout.slots_k = k;
    const auto in = RandomInputs(k, rng);
    const auto run = RunWcmaOnVm(layout, in, costs);
    ASSERT_TRUE(run.vm.ok) << run.vm.trap;
    if (k > 1) {
      EXPECT_GT(run.vm.cycles, prev_cycles + 0.8 * costs.div) << "K=" << k;
    }
    prev_cycles = run.vm.cycles;
  }
}

TEST(PredictorProgram, AlphaZeroIsCheaperThanBlend) {
  Rng rng(11);
  const auto in = RandomInputs(7, rng);
  WcmaProgramLayout blend;
  blend.slots_k = 7;
  blend.alpha = 0.7;
  WcmaProgramLayout zero = blend;
  zero.alpha = 0.0;
  const auto run_blend = RunWcmaOnVm(blend, in);
  const auto run_zero = RunWcmaOnVm(zero, in);
  ASSERT_TRUE(run_blend.vm.ok && run_zero.vm.ok);
  EXPECT_LT(run_zero.vm.cycles, run_blend.vm.cycles);
}

TEST(PredictorProgram, AlphaOneIsAlmostFree) {
  Rng rng(13);
  const auto in = RandomInputs(3, rng);
  WcmaProgramLayout one;
  one.slots_k = 3;
  one.alpha = 1.0;
  const auto run = RunWcmaOnVm(one, in);
  ASSERT_TRUE(run.vm.ok);
  EXPECT_DOUBLE_EQ(run.prediction, in.sample);
  EXPECT_EQ(run.vm.ops.div, 0u);
  EXPECT_LT(run.vm.instructions, 5u);
}

TEST(PredictorProgram, ValidatesInputs) {
  WcmaProgramLayout layout;
  layout.slots_k = 0;
  EXPECT_THROW(BuildWcmaPredictProgram(layout), std::invalid_argument);
  layout.slots_k = 2;
  layout.alpha = 1.5;
  EXPECT_THROW(BuildWcmaPredictProgram(layout), std::invalid_argument);

  layout = WcmaProgramLayout{};
  layout.slots_k = 3;
  WcmaVmInputs in;
  in.recent_samples = {1.0};  // wrong size
  in.recent_mus = {1.0, 1.0, 1.0};
  EXPECT_THROW(RunWcmaOnVm(layout, in), std::invalid_argument);
}

TEST(PredictorProgram, MemoryLayoutIsCompact) {
  WcmaProgramLayout layout;
  layout.slots_k = 4;
  EXPECT_EQ(layout.recent_mu_base(), 8u);
  EXPECT_EQ(layout.theta_base(), 12u);
  EXPECT_EQ(layout.memory_words(), 16u);
}

}  // namespace
}  // namespace shep
