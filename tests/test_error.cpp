// Tests for metrics/error.hpp — the paper's Sec. III methodology.
#include "metrics/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace shep {
namespace {

PredictionPoint Point(std::size_t day, double predicted, double boundary,
                      double mean) {
  PredictionPoint p;
  p.day = day;
  p.predicted = predicted;
  p.boundary = boundary;
  p.mean = mean;
  return p;
}

RoiFilter NoFilter() {
  RoiFilter f;
  f.threshold_fraction = 0.0;
  f.first_day = 0;
  return f;
}

TEST(Reference, SelectsTarget) {
  const auto p = Point(0, 1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(Reference(p, ErrorTarget::kBoundarySample), 2.0);
  EXPECT_DOUBLE_EQ(Reference(p, ErrorTarget::kSlotMean), 3.0);
}

TEST(AbsolutePercentageError, Computes) {
  const auto p = Point(0, 8.0, 10.0, 16.0);
  EXPECT_DOUBLE_EQ(AbsolutePercentageError(p, ErrorTarget::kBoundarySample),
                   0.2);
  EXPECT_DOUBLE_EQ(AbsolutePercentageError(p, ErrorTarget::kSlotMean), 0.5);
}

TEST(AbsolutePercentageError, RejectsZeroReference) {
  const auto p = Point(0, 1.0, 0.0, 0.0);
  EXPECT_THROW(AbsolutePercentageError(p, ErrorTarget::kSlotMean),
               std::invalid_argument);
}

TEST(EvaluateErrors, MapeOfPerfectPredictionIsZero) {
  std::vector<PredictionPoint> pts{Point(0, 5.0, 5.0, 5.0),
                                   Point(0, 3.0, 3.0, 3.0)};
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 5.0, NoFilter());
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mape, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.mbe, 0.0);
}

TEST(EvaluateErrors, KnownValues) {
  // errors: 10-8=2 (20 %), 5-6=-1 (20 %).
  std::vector<PredictionPoint> pts{Point(0, 8.0, 0.0, 10.0),
                                   Point(0, 6.0, 0.0, 5.0)};
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 10.0, NoFilter());
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mape, 0.2);
  EXPECT_DOUBLE_EQ(s.mae, 1.5);
  EXPECT_DOUBLE_EQ(s.rmse, std::sqrt((4.0 + 1.0) / 2.0));
  EXPECT_DOUBLE_EQ(s.mbe, 0.5);
}

TEST(EvaluateErrors, MapeVsMapePrimeUseDifferentReferences) {
  // The Sec. III argument in miniature: the same prediction scores
  // differently against the boundary sample vs the slot mean.
  std::vector<PredictionPoint> pts{Point(0, 9.0, 12.0, 9.0)};
  const auto mape =
      EvaluateErrors(pts, ErrorTarget::kSlotMean, 12.0, NoFilter());
  const auto mape_prime =
      EvaluateErrors(pts, ErrorTarget::kBoundarySample, 12.0, NoFilter());
  EXPECT_DOUBLE_EQ(mape.mape, 0.0);
  EXPECT_DOUBLE_EQ(mape_prime.mape, 0.25);
}

TEST(EvaluateErrors, RoiThresholdDropsSmallValues) {
  // 10 % of peak 10 = 1.0; the 0.5 point must be excluded.
  std::vector<PredictionPoint> pts{Point(0, 1.0, 0.0, 10.0),
                                   Point(0, 1.0, 0.0, 0.5)};
  RoiFilter f;
  f.threshold_fraction = 0.10;
  f.first_day = 0;
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 10.0, f);
  EXPECT_EQ(s.count, 1u);
}

TEST(EvaluateErrors, FirstDayFilterMatchesPaperProtocol) {
  // Paper: evaluation starts at day 21 (index 20) so D=20 history is full.
  std::vector<PredictionPoint> pts{Point(19, 1.0, 0.0, 10.0),
                                   Point(20, 1.0, 0.0, 10.0),
                                   Point(21, 1.0, 0.0, 10.0)};
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 10.0, {});
  EXPECT_EQ(s.count, 2u);
}

TEST(EvaluateErrors, EndDayFilterBounds) {
  RoiFilter f = {};
  f.threshold_fraction = 0.0;
  f.first_day = 0;
  f.end_day = 2;
  std::vector<PredictionPoint> pts{Point(0, 1.0, 0.0, 10.0),
                                   Point(1, 1.0, 0.0, 10.0),
                                   Point(2, 1.0, 0.0, 10.0)};
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 10.0, f);
  EXPECT_EQ(s.count, 2u);
}

TEST(EvaluateErrors, EmptySelectionIsInvalidStats) {
  std::vector<PredictionPoint> pts{Point(0, 1.0, 0.0, 0.05)};
  const auto s = EvaluateErrors(pts, ErrorTarget::kSlotMean, 10.0, {});
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.count, 0u);
}

TEST(EvaluateErrors, OutlierInflatesRmseNotMape) {
  // The paper's rationale for MAPE over RMSE: one large burst error
  // dominates RMSE but only contributes proportionally to MAPE.
  std::vector<PredictionPoint> base;
  for (int i = 0; i < 99; ++i) base.push_back(Point(0, 9.0, 0.0, 10.0));
  auto with_outlier = base;
  with_outlier.push_back(Point(0, 0.0, 0.0, 100.0));

  const auto s0 =
      EvaluateErrors(base, ErrorTarget::kSlotMean, 100.0, NoFilter());
  const auto s1 =
      EvaluateErrors(with_outlier, ErrorTarget::kSlotMean, 100.0, NoFilter());
  // RMSE explodes by >5x; MAPE grows by ~10 % of its value.
  EXPECT_GT(s1.rmse, 5.0 * s0.rmse);
  EXPECT_LT(s1.mape, 1.2 * s0.mape + 0.01);
}

TEST(EvaluateErrors, ValidatesThreshold) {
  std::vector<PredictionPoint> pts{Point(0, 1.0, 1.0, 1.0)};
  RoiFilter f;
  f.threshold_fraction = 1.5;
  EXPECT_THROW(EvaluateErrors(pts, ErrorTarget::kSlotMean, 1.0, f),
               std::invalid_argument);
}

// ------- Extended measures (Hyndman & Koehler, the paper's ref. [8]) -----

TEST(EvaluateExtended, PerfectPredictionScoresZero) {
  std::vector<PredictionPoint> pts{Point(0, 5.0, 5.0, 5.0),
                                   Point(0, 7.0, 7.0, 7.0)};
  const auto s =
      EvaluateExtended(pts, ErrorTarget::kSlotMean, 7.0, NoFilter());
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.smape, 0.0);
  EXPECT_DOUBLE_EQ(s.mase, 0.0);
  EXPECT_DOUBLE_EQ(s.theils_u, 0.0);
}

TEST(EvaluateExtended, SmapeKnownValue) {
  // ref 10, pred 5: 2*5/(10+5) = 2/3.
  std::vector<PredictionPoint> pts{Point(0, 5.0, 0.0, 10.0)};
  const auto s =
      EvaluateExtended(pts, ErrorTarget::kSlotMean, 10.0, NoFilter());
  EXPECT_NEAR(s.smape, 2.0 / 3.0, 1e-12);
}

TEST(EvaluateExtended, MaseBelowOneBeatsPersistence) {
  // Refs jump 10 -> 20 -> 10 (naive MAE = 10); predictions miss by 1 (MAE
  // = 1) -> MASE = 0.1.
  std::vector<PredictionPoint> pts{Point(0, 9.0, 0.0, 10.0),
                                   Point(0, 21.0, 0.0, 20.0),
                                   Point(0, 11.0, 0.0, 10.0)};
  const auto s =
      EvaluateExtended(pts, ErrorTarget::kSlotMean, 20.0, NoFilter());
  EXPECT_NEAR(s.mase, 0.1, 1e-12);
  EXPECT_LT(s.theils_u, 1.0);
}

TEST(EvaluateExtended, MaseAboveOneWorseThanPersistence) {
  // Constant reference (naive is perfect... naive MAE 0 -> skip) — use a
  // slowly-moving reference and terrible predictions instead.
  std::vector<PredictionPoint> pts{Point(0, 0.0, 0.0, 10.0),
                                   Point(0, 0.0, 0.0, 11.0),
                                   Point(0, 0.0, 0.0, 12.0)};
  const auto s =
      EvaluateExtended(pts, ErrorTarget::kSlotMean, 12.0, NoFilter());
  EXPECT_GT(s.mase, 1.0);
  EXPECT_GT(s.theils_u, 1.0);
}

TEST(EvaluateExtended, RespectsRoiFilter) {
  std::vector<PredictionPoint> pts{Point(0, 9.0, 0.0, 10.0),
                                   Point(0, 1.0, 0.0, 0.5),  // below 10 %
                                   Point(0, 18.0, 0.0, 20.0)};
  RoiFilter f;
  f.threshold_fraction = 0.10;
  f.first_day = 0;
  const auto s = EvaluateExtended(pts, ErrorTarget::kSlotMean, 20.0, f);
  EXPECT_EQ(s.count, 2u);
}

TEST(EvaluateExtended, EmptyIsInvalid) {
  const auto s = EvaluateExtended({}, ErrorTarget::kSlotMean, 1.0, {});
  EXPECT_FALSE(s.valid());
}

}  // namespace
}  // namespace shep
