// Tests for sweep/dynamic.hpp — the clairvoyant oracle study (Table V).
#include "sweep/dynamic.hpp"

#include <gtest/gtest.h>

#include "solar/synth.hpp"
#include "sweep/sweep.hpp"

namespace shep {
namespace {

const SweepContext& SpmdContext() {
  static const SweepContext* ctx = [] {
    SynthOptions opt;
    opt.days = 60;
    const auto trace = SynthesizeTrace(SiteByCode("SPMD"), opt);
    return new SweepContext(trace, 24);
  }();
  return *ctx;
}

TEST(EvaluateDynamic, OracleHierarchyHolds) {
  // Table V's structural claim:  K+α oracle <= each single-parameter
  // oracle <= best static.
  const auto out = EvaluateDynamic(SpmdContext(), 10, ParamGrid::Paper());
  ASSERT_GT(out.count, 0u);
  EXPECT_LE(out.both_mape, out.k_only_mape + 1e-12);
  EXPECT_LE(out.both_mape, out.alpha_only_mape + 1e-12);
  EXPECT_LE(out.k_only_mape, out.static_mape + 1e-12);
  EXPECT_LE(out.alpha_only_mape, out.static_mape + 1e-12);
}

TEST(EvaluateDynamic, SubstantialGainOverStatic) {
  // Paper Sec. IV-C: "more than 10 % increase in prediction accuracy" —
  // i.e. the oracle's MAPE is several points below the static optimum.
  const auto out = EvaluateDynamic(SpmdContext(), 10, ParamGrid::Paper());
  EXPECT_LT(out.both_mape, 0.75 * out.static_mape);
}

TEST(EvaluateDynamic, StaticMatchesSweepAtSameD) {
  // The oracle study's "static" reference must agree with the sweep's best
  // (α, K) at the same D.
  const auto grid = ParamGrid::Paper();
  const auto out = EvaluateDynamic(SpmdContext(), 10, grid);
  const auto sweep = SweepWcma(SpmdContext(), grid);
  const auto* best_at_d = sweep.BestByMapeWithD(10);
  ASSERT_NE(best_at_d, nullptr);
  EXPECT_NEAR(out.static_mape, best_at_d->mean_stats.mape, 1e-9);
  EXPECT_DOUBLE_EQ(out.static_alpha, best_at_d->alpha);
  EXPECT_EQ(out.static_k, best_at_d->slots_k);
}

TEST(EvaluateDynamic, AlphaOnlyOracleFavoursHigherK) {
  // Paper observation: "higher K values give better results when the other
  // parameter is dynamically set" — the α-oracle's best fixed K is above
  // the static optimum's typical K ∈ {1..3}.
  const auto out = EvaluateDynamic(SpmdContext(), 10, ParamGrid::Paper());
  EXPECT_GE(out.alpha_only_k, 3);
}

TEST(EvaluateDynamic, KOnlyOracleFavoursLowerAlpha) {
  // Counterpart observation: "lower values of α ... give better results"
  // when K adapts per prediction.
  const auto grid = ParamGrid::Paper();
  const auto out = EvaluateDynamic(SpmdContext(), 10, grid);
  const auto sweep = SweepWcma(SpmdContext(), grid);
  const auto* best_static = sweep.BestByMapeWithD(10);
  ASSERT_NE(best_static, nullptr);
  EXPECT_LT(out.k_only_alpha, best_static->alpha);
}

TEST(EvaluateDynamic, RecordsDaysAndCount) {
  const auto out = EvaluateDynamic(SpmdContext(), 7, ParamGrid::Coarse());
  EXPECT_EQ(out.days_d, 7);
  EXPECT_GT(out.count, 100u);
}

TEST(EvaluateDynamic, SingletonGridOracleEqualsStatic) {
  // With one α and one K there is nothing to adapt: every oracle equals
  // the static error.
  ParamGrid g;
  g.alphas = {0.7};
  g.days = {10};
  g.ks = {2};
  const auto out = EvaluateDynamic(SpmdContext(), 10, g);
  EXPECT_DOUBLE_EQ(out.both_mape, out.static_mape);
  EXPECT_DOUBLE_EQ(out.k_only_mape, out.static_mape);
  EXPECT_DOUBLE_EQ(out.alpha_only_mape, out.static_mape);
}

TEST(EvaluateDynamic, Validation) {
  EXPECT_THROW(EvaluateDynamic(SpmdContext(), 0, ParamGrid::Coarse()),
               std::invalid_argument);
  ParamGrid g;
  EXPECT_THROW(EvaluateDynamic(SpmdContext(), 5, g), std::invalid_argument);
}

}  // namespace
}  // namespace shep
