// Tests for timeseries/trace.hpp.
#include "timeseries/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shep {
namespace {

std::vector<double> Ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(PowerTrace, BasicGeometry) {
  // 1-hour resolution -> 24 samples/day; two days.
  PowerTrace t("T", Ramp(48), 3600);
  EXPECT_EQ(t.samples_per_day(), 24u);
  EXPECT_EQ(t.days(), 2u);
  EXPECT_EQ(t.size(), 48u);
  EXPECT_EQ(t.resolution_s(), 3600);
  EXPECT_EQ(t.name(), "T");
}

TEST(PowerTrace, PaperTableOneShapes) {
  // Table I: 5-minute sites record 105120 observations over 365 days,
  // 1-minute sites 525600.
  EXPECT_EQ(365u * (86400u / 300u), 105120u);
  EXPECT_EQ(365u * (86400u / 60u), 525600u);
}

TEST(PowerTrace, DayViewAndAt) {
  PowerTrace t("T", Ramp(48), 3600);
  const auto d1 = t.day(1);
  ASSERT_EQ(d1.size(), 24u);
  EXPECT_DOUBLE_EQ(d1[0], 24.0);
  EXPECT_DOUBLE_EQ(t.at(1, 5), 29.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
}

TEST(PowerTrace, PeakIsMaximum) {
  PowerTrace t("T", {1.0, 9.0, 2.0, 3.0, 1.0, 0.0, 0.0, 0.0,
                     0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                     0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
               3600);
  EXPECT_DOUBLE_EQ(t.peak(), 9.0);
}

TEST(PowerTrace, EnergyAccounting) {
  std::vector<double> samples(24, 2.0);  // 2 W all day at 1 h resolution
  PowerTrace t("T", samples, 3600);
  EXPECT_DOUBLE_EQ(t.day_energy_j(0), 2.0 * 86400.0);
  EXPECT_DOUBLE_EQ(t.total_energy_j(), 2.0 * 86400.0);
}

TEST(PowerTrace, SliceSelectsDays) {
  PowerTrace t("T", Ramp(72), 3600);  // 3 days
  const auto s = t.Slice(1, 2);
  EXPECT_EQ(s.days(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 24.0);
  EXPECT_DOUBLE_EQ(s.at(1, 23), 71.0);
}

TEST(PowerTrace, SliceValidatesRange) {
  PowerTrace t("T", Ramp(48), 3600);
  EXPECT_THROW(t.Slice(0, 3), std::invalid_argument);
  EXPECT_THROW(t.Slice(2, 1), std::invalid_argument);
  EXPECT_THROW(t.Slice(0, 0), std::invalid_argument);
}

TEST(PowerTrace, RejectsBadConstruction) {
  // Resolution not dividing a day.
  EXPECT_THROW(PowerTrace("T", Ramp(10), 7), std::invalid_argument);
  // Partial day.
  EXPECT_THROW(PowerTrace("T", Ramp(25), 3600), std::invalid_argument);
  // Empty.
  EXPECT_THROW(PowerTrace("T", {}, 3600), std::invalid_argument);
  // Negative sample.
  std::vector<double> bad(24, 1.0);
  bad[3] = -0.1;
  EXPECT_THROW(PowerTrace("T", bad, 3600), std::invalid_argument);
  // Non-finite sample.
  std::vector<double> nan_samples(24, 1.0);
  nan_samples[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(PowerTrace("T", nan_samples, 3600), std::invalid_argument);
}

TEST(PowerTrace, IndexValidation) {
  PowerTrace t("T", Ramp(24), 3600);
  EXPECT_THROW(t.day(1), std::invalid_argument);
  EXPECT_THROW(t.at(0, 24), std::invalid_argument);
  EXPECT_THROW(t.at(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace shep
