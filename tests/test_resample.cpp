// Tests for timeseries/resample.hpp.
#include "timeseries/resample.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shep {
namespace {

PowerTrace MinuteRamp(std::size_t days) {
  std::vector<double> v(days * 1440);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % 1440);
  }
  return PowerTrace("T", std::move(v), 60);
}

TEST(DownsampleMean, FiveMinuteBlocks) {
  const auto t = MinuteRamp(1);
  const auto d = DownsampleMean(t, 5);
  EXPECT_EQ(d.resolution_s(), 300);
  EXPECT_EQ(d.samples_per_day(), 288u);
  // First block: mean(0..4) = 2.
  EXPECT_DOUBLE_EQ(d.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 7.0);
}

TEST(DownsampleMean, PreservesTotalEnergy) {
  const auto t = MinuteRamp(2);
  const auto d = DownsampleMean(t, 5);
  EXPECT_NEAR(d.total_energy_j(), t.total_energy_j(), 1e-6);
}

TEST(DownsampleMean, FactorOneIsIdentity) {
  const auto t = MinuteRamp(1);
  const auto d = DownsampleMean(t, 1);
  EXPECT_EQ(d.size(), t.size());
  EXPECT_DOUBLE_EQ(d.at(0, 100), t.at(0, 100));
}

TEST(DownsampleDecimate, KeepsFirstOfBlock) {
  const auto t = MinuteRamp(1);
  const auto d = DownsampleDecimate(t, 5);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 10.0);
}

TEST(UpsampleHold, RepeatsSamples) {
  std::vector<double> v(288);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const PowerTrace t("T", v, 300);
  const auto u = UpsampleHold(t, 5);
  EXPECT_EQ(u.resolution_s(), 60);
  EXPECT_DOUBLE_EQ(u.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(u.at(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(u.at(0, 5), 1.0);
}

TEST(Resample, UpsampleThenDownsampleIsIdentity) {
  std::vector<double> v(288);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>((i * 7) % 100);
  }
  const PowerTrace t("T", v, 300);
  const auto round = DownsampleMean(UpsampleHold(t, 5), 5);
  ASSERT_EQ(round.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(round.samples()[i], t.samples()[i], 1e-12);
  }
}

TEST(Resample, ValidatesFactors) {
  const auto t = MinuteRamp(1);
  EXPECT_THROW(DownsampleMean(t, 0), std::invalid_argument);
  EXPECT_THROW(DownsampleMean(t, 7), std::invalid_argument);  // 1440 % 7 != 0
  EXPECT_THROW(UpsampleHold(t, 7), std::invalid_argument);    // 60 % 7 != 0
}

}  // namespace
}  // namespace shep
