// Tests for the multi-process fleet coordinator (fleet/coord.hpp): the
// wire protocol (job + frame serde), the ScenarioSpec text form that
// carries campaigns across the process boundary, and — against the real
// shep_fleet_worker binary — the acceptance pins: a 4-worker campaign
// merges bit-identical to single-process RunFleet, and stays bit-identical
// when workers are SIGKILLed, die mid-campaign, stream corrupt frames, or
// hang while heartbeating (every fault path ends in reassignment).
#include "fleet/coord.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/runner.hpp"
#include "fleet/shard_plan.hpp"
#include "trace/sink.hpp"
#include "trace/trace_file.hpp"

namespace shep {
namespace {

/// Small but structurally rich: 2 sites x 3 predictors (one costed
/// backend) x 2 tiers x 2 replicas = 24 nodes -> 8 shards of 3, so a
/// 4-worker run has real dispatch traffic and faults leave work to
/// reassign.
ScenarioSpec CoordSpec() {
  ScenarioSpec spec;
  spec.name = "coordinated";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.days = 8;
  PredictorSpec fixed = wcma;
  fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, fixed, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 2;
  spec.days = 20;
  spec.slots_per_day = 48;
  spec.seed = 91;
  spec.node.warmup_days = 10;
  spec.initial_level_jitter = 0.15;
  return spec;
}

constexpr std::size_t kShardSize = 3;

void ExpectSummaryBitIdentical(const FleetSummary& a, const FleetSummary& b) {
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].violation_rate.mean, b.stats[i].violation_rate.mean);
    EXPECT_EQ(a.stats[i].violation_rate.m2, b.stats[i].violation_rate.m2);
    EXPECT_EQ(a.stats[i].min_soc.min, b.stats[i].min_soc.min);
    EXPECT_EQ(a.stats[i].violations, b.stats[i].violations);
    EXPECT_EQ(a.stats[i].scored_slots, b.stats[i].scored_slots);
  }
  EXPECT_EQ(a.ToTable(), b.ToTable());
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
}

const FleetSummary& Monolithic() {
  static const FleetSummary summary = [] {
    FleetRunOptions options;
    options.shard_size = kShardSize;
    return RunFleet(CoordSpec(), options);
  }();
  return summary;
}

FleetCoordOptions BaseOptions() {
  FleetCoordOptions options;
#ifdef SHEP_FLEET_WORKER_PATH
  options.worker_path = SHEP_FLEET_WORKER_PATH;
#endif
  options.workers = 4;
  options.shard_size = kShardSize;
  options.heartbeat_ms = 25;
  options.liveness_timeout_ms = 5000;
  return options;
}

#ifndef SHEP_FLEET_WORKER_PATH
#define SHEP_SKIP_WITHOUT_WORKER() \
  GTEST_SKIP() << "built without SHEP_FLEET_WORKER_PATH"
#else
#define SHEP_SKIP_WITHOUT_WORKER() (void)0
#endif

// ---- ScenarioSpec serde --------------------------------------------------

/// A spec using every predictor kind and every parameter block, so the
/// round trip covers the whole wire format.
ScenarioSpec EverythingSpec() {
  ScenarioSpec spec = CoordSpec();
  spec.predictors.clear();
  for (PredictorKind kind :
       {PredictorKind::kWcma, PredictorKind::kWcmaFixed,
        PredictorKind::kWcmaVm, PredictorKind::kEwma, PredictorKind::kAr,
        PredictorKind::kAdaptiveWcma, PredictorKind::kPersistence,
        PredictorKind::kPreviousDay}) {
    PredictorSpec p;
    p.kind = kind;
    p.wcma.alpha = 0.7;
    p.wcma.days = 6;
    p.ewma_weight = 0.37;
    p.ar.order = 3;
    p.ar.days = 9;
    p.ar.lambda = 0.93;
    p.ar.delta = 123.5;
    p.adaptive.alphas = {0.25, 0.5, 0.9};
    p.adaptive.ks = {1, 2, 4};
    p.adaptive.days = 7;
    p.adaptive.discount = 0.8;
    spec.predictors.push_back(p);
  }
  spec.node.storage.charge_efficiency = 0.87;
  spec.node.initial_level_fraction = 0.42;
  return spec;
}

TEST(ScenarioSpecSerde, RoundTripIsExactAndPreservesThePlan) {
  const ScenarioSpec spec = EverythingSpec();
  const std::string text = spec.Describe();
  const ScenarioSpec parsed = ParseScenarioSpec(text);

  // The text form is a fixed point: re-describing reproduces every byte.
  EXPECT_EQ(parsed.Describe(), text);

  // The decisive equality: the rebuilt spec expands to the identical plan
  // (the fingerprint folds in every result-relevant field).
  EXPECT_EQ(BuildShardPlan(parsed, kShardSize).fingerprint,
            BuildShardPlan(spec, kShardSize).fingerprint);
}

TEST(ScenarioSpecSerde, RejectsMalformedText) {
  EXPECT_THROW(ParseScenarioSpec(""), std::invalid_argument);
  EXPECT_THROW(ParseScenarioSpec("not a scenario"), std::invalid_argument);
  std::string text = CoordSpec().Describe();
  EXPECT_THROW(ParseScenarioSpec(text.substr(0, text.size() / 2)),
               std::invalid_argument);
  // An unknown predictor kind name must not default to anything.
  std::string renamed = text;
  renamed.replace(renamed.find("WCMA"), 4, "WCMB");
  EXPECT_THROW(ParseScenarioSpec(renamed), std::invalid_argument);
  // Only an expandable spec serializes (empty sites fails validation).
  ScenarioSpec invalid = CoordSpec();
  invalid.sites.clear();
  EXPECT_THROW(invalid.Describe(), std::invalid_argument);
  EXPECT_THROW([] {
    ScenarioSpec spaced = CoordSpec();
    spaced.name = "two words";
    return spaced.Describe();
  }(), std::invalid_argument);
  EXPECT_EQ(PredictorKindFromName("EWMA"), PredictorKind::kEwma);
  EXPECT_THROW(PredictorKindFromName("nope"), std::invalid_argument);
}

// ---- Wire protocol -------------------------------------------------------

TEST(FleetProtocol, JobRoundTripsAndFramesChecksum) {
  FleetWorkerJob job;
  job.spec = EverythingSpec();
  job.shard_size = 5;
  job.threads = 2;
  job.heartbeat_ms = 75;
  job.fingerprint = 0xDEADBEEFull;
  job.trace_dir = "/tmp/trace dir with spaces";

  std::istringstream in(EncodeFleetJob(job));
  const FleetWorkerJob parsed = ParseFleetJob(in);
  EXPECT_EQ(parsed.spec.Describe(), job.spec.Describe());
  EXPECT_EQ(parsed.shard_size, 5u);
  EXPECT_EQ(parsed.threads, 2u);
  EXPECT_EQ(parsed.heartbeat_ms, 75u);
  EXPECT_EQ(parsed.fingerprint, 0xDEADBEEFull);
  EXPECT_EQ(parsed.trace_dir, job.trace_dir);

  // No trace dir travels as "-" and comes back empty.
  job.trace_dir.clear();
  std::istringstream in2(EncodeFleetJob(job));
  EXPECT_TRUE(ParseFleetJob(in2).trace_dir.empty());

  std::istringstream garbage("shep-fleet-job v2\n");
  EXPECT_THROW(ParseFleetJob(garbage), std::invalid_argument);
  std::istringstream truncated(
      EncodeFleetJob(job).substr(0, 120));
  EXPECT_THROW(ParseFleetJob(truncated), std::invalid_argument);

  // Frame: header names the shard, the byte count, and an FNV-1a 64 that
  // actually covers the payload.
  const std::string payload = "shep-fleet-partial payload\n";
  const std::string frame = EncodeFleetFrame(7, payload);
  std::istringstream fin(frame);
  std::string word;
  std::uint64_t shard = 0, bytes = 0, checksum = 0;
  fin >> word >> shard >> bytes >> checksum;
  EXPECT_EQ(word, "frame");
  EXPECT_EQ(shard, 7u);
  EXPECT_EQ(bytes, payload.size());
  EXPECT_EQ(checksum, FleetFrameChecksum(payload));
  EXPECT_NE(FleetFrameChecksum(payload), FleetFrameChecksum("x" + payload));
  EXPECT_NE(frame.find("end-frame\n"), std::string::npos);
}

// ---- The real multi-process runtime --------------------------------------

TEST(RunFleetCoordinated, FourWorkersMatchSingleProcessBitIdentically) {
  SHEP_SKIP_WITHOUT_WORKER();
  FleetCoordStats stats;
  const FleetSummary summary =
      RunFleetCoordinated(CoordSpec(), BaseOptions(), &stats);
  ExpectSummaryBitIdentical(summary, Monolithic());

  const ShardPlan plan = BuildShardPlan(CoordSpec(), kShardSize);
  EXPECT_EQ(stats.frames_accepted, plan.shards.size());
  EXPECT_EQ(stats.workers_spawned, 4u);
  EXPECT_EQ(stats.workers_died, 0u);
  EXPECT_EQ(stats.corrupt_frames, 0u);
  EXPECT_EQ(stats.shards_reassigned, 0u);
}

TEST(RunFleetCoordinated, FaultedCampaignMergesBitIdentically) {
  SHEP_SKIP_WITHOUT_WORKER();
  // The fault spec travels inside the scenario's v2 text form, so every
  // worker rebuilds the same per-node fault schedules and the coordinated
  // merge must reproduce the monolithic faulted run bit for bit —
  // including the graceful-degradation columns that only faulted runs
  // render.
  ScenarioSpec spec = CoordSpec();
  spec.name = "coordinated_faulted";
  spec.faults.outage_rate_per_day = 0.3;
  spec.faults.outage_mean_slots = 6.0;
  spec.faults.dropout_rate_per_day = 0.5;
  spec.faults.dropout_mean_slots = 4.0;
  spec.faults.panel_decay_per_day = 0.001;
  spec.faults.battery_aging_per_day = 0.002;

  FleetRunOptions mono_options;
  mono_options.shard_size = kShardSize;
  const FleetSummary mono = RunFleet(spec, mono_options);

  FleetCoordStats stats;
  const FleetSummary summary =
      RunFleetCoordinated(spec, BaseOptions(), &stats);
  ExpectSummaryBitIdentical(summary, mono);
  for (const CellAccumulator& cell : summary.stats) {
    EXPECT_TRUE(cell.has_fault_stats());
  }
  EXPECT_NE(summary.ToCsv().find("availability"), std::string::npos);
  // Under CI load a slow worker can trip a deadline and be respawned —
  // that must never cost bit-identity, so only the floor is pinned.
  EXPECT_GE(stats.workers_spawned, 4u);
  EXPECT_EQ(stats.corrupt_frames, 0u);
}

TEST(RunFleetCoordinated, SurvivesASigkilledWorker) {
  SHEP_SKIP_WITHOUT_WORKER();
  FleetCoordOptions options = BaseOptions();
  // The acceptance pin: a real SIGKILL, before the victim contributes
  // anything, forces respawn + (possibly) reassignment.
  options.on_spawn = [](std::size_t spawn, long pid) {
    if (spawn == 0) kill(static_cast<pid_t>(pid), SIGKILL);
  };
  FleetCoordStats stats;
  const FleetSummary summary =
      RunFleetCoordinated(CoordSpec(), options, &stats);
  ExpectSummaryBitIdentical(summary, Monolithic());
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_GE(stats.respawns, 1u);
}

TEST(RunFleetCoordinated, SurvivesWorkersDyingMidCampaign) {
  SHEP_SKIP_WITHOUT_WORKER();
  FleetCoordOptions options = BaseOptions();
  // EVERY spawn (replacements included) exits abruptly after one valid
  // frame; the campaign only finishes through repeated reassignment.
  options.worker_args = {"--die-after-frames", "1"};
  FleetCoordStats stats;
  const FleetSummary summary =
      RunFleetCoordinated(CoordSpec(), options, &stats);
  ExpectSummaryBitIdentical(summary, Monolithic());
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_GE(stats.shards_reassigned, 1u);
  EXPECT_GE(stats.respawns, 1u);
}

TEST(RunFleetCoordinated, RejectsCorruptFramesAndReassigns) {
  SHEP_SKIP_WITHOUT_WORKER();
  for (const char* flag : {"--corrupt-frame", "--garble-frame"}) {
    FleetCoordOptions options = BaseOptions();
    // Each spawn's SECOND frame lies (bad checksum / unparseable payload
    // behind a valid checksum); the first succeeds so the run progresses.
    options.worker_args = {flag, "2"};
    FleetCoordStats stats;
    const FleetSummary summary =
        RunFleetCoordinated(CoordSpec(), options, &stats);
    ExpectSummaryBitIdentical(summary, Monolithic());
    EXPECT_GE(stats.corrupt_frames, 1u) << flag;
    EXPECT_GE(stats.workers_killed, 1u) << flag;
  }
}

TEST(RunFleetCoordinated, KillsHeartbeatingStragglersOnShardDeadline) {
  SHEP_SKIP_WITHOUT_WORKER();
  FleetCoordOptions options = BaseOptions();
  // Workers hang after one frame but KEEP heartbeating, so only the
  // per-shard deadline can unstick the run.
  options.worker_args = {"--hang-after-frames", "1"};
  options.shard_timeout_ms = 400;
  FleetCoordStats stats;
  const FleetSummary summary =
      RunFleetCoordinated(CoordSpec(), options, &stats);
  ExpectSummaryBitIdentical(summary, Monolithic());
  EXPECT_GE(stats.workers_killed, 1u);
  EXPECT_GE(stats.shards_reassigned, 1u);
}

TEST(RunFleetCoordinated, ThrowsWhenEveryWorkerIsUnusable) {
  SHEP_SKIP_WITHOUT_WORKER();
  FleetCoordOptions options = BaseOptions();
  options.workers = 2;
  options.max_respawns = 2;
  options.worker_args = {"--not-a-flag"};  // every spawn errors out at once.
  EXPECT_THROW(RunFleetCoordinated(CoordSpec(), options),
               std::runtime_error);
}

TEST(RunFleetCoordinated, ValidatesItsConfiguration) {
  FleetCoordOptions no_path;
  EXPECT_THROW(RunFleetCoordinated(CoordSpec(), no_path),
               std::invalid_argument);
  FleetCoordOptions zero_workers = BaseOptions();
  zero_workers.worker_path = "/does/not/matter";
  zero_workers.workers = 0;
  EXPECT_THROW(RunFleetCoordinated(CoordSpec(), zero_workers),
               std::invalid_argument);
}

TEST(RunFleetCoordinated, TracedRunLeavesTheSingleProcessFileSet) {
  SHEP_SKIP_WITHOUT_WORKER();
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(testing::TempDir()) / "shep_coord_trace_test";
  fs::remove_all(root);
  const fs::path mono_dir = root / "mono";
  const fs::path coord_dir = root / "coord";

  // Single-process traced reference, run shard-at-a-time with a flush
  // between shards — the workers' exact cadence, and the shape in which
  // trace files are deterministic (the ring can hold any one shard, so
  // nothing ever drops; a whole-campaign push could overflow the ring at
  // scheduling whim and drops change file bytes).
  const ScenarioSpec spec = CoordSpec();
  const ShardPlan plan = BuildShardPlan(spec, kShardSize);
  TraceSinkOptions sink_options;
  sink_options.directory = mono_dir.string();
  TraceSink sink(sink_options);
  FleetRunOptions mono_options;
  mono_options.shard_size = kShardSize;
  mono_options.trace_sink = &sink;
  std::vector<FleetPartial> mono_partials;
  for (std::size_t shard = 0; shard < plan.shards.size(); ++shard) {
    mono_partials.push_back(RunFleetShards(plan, {shard}, mono_options));
  }
  const FleetSummary mono = MergeFleetPartials(plan, mono_partials);

  // Coordinated traced run across 4 processes with a worker SIGKILLed:
  // reassignment must not leak duplicate or orphan trace files.
  FleetCoordOptions options = BaseOptions();
  options.trace_dir = coord_dir.string();
  options.on_spawn = [](std::size_t spawn, long pid) {
    if (spawn == 1) kill(static_cast<pid_t>(pid), SIGKILL);
  };
  const FleetSummary coordinated = RunFleetCoordinated(spec, options);
  ExpectSummaryBitIdentical(coordinated, mono);

  // Exactly one file per shard, byte-identical to the single-process one,
  // and no worker-* directories left behind.
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  std::size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(coord_dir)) {
    EXPECT_TRUE(entry.is_regular_file())
        << "unexpected directory: " << entry.path();
    ++files;
  }
  EXPECT_EQ(files, plan.shards.size());
  for (std::size_t shard = 0; shard < plan.shards.size(); ++shard) {
    const std::string name =
        TraceShardFile::FileName(plan.fingerprint, shard);
    ASSERT_TRUE(fs::exists(coord_dir / name)) << name;
    EXPECT_EQ(slurp(coord_dir / name), slurp(mono_dir / name)) << name;
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace shep
