// Tests for solar/synth.hpp and solar/sites.hpp — the data substrate.
#include "solar/synth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "solar/sites.hpp"

namespace shep {
namespace {

TEST(PaperSites, TableOneInventory) {
  const auto& sites = PaperSites();
  ASSERT_EQ(sites.size(), 6u);
  EXPECT_EQ(sites[0].code, "SPMD");
  EXPECT_EQ(sites[0].location, "CO");
  EXPECT_EQ(sites[0].resolution_s, 300);
  EXPECT_EQ(sites[1].code, "ECSU");
  EXPECT_EQ(sites[1].resolution_s, 300);
  EXPECT_EQ(sites[2].code, "ORNL");
  EXPECT_EQ(sites[2].resolution_s, 60);
  EXPECT_EQ(sites[3].code, "HSU");
  EXPECT_EQ(sites[4].code, "NPCS");
  EXPECT_EQ(sites[5].code, "PFCI");
  EXPECT_EQ(sites[5].location, "AZ");
}

TEST(PaperSites, LookupByCode) {
  EXPECT_EQ(SiteByCode("ORNL").location, "TN");
  EXPECT_THROW(SiteByCode("NOPE"), std::invalid_argument);
}

TEST(PaperSites, AllWeatherParamsValid) {
  for (const auto& s : PaperSites()) {
    EXPECT_NO_THROW(s.weather.Validate()) << s.code;
    EXPECT_GT(s.latitude_deg, 30.0) << s.code;
    EXPECT_LT(s.latitude_deg, 42.0) << s.code;
    EXPECT_NEAR(s.PanelPeakW(), 1.5, 1e-9) << s.code;
  }
}

TEST(Synthesize, TableOneObservationCounts) {
  SynthOptions opt;
  opt.days = 365;
  const auto spmd = SynthesizeTrace(SiteByCode("SPMD"), opt);
  EXPECT_EQ(spmd.size(), 105120u);  // Table I, 5-minute site
  const auto pfci = SynthesizeTrace(SiteByCode("PFCI"), opt);
  EXPECT_EQ(pfci.size(), 525600u);  // Table I, 1-minute site
}

TEST(Synthesize, DeterministicPerSeed) {
  SynthOptions opt;
  opt.days = 10;
  const auto a = SynthesizeTrace(SiteByCode("HSU"), opt);
  const auto b = SynthesizeTrace(SiteByCode("HSU"), opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 101) {
    EXPECT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
}

TEST(Synthesize, SeedOffsetChangesRealisation) {
  SynthOptions a_opt, b_opt;
  a_opt.days = b_opt.days = 5;
  b_opt.seed_offset = 1;
  const auto a = SynthesizeTrace(SiteByCode("HSU"), a_opt);
  const auto b = SynthesizeTrace(SiteByCode("HSU"), b_opt);
  int differing = 0;
  for (std::size_t i = 600; i < 800; ++i) {  // daytime samples
    if (a.samples()[i] != b.samples()[i]) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(Synthesize, NightIsDarkNoonIsBright) {
  SynthOptions opt;
  opt.days = 30;
  opt.start_day_of_year = 150;  // summer
  const auto t = SynthesizeTrace(SiteByCode("PFCI"), opt);
  for (std::size_t d = 0; d < t.days(); ++d) {
    EXPECT_DOUBLE_EQ(t.at(d, 0), 0.0) << "midnight day " << d;
    EXPECT_GT(t.at(d, 720), 0.05) << "noon day " << d;  // desert summer noon
  }
}

TEST(Synthesize, PowerWithinPanelEnvelope) {
  SynthOptions opt;
  opt.days = 60;
  const auto t = SynthesizeTrace(SiteByCode("NPCS"), opt);
  for (double v : t.samples()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.8);  // 1.5 W nominal peak + Haurwitz margin
  }
}

TEST(Synthesize, DesertHasHigherYieldThanConvectiveSite) {
  SynthOptions opt;
  opt.days = 90;
  const auto pfci = SynthesizeTrace(SiteByCode("PFCI"), opt);
  const auto ornl = SynthesizeTrace(SiteByCode("ORNL"), opt);
  EXPECT_GT(pfci.total_energy_j(), 1.15 * ornl.total_energy_j());
}

TEST(Synthesize, ConvectiveSiteIsMoreVolatileDayToDay) {
  // Day-to-day energy variability drives prediction difficulty; the site
  // parameters must reproduce the paper's ordering (ORNL hard, PFCI easy).
  SynthOptions opt;
  opt.days = 120;
  auto cv_daily_energy = [&](const char* code) {
    const auto t = SynthesizeTrace(SiteByCode(code), opt);
    std::vector<double> daily(t.days());
    for (std::size_t d = 0; d < t.days(); ++d) daily[d] = t.day_energy_j(d);
    return std::sqrt(Variance(daily)) / Mean(daily);
  };
  const double cv_ornl = cv_daily_energy("ORNL");
  const double cv_pfci = cv_daily_energy("PFCI");
  EXPECT_GT(cv_ornl, 1.15 * cv_pfci);
}

TEST(Synthesize, PaperTracesCoverAllSites) {
  SynthOptions opt;
  opt.days = 3;
  const auto traces = SynthesizePaperTraces(opt);
  ASSERT_EQ(traces.size(), 6u);
  EXPECT_EQ(traces[0].name(), "SPMD");
  EXPECT_EQ(traces[5].name(), "PFCI");
}

TEST(Synthesize, ValidatesOptions) {
  SynthOptions opt;
  opt.days = 0;
  EXPECT_THROW(SynthesizeTrace(SiteByCode("HSU"), opt),
               std::invalid_argument);
  opt.days = 1;
  opt.start_day_of_year = 0;
  EXPECT_THROW(SynthesizeTrace(SiteByCode("HSU"), opt),
               std::invalid_argument);
  opt.start_day_of_year = 367;
  EXPECT_THROW(SynthesizeTrace(SiteByCode("HSU"), opt),
               std::invalid_argument);
}

TEST(Synthesize, LeapDayStartWrapsToJanuaryFirst) {
  // Day 366 (a leap year's Dec 31) is accepted — SolarDeclinationRad always
  // was defined on [1, 366] and the synthesizer now agrees — and wraps onto
  // day 1: the synthetic year is the 365-day declination cycle, and 366 is
  // exactly one period past 1.  Same seed, so the traces are bit-identical.
  SynthOptions leap;
  leap.days = 5;
  leap.start_day_of_year = 366;
  const auto from_366 = SynthesizeTrace(SiteByCode("ORNL"), leap);
  SynthOptions jan;
  jan.days = 5;
  jan.start_day_of_year = 1;
  const auto from_1 = SynthesizeTrace(SiteByCode("ORNL"), jan);
  ASSERT_EQ(from_366.size(), from_1.size());
  for (std::size_t i = 0; i < from_366.size(); ++i) {
    ASSERT_EQ(from_366.samples()[i], from_1.samples()[i]) << "sample " << i;
  }
}

TEST(Synthesize, ScratchReuseIsBitIdentical) {
  // One scratch carried across traces of different sites and replicas must
  // reproduce the fresh-buffer path exactly: buffer reuse (and the
  // process-wide clear-sky memo behind both paths) may only change where
  // intermediates live, never a single output bit.
  SynthScratch scratch;
  for (const char* code : {"ORNL", "ECSU", "PFCI", "ORNL"}) {
    for (std::uint64_t replica = 0; replica < 2; ++replica) {
      SynthOptions opt;
      opt.days = 7;
      opt.seed_offset = replica;
      const auto fresh = SynthesizeTrace(SiteByCode(code), opt);
      const auto reused = SynthesizeTrace(SiteByCode(code), opt, scratch);
      ASSERT_EQ(fresh.size(), reused.size());
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        ASSERT_EQ(fresh.samples()[i], reused.samples()[i])
            << code << " replica " << replica << " sample " << i;
      }
    }
  }
}

}  // namespace
}  // namespace shep
