// Tests for core/adaptive.hpp — the realizable dynamic (α, K) selector.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"
#include "sweep/dynamic.hpp"
#include "sweep/sweep.hpp"

namespace shep {
namespace {

SlotSeries MakeSeries(const char* site, std::size_t days, int n = 48) {
  SynthOptions opt;
  opt.days = days;
  const auto trace = SynthesizeTrace(SiteByCode(site), opt);
  return SlotSeries(trace, n);
}

TEST(AdaptiveWcmaParams, Validation) {
  AdaptiveWcmaParams p;
  EXPECT_NO_THROW(p.Validate());
  p.alphas.clear();
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = AdaptiveWcmaParams{};
  p.alphas.push_back(1.5);
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = AdaptiveWcmaParams{};
  p.ks.push_back(0);
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = AdaptiveWcmaParams{};
  p.discount = 1.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = AdaptiveWcmaParams{};
  p.days = 0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(AdaptiveWcma, RejectsCandidateKNotBelowN) {
  AdaptiveWcmaParams p;
  p.ks = {1, 12};
  EXPECT_THROW(AdaptiveWcma(p, 12), std::invalid_argument);
}

TEST(AdaptiveWcma, SingleCandidateEqualsPlainWcma) {
  // With a one-entry bank there is nothing to select; the adaptive
  // predictor must be the static predictor, prediction for prediction.
  const auto series = MakeSeries("ECSU", 30);
  AdaptiveWcmaParams ap;
  ap.alphas = {0.7};
  ap.ks = {2};
  ap.days = 5;
  AdaptiveWcma adaptive(ap, 48);
  WcmaParams wp;
  wp.alpha = 0.7;
  wp.days = 5;
  wp.slots_k = 2;
  Wcma plain(wp, 48);
  const auto a = RunPredictor(adaptive, series);
  const auto b = RunPredictor(plain, series);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].predicted, b[i].predicted, 1e-12) << "i=" << i;
  }
}

TEST(AdaptiveWcma, LifecycleAndDiagnostics) {
  AdaptiveWcmaParams p;
  p.days = 2;
  AdaptiveWcma a(p, 24);
  EXPECT_THROW(a.PredictNext(), std::invalid_argument);
  EXPECT_FALSE(a.Ready());
  const auto series = MakeSeries("PFCI", 4, 24);
  for (std::size_t g = 0; g < series.size(); ++g) {
    a.Observe(series.boundary(g));
  }
  EXPECT_TRUE(a.Ready());
  EXPECT_LT(a.selected_candidate(), p.candidates());
  EXPECT_GE(a.selected_alpha(), 0.0);
  EXPECT_GE(a.selected_k(), 1);
  const auto& counts = a.selection_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            series.size());
  a.Reset();
  EXPECT_FALSE(a.Ready());
  EXPECT_THROW(a.PredictNext(), std::invalid_argument);
  EXPECT_EQ(std::accumulate(a.selection_counts().begin(),
                            a.selection_counts().end(), std::uint64_t{0}),
            0u);
}

TEST(AdaptiveWcma, ActuallyAdaptsOnVolatileData) {
  // On a mixed-weather site the loss ranking changes over time, so more
  // than one candidate must get selected.
  const auto series = MakeSeries("SPMD", 60);
  AdaptiveWcma a(AdaptiveWcmaParams{}, 48);
  for (std::size_t g = 0; g < series.size(); ++g) {
    a.Observe(series.boundary(g));
  }
  int used = 0;
  for (auto c : a.selection_counts()) {
    if (c > 0) ++used;
  }
  EXPECT_GE(used, 3);
}

TEST(AdaptiveWcma, DeterministicAcrossRuns) {
  const auto series = MakeSeries("HSU", 30);
  AdaptiveWcma a(AdaptiveWcmaParams{}, 48), b(AdaptiveWcmaParams{}, 48);
  const auto ra = RunPredictor(a, series);
  const auto rb = RunPredictor(b, series);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra[i].predicted, rb[i].predicted);
  }
}

TEST(AdaptiveWcma, SandwichedBetweenStaticOptimumAndOracle) {
  // The whole point: realizable dynamic selection lands between the best
  // static configuration (it should beat or approach it) and the
  // clairvoyant bound (it can never beat that).
  SynthOptions opt;
  opt.days = 120;
  const auto trace = SynthesizeTrace(SiteByCode("SPMD"), opt);
  const SlotSeries series(trace, 48);
  const SweepContext ctx(trace, 48);

  AdaptiveWcmaParams ap;
  ap.days = 10;
  AdaptiveWcma adaptive(ap, 48);
  const double adaptive_mape = ScorePredictor(adaptive, series).mape;

  const auto sweep = SweepWcma(ctx, ParamGrid::Paper());
  const double static_best = sweep.BestByMape().mean_stats.mape;
  const auto oracle = EvaluateDynamic(ctx, 10, ParamGrid::Paper());

  EXPECT_GT(adaptive_mape, oracle.both_mape);        // can't beat hindsight
  EXPECT_LT(adaptive_mape, static_best + 0.02);      // competitive with the
                                                     // tuned static optimum
}

TEST(AdaptiveWcma, BeatsBadStaticChoice) {
  // A deployment with a mis-tuned static (α, K) is exactly what adaptation
  // protects against.
  const auto series = MakeSeries("ORNL", 60);
  AdaptiveWcmaParams ap;
  ap.days = 10;
  AdaptiveWcma adaptive(ap, 48);
  WcmaParams bad;
  bad.alpha = 0.0;  // ignores the current sample entirely
  bad.days = 10;
  bad.slots_k = 1;
  Wcma mistuned(bad, 48);
  EXPECT_LT(ScorePredictor(adaptive, series).mape,
            ScorePredictor(mistuned, series).mape);
}

TEST(AdaptiveWcma, NameDescribesBank) {
  AdaptiveWcma a(AdaptiveWcmaParams{}, 48);
  EXPECT_NE(a.Name().find("AdaptiveWCMA"), std::string::npos);
  EXPECT_NE(a.Name().find("5x4"), std::string::npos);
}

}  // namespace
}  // namespace shep
