// Tests for common/rng.hpp: determinism, distribution sanity, forking.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace shep {
namespace {

TEST(SplitMix64, ProducesKnownSequenceProperties) {
  std::uint64_t state = 0;
  const auto a = SplitMix64(state);
  const auto b = SplitMix64(state);
  EXPECT_NE(a, b);
  // Same seed must reproduce the same stream.
  std::uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);
  EXPECT_EQ(SplitMix64(state2), b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsNotDegenerate) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.NextU64());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng r(3);
  EXPECT_THROW(r.Uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.NextGaussian();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng r(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, GaussianRejectsNegativeSigma) {
  Rng r(1);
  EXPECT_THROW(r.Gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng r(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.NextBelow(0), std::invalid_argument);
}

TEST(Rng, NextBoolEdgeProbabilities) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.NextBool(0.0));
    EXPECT_TRUE(r.NextBool(1.0));
  }
}

TEST(Rng, NextBoolFrequencyTracksP) {
  Rng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkStreamsAreIndependentAndStable) {
  Rng parent(100);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  Rng c1_again = parent.Fork(1);
  EXPECT_EQ(c1.NextU64(), c1_again.NextU64());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.Fork(3);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace shep
