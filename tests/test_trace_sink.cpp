// Streaming telemetry end-to-end: the sink's two load-bearing promises.
//
// 1. OBSERVATIONAL ONLY — a fleet run with tracing on produces a summary
//    BYTE-identical to the same run with tracing off (serial and pooled,
//    even when the ring overflows and drops events).  Telemetry that can
//    change results is not telemetry.
// 2. EXACT ACCOUNTING — every slot the probes observe is either drained
//    (events) or counted as dropped, per shard and per run; trace files
//    are deterministic (serial == pooled, byte for byte) and a query over
//    the joined per-shard files equals the same query per shard,
//    concatenated — the distributed-merge property, restated for traces.
//
// Plus unit coverage of the selective-persistence policy's three triggers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/runner.hpp"
#include "trace/policy.hpp"
#include "trace/query.hpp"
#include "trace/sink.hpp"

namespace shep {
namespace {

// Small but real: 2 sites × 2 predictors × 2 tiers × 2 replicas, with the
// tight tier provoking violations (trigger windows) and the roomy tier
// staying quiet (day summaries).
ScenarioSpec TracedSpec() {
  ScenarioSpec spec;
  spec.name = "traced";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.days = 4;
  PredictorSpec ewma;
  ewma.kind = PredictorKind::kEwma;
  spec.predictors = {wcma, ewma};
  spec.storage_tiers_j = {400.0, 6000.0};
  spec.nodes_per_cell = 2;
  spec.days = 6;
  spec.slots_per_day = 48;
  spec.seed = 909;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 2;
  spec.initial_level_jitter = 0.2;
  return spec;
}

/// Byte-exact fingerprint of a summary: every accumulator's hexfloat
/// serialization plus the rendered CSV.  EXPECT_EQ on this is the
/// "tracing cannot change results" pin.
std::string SummaryBytes(const FleetSummary& summary) {
  std::ostringstream os;
  for (const CellAccumulator& acc : summary.stats) acc.Serialize(os);
  os << summary.ToCsv();
  return os.str();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string UniqueDir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("shep_trace_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<std::string> TraceFilePaths(const ShardPlan& plan,
                                        const std::string& dir) {
  std::vector<std::string> paths;
  for (const ShardRange& shard : plan.shards) {
    paths.push_back(
        (std::filesystem::path(dir) /
         TraceShardFile::FileName(plan.fingerprint, shard.index))
            .string());
  }
  return paths;
}

TraceEvent SlotEvent(std::uint32_t slot, double soc, double predicted_w,
                     double actual_w, bool violated = false,
                     double duty = 0.25) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSlot;
  e.slot = slot;
  e.node = 11;
  e.cell = 2;
  e.soc = soc;
  e.predicted_w = predicted_w;
  e.actual_w = actual_w;
  e.violated = violated;
  e.duty = duty;
  return e;
}

// ---------------------------------------------------------------------------
// Policy units.
// ---------------------------------------------------------------------------

TEST(TracePolicy, SocLowWaterCrossingKeepsAWindow) {
  TracePolicyConfig config;
  config.window_slots = 2;
  config.soc_low_water = 0.15;
  std::vector<TraceEvent> events;
  for (std::uint32_t g = 0; g < 12; ++g) {
    // Dips below the low-water mark at slot 6 only.
    events.push_back(SlotEvent(g, g == 6 ? 0.10 : 0.5, 1.0, 1.0));
  }
  std::vector<TraceRecord> records;
  std::vector<TraceDayRecord> days;
  ApplyTracePolicy(events, 6, config, records, days);

  ASSERT_EQ(records.size(), 5u);  // slots 4..8.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].slot, 4 + i);
    EXPECT_EQ(records[i].trigger_mask, kTraceTriggerSocLowWater);
  }
  // The other 7 slots summarize into both days without gaps.
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].day, 0u);
  EXPECT_EQ(days[0].slots, 4u);  // slots 0..3.
  EXPECT_EQ(days[1].day, 1u);
  EXPECT_EQ(days[1].slots, 3u);  // slots 9..11.
  EXPECT_EQ(days[0].slots + days[1].slots + records.size(), events.size());
}

TEST(TracePolicy, DivergenceSpikeTriggersButNightDoesNot) {
  TracePolicyConfig config;
  config.window_slots = 1;
  config.divergence_mape = 0.75;
  std::vector<TraceEvent> events;
  for (std::uint32_t g = 0; g < 10; ++g) {
    double predicted = 1.0, actual = 1.0;
    if (g == 4) predicted = 3.0;          // 200 % error in daylight: spike.
    if (g == 8) { predicted = 5.0; actual = 0.0; }  // night: no reference.
    events.push_back(SlotEvent(g, 0.5, predicted, actual));
  }
  std::vector<TraceRecord> records;
  std::vector<TraceDayRecord> days;
  ApplyTracePolicy(events, 10, config, records, days);

  ASSERT_EQ(records.size(), 3u);  // slots 3..5 only; slot 8 stayed coarse.
  for (const TraceRecord& r : records) {
    EXPECT_EQ(r.trigger_mask, kTraceTriggerDivergence);
    EXPECT_GE(r.slot, 3u);
    EXPECT_LE(r.slot, 5u);
  }
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].slots, 7u);
  // The night slot's 5 W miss is still visible in the coarse record.
  EXPECT_EQ(days[0].max_abs_error_w, 5.0);
}

TEST(TracePolicy, ViolationBurstTriggersOnPileUpOnly) {
  TracePolicyConfig config;
  config.window_slots = 1;
  config.burst_violations = 3;
  config.burst_window_slots = 4;
  std::vector<TraceEvent> events;
  for (std::uint32_t g = 0; g < 20; ++g) {
    // One isolated violation at 2; a 3-violation pile-up at 10..12.
    const bool violated = g == 2 || g == 10 || g == 11 || g == 12;
    events.push_back(SlotEvent(g, 0.5, 1.0, 1.0, violated));
  }
  std::vector<TraceRecord> records;
  std::vector<TraceDayRecord> days;
  ApplyTracePolicy(events, 20, config, records, days);

  // The trailing count reaches 3 at slot 12 and holds through 13; those
  // two trigger slots ± 1 make the persisted window exactly 11..14.
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].slot, 11 + i);
    EXPECT_EQ(records[i].trigger_mask, kTraceTriggerViolationBurst);
  }
  // The isolated violations (slot 2, and slot 10 just outside the window)
  // were NOT kept at full resolution but are counted in the day summary.
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].violations, 2u);
  EXPECT_EQ(days[0].slots + records.size(), events.size());
}

TEST(TracePolicy, DaySummaryAggregatesExactly) {
  TracePolicyConfig config;  // defaults: nothing triggers in calm data.
  std::vector<TraceEvent> events;
  events.push_back(SlotEvent(0, 0.9, 1.0, 1.2, false, 0.2));
  events.push_back(SlotEvent(1, 0.8, 1.0, 1.5, true, 0.4));
  events.push_back(SlotEvent(2, 0.7, 1.0, 1.0, false, 0.6));
  std::vector<TraceRecord> records;
  std::vector<TraceDayRecord> days;
  ApplyTracePolicy(events, 48, config, records, days);
  EXPECT_TRUE(records.empty());
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].node, 11u);
  EXPECT_EQ(days[0].cell, 2u);
  EXPECT_EQ(days[0].slots, 3u);
  EXPECT_EQ(days[0].violations, 1u);
  EXPECT_DOUBLE_EQ(days[0].min_soc, 0.7);
  EXPECT_DOUBLE_EQ(days[0].mean_duty, 0.4);
  EXPECT_DOUBLE_EQ(days[0].max_abs_error_w, 0.5);
}

// ---------------------------------------------------------------------------
// Fleet integration.
// ---------------------------------------------------------------------------

TEST(TraceSinkFleet, SummaryByteIdenticalWithTracingOnAndOff) {
  const ScenarioSpec spec = TracedSpec();
  const std::string untraced = SummaryBytes(RunFleet(spec));

  // Serial traced run.
  {
    TraceSinkOptions options;
    options.directory = UniqueDir("identity_serial");
    TraceSink sink(options);
    FleetRunOptions run;
    run.trace_sink = &sink;
    EXPECT_EQ(SummaryBytes(RunFleet(spec, run)), untraced);
  }
  // Pooled traced run.
  {
    ThreadPool pool(4);
    TraceSinkOptions options;
    options.directory = UniqueDir("identity_pool");
    TraceSink sink(options);
    FleetRunOptions run;
    run.pool = &pool;
    run.trace_sink = &sink;
    EXPECT_EQ(SummaryBytes(RunFleet(spec, run)), untraced);
  }
}

TEST(TraceSinkFleet, EveryObservedSlotIsDrainedOrCountedDropped) {
  const ScenarioSpec spec = TracedSpec();
  TraceSinkOptions options;
  options.directory = UniqueDir("accounting");
  TraceSink sink(options);
  FleetRunOptions run;
  run.trace_sink = &sink;
  FleetRunStats stats;
  RunFleet(spec, run, &stats);

  // The kernel simulates series.size() - 1 = days × slots_per_day − 1
  // slots per node, warm-up included, and offers every one to the probe.
  const std::uint64_t slots_per_node =
      static_cast<std::uint64_t>(spec.days) * spec.slots_per_day - 1;
  const std::uint64_t expected = spec.node_count() * slots_per_node;
  EXPECT_EQ(stats.trace_events + stats.trace_dropped, expected);
  EXPECT_EQ(stats.trace_shard_files,
            BuildShardPlan(spec, run.shard_size).shards.size());

  // Persistence is complete: every drained slot is either a
  // full-resolution record or summarized in exactly one day record.
  const ShardPlan plan = BuildShardPlan(spec, run.shard_size);
  const auto files = LoadTraceFiles(TraceFilePaths(plan, options.directory));
  std::uint64_t slot_records = 0, summarized = 0, dropped = 0;
  for (const TraceShardFile& file : files) {
    slot_records += file.records.size();
    dropped += file.dropped_events;
    for (const TraceDayRecord& day : file.day_records) summarized += day.slots;
  }
  EXPECT_EQ(slot_records, stats.trace_slot_records);
  EXPECT_EQ(dropped, stats.trace_dropped);
  EXPECT_EQ(slot_records + summarized, stats.trace_events);
}

TEST(TraceSinkFleet, TraceFilesAreSchedulingInvariant) {
  const ScenarioSpec spec = TracedSpec();
  TraceSinkOptions serial_options;
  serial_options.directory = UniqueDir("sched_serial");
  TraceSinkOptions pooled_options;
  pooled_options.directory = UniqueDir("sched_pool");

  FleetRunStats serial_stats;
  {
    TraceSink sink(serial_options);
    FleetRunOptions run;
    run.trace_sink = &sink;
    RunFleet(spec, run, &serial_stats);
  }
  FleetRunStats pooled_stats;
  ThreadPool pool(4);
  {
    TraceSink sink(pooled_options);
    FleetRunOptions run;
    run.pool = &pool;
    run.trace_sink = &sink;
    RunFleet(spec, run, &pooled_stats);
  }
  // The default ring (16 Ki events) never fills on this scenario, so the
  // byte-compare below is a determinism claim, not luck.
  ASSERT_EQ(serial_stats.trace_dropped, 0u);
  ASSERT_EQ(pooled_stats.trace_dropped, 0u);

  const ShardPlan plan = BuildShardPlan(spec, FleetRunOptions{}.shard_size);
  const auto serial_paths = TraceFilePaths(plan, serial_options.directory);
  const auto pooled_paths = TraceFilePaths(plan, pooled_options.directory);
  for (std::size_t i = 0; i < serial_paths.size(); ++i) {
    EXPECT_EQ(FileBytes(serial_paths[i]), FileBytes(pooled_paths[i]))
        << "shard " << i;
  }
}

TEST(TraceSinkFleet, OverflowingRingDropsLoudlyAndChangesNothing) {
  const ScenarioSpec spec = TracedSpec();
  const std::string untraced = SummaryBytes(RunFleet(spec));

  TraceSinkOptions options;
  options.directory = UniqueDir("overflow");
  options.ring_capacity = 16;  // absurdly small: guaranteed overflow.
  // A sleepy drain makes the overflow deterministic-ish; correctness must
  // not depend on how MUCH is dropped, only that it is accounted.
  options.drain_idle_micros = 2000;
  TraceSink sink(options);
  FleetRunOptions run;
  run.trace_sink = &sink;
  FleetRunStats stats;
  const FleetSummary summary = RunFleet(spec, run, &stats);

  EXPECT_GT(stats.trace_dropped, 0u);  // the ring did overflow...
  EXPECT_EQ(SummaryBytes(summary), untraced);  // ...and nothing changed.
  const std::uint64_t slots_per_node =
      static_cast<std::uint64_t>(spec.days) * spec.slots_per_day - 1;
  EXPECT_EQ(stats.trace_events + stats.trace_dropped,
            spec.node_count() * slots_per_node);

  // The loss is persisted per shard, not just reported in-process.
  const ShardPlan plan = BuildShardPlan(spec, run.shard_size);
  const auto files = LoadTraceFiles(TraceFilePaths(plan, options.directory));
  std::uint64_t dropped = 0;
  for (const TraceShardFile& file : files) dropped += file.dropped_events;
  EXPECT_EQ(dropped, stats.trace_dropped);
}

TEST(TraceSinkFleet, BlockOnFullTradesDropsForBackpressure) {
  // Same starved configuration as the overflow test — a 16-slot ring and a
  // sleepy drain — but with backpressure on: the probes wait for the drain
  // instead of dropping, so the event stream is complete and the summary
  // still matches the untraced bytes (the mode bench_fleet prices).
  const ScenarioSpec spec = TracedSpec();
  const std::string untraced = SummaryBytes(RunFleet(spec));

  TraceSinkOptions options;
  options.ring_capacity = 16;
  options.drain_idle_micros = 2000;
  options.block_on_full = true;
  TraceSink sink(options);
  FleetRunOptions run;
  run.trace_sink = &sink;
  FleetRunStats stats;
  const FleetSummary summary = RunFleet(spec, run, &stats);

  EXPECT_EQ(stats.trace_dropped, 0u);
  EXPECT_EQ(SummaryBytes(summary), untraced);
  const std::uint64_t slots_per_node =
      static_cast<std::uint64_t>(spec.days) * spec.slots_per_day - 1;
  EXPECT_EQ(stats.trace_events, spec.node_count() * slots_per_node);
}

// Regression: EndShard used to spin forever whenever no drain thread
// would ever make room — a sink whose drain never started (no BeginRun)
// or was already stopping left the caller retrying a full ring for good.
// A coordinated worker torn down mid-shard hit exactly this and hung
// instead of exiting.  The marker's drops must still be accounted, and
// the shard recorded as lost rather than silently missing its file.
TEST(TraceSinkFleet, EndShardGivesUpWhenTheDrainWillNeverRun) {
  TraceSinkOptions options;
  options.ring_capacity = 4;
  TraceSink sink(options);  // no BeginRun: the drain thread never starts.
  sink.EnsureWorkers(1);

  TraceEvent filler;  // jam the ring so the marker cannot land.
  while (sink.ring(0).TryPush(filler)) {
  }

  sink.EndShard(0, /*shard=*/3, /*dropped=*/7);  // pre-fix: infinite spin.

  const TraceSinkStats stats = sink.stats();
  EXPECT_EQ(stats.lost_shards, 1u);
  EXPECT_EQ(stats.dropped, 7u);
  EXPECT_EQ(stats.shard_files, 0u);
}

TEST(TraceSinkFleet, DistributedPartialsQueryIdenticallyPerShardAndJoined) {
  const ScenarioSpec spec = TracedSpec();
  const ShardPlan plan = BuildShardPlan(spec, 3);

  // Three "workers" each run a slice of the plan against one shared sink
  // directory — the deployment shape where every process writes its own
  // shard files and an operator joins them afterwards.
  TraceSinkOptions options;
  options.directory = UniqueDir("distributed");
  TraceSink sink(options);
  FleetRunOptions run;
  run.trace_sink = &sink;

  std::vector<std::size_t> all(plan.shards.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<FleetPartial> partials;
  for (std::size_t worker = 0; worker < 3; ++worker) {
    std::vector<std::size_t> subset;
    for (std::size_t s = worker; s < all.size(); s += 3) subset.push_back(s);
    partials.push_back(
        FleetPartial::Parse(RunFleetShards(plan, subset, run).Serialize()));
  }
  // The traced partials still merge to the untraced monolithic summary.
  const FleetSummary merged = MergeFleetPartials(plan, partials);
  FleetRunOptions untraced;
  untraced.shard_size = 3;
  EXPECT_EQ(SummaryBytes(merged), SummaryBytes(RunFleet(spec, untraced)));

  // Every shard of the plan produced a parseable file with the plan's
  // fingerprint.
  const auto paths = TraceFilePaths(plan, options.directory);
  const auto files = LoadTraceFiles(paths);
  ASSERT_EQ(files.size(), plan.shards.size());
  for (const TraceShardFile& file : files) {
    EXPECT_EQ(file.fingerprint, plan.fingerprint);
  }

  // Per-shard versus joined: same query, same rows, whether each file is
  // queried alone (results concatenated in shard order) or all at once.
  TraceQuery query;  // everything.
  TraceQuery filtered;
  filtered.site = "HSU";
  filtered.trigger_mask = kTraceTriggerViolationBurst | kTraceTriggerSocLowWater;
  for (const TraceQuery& q : {query, filtered}) {
    const TraceQueryResult joined = RunTraceQuery(files, q);
    TraceQueryResult concatenated;
    for (const TraceShardFile& file : files) {
      const TraceQueryResult one = RunTraceQuery({file}, q);
      concatenated.slots.insert(concatenated.slots.end(), one.slots.begin(),
                                one.slots.end());
      concatenated.days.insert(concatenated.days.end(), one.days.begin(),
                               one.days.end());
    }
    EXPECT_EQ(TraceSlotsTable(joined).ToCsv(),
              TraceSlotsTable(concatenated).ToCsv());
    EXPECT_EQ(TraceDaysTable(joined).ToCsv(),
              TraceDaysTable(concatenated).ToCsv());
  }
  // The unfiltered query saw actual telemetry, not empty tables.
  EXPECT_FALSE(RunTraceQuery(files, query).days.empty());
}

TEST(TraceSinkFleet, RejectsJoiningForeignRuns) {
  const ScenarioSpec spec = TracedSpec();
  ScenarioSpec other = spec;
  other.seed = 910;  // different plan fingerprint.
  const std::string dir_a = UniqueDir("foreign_a");
  const std::string dir_b = UniqueDir("foreign_b");
  auto run_traced = [](const ScenarioSpec& s, const std::string& dir) {
    TraceSinkOptions options;
    options.directory = dir;
    TraceSink sink(options);
    FleetRunOptions run;
    run.trace_sink = &sink;
    RunFleet(s, run);
  };
  run_traced(spec, dir_a);
  run_traced(other, dir_b);
  const ShardPlan plan_a = BuildShardPlan(spec, FleetRunOptions{}.shard_size);
  const ShardPlan plan_b = BuildShardPlan(other, FleetRunOptions{}.shard_size);
  std::vector<std::string> mixed = {
      TraceFilePaths(plan_a, dir_a).front(),
      TraceFilePaths(plan_b, dir_b).front(),
  };
  EXPECT_THROW(LoadTraceFiles(mixed), std::exception);
}

}  // namespace
}  // namespace shep
