// Tests for hw/energy_model.hpp — Table IV / Fig. 6 machinery.
#include "hw/energy_model.hpp"

#include <gtest/gtest.h>

#include "solar/synth.hpp"

namespace shep {
namespace {

PowerTrace NpcsTrace() {
  SynthOptions opt;
  opt.days = 30;
  return SynthesizeTrace(SiteByCode("NPCS"), opt);
}

WakeupOps OpsFor(int k, double alpha, const PowerTrace& trace) {
  WcmaParams p;
  p.alpha = alpha;
  p.days = 20;
  p.slots_k = k;
  return MeasureWakeupOps(p, trace, 48);
}

TEST(MeasureWakeupOps, CountsSteadyStateWakeups) {
  const auto trace = NpcsTrace();
  const auto ops = OpsFor(1, 0.7, trace);
  // 30 days minus 20 warm-up days at N=48.
  EXPECT_EQ(ops.wakeups, (30u - 20u) * 48u);
  EXPECT_GT(ops.average.div, 0u);
  EXPECT_GE(ops.full_work.div, ops.average.div);
}

TEST(MeasureWakeupOps, DivisionsGrowWithK) {
  const auto trace = NpcsTrace();
  const auto k1 = OpsFor(1, 0.7, trace);
  const auto k4 = OpsFor(4, 0.7, trace);
  EXPECT_GT(k4.full_work.div, k1.full_work.div);
}

TEST(MeasureWakeupOps, RejectsTooShortTrace) {
  SynthOptions opt;
  opt.days = 5;
  const auto trace = SynthesizeTrace(SiteByCode("NPCS"), opt);
  WcmaParams p;
  p.days = 20;
  EXPECT_THROW(MeasureWakeupOps(p, trace, 48), std::invalid_argument);
}

TEST(ActivityEnergy, PredictionEnergyInPaperBand) {
  // Table IV: prediction adds ~3.6 µJ at (K=1, α=0.7) and ~8.4 µJ at
  // (K=7, α=0.7); we require the same band and monotone growth.
  const auto trace = NpcsTrace();
  const McuPowerSpec spec;
  const CycleCosts costs;

  WcmaParams p1;
  p1.alpha = 0.7;
  p1.days = 20;
  p1.slots_k = 1;
  const auto e1 = ComputeActivityEnergy(
      spec, costs, MeasureWakeupOps(p1, trace, 48).full_work);

  WcmaParams p7 = p1;
  p7.slots_k = 7;
  const auto e7 = ComputeActivityEnergy(
      spec, costs, MeasureWakeupOps(p7, trace, 48).full_work);

  EXPECT_GT(e1.prediction_j, 2.0e-6);
  EXPECT_LT(e1.prediction_j, 6.0e-6);
  EXPECT_GT(e7.prediction_j, 6.0e-6);
  EXPECT_LT(e7.prediction_j, 11.0e-6);
  EXPECT_GT(e7.prediction_j, e1.prediction_j);
  // Sample + prediction ≈ 58.6 / 63.4 µJ rows.
  EXPECT_NEAR(e1.sample_and_predict_j, 58.6e-6, 3.0e-6);
  EXPECT_NEAR(e7.sample_and_predict_j, 63.4e-6, 3.5e-6);
}

TEST(ActivityEnergy, AlphaZeroIsCheaperAtSameK) {
  // Table IV row 4: (K=7, α=0) costs less than (K=7, α=0.7).
  const auto trace = NpcsTrace();
  const McuPowerSpec spec;
  const CycleCosts costs;
  WcmaParams pa;
  pa.alpha = 0.7;
  pa.days = 20;
  pa.slots_k = 6;
  WcmaParams pz = pa;
  pz.alpha = 0.0;
  const auto ea = ComputeActivityEnergy(
      spec, costs, MeasureWakeupOps(pa, trace, 48).full_work);
  const auto ez = ComputeActivityEnergy(
      spec, costs, MeasureWakeupOps(pz, trace, 48).full_work);
  EXPECT_LT(ez.prediction_j, ea.prediction_j);
}

TEST(ActivityEnergy, AdcDominatesPrediction) {
  // Paper Sec. IV-B: "A/D conversion ... consumes the bulk of energy".
  const auto trace = NpcsTrace();
  const auto e = ComputeActivityEnergy(
      McuPowerSpec{}, CycleCosts{},
      MeasureWakeupOps(WcmaParams{}, trace, 48).full_work);
  EXPECT_GT(e.adc_sample_j, 5.0 * e.prediction_j);
}

TEST(DayBudget, PaperDailyTotalsAtN48) {
  // Table IV: sampling 48/day ≈ 2640 µJ; sampling+prediction ≈ 2880 µJ.
  const auto trace = NpcsTrace();
  const McuPowerSpec spec;
  const CycleCosts costs;
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;
  const auto ops = MeasureWakeupOps(p, trace, 48).average;
  const auto act = ComputeActivityEnergy(spec, costs, ops);
  const auto budget = ComputeDayBudget(spec, costs, act, 48, ops);
  EXPECT_NEAR(budget.sampling_j, 2640.0e-6, 150.0e-6);
  EXPECT_NEAR(budget.management_j(), 2880.0e-6, 250.0e-6);
  EXPECT_NEAR(budget.sleep_j, 0.360, 0.01);
}

TEST(DayBudget, OverheadPercentMatchesFig6Shape) {
  // Fig. 6: ~4.85 % at N=288 down to ~0.40 % at N=24, monotone in N.
  const auto trace = NpcsTrace();
  const McuPowerSpec spec;
  const CycleCosts costs;
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;
  const auto ops = MeasureWakeupOps(p, trace, 48).average;
  const auto act = ComputeActivityEnergy(spec, costs, ops);

  double prev = 0.0;
  for (int n : {24, 48, 72, 96, 288}) {
    const auto b = ComputeDayBudget(spec, costs, act, n, ops);
    EXPECT_GT(b.OverheadPercent(), prev) << "N=" << n;
    prev = b.OverheadPercent();
  }
  const auto b288 = ComputeDayBudget(spec, costs, act, 288, ops);
  EXPECT_NEAR(b288.OverheadPercent(), 4.85, 0.6);
  const auto b24 = ComputeDayBudget(spec, costs, act, 24, ops);
  EXPECT_NEAR(b24.OverheadPercent(), 0.40, 0.1);
}

TEST(DayBudget, ActiveTimeIsTinyFractionOfDay) {
  const auto trace = NpcsTrace();
  const McuPowerSpec spec;
  const CycleCosts costs;
  const auto ops =
      MeasureWakeupOps(WcmaParams{}, trace, 48).full_work;
  const auto act = ComputeActivityEnergy(spec, costs, ops);
  const auto b = ComputeDayBudget(spec, costs, act, 288, ops);
  EXPECT_LT(b.active_s, 30.0);  // even at N=288, under half a minute awake
  EXPECT_GT(b.active_s, 5.0);   // but the 45 ms settles do add up
}

}  // namespace
}  // namespace shep
