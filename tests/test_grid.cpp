// Tests for sweep/grid.hpp — the paper's exploration ranges.
#include "sweep/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace shep {
namespace {

TEST(ParamGrid, PaperRangesMatchSectionIVA) {
  const auto g = ParamGrid::Paper();
  // "0 <= α <= 1" on a 0.1 grid.
  ASSERT_EQ(g.alphas.size(), 11u);
  EXPECT_DOUBLE_EQ(g.alphas.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.alphas.back(), 1.0);
  EXPECT_DOUBLE_EQ(g.alphas[7], 0.7);
  // "2 <= D <= 20".
  ASSERT_EQ(g.days.size(), 19u);
  EXPECT_EQ(g.days.front(), 2);
  EXPECT_EQ(g.days.back(), 20);
  // "1 <= K <= 6".
  ASSERT_EQ(g.ks.size(), 6u);
  EXPECT_EQ(g.ks.front(), 1);
  EXPECT_EQ(g.ks.back(), 6);
  EXPECT_EQ(g.size(), 11u * 19u * 6u);
  EXPECT_NO_THROW(g.Validate());
}

TEST(ParamGrid, CoarseIsSmallAndValid) {
  const auto g = ParamGrid::Coarse();
  EXPECT_LT(g.size(), 100u);
  EXPECT_NO_THROW(g.Validate());
}

TEST(ParamGrid, ValidationCatchesEmptyAxes) {
  ParamGrid g = ParamGrid::Coarse();
  g.alphas.clear();
  EXPECT_THROW(g.Validate(), std::invalid_argument);
}

TEST(ParamGrid, ValidationCatchesOutOfRange) {
  {
    ParamGrid g = ParamGrid::Coarse();
    g.alphas.push_back(1.5);
    EXPECT_THROW(g.Validate(), std::invalid_argument);
  }
  {
    ParamGrid g = ParamGrid::Coarse();
    g.days.push_back(0);
    EXPECT_THROW(g.Validate(), std::invalid_argument);
  }
  {
    ParamGrid g = ParamGrid::Coarse();
    g.ks.push_back(-1);
    EXPECT_THROW(g.Validate(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace shep
