// Tests for report/table.hpp.
#include "report/table.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

TEST(TableBuilder, RendersAlignedColumns) {
  TableBuilder t("Demo");
  t.Columns({"Data Set", "MAPE"});
  t.AddRow({"SPMD", "15.80%"});
  t.AddRow({"PFCI", "6.59%"});
  const auto s = t.ToString();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| SPMD"), std::string::npos);
  EXPECT_NE(s.find("15.80%"), std::string::npos);
  // Header separator lines exist.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(TableBuilder, WidthAdaptsToWidestCell) {
  TableBuilder t;
  t.Columns({"A"});
  t.AddRow({"a-very-long-cell"});
  const auto s = t.ToString();
  EXPECT_NE(s.find("| a-very-long-cell |"), std::string::npos);
}

TEST(TableBuilder, SeparatorRows) {
  TableBuilder t;
  t.Columns({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const auto s = t.ToString();
  // 5 horizontal rules: top, under header, mid separator, bottom... count.
  std::size_t rules = 0;
  for (std::size_t pos = s.find("+-"); pos != std::string::npos;
       pos = s.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(t.rows(), 3u);  // 2 data + 1 separator
}

TEST(TableBuilder, Validation) {
  TableBuilder t;
  EXPECT_THROW(t.ToString(), std::invalid_argument);
  EXPECT_THROW(t.AddRow({"x"}), std::invalid_argument);
  t.Columns({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
  t.AddRow({"1", "2"});
  EXPECT_THROW(t.Columns({"again"}), std::invalid_argument);
}

}  // namespace
}  // namespace shep
