// Tests for common/strings.hpp.
#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace shep {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto fields = Split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, SingleField) {
  const auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto fields = Split("a,b,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(Trim, RemovesWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1.5 "), -1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("   ").has_value());
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("x").has_value());
}

TEST(FormatFixed, Digits) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(1.0, 0), "1");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

TEST(FormatPercent, MatchesPaperStyle) {
  EXPECT_EQ(FormatPercent(0.1580), "15.80%");
  EXPECT_EQ(FormatPercent(0.0659), "6.59%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

}  // namespace
}  // namespace shep
